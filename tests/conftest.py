"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, MachineSpec


@pytest.fixture
def voltrino_node() -> Cluster:
    """A single Voltrino-spec node with no network."""
    return Cluster(num_nodes=1, spec=MachineSpec.voltrino())


@pytest.fixture
def small_cluster() -> Cluster:
    """Four Voltrino nodes on an Aries-like fabric."""
    return Cluster.voltrino(num_nodes=4)


@pytest.fixture
def chameleon_cluster() -> Cluster:
    """A Chameleon-like cluster with the NFS appliance attached."""
    return Cluster.chameleon(num_nodes=6)
