"""Engine edge cases: kill timing, nested notifications, accounting."""

import math

import pytest

from repro.sim.engine import Simulator, UnitRateModel
from repro.sim.process import (
    Condition,
    ProcessState,
    Segment,
    SimProcess,
    Sleep,
    Wait,
)


def proc(name, body, core=0):
    return SimProcess(name=name, body=body, node="node0", core=core)


def test_kill_while_sleeping():
    sim = Simulator()

    def body(p):
        yield Sleep(100.0)

    p = sim.spawn(proc("sleeper", body))
    sim.schedule(5.0, lambda: sim.kill(p))
    sim.run(until=200)
    assert p.state is ProcessState.KILLED
    assert p.end_time == pytest.approx(5.0)


def test_kill_while_waiting_removes_from_condition():
    sim = Simulator()
    cond = Condition()

    def body(p):
        yield Wait(cond)
        raise AssertionError("must not resume")  # pragma: no cover

    p = sim.spawn(proc("waiter", body))
    sim.schedule(1.0, lambda: sim.kill(p))
    sim.schedule(2.0, lambda: sim.notify(cond))
    sim.run(until=10)
    assert p.state is ProcessState.KILLED


def test_notify_before_any_waiter_is_lost():
    """Conditions are broadcast edges, not latches."""
    sim = Simulator()
    cond = Condition()
    resumed = []

    def body(p):
        yield Sleep(5.0)
        yield Wait(cond)
        resumed.append(p.now)

    sim.spawn(proc("late", body))
    sim.schedule(1.0, lambda: sim.notify(cond))  # nobody listening yet
    sim.schedule(8.0, lambda: sim.notify(cond))
    sim.run(until=20)
    assert resumed == [8.0]


def test_chained_notify_in_same_timestamp():
    sim = Simulator()
    first = Condition()
    second = Condition()
    order = []

    def a(p):
        yield Wait(first)
        order.append("a")
        p.sim.notify(second)

    def b(p):
        yield Wait(second)
        order.append("b")

    sim.spawn(proc("a", a))
    sim.spawn(proc("b", b))
    sim.schedule(3.0, lambda: sim.notify(first))
    sim.run(until=10)
    assert order == ["a", "b"]
    assert sim.now == pytest.approx(10.0)


def test_sequential_segments_accumulate():
    sim = Simulator()

    def body(p):
        for _ in range(5):
            yield Segment(work=2.0)

    p = sim.spawn(proc("p", body))
    sim.run()
    assert p.runtime == pytest.approx(10.0)


def test_counters_integrated_by_unit_model():
    sim = Simulator(UnitRateModel())

    def body(p):
        yield Segment(work=4.0, cpu=0.5)

    p = sim.spawn(proc("p", body))
    sim.run()
    assert p.counters["cpu_seconds"] == pytest.approx(2.0)


def test_many_processes_same_timestamp_deterministic():
    def once():
        sim = Simulator()
        finished = []

        def body(p):
            yield Segment(work=1.0)
            finished.append(p.name)

        for i in range(20):
            sim.spawn(proc(f"p{i}", body, core=i))
        sim.run()
        return finished

    assert once() == once()


def test_killed_process_events_are_inert():
    sim = Simulator()

    def body(p):
        yield Sleep(2.0)
        yield Segment(work=5.0)

    p = sim.spawn(proc("p", body))
    sim.kill_done = False
    sim.schedule(1.0, lambda: sim.kill(p))
    sim.run(until=20)
    # the sleep wake at t=2 must not resurrect the killed process
    assert p.state is ProcessState.KILLED
    assert p.end_time == pytest.approx(1.0)
