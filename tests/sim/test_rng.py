"""Deterministic RNG derivation."""

import numpy as np

from repro.sim.rng import DEFAULT_SEED, make_rng, spawn_rng


def test_make_rng_is_deterministic():
    a = make_rng(123).random(5)
    b = make_rng(123).random(5)
    assert np.array_equal(a, b)


def test_default_seed_used_when_none():
    a = make_rng(None).random(3)
    b = make_rng(DEFAULT_SEED).random(3)
    assert np.array_equal(a, b)


def test_spawn_rng_stable_per_key():
    a = spawn_rng(1, "worker-0").random(4)
    b = spawn_rng(1, "worker-0").random(4)
    assert np.array_equal(a, b)


def test_spawn_rng_differs_across_keys():
    a = spawn_rng(1, "worker-0").random(4)
    b = spawn_rng(1, "worker-1").random(4)
    assert not np.array_equal(a, b)


def test_spawn_rng_differs_across_parents():
    a = spawn_rng(1, "k").random(4)
    b = spawn_rng(2, "k").random(4)
    assert not np.array_equal(a, b)
