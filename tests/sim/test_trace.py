"""Execution tracer."""

import pytest

from repro.cluster import Cluster
from repro.core import CpuOccupy
from repro.sim.engine import Simulator
from repro.sim.process import Segment, SimProcess
from repro.sim.trace import Tracer


def test_timeline_records_speed_changes():
    cluster = Cluster(num_nodes=1)
    tracer = Tracer()
    tracer.attach(cluster.sim)

    def app(proc):
        yield Segment(work=10.0, label="phase")

    cluster.spawn("app", app, node=0, core=0)
    CpuOccupy(utilization=100, duration=4.0).launch(cluster, "node0", core=0, start=2.0)
    cluster.sim.run(until=100)
    timeline = tracer.by_name("app")
    assert timeline.speed_at(1.0) == pytest.approx(1.0)
    assert timeline.speed_at(3.0) == pytest.approx(0.5)
    assert timeline.speed_at(7.0) == pytest.approx(1.0)


def test_intervals_cover_process_lifetime():
    cluster = Cluster(num_nodes=1)
    tracer = Tracer()
    tracer.attach(cluster.sim)

    def app(proc):
        yield Segment(work=5.0)

    cluster.spawn("app", app, node=0, core=0)
    cluster.sim.run()
    intervals = tracer.by_name("app").intervals()
    assert intervals[0][0] == pytest.approx(0.0)
    assert intervals[-1][1] == pytest.approx(5.0)


def test_end_record_carries_reason():
    cluster = Cluster(num_nodes=1)
    tracer = Tracer()
    tracer.attach(cluster.sim)

    def app(proc):
        yield Segment(work=5.0)

    p = cluster.spawn("app", app, node=0, core=0)
    cluster.sim.schedule(2.0, lambda: cluster.sim.kill(p, reason="testing"))
    cluster.sim.run(until=10)
    records = [r for r in tracer.by_name("app").records if r.kind == "end"]
    assert records[0].detail == "testing"
    assert records[0].time == pytest.approx(2.0)


def test_render_is_readable():
    cluster = Cluster(num_nodes=1)
    tracer = Tracer()
    tracer.attach(cluster.sim)

    def app(proc):
        yield Segment(work=1.0, label="compute")

    cluster.spawn("app", app, node=0, core=0)
    cluster.sim.run()
    text = tracer.render()
    assert "app" in text and "compute" in text and "END" in text


def test_duplicate_resolves_deduplicated():
    sim = Simulator()
    tracer = Tracer()
    tracer.attach(sim)

    def body(proc):
        yield Segment(work=2.0, label="x")

    p = SimProcess("p", body, node="n", core=0)
    sim.spawn(p)
    sim.every(0.1, lambda t: setattr(sim, "_dirty", True), start=0.0, end=1.0)
    sim.run()
    speed_records = [
        r for r in tracer.by_name("p").records if r.kind == "speed"
    ]
    assert len(speed_records) == 1  # same speed re-resolved -> one record


def test_unknown_name_raises():
    tracer = Tracer()
    with pytest.raises(KeyError):
        tracer.by_name("ghost")


def test_double_attach_rejected():
    sim = Simulator()
    tracer = Tracer()
    tracer.attach(sim)
    with pytest.raises(RuntimeError):
        tracer.attach(sim)
