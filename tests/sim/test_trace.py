"""Execution tracer."""

import pytest

from repro.cluster import Cluster
from repro.core import CpuOccupy
from repro.sim.engine import Simulator
from repro.sim.process import Segment, SimProcess
from repro.sim.trace import Timeline, TraceRecord, Tracer


def test_timeline_records_speed_changes():
    cluster = Cluster(num_nodes=1)
    tracer = Tracer()
    tracer.attach(cluster.sim)

    def app(proc):
        yield Segment(work=10.0, label="phase")

    cluster.spawn("app", app, node=0, core=0)
    CpuOccupy(utilization=100, duration=4.0).launch(cluster, "node0", core=0, start=2.0)
    cluster.sim.run(until=100)
    timeline = tracer.by_name("app")
    assert timeline.speed_at(1.0) == pytest.approx(1.0)
    assert timeline.speed_at(3.0) == pytest.approx(0.5)
    assert timeline.speed_at(7.0) == pytest.approx(1.0)


def test_intervals_cover_process_lifetime():
    cluster = Cluster(num_nodes=1)
    tracer = Tracer()
    tracer.attach(cluster.sim)

    def app(proc):
        yield Segment(work=5.0)

    cluster.spawn("app", app, node=0, core=0)
    cluster.sim.run()
    intervals = tracer.by_name("app").intervals()
    assert intervals[0][0] == pytest.approx(0.0)
    assert intervals[-1][1] == pytest.approx(5.0)


def test_end_record_carries_reason():
    cluster = Cluster(num_nodes=1)
    tracer = Tracer()
    tracer.attach(cluster.sim)

    def app(proc):
        yield Segment(work=5.0)

    p = cluster.spawn("app", app, node=0, core=0)
    cluster.sim.schedule(2.0, lambda: cluster.sim.kill(p, reason="testing"))
    cluster.sim.run(until=10)
    records = [r for r in tracer.by_name("app").records if r.kind == "end"]
    assert records[0].detail == "testing"
    assert records[0].time == pytest.approx(2.0)


def test_render_is_readable():
    cluster = Cluster(num_nodes=1)
    tracer = Tracer()
    tracer.attach(cluster.sim)

    def app(proc):
        yield Segment(work=1.0, label="compute")

    cluster.spawn("app", app, node=0, core=0)
    cluster.sim.run()
    text = tracer.render()
    assert "app" in text and "compute" in text and "END" in text


def test_duplicate_resolves_deduplicated():
    sim = Simulator()
    tracer = Tracer()
    tracer.attach(sim)

    def body(proc):
        yield Segment(work=2.0, label="x")

    p = SimProcess("p", body, node="n", core=0)
    sim.spawn(p)
    sim.every(0.1, lambda t: setattr(sim, "_dirty", True), start=0.0, end=1.0)
    sim.run()
    speed_records = [
        r for r in tracer.by_name("p").records if r.kind == "speed"
    ]
    assert len(speed_records) == 1  # same speed re-resolved -> one record


def test_unknown_name_raises():
    tracer = Tracer()
    with pytest.raises(KeyError):
        tracer.by_name("ghost")


def test_double_attach_rejected():
    sim = Simulator()
    tracer = Tracer()
    tracer.attach(sim)
    with pytest.raises(RuntimeError):
        tracer.attach(sim)


def test_detach_restores_model_and_allows_reattach():
    cluster = Cluster(num_nodes=1)
    original_model = cluster.sim.model
    tracer = Tracer()
    tracer.attach(cluster.sim)

    def app(proc):
        yield Segment(work=2.0)

    cluster.spawn("app", app, node=0, core=0)
    cluster.sim.run()
    tracer.detach()
    assert cluster.sim.model is original_model
    # recorded data survives detach, and the tracer can attach again
    assert tracer.by_name("app").records
    tracer.attach(cluster.sim)

    def second(proc):
        yield Segment(work=1.0)

    cluster.spawn("second", second, node=0, core=0)
    cluster.sim.run()
    assert tracer.by_name("second").records
    tracer.detach()
    assert cluster.sim.model is original_model


def test_detach_without_attach_rejected():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        tracer.detach()


def test_detach_with_foreign_model_rejected():
    sim = Simulator()
    tracer = Tracer()
    tracer.attach(sim)
    other = Tracer()
    other.attach(sim)  # wraps on top of the first tracer's wrapper
    with pytest.raises(RuntimeError, match="wrapper"):
        tracer.detach()
    other.detach()  # unwraps cleanly back to the first wrapper
    tracer.detach()


class TestTimelineIntervals:
    @staticmethod
    def _speed(time, value):
        return TraceRecord(time=time, pid=1, name="p", kind="speed", detail="", value=value)

    @staticmethod
    def _end(time):
        return TraceRecord(time=time, pid=1, name="p", kind="end", detail="done")

    def test_empty_timeline(self):
        assert Timeline().intervals() == []

    def test_end_only_timeline(self):
        assert Timeline(records=[self._end(3.0)]).intervals() == []

    def test_coincident_speed_records(self):
        timeline = Timeline(
            records=[self._speed(1.0, 0.5), self._speed(1.0, 0.8), self._end(4.0)]
        )
        pieces = timeline.intervals()
        # zero-width piece for the superseded record, then the real one
        assert pieces == [(1.0, 1.0, 0.5), (1.0, 4.0, 0.8)]

    def test_end_before_speed_record(self):
        timeline = Timeline(records=[self._end(1.0), self._speed(2.0, 1.0)])
        pieces = timeline.intervals()
        assert pieces == [(2.0, 1.0, 1.0)]  # degenerate: end precedes speed

    def test_open_timeline_extends_to_infinity(self):
        pieces = Timeline(records=[self._speed(0.0, 1.0)]).intervals()
        assert pieces == [(0.0, float("inf"), 1.0)]

    def test_pieces_are_contiguous(self):
        timeline = Timeline(
            records=[
                self._speed(0.0, 1.0),
                self._speed(2.0, 0.5),
                self._speed(5.0, 0.8),
                self._end(9.0),
            ]
        )
        pieces = timeline.intervals()
        assert pieces == [(0.0, 2.0, 1.0), (2.0, 5.0, 0.5), (5.0, 9.0, 0.8)]
        for (_, prev_end, _), (nxt_start, _, _) in zip(pieces, pieces[1:]):
            assert prev_end == nxt_start

    def test_single_sample_profile(self):
        timeline = Timeline(records=[self._speed(1.0, 0.25), self._end(3.0)])
        assert timeline.intervals() == [(1.0, 3.0, 0.25)]
        assert timeline.speed_at(0.5) == 0.0  # before the first record
        assert timeline.speed_at(2.0) == 0.25

    def test_multiple_end_records_use_the_last(self):
        # A respawned process logs two ends; the profile closes at the last.
        timeline = Timeline(
            records=[self._speed(0.0, 1.0), self._end(2.0), self._end(4.0)]
        )
        assert timeline.intervals() == [(0.0, 4.0, 1.0)]
