"""Engine semantics: fluid progress, sleep/wait, kill, recurring events."""

import math

import pytest

from repro.errors import ProcessCrash, SimulationError
from repro.sim.engine import Simulator, UnitRateModel
from repro.sim.process import (
    Condition,
    ProcessState,
    Segment,
    SimProcess,
    Sleep,
    Wait,
)


def make_proc(name, body, node="node0", core=0):
    return SimProcess(name=name, body=body, node=node, core=core)


def test_segment_completes_at_nominal_duration():
    sim = Simulator()

    def body(proc):
        yield Segment(work=5.0)

    p = sim.spawn(make_proc("p", body))
    sim.run()
    assert p.state is ProcessState.DONE
    assert p.runtime == pytest.approx(5.0)


def test_sleep_advances_time_without_demands():
    sim = Simulator()
    marks = []

    def body(proc):
        yield Sleep(2.5)
        marks.append(proc.now)
        yield Segment(work=1.0)

    sim.spawn(make_proc("p", body))
    sim.run()
    assert marks == [2.5]
    assert sim.now == pytest.approx(3.5)


def test_spawn_at_future_time():
    sim = Simulator()

    def body(proc):
        yield Segment(work=1.0)

    p = sim.spawn(make_proc("p", body), at=10.0)
    sim.run()
    assert p.start_time == pytest.approx(10.0)
    assert p.end_time == pytest.approx(11.0)


def test_spawn_in_past_rejected():
    sim = Simulator()
    sim.run(until=5.0)

    def body(proc):
        yield Segment(work=1.0)

    with pytest.raises(SimulationError):
        sim.spawn(make_proc("p", body), at=1.0)


def test_kill_runs_finally_blocks():
    sim = Simulator()
    cleaned = []

    def body(proc):
        try:
            yield Segment(work=math.inf)
        finally:
            cleaned.append(proc.name)

    p = sim.spawn(make_proc("p", body))
    sim.schedule(3.0, lambda: sim.kill(p, reason="test"))
    sim.run(until=10.0)
    assert p.state is ProcessState.KILLED
    assert p.exit_reason == "test"
    assert cleaned == ["p"]
    assert p.end_time == pytest.approx(3.0)


def test_infinite_segment_runs_until_horizon():
    sim = Simulator()

    def body(proc):
        yield Segment(work=math.inf)

    p = sim.spawn(make_proc("p", body))
    sim.run(until=42.0)
    assert sim.now == pytest.approx(42.0)
    assert p.state is ProcessState.RUNNING


def test_wait_and_notify():
    sim = Simulator()
    cond = Condition("go")
    order = []

    def waiter(proc):
        order.append("wait")
        yield Wait(cond)
        order.append("resumed")

    def notifier(proc):
        yield Sleep(2.0)
        order.append("notify")
        proc.sim.notify(cond)

    sim.spawn(make_proc("w", waiter))
    sim.spawn(make_proc("n", notifier))
    sim.run()
    assert order == ["wait", "notify", "resumed"]


def test_crash_is_contained():
    sim = Simulator()

    def body(proc):
        yield Segment(work=1.0)
        raise ProcessCrash("boom")

    p = sim.spawn(make_proc("p", body))
    sim.run()
    assert p.state is ProcessState.KILLED
    assert "boom" in p.exit_reason


def test_other_exceptions_propagate():
    sim = Simulator()

    def body(proc):
        yield Segment(work=1.0)
        raise ValueError("programming error")

    sim.spawn(make_proc("p", body))
    with pytest.raises(ValueError):
        sim.run()


def test_every_fires_at_interval_until_end():
    sim = Simulator()
    ticks = []
    sim.every(1.0, ticks.append, start=0.0, end=5.0)
    sim.run(until=10.0)
    assert ticks == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]


def test_every_cancel():
    sim = Simulator()
    ticks = []
    handle = sim.every(1.0, ticks.append, start=0.0)
    sim.schedule(2.5, handle.cancel)
    sim.run(until=10.0)
    assert ticks == [0.0, 1.0, 2.0]


def test_stop_when_halts_immediately():
    sim = Simulator()
    done = []

    def body(proc):
        yield Segment(work=3.0)
        done.append(proc.now)

    sim.spawn(make_proc("p", body))
    sim.every(1.0, lambda t: None, start=0.0)  # endless background ticks
    sim.run(until=1000.0, stop_when=lambda: bool(done))
    assert sim.now == pytest.approx(3.0)


def test_run_integrates_idle_tail():
    sim = Simulator()

    def body(proc):
        yield Segment(work=1.0)

    sim.spawn(make_proc("p", body))
    sim.run(until=7.5)
    assert sim.now == pytest.approx(7.5)


def test_speed_change_midway_is_exact():
    """A process halved in speed finishes at the exact fluid time."""

    class HalfAfter(UnitRateModel):
        def __init__(self):
            self.halved = False

        def resolve(self, running, now):
            speed = 0.5 if self.halved else 1.0
            return {p.pid: speed for p in running}

    model = HalfAfter()
    sim = Simulator(model)

    def body(proc):
        yield Segment(work=10.0)

    def flip():
        model.halved = True
        sim._dirty = True  # force re-resolve at this event

    p = sim.spawn(make_proc("p", body))
    sim.schedule(4.0, flip)
    sim.run()
    # 4 s at speed 1 + 6 remaining at 0.5 -> finishes at 16 s.
    assert p.end_time == pytest.approx(16.0)


def test_process_lookup_and_registry():
    sim = Simulator()

    def body(proc):
        yield Segment(work=1.0)

    p = sim.spawn(make_proc("p", body))
    assert sim.process(p.pid) is p
    with pytest.raises(SimulationError):
        sim.process(999_999)


def test_double_spawn_rejected():
    sim = Simulator()

    def body(proc):
        yield Segment(work=1.0)

    p = sim.spawn(make_proc("p", body))
    with pytest.raises(SimulationError):
        sim.spawn(p)


def test_zero_work_segment_completes_instantly():
    sim = Simulator()
    times = []

    def body(proc):
        yield Segment(work=0.0)
        times.append(proc.now)

    sim.spawn(make_proc("p", body))
    sim.run()
    assert times == [0.0]


def test_terminate_hook_called():
    sim = Simulator()
    ended = []
    sim.add_terminate_hook(lambda proc: ended.append(proc.name))

    def body(proc):
        yield Segment(work=1.0)

    sim.spawn(make_proc("a", body))
    sim.run()
    assert ended == ["a"]
