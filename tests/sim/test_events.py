"""Event-queue behaviour: ordering, ties, cancellation.

The heap and calendar queues share one contract — non-decreasing time
order with equal-timestamp events firing in **insertion order** (the
tie-break the engine's determinism rests on) — so every behavioural test
here is parametrised over both implementations, and a differential test
drives them with an identical random schedule and asserts the pop
sequences are identical.
"""

import pytest

from repro.errors import SimulationError
from repro.sim.events import CalendarQueue, EventQueue
from repro.sim.rng import spawn_rng

QUEUES = [EventQueue, CalendarQueue]


@pytest.fixture(params=QUEUES, ids=["heap", "calendar"])
def queue(request):
    return request.param()


def test_pops_in_time_order(queue):
    fired = []
    queue.push(3.0, lambda: fired.append(3))
    queue.push(1.0, lambda: fired.append(1))
    queue.push(2.0, lambda: fired.append(2))
    while (e := queue.pop()) is not None:
        e.action()
    assert fired == [1, 2, 3]


def test_ties_fire_in_insertion_order(queue):
    fired = []
    for i in range(10):
        queue.push(5.0, lambda i=i: fired.append(i))
    while (e := queue.pop()) is not None:
        e.action()
    assert fired == list(range(10))


def test_interleaved_ties_keep_per_timestamp_fifo(queue):
    # Ties pushed in interleaved time order must still dispatch FIFO
    # within each timestamp.
    fired = []
    for i in range(6):
        queue.push(2.0, lambda i=i: fired.append(("b", i)))
        queue.push(1.0, lambda i=i: fired.append(("a", i)))
    while (e := queue.pop()) is not None:
        e.action()
    assert fired == [("a", i) for i in range(6)] + [("b", i) for i in range(6)]


def test_cancelled_events_are_skipped(queue):
    keep = queue.push(1.0, lambda: None)
    drop = queue.push(0.5, lambda: None)
    drop.cancel()
    assert queue.pop() is keep
    assert queue.pop() is None


def test_peek_time_skips_cancelled(queue):
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    first.cancel()
    assert queue.peek_time() == 2.0


def test_len_counts_pending(queue):
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2


def test_nan_time_rejected(queue):
    with pytest.raises(SimulationError):
        queue.push(float("nan"), lambda: None)


def test_empty_queue_pop_and_peek(queue):
    assert queue.pop() is None
    assert queue.peek_time() is None


def test_pop_at_drains_only_the_due_timestamp(queue):
    a = queue.push(1.0, lambda: None)
    b = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert queue.pop_at(1.0) is a
    assert queue.pop_at(1.0) is b
    assert queue.pop_at(1.0) is None  # next event is at 2.0
    assert queue.peek_time() == 2.0


def test_infinite_timestamps_sort_last(queue):
    far = queue.push(float("inf"), lambda: None)
    near = queue.push(1.0, lambda: None)
    assert queue.peek_time() == 1.0
    assert queue.pop() is near
    assert queue.peek_time() == float("inf")
    assert queue.pop() is far
    assert queue.pop() is None


def test_monotone_growth_forces_calendar_resizes():
    # Push enough events to trigger repeated doubling, then drain to
    # trigger shrinking; order must survive every resize.
    q = CalendarQueue()
    rng = spawn_rng(0, "events:resize")
    times = [float(t) for t in rng.uniform(0.0, 1000.0, size=500)]
    for t in times:
        q.push(t, lambda: None)
    popped = []
    while (e := q.pop()) is not None:
        popped.append(e.time)
    assert popped == sorted(times)


def test_heap_and_calendar_pop_sequences_are_identical():
    """Differential drive: same pushes/cancels/pops, identical order."""
    rng = spawn_rng(1, "events:differential")
    heap, cal = EventQueue(), CalendarQueue()
    heap_events, cal_events = [], []
    heap_order, cal_order = [], []
    now = 0.0
    for step in range(2000):
        op = rng.random()
        if op < 0.55 or not heap_events:
            # Push at or after "now"; quantised times plant many exact ties.
            t = now + float(rng.integers(0, 20)) * 0.5
            tag = step
            heap_events.append(heap.push(t, lambda: None))
            cal_events.append(cal.push(t, lambda: None))
            heap_events[-1].tag = cal_events[-1].tag = tag
        elif op < 0.7 and heap_events:
            i = int(rng.integers(0, len(heap_events)))
            heap_events[i].cancel()
            cal_events[i].cancel()
        else:
            assert heap.peek_time() == cal.peek_time()
            he, ce = heap.pop(), cal.pop()
            if he is None:
                assert ce is None
                continue
            assert (he.time, he.tag) == (ce.time, ce.tag)
            now = he.time
            heap_order.append((he.time, he.tag))
            cal_order.append((ce.time, ce.tag))
    while (he := heap.pop()) is not None:
        ce = cal.pop()
        assert (he.time, he.tag) == (ce.time, ce.tag)
    assert cal.pop() is None
    assert heap_order == cal_order
