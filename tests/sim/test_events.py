"""Event-queue behaviour: ordering, ties, cancellation."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


def test_pops_in_time_order():
    q = EventQueue()
    fired = []
    q.push(3.0, lambda: fired.append(3))
    q.push(1.0, lambda: fired.append(1))
    q.push(2.0, lambda: fired.append(2))
    while (e := q.pop()) is not None:
        e.action()
    assert fired == [1, 2, 3]


def test_ties_fire_in_insertion_order():
    q = EventQueue()
    fired = []
    for i in range(10):
        q.push(5.0, lambda i=i: fired.append(i))
    while (e := q.pop()) is not None:
        e.action()
    assert fired == list(range(10))


def test_cancelled_events_are_skipped():
    q = EventQueue()
    keep = q.push(1.0, lambda: None)
    drop = q.push(0.5, lambda: None)
    drop.cancel()
    assert q.pop() is keep
    assert q.pop() is None


def test_peek_time_skips_cancelled():
    q = EventQueue()
    first = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    first.cancel()
    assert q.peek_time() == 2.0


def test_len_counts_pending():
    q = EventQueue()
    q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert len(q) == 2


def test_nan_time_rejected():
    q = EventQueue()
    with pytest.raises(SimulationError):
        q.push(float("nan"), lambda: None)


def test_empty_queue_pop_and_peek():
    q = EventQueue()
    assert q.pop() is None
    assert q.peek_time() is None
