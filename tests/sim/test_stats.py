"""SimStats: the engine's observability counter/timer block."""

from repro.sim.engine import Simulator, UnitRateModel
from repro.sim.process import Segment, SimProcess
from repro.sim.stats import SimStats


class TestCounters:
    def test_count_accumulates(self):
        stats = SimStats()
        stats.count("resolves")
        stats.count("resolves", 2)
        assert stats.counters["resolves"] == 3

    def test_missing_counter_reads_zero_in_as_dict(self):
        assert "resolves" not in SimStats().as_dict()

    def test_reset_clears_everything(self):
        stats = SimStats()
        stats.count("x")
        with stats.timer("y"):
            pass
        stats.reset()
        assert stats.counters == {}
        assert stats.timings == {}


class TestTimers:
    def test_timer_accumulates_nonnegative(self):
        stats = SimStats()
        with stats.timer("resolve"):
            pass
        with stats.timer("resolve"):
            pass
        assert stats.timings["resolve"] >= 0.0

    def test_timer_reraises(self):
        stats = SimStats()
        try:
            with stats.timer("resolve"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert "resolve" in stats.timings


class TestRendering:
    def test_as_dict_prefixes_timings(self):
        stats = SimStats()
        stats.count("resolves", 4)
        with stats.timer("resolve"):
            pass
        flat = stats.as_dict()
        assert flat["resolves"] == 4
        assert "t_resolve" in flat

    def test_describe_lists_all_entries(self):
        stats = SimStats()
        stats.count("events_dispatched", 7)
        lines = stats.describe()
        assert lines[0].startswith("profile")
        assert any("events_dispatched" in line and "7" in line for line in lines)


class TestEngineIntegration:
    def test_engine_counts_events_and_resolves(self):
        sim = Simulator(UnitRateModel())

        def body(proc):
            yield Segment(work=1.0)
            yield Segment(work=2.0)

        sim.spawn(SimProcess(name="p", body=body, node="node0", core=0))
        sim.run()
        assert sim.stats.counters["events_dispatched"] > 0
        assert sim.stats.counters["resolves"] > 0
        assert sim.stats.timings["resolve"] >= 0.0

    def test_model_shares_the_engine_stats_block(self):
        sim = Simulator(UnitRateModel())
        assert sim.model.stats is sim.stats
