"""Property-based engine invariants under random workloads."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.sim.engine import Simulator
from repro.sim.process import ProcessState, Segment, SimProcess, Sleep

# A workload item: (spawn_time, [(kind, value), ...]) where kind is
# "work" (segment seconds) or "sleep" (idle seconds).
step = st.tuples(
    st.sampled_from(["work", "sleep"]),
    st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
)
workload = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=10.0), st.lists(step, max_size=4)),
    min_size=1,
    max_size=6,
)


def make_body(steps):
    def body(proc):
        for kind, value in steps:
            if kind == "work":
                yield Segment(work=value)
            else:
                yield Sleep(value)

    return body


@settings(max_examples=60, deadline=None)
@given(spec=workload)
def test_uncontended_runtimes_are_exact(spec):
    """With no contention every process runs exactly its nominal time."""
    sim = Simulator()
    procs = []
    for i, (start, steps) in enumerate(spec):
        p = SimProcess(f"p{i}", make_body(steps), node="n", core=i)
        sim.spawn(p, at=start)
        procs.append((p, start, steps))
    sim.run(until=500.0)
    for p, start, steps in procs:
        assert p.state is ProcessState.DONE
        nominal = sum(v for _, v in steps)
        assert p.runtime == pytest.approx(nominal, rel=1e-9, abs=1e-9)
        assert p.start_time == pytest.approx(start)


@settings(max_examples=40, deadline=None)
@given(spec=workload)
def test_time_never_goes_backwards(spec):
    sim = Simulator()
    stamps = []
    for i, (start, steps) in enumerate(spec):
        sim.spawn(SimProcess(f"p{i}", make_body(steps), node="n", core=i), at=start)
    sim.every(0.7, stamps.append, start=0.0, end=60.0)
    sim.run(until=500.0)
    assert stamps == sorted(stamps)
    assert sim.now >= max(stamps, default=0.0)


@settings(max_examples=40, deadline=None)
@given(
    spec=workload,
    shares=st.integers(min_value=2, max_value=5),
)
def test_core_sharing_conserves_throughput(spec, shares):
    """N busy processes on one core finish in exactly N x the serial time."""
    cluster = Cluster(num_nodes=1)
    total_work = 4.0
    procs = []
    for i in range(shares):

        def body(proc, w=total_work):
            yield Segment(work=w)

        procs.append(cluster.spawn(f"p{i}", body, node=0, core=0))
    cluster.sim.run(until=1000.0)
    # equal demands on one core: all finish together at shares * work
    for p in procs:
        assert p.end_time == pytest.approx(shares * total_work, rel=1e-9)
    # CPU time accounting conserves the core: total busy == wall time
    node = cluster.node(0)
    assert node.counters["cpu_user_seconds"] == pytest.approx(
        shares * total_work, rel=1e-9
    )


@settings(max_examples=30, deadline=None)
@given(
    duties=st.lists(
        st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=4
    )
)
def test_utilization_accounting_bounded_by_core(duties):
    """Per-core busy time never exceeds wall time, whatever the duties."""
    cluster = Cluster(num_nodes=1)
    for i, duty in enumerate(duties):

        def body(proc, d=duty):
            yield Segment(work=math.inf, cpu=d)

        cluster.spawn(f"p{i}", body, node=0, core=0)
    cluster.sim.run(until=10.0)
    busy = cluster.node(0).counters["cpu_user_seconds"]
    expected = min(1.0, sum(duties)) * 10.0
    assert busy == pytest.approx(expected, rel=1e-6)
