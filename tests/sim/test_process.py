"""Segment/process data-model validation."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim.process import (
    CACHE_LEVELS,
    Condition,
    Flow,
    IODemand,
    ProcessState,
    Segment,
    SimProcess,
    Sleep,
)


class TestSegmentValidation:
    def test_defaults_are_pure_compute(self):
        seg = Segment(work=1.0)
        assert seg.cpu == 1.0
        assert seg.mem_bw == 0.0
        assert seg.flows == ()
        assert seg.io is None

    def test_negative_work_rejected(self):
        with pytest.raises(SimulationError):
            Segment(work=-1.0)

    def test_nan_work_rejected(self):
        with pytest.raises(SimulationError):
            Segment(work=float("nan"))

    def test_infinite_work_allowed(self):
        assert Segment(work=math.inf).work == math.inf

    @pytest.mark.parametrize("duty", [-0.1, 1.1])
    def test_cpu_duty_range(self, duty):
        with pytest.raises(SimulationError):
            Segment(work=1.0, cpu=duty)

    def test_unknown_cache_level_rejected(self):
        with pytest.raises(SimulationError):
            Segment(work=1.0, cache_footprint={"L4": 100})

    def test_negative_footprint_rejected(self):
        with pytest.raises(SimulationError):
            Segment(work=1.0, cache_footprint={"L1": -5})

    @pytest.mark.parametrize(
        "field", ["cache_intensity", "mpki_base", "mpki_extra", "mem_bw", "ips"]
    )
    def test_negative_rates_rejected(self, field):
        with pytest.raises(SimulationError):
            Segment(work=1.0, **{field: -1.0})

    def test_cache_levels_constant(self):
        assert CACHE_LEVELS == ("L1", "L2", "L3")


class TestSleepAndWait:
    def test_negative_sleep_rejected(self):
        with pytest.raises(SimulationError):
            Sleep(-1.0)

    def test_condition_notify_returns_waiters(self):
        cond = Condition("c")
        p = SimProcess("p", lambda proc: iter(()), node="n", core=0)
        cond._add(p)
        assert cond.notify_all() == [p]
        assert cond.notify_all() == []


class TestSimProcess:
    def test_pids_are_unique_and_increasing(self):
        a = SimProcess("a", lambda p: iter(()), node="n", core=0)
        b = SimProcess("b", lambda p: iter(()), node="n", core=0)
        assert b.pid > a.pid

    def test_runtime_requires_completion(self):
        p = SimProcess("p", lambda proc: iter(()), node="n", core=0)
        with pytest.raises(SimulationError):
            _ = p.runtime

    def test_counters_accumulate(self):
        p = SimProcess("p", lambda proc: iter(()), node="n", core=0)
        p.add_counter("x", 1.0)
        p.add_counter("x", 2.0)
        assert p.counters["x"] == 3.0

    def test_initial_state(self):
        p = SimProcess("p", lambda proc: iter(()), node="n", core=3)
        assert p.state is ProcessState.NEW
        assert not p.state.terminal
        assert p.core == 3


class TestFlowAndIO:
    def test_flow_fields(self):
        f = Flow(dst="node1", rate=1e9)
        assert f.dst == "node1"

    def test_io_demand_defaults(self):
        d = IODemand(fs="nfs")
        assert d.write_bw == 0.0 and d.read_bw == 0.0 and d.meta_ops == 0.0
