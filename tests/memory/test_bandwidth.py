"""Memory-bandwidth model: latency degradation + capacity sharing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.bandwidth import solve_bandwidth
from repro.resources.fairshare import proportional_share


def test_single_demand_undegraded():
    grants = solve_bandwidth(32e9, [12.5e9])
    assert grants[0] == pytest.approx(12.5e9)


def test_other_traffic_degrades_achievable_bw():
    alone = solve_bandwidth(32e9, [12.5e9])[0]
    contended = solve_bandwidth(32e9, [12.5e9, 10e9])[0]
    assert contended < alone
    # The degradation formula: demand / (1 + other/capacity).
    expected = 12.5e9 / (1 + 10e9 / 32e9)
    assert contended == pytest.approx(expected, rel=1e-6)


def test_alpha_zero_disables_degradation():
    grants = solve_bandwidth(32e9, [12.5e9, 10e9], alpha=0.0)
    assert grants[0] == pytest.approx(12.5e9)


def test_capacity_cap_engages_with_many_streams():
    demands = [10e9] * 16
    grants = solve_bandwidth(32e9, demands, alpha=0.0)
    assert sum(grants) == pytest.approx(32e9, rel=1e-6)


def test_monotone_in_contender_count():
    rates = [
        solve_bandwidth(32e9, [12.5e9] + [10e9] * n)[0] for n in range(0, 16, 2)
    ]
    assert all(a > b for a, b in zip(rates, rates[1:]))


def test_pluggable_share_fn():
    grants = solve_bandwidth(10e9, [20e9, 20e9], alpha=0.0, share_fn=proportional_share)
    assert grants[0] == pytest.approx(5e9)


@settings(max_examples=150, deadline=None)
@given(
    demands=st.lists(
        st.floats(min_value=0, max_value=20e9), min_size=1, max_size=16
    ),
    alpha=st.floats(min_value=0.0, max_value=2.0),
)
def test_bandwidth_invariants(demands, alpha):
    capacity = 32e9
    grants = solve_bandwidth(capacity, demands, alpha=alpha)
    assert len(grants) == len(demands)
    assert sum(grants) <= capacity * (1 + 1e-9) + 1e-3
    for g, d in zip(grants, demands):
        assert 0 <= g <= d + 1e-6
