"""Memory ledger: allocation, release, OOM-kill semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, OutOfMemoryError, ResourceError
from repro.memory.capacity import MemoryLedger
from repro.units import GB


def ledger(capacity=10 * GB, baseline=1 * GB, policy="largest"):
    return MemoryLedger("node0", capacity, baseline, policy)


class TestBasics:
    def test_initial_accounting(self):
        led = ledger()
        assert led.used == 1 * GB
        assert led.free == 9 * GB

    def test_alloc_and_release(self):
        led = ledger()
        led.alloc(1, 2 * GB)
        assert led.held_by(1) == 2 * GB
        assert led.free == 7 * GB
        led.release(1, 1 * GB)
        assert led.held_by(1) == 1 * GB

    def test_free_all(self):
        led = ledger()
        led.alloc(1, 2 * GB)
        assert led.free_all(1) == 2 * GB
        assert led.held_by(1) == 0.0
        assert led.free_all(1) == 0.0  # idempotent

    def test_release_more_than_held_rejected(self):
        led = ledger()
        led.alloc(1, 1 * GB)
        with pytest.raises(ResourceError):
            led.release(1, 2 * GB)

    def test_negative_alloc_rejected(self):
        with pytest.raises(ResourceError):
            ledger().alloc(1, -1.0)

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            MemoryLedger("n", capacity=0)
        with pytest.raises(ConfigError):
            MemoryLedger("n", capacity=10, baseline=10)
        with pytest.raises(ConfigError):
            MemoryLedger("n", capacity=10, victim_policy="nope")


class TestOOM:
    def test_largest_consumer_is_killed(self):
        led = ledger()
        killed = []
        led.oom_killer = killed.append
        led.alloc(1, 7 * GB)  # the big consumer
        led.alloc(2, 1 * GB)
        led.alloc(2, 3 * GB)  # needs 3, only 1 free -> kill pid 1
        assert killed == [1]
        assert led.held_by(1) == 0.0
        assert led.held_by(2) == 4 * GB

    def test_allocator_dies_when_it_is_the_largest(self):
        led = ledger()
        led.alloc(1, 8 * GB)
        with pytest.raises(OutOfMemoryError):
            led.alloc(1, 5 * GB)
        # its own holdings were reaped by the OOM pass
        assert led.held_by(1) == 0.0

    def test_allocator_policy_kills_requester(self):
        led = ledger(policy="allocator")
        led.alloc(1, 8 * GB)
        with pytest.raises(OutOfMemoryError):
            led.alloc(2, 5 * GB)
        assert led.held_by(1) == 8 * GB  # victim policy spared the hog

    def test_multiple_victims_until_it_fits(self):
        led = ledger()
        killed = []
        led.oom_killer = killed.append
        led.alloc(1, 4 * GB)
        led.alloc(2, 4 * GB)
        led.alloc(3, 8 * GB)  # kills both 1 and 2
        assert sorted(killed) == [1, 2]
        assert led.held_by(3) == 8 * GB

    def test_oom_error_reports_node(self):
        led = ledger()
        with pytest.raises(OutOfMemoryError) as err:
            led.alloc(1, 100 * GB)
        assert "node0" in str(err.value)


@settings(max_examples=100, deadline=None)
@given(
    allocs=st.lists(
        st.tuples(st.integers(min_value=1, max_value=5),
                  st.floats(min_value=0, max_value=2e9)),
        max_size=30,
    )
)
def test_ledger_never_exceeds_capacity(allocs):
    led = MemoryLedger("n", capacity=8e9, baseline=1e9)
    led.oom_killer = lambda pid: None
    for pid, amount in allocs:
        try:
            led.alloc(pid, amount)
        except OutOfMemoryError:
            pass
        assert led.used <= led.capacity + 1e-6
        assert led.free >= -1e-6
