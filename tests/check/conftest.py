"""Hand-built case specs shared by the repro.check tests.

Generated cases are great for coverage but awkward as fixtures — these
specs pin exactly which subsystems a test exercises (pure compute,
network halo traffic, shared-filesystem I/O) and stay small enough that
an evaluation (three full simulations) is cheap.
"""

import pytest

from repro.check.generators import AnomalyCase, AppCase, CaseSpec
from repro.units import mib


@pytest.fixture
def tiny_spec() -> CaseSpec:
    """One single-node job: compute only, no network or storage stages."""
    return CaseSpec(
        case_id=900,
        seed=5,
        machine="voltrino",
        n_nodes=2,
        k_paths=1,
        apps=(
            AppCase(
                app="miniMD",
                first_node=0,
                n_nodes=1,
                ranks_per_node=1,
                iterations=2,
                start=0.0,
            ),
        ),
        anomalies=(),
        faults=(),
        horizon=120.0,
    )


@pytest.fixture
def net_spec() -> CaseSpec:
    """A two-node halo-exchange job: exercises the flow solver."""
    return CaseSpec(
        case_id=901,
        seed=7,
        machine="voltrino",
        n_nodes=2,
        k_paths=2,
        apps=(
            AppCase(
                app="miniGhost",
                first_node=0,
                n_nodes=2,
                ranks_per_node=1,
                iterations=3,
                start=0.0,
            ),
        ),
        anomalies=(),
        faults=(),
        horizon=200.0,
    )


@pytest.fixture
def io_spec() -> CaseSpec:
    """A chameleon case with an I/O anomaly: exercises the filesystem."""
    return CaseSpec(
        case_id=902,
        seed=9,
        machine="chameleon",
        n_nodes=2,
        k_paths=1,
        apps=(
            AppCase(
                app="miniMD",
                first_node=0,
                n_nodes=1,
                ranks_per_node=1,
                iterations=2,
                start=0.0,
            ),
        ),
        anomalies=(
            AnomalyCase(
                name="iobandwidth",
                node=1,
                core=0,
                start=0.5,
                duration=10.0,
                knobs=(("demand_bw", mib(20.0)),),
            ),
        ),
        faults=(),
        horizon=120.0,
    )
