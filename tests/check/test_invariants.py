"""InvariantChecker: attachment contract, rule firing, and neutrality."""

import math
from types import SimpleNamespace

import pytest

from repro.check.harness import _run_case
from repro.check.invariants import (
    DEFAULT_TOLERANCE,
    InvariantChecker,
    Violation,
    assert_max_min,
)
from repro.cluster import Cluster
from repro.errors import CheckError
from repro.faults.injector import FaultInjector
from repro.resources.fairshare import max_min_fair_share
from repro.sim.process import Segment


class TestAssertMaxMin:
    def test_accepts_the_reference_solver(self):
        demands = [5.0, 1.0, 3.0, 8.0]
        grants = max_min_fair_share(10.0, demands)
        assert_max_min(10.0, demands, grants)

    def test_accepts_unconstrained_allocation(self):
        assert_max_min(100.0, [2.0, 3.0], [2.0, 3.0])

    def test_rejects_grant_over_demand(self):
        with pytest.raises(CheckError, match="outside"):
            assert_max_min(10.0, [2.0, 3.0], [2.5, 3.0])

    def test_rejects_wrong_total(self):
        with pytest.raises(CheckError, match="sum"):
            assert_max_min(10.0, [8.0, 8.0], [4.0, 4.0])

    def test_rejects_unfair_split(self):
        # Capacity 10 over demands (8, 8): max-min says (5, 5), not (2, 8).
        with pytest.raises(CheckError, match="not max-min fair"):
            assert_max_min(10.0, [8.0, 8.0], [2.0, 8.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(CheckError, match="demands but"):
            assert_max_min(10.0, [1.0, 2.0], [1.0])


class TestConstruction:
    def test_bad_mode_rejected(self):
        with pytest.raises(CheckError, match="mode"):
            InvariantChecker(mode="panic")

    def test_negative_tolerance_rejected(self):
        with pytest.raises(CheckError, match="tolerance"):
            InvariantChecker(tolerance=-1e-9)


class TestAttachDetach:
    def test_attach_plants_every_hook(self, small_cluster):
        checker = InvariantChecker()
        checker.attach(small_cluster)
        assert small_cluster.sim.check is checker
        assert small_cluster.model.flow_solver.check is checker
        for fs in small_cluster.filesystems.values():
            assert fs.check is checker
        # share_fn is wrapped, not replaced outright
        assert small_cluster.model.share_fn is not max_min_fair_share
        checker.detach()

    def test_detach_restores_the_fast_path(self, small_cluster):
        orig_share = small_cluster.model.share_fn
        checker = InvariantChecker().attach(small_cluster)
        checker.detach()
        assert small_cluster.sim.check is None
        assert small_cluster.model.flow_solver.check is None
        assert small_cluster.model.share_fn is orig_share
        for fs in small_cluster.filesystems.values():
            assert fs.check is None

    def test_double_attach_rejected(self, small_cluster):
        checker = InvariantChecker().attach(small_cluster)
        with pytest.raises(CheckError, match="already attached"):
            checker.attach(small_cluster)
        checker.detach()

    def test_second_checker_on_same_cluster_rejected(self, small_cluster):
        checker = InvariantChecker().attach(small_cluster)
        with pytest.raises(CheckError, match="already has"):
            InvariantChecker().attach(small_cluster)
        checker.detach()

    def test_detach_without_attach_rejected(self):
        with pytest.raises(CheckError, match="not attached"):
            InvariantChecker().detach()

    def test_wrapped_share_fn_forwards_results(self, small_cluster):
        checker = InvariantChecker().attach(small_cluster)
        grants = small_cluster.model.share_fn(10.0, [8.0, 8.0])
        assert grants == max_min_fair_share(10.0, [8.0, 8.0])
        assert checker.hook_counts.get("share", 0) == 1
        checker.detach()


class TestNeutrality:
    def test_fingerprint_unchanged_by_attached_checker(self, net_spec):
        plain = _run_case(net_spec)
        checked = _run_case(net_spec, checker=InvariantChecker(mode="record"))
        assert plain == checked

    def test_clean_run_raises_nothing_in_raise_mode(self, tiny_spec):
        checker = InvariantChecker(mode="raise")
        _run_case(tiny_spec, checker=checker)
        assert checker.violations == []
        assert checker.hook_counts.get("resolve", 0) > 0
        assert checker.hook_counts.get("advance", 0) > 0
        assert checker.hook_counts.get("event", 0) > 0

    def test_network_case_fires_flow_hooks(self, net_spec):
        checker = InvariantChecker(mode="record")
        _run_case(net_spec, checker=checker)
        assert checker.violations == []
        assert checker.hook_counts.get("flow_solve", 0) > 0
        assert checker.hook_counts.get("share", 0) > 0

    def test_io_case_fires_fs_hook(self, io_spec):
        checker = InvariantChecker(mode="record")
        _run_case(io_spec, checker=checker)
        assert checker.violations == []
        assert checker.hook_counts.get("fs_solve", 0) > 0


def _stub_sim(now=0.0, running=(), procs=None):
    procs = procs or {}
    return SimpleNamespace(
        now=now,
        running=tuple(running),
        process=lambda pid: procs.get(pid, SimpleNamespace(name=f"p{pid}")),
    )


class TestRuleDetection:
    """Feed hand-made bad states straight into the hooks."""

    def _recorder(self) -> InvariantChecker:
        return InvariantChecker(mode="record")

    def _rules(self, checker) -> set:
        return {v.rule for v in checker.violations}

    def test_ck001_event_before_clock(self):
        checker = self._recorder()
        checker.on_event(_stub_sim(now=5.0), 4.0)
        assert self._rules(checker) == {"CK001"}

    def test_ck001_events_out_of_causal_order(self):
        checker = self._recorder()
        sim = _stub_sim(now=0.0)
        checker.on_event(sim, 3.0)
        checker.on_event(sim, 2.0)
        assert self._rules(checker) == {"CK001"}

    def test_ck001_clock_backwards(self):
        checker = self._recorder()
        checker.on_advance(_stub_sim(now=5.0), 4.0)
        assert self._rules(checker) == {"CK001"}

    def test_ck004_advance_overshoots_work(self):
        proc = SimpleNamespace(
            name="p", remaining=1.0, speed=10.0, current=Segment(work=1.0)
        )
        checker = self._recorder()
        checker.on_advance(_stub_sim(now=0.0, running=[proc]), 1.0)
        assert self._rules(checker) == {"CK004"}

    def test_ck002_speed_out_of_range(self):
        checker = self._recorder()
        checker.after_resolve(_stub_sim(), {1: 1.5}, None)
        checker.after_resolve(_stub_sim(), {1: -0.1}, None)
        checker.after_resolve(_stub_sim(), {1: math.nan}, None)
        assert self._rules(checker) == {"CK002"}
        assert len(checker.violations) == 3

    def test_ck003_running_process_unpriced(self):
        proc = SimpleNamespace(name="orphan", pid=7)
        checker = self._recorder()
        checker.after_resolve(_stub_sim(running=[proc]), {}, frozenset())
        assert self._rules(checker) == {"CK003"}

    def test_ck007_split_loses_demand(self):
        flow = SimpleNamespace(key=1, src="node0", dst="node1", demand=4.0)
        subs = [SimpleNamespace(demand=1.0), SimpleNamespace(demand=2.0)]
        checker = self._recorder()
        checker.on_flow_split([flow], [subs])
        assert self._rules(checker) == {"CK007"}

    def test_ck008_link_over_capacity_and_ck009_grant_bounds(self):
        solver = SimpleNamespace(
            topology=SimpleNamespace(capacity=lambda a, b: 10.0)
        )
        flow = SimpleNamespace(key=1, src="node0", dst="node1", demand=4.0)
        result = SimpleNamespace(
            edge_load={("node0", "sw0"): 20.0}, grants={1: 5.0}
        )
        checker = self._recorder()
        checker.on_flow_solve(solver, [flow], result)
        assert self._rules(checker) == {"CK008", "CK009"}

    def test_ck009_missing_grant(self):
        solver = SimpleNamespace(topology=SimpleNamespace(capacity=lambda a, b: 10.0))
        flow = SimpleNamespace(key=3, src="a", dst="b", demand=1.0)
        result = SimpleNamespace(edge_load={}, grants={})
        checker = self._recorder()
        checker.on_flow_solve(solver, [flow], result)
        assert self._rules(checker) == {"CK009"}

    def test_ck010_fs_over_capacity(self):
        fs = SimpleNamespace(
            name="nfs", effective_disk_bw=100.0, effective_meta_capacity=10.0
        )
        grant = SimpleNamespace(ratio=1.5, write_bw=200.0, read_bw=0.0, meta_ops=50.0)
        checker = self._recorder()
        checker.on_fs_solve(fs, [], {1: grant})
        assert self._rules(checker) == {"CK010"}
        assert len(checker.violations) == 3  # ratio, data, metadata

    def test_ck011_share_contract(self):
        checker = self._recorder()
        checker._on_share(10.0, [8.0, 8.0], [2.0, 8.0], max_min_fair_share)
        assert self._rules(checker) == {"CK011"}

    def test_ck011_generic_discipline_checked_too(self):
        def odd_share(capacity, demands):
            return list(demands)  # over-commits capacity

        checker = self._recorder()
        checker._on_share(1.0, [8.0, 8.0], [8.0, 8.0], odd_share)
        assert self._rules(checker) == {"CK011"}

    def test_raise_mode_raises_immediately(self):
        checker = InvariantChecker(mode="raise")
        with pytest.raises(CheckError, match="CK001"):
            checker.on_event(_stub_sim(now=5.0), 4.0)

    def test_violation_renders_time_and_rule(self):
        violation = Violation(time=1.5, rule="CK004", detail="boom")
        assert violation.render() == "t=1.5 CK004: boom"


class TestFaultConsistency:
    def test_clean_state_audits_clean(self):
        cluster = Cluster.voltrino(num_nodes=2)
        injector = FaultInjector(cluster)
        assert injector.state.check_invariants() == []

    def test_direct_mutation_is_caught(self):
        cluster = Cluster.voltrino(num_nodes=2)
        state = FaultInjector(cluster).state
        state._speed["node0"] = 1.5  # bypasses the setter's range check
        state._down.add("node1")  # down with no crash window
        state._crash_log.append(("node0", 5.0, 2.0))  # ends before start
        problems = state.check_invariants()
        assert len(problems) == 3
        assert any("out of [0, 1]" in p for p in problems)
        assert any("no open crash window" in p for p in problems)
        assert any("ends before it starts" in p for p in problems)

    def test_ck005_speed_on_crashed_node(self):
        cluster = Cluster.voltrino(num_nodes=2)
        injector = FaultInjector(cluster)

        def busy(proc):
            yield Segment(work=math.inf, cpu=1.0, ips=1e9)

        proc = cluster.spawn("b", busy, node=0, core=0)
        cluster.sim.run(until=0.5)
        checker = InvariantChecker(mode="record").attach(cluster)
        injector.state.mark_down("node0", at=0.5)
        checker.after_resolve(cluster.sim, {proc.pid: 0.5}, None)
        assert "CK005" in {v.rule for v in checker.violations}
        checker.detach()


class TestTolerance:
    def test_roundoff_is_not_a_violation(self):
        checker = InvariantChecker(mode="record")
        checker.after_resolve(_stub_sim(), {1: 1.0 + DEFAULT_TOLERANCE / 10}, None)
        assert checker.violations == []
