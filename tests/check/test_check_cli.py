"""The ``repro check`` subcommand and the corpus file format."""

import json

import pytest

from repro.check.cli import build_check_parser, check_main
from repro.check.corpus import CORPUS_VERSION, load_corpus, save_corpus
from repro.check.generators import generate_cases
from repro.cli import main
from repro.errors import CheckError


class TestParser:
    def test_defaults(self):
        args = build_check_parser().parse_args([])
        assert args.cases == 25
        assert args.seed == 0
        assert args.jobs == 1
        assert args.corpus is None
        assert not args.no_shrink
        assert not args.no_oracles


class TestCorpusFormat:
    def test_round_trip(self, tmp_path):
        specs = generate_cases(3, 21)
        path = save_corpus(tmp_path / "corpus.json", specs)
        assert load_corpus(path) == specs

    def test_file_is_versioned_and_newline_terminated(self, tmp_path):
        path = save_corpus(tmp_path / "corpus.json", generate_cases(1, 0))
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text)["version"] == CORPUS_VERSION

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckError, match="not found"):
            load_corpus(tmp_path / "nope.json")

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "corpus.json"
        path.write_text("{not json")
        with pytest.raises(CheckError, match="not valid JSON"):
            load_corpus(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "corpus.json"
        path.write_text(json.dumps({"version": 99, "cases": []}))
        with pytest.raises(CheckError, match="unsupported version"):
            load_corpus(path)

    def test_missing_cases_list_rejected(self, tmp_path):
        path = tmp_path / "corpus.json"
        path.write_text(json.dumps({"version": CORPUS_VERSION}))
        with pytest.raises(CheckError, match="lacks a 'cases' list"):
            load_corpus(path)

    def test_pinned_corpus_loads(self):
        # The corpus CI replays must always stay loadable.
        from pathlib import Path

        specs = load_corpus(Path(__file__).with_name("corpus.json"))
        assert specs


class TestCheckMain:
    def test_small_run_passes(self, capsys):
        rc = check_main(["--cases", "1", "--seed", "3", "--no-oracles"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.rstrip().endswith("PASS")
        assert "seed=3" in out

    def test_save_corpus_writes_and_exits(self, tmp_path, capsys):
        path = tmp_path / "c.json"
        rc = check_main(["--save-corpus", str(path), "--cases", "2", "--seed", "4"])
        assert rc == 0
        assert "wrote 2 cases" in capsys.readouterr().out
        assert load_corpus(path) == generate_cases(2, 4)

    def test_corpus_replay(self, tmp_path, capsys):
        path = save_corpus(tmp_path / "c.json", generate_cases(1, 5))
        rc = check_main(
            ["--corpus", str(path), "--cases", "1", "--seed", "5", "--no-oracles"]
        )
        assert rc == 0
        assert "corpus=1 generated=1 cases=2" in capsys.readouterr().out

    def test_bad_corpus_is_a_clean_error(self, tmp_path, capsys):
        rc = check_main(["--corpus", str(tmp_path / "nope.json"), "--cases", "0"])
        assert rc == 1
        assert "error:" in capsys.readouterr().out

    def test_dispatched_from_the_main_cli(self, tmp_path, capsys):
        rc = main(["check", "--save-corpus", str(tmp_path / "c.json"), "--cases", "1"])
        assert rc == 0
        assert "wrote 1 cases" in capsys.readouterr().out
