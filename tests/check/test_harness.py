"""Fuzz harness: fingerprints, case evaluation, shrinking, reports."""

from dataclasses import replace

from repro.check.generators import generate_case
from repro.check.harness import (
    FuzzReport,
    evaluate_case,
    fingerprint_case,
    run_fuzz,
    shrink_failing,
)
from repro.cluster.ratemodel import ArrayRateModel, ClusterRateModel


def _perturb_incremental(monkeypatch, factor=0.75):
    """Skew speeds only on incremental resolves with a non-empty hint.

    The reference path (``incremental=False``) never takes the hinted
    branch, so the differential oracle must flag the divergence.  Both
    rate-model classes are patched — ``ArrayRateModel`` overrides
    ``resolve_incremental``, so a patch on the base class alone would
    leave the array backend unperturbed.
    """

    def wrap(cls):
        real = cls.resolve_incremental

        def perturbed(self, running, now, dirty=None):
            speeds = real(self, running, now, dirty)
            if self.incremental and dirty:
                return {pid: s * factor for pid, s in speeds.items()}
            return speeds

        monkeypatch.setattr(cls, "resolve_incremental", perturbed)

    wrap(ClusterRateModel)
    wrap(ArrayRateModel)


class TestFingerprint:
    def test_deterministic_across_fresh_clusters(self, net_spec):
        # The global pid counter differs between the two runs; the
        # fingerprint must key on names, not pids.
        assert fingerprint_case(net_spec) == fingerprint_case(net_spec)

    def test_distinct_specs_give_distinct_fingerprints(self, tiny_spec, net_spec):
        assert fingerprint_case(tiny_spec) != fingerprint_case(net_spec)

    def test_sensitive_to_workload_size(self, tiny_spec):
        longer = replace(
            tiny_spec,
            apps=(replace(tiny_spec.apps[0], iterations=4),),
        )
        assert fingerprint_case(tiny_spec) != fingerprint_case(longer)


class TestEvaluateCase:
    def test_clean_case_is_ok(self, net_spec):
        outcome = evaluate_case(net_spec)
        assert outcome.ok
        assert outcome.violations == ()
        assert outcome.mismatches == ()
        assert dict(outcome.hook_counts).get("resolve", 0) > 0

    def test_incremental_divergence_is_flagged(self, net_spec, monkeypatch):
        _perturb_incremental(monkeypatch)
        outcome = evaluate_case(net_spec)
        assert not outcome.ok
        assert "incremental_resolve" in [name for name, _ in outcome.mismatches]
        # the memo comparison runs the same perturbed incremental path on
        # both sides, so only the incremental oracle fires
        assert "flow_memo" not in [name for name, _ in outcome.mismatches]


class TestShrinking:
    def test_shrink_finds_a_smaller_failing_case(self, monkeypatch):
        _perturb_incremental(monkeypatch)
        # A deliberately fat case: two multi-iteration apps.
        base = generate_case(17, 0)
        fat = replace(
            base,
            apps=tuple(
                replace(a, iterations=6, ranks_per_node=2) for a in base.apps
            ),
        )
        original = evaluate_case(fat)
        assert not original.ok
        shrunk = shrink_failing(fat, budget=8)
        assert not shrunk.ok
        assert sum(a.iterations for a in shrunk.spec.apps) <= sum(
            a.iterations for a in fat.apps
        )

    def test_shrink_keeps_the_original_when_nothing_smaller_fails(self, net_spec):
        outcome = shrink_failing(net_spec, budget=4)
        assert outcome.spec == net_spec


class TestRunFuzz:
    def test_small_clean_run_passes(self):
        report = run_fuzz(cases=2, seed=3, with_oracles=False)
        assert report.ok
        assert report.generated == 2
        assert report.corpus_count == 0
        assert len(report.outcomes) == 2

    def test_report_bytes_are_reproducible(self):
        a = run_fuzz(cases=2, seed=3, with_oracles=False).render()
        b = run_fuzz(cases=2, seed=3, with_oracles=False).render()
        assert a == b
        assert a.endswith("PASS")
        assert "invariant hooks fired:" in a

    def test_corpus_cases_replayed_before_fresh_batch(self, tiny_spec):
        report = run_fuzz(cases=1, seed=3, corpus=[tiny_spec], with_oracles=False)
        assert report.corpus_count == 1
        assert len(report.outcomes) == 2
        assert report.outcomes[0].spec == tiny_spec

    def test_parallel_evaluation_matches_serial(self):
        serial = run_fuzz(cases=2, seed=3, with_oracles=False)
        fanned = run_fuzz(cases=2, seed=3, jobs=2, with_oracles=False)
        assert serial.render() == fanned.render()

    def test_failing_run_reports_and_shrinks(self, net_spec, monkeypatch):
        _perturb_incremental(monkeypatch)
        report = run_fuzz(cases=0, seed=3, corpus=[net_spec], with_oracles=False)
        assert not report.ok
        text = report.render()
        assert text.endswith("FAIL")
        assert "mismatch[incremental_resolve]" in text
        assert "shrunk case" in text
        assert '"machine": "voltrino"' in text  # shrunk spec JSON is inlined

    def test_no_shrink_skips_the_shrinker(self, net_spec, monkeypatch):
        _perturb_incremental(monkeypatch)
        report = run_fuzz(
            cases=0, seed=3, corpus=[net_spec], shrink=False, with_oracles=False
        )
        assert not report.ok
        assert report.shrunk == ()


class TestFuzzReport:
    def test_empty_report_renders(self):
        report = FuzzReport(
            seed=0,
            generated=0,
            corpus_count=0,
            outcomes=(),
            oracles=(),
            shrunk=(),
        )
        assert report.ok
        assert report.render().endswith("PASS")
