"""Case generation: determinism, round-trips, and shrink well-formedness."""

import pytest

from repro.check.generators import (
    ANOMALY_POOL,
    APP_POOL,
    FAULT_POOL,
    IO_ANOMALY_POOL,
    MACHINES,
    CaseSpec,
    build_cluster,
    deploy_case,
    generate_case,
    generate_cases,
    shrink_candidates,
)
from repro.errors import CheckError


def _size(spec: CaseSpec) -> int:
    """Scalar size metric: shrinking must strictly decrease it."""
    return (
        spec.n_nodes
        + len(spec.apps)
        + len(spec.anomalies)
        + len(spec.faults)
        + sum(a.iterations + a.ranks_per_node for a in spec.apps)
    )


class TestGeneration:
    def test_deterministic_per_seed_and_id(self):
        assert generate_case(5, 3) == generate_case(5, 3)
        assert generate_cases(4, 9) == generate_cases(4, 9)

    def test_distinct_ids_give_distinct_cases(self):
        specs = generate_cases(10, 0)
        assert len(set(specs)) == len(specs)

    def test_seed_changes_the_stream(self):
        assert generate_cases(5, 0) != generate_cases(5, 1)

    def test_zero_and_negative_counts(self):
        assert generate_cases(0, 0) == []
        with pytest.raises(CheckError):
            generate_cases(-1, 0)

    def test_generated_cases_stay_in_bounds(self):
        for spec in generate_cases(25, 7):
            assert spec.machine in MACHINES
            assert 2 <= spec.n_nodes <= 4
            assert 1 <= len(spec.apps) <= 2
            for app in spec.apps:
                assert app.app in APP_POOL
                assert 3 <= app.iterations <= 6
                assert 1 <= app.ranks_per_node <= 2
            for anomaly in spec.anomalies:
                assert anomaly.name in ANOMALY_POOL + IO_ANOMALY_POOL
                if anomaly.name in IO_ANOMALY_POOL:
                    assert spec.machine == "chameleon"
                if anomaly.name == "netoccupy":
                    assert anomaly.peer is not None
                    assert anomaly.peer % spec.n_nodes != anomaly.node % spec.n_nodes
                else:
                    assert anomaly.peer is None
            for fault in spec.faults:
                assert fault.kind in FAULT_POOL
            assert spec.k_paths == 1 or spec.machine == "voltrino"


class TestRoundTrip:
    def test_dict_round_trip(self):
        for spec in generate_cases(10, 11):
            assert CaseSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        for spec in generate_cases(10, 13):
            assert CaseSpec.from_json(spec.to_json()) == spec

    def test_malformed_dict_rejected(self):
        spec = generate_case(0, 0)
        data = spec.to_dict()
        del data["apps"]
        with pytest.raises(CheckError, match="malformed case spec"):
            CaseSpec.from_dict(data)

    def test_bad_field_type_rejected(self):
        data = generate_case(0, 0).to_dict()
        data["horizon"] = "soon"
        with pytest.raises(CheckError, match="malformed case spec"):
            CaseSpec.from_dict(data)

    def test_describe_names_the_ingredients(self):
        spec = generate_case(0, 0)
        text = spec.describe()
        assert spec.machine in text
        for app in spec.apps:
            assert app.app in text


class TestShrinking:
    def _rich_spec(self) -> CaseSpec:
        # Keep drawing until the case has every shrinkable axis populated.
        for i in range(200):
            spec = generate_case(17, i)
            if spec.anomalies and spec.faults and len(spec.apps) > 1:
                return spec
        raise AssertionError("no rich case in 200 draws")

    def test_candidates_are_strictly_smaller(self):
        spec = self._rich_spec()
        candidates = list(shrink_candidates(spec))
        assert candidates
        for candidate in candidates:
            assert _size(candidate) < _size(spec)

    def test_candidates_never_drop_below_two_nodes(self):
        spec = self._rich_spec()
        seen = [spec]
        for _ in range(10):
            nxt = list(shrink_candidates(seen[-1]))
            if not nxt:
                break
            seen.append(nxt[-1])
        for candidate in seen:
            assert candidate.n_nodes >= 2

    def test_candidates_materialise(self):
        spec = self._rich_spec()
        for candidate in shrink_candidates(spec):
            cluster = build_cluster(candidate)
            jobs = deploy_case(candidate, cluster)
            assert len(jobs) == len(candidate.apps)


class TestDeployment:
    def test_unknown_machine_rejected(self):
        spec = generate_case(0, 0)
        bad = CaseSpec.from_dict({**spec.to_dict(), "machine": "summit"})
        with pytest.raises(CheckError, match="unknown machine"):
            build_cluster(bad)

    def test_netoccupy_peer_folded_onto_source_is_stepped(self):
        # Shrinking can fold a peer index onto its source node; deployment
        # must step it to a neighbour instead of building a self-flow.
        from repro.check.generators import AnomalyCase, AppCase

        spec = CaseSpec(
            case_id=0,
            seed=0,
            machine="voltrino",
            n_nodes=2,
            k_paths=1,
            apps=(
                AppCase(
                    app="miniMD",
                    first_node=0,
                    n_nodes=1,
                    ranks_per_node=1,
                    iterations=2,
                    start=0.0,
                ),
            ),
            anomalies=(
                AnomalyCase(
                    name="netoccupy",
                    node=0,
                    core=0,
                    start=0.5,
                    duration=5.0,
                    knobs=(("rate", 0.5),),
                    peer=2,  # 2 % 2 == 0 == source node
                ),
            ),
            faults=(),
            horizon=60.0,
        )
        cluster = build_cluster(spec)
        jobs = deploy_case(spec, cluster)
        assert len(jobs) == 1
