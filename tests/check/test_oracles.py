"""Differential oracles: each must pass clean and catch a planted bug.

Every oracle gets two tests: the seeded scenario agrees byte-for-byte on
an unmodified tree, and a deliberate perturbation of the fast path (the
kind of regression the oracle exists to catch) flips it to failing.
"""

from pathlib import Path

from repro.apps.base import CheckpointStore
from repro.check.corpus import load_corpus
from repro.check.harness import evaluate_case
from repro.check.oracles import (
    oracle_array_backend,
    oracle_checkpoint_free,
    oracle_checkpoint_restart,
    oracle_parallel_sweep,
    oracle_registry_cli,
    oracle_result_cache,
    oracle_stream_export,
    run_global_oracles,
)
from repro.cluster.ratemodel import ArrayRateModel
from repro.network.flows import FlowResult, FlowSolver

PINNED_CORPUS = Path(__file__).with_name("corpus.json")


class TestCleanTree:
    def test_all_global_oracles_pass(self):
        results = run_global_oracles(seed=0)
        assert [r.name for r in results] == [
            "parallel_sweep",
            "array_backend",
            "checkpoint_restart",
            "checkpoint_free",
            "registry_cli",
            "result_cache",
            "stream_export",
            "trace_replay",
        ]
        for result in results:
            assert result.ok, f"{result.name}: {result.detail}"


class TestParallelSweepOracle:
    def test_passes_clean(self):
        assert oracle_parallel_sweep(seed=1, cases=2, jobs=2).ok

    def test_catches_result_reordering(self, monkeypatch):
        # A broken pool that merges worker results out of payload order.
        def shuffled_run_trials(factory, payloads, jobs=1):
            results = [factory(p) for p in payloads]
            return results[::-1] if jobs > 1 else results

        monkeypatch.setattr(
            "repro.check.oracles.run_trials", shuffled_run_trials
        )
        result = oracle_parallel_sweep(seed=0, cases=3, jobs=2)
        assert not result.ok
        assert "diverges from serial" in result.detail


class TestArrayBackendOracle:
    def test_passes_clean(self):
        result = oracle_array_backend(seed=3, cases=2)
        assert result.ok, result.detail

    def test_pinned_corpus_replays_identically(self):
        # The exact cases CI replays must agree across backends — a case
        # that once exposed a divergence stays covered on both paths.
        corpus = load_corpus(PINNED_CORPUS)
        result = oracle_array_backend(seed=3, cases=0, corpus=corpus)
        assert result.ok, result.detail

    def test_catches_array_accounting_skew(self, monkeypatch):
        # Planted bug: the array path mis-prices instruction rates by a
        # hair.  "A hair" is precisely what fingerprints exist to catch.
        real = ArrayRateModel._record_rates_array

        def skewed(self, rows):
            real(self, rows)
            if rows.size:
                self._R[rows, 2] *= 1.0 + 1e-9  # instructions column

        monkeypatch.setattr(ArrayRateModel, "_record_rates_array", skewed)
        result = oracle_array_backend(seed=3, cases=2)
        assert not result.ok
        assert "array backend diverges" in result.detail

    def test_catches_batch_merging_close_timestamps(self, monkeypatch):
        # Planted bug in the *engine* half of the backend: a calendar
        # queue whose ``pop_at`` drains events merely *close* to the
        # batch timestamp instead of exactly equal.  Merging two distinct
        # instants into one batch changes accrual windows and resolve
        # cadence, which must surface as a fingerprint divergence — this
        # is the regression the exact float comparison in ``pop_at``
        # exists to prevent.
        from repro.sim.events import CalendarQueue

        def sloppy_pop_at(self, time):
            event = self._scan(pop=False)
            if event is None or abs(event.time - time) > 1e-9 * max(
                1.0, abs(time)
            ):
                return None
            return self._scan(pop=True)

        monkeypatch.setattr(CalendarQueue, "pop_at", sloppy_pop_at)
        result = oracle_array_backend(seed=3, cases=2)
        assert not result.ok


class TestCheckpointRestartOracle:
    def test_passes_clean(self):
        result = oracle_checkpoint_restart(seed=0)
        assert result.ok, result.detail

    def test_catches_overcommitted_checkpoints(self, monkeypatch):
        # A store that claims one more iteration than actually completed:
        # the restart would skip work, so the oracle must fail.
        real = CheckpointStore.commit

        def over_commit(self, iteration):
            real(self, iteration + 1)

        monkeypatch.setattr(CheckpointStore, "commit", over_commit)
        result = oracle_checkpoint_restart(seed=0)
        assert not result.ok


class TestCheckpointFreeOracle:
    def test_passes_clean(self):
        result = oracle_checkpoint_free(seed=0)
        assert result.ok, result.detail


class TestRegistryCliOracle:
    def test_passes_clean(self, capsys):
        result = oracle_registry_cli(seed=0)
        assert result.ok, result.detail
        # the probe spec must not leak into the registry
        from repro.experiments.registry import EXPERIMENT_REGISTRY

        assert "check_probe" not in EXPERIMENT_REGISTRY

    def test_catches_diverging_output(self, monkeypatch):
        # Simulate the regression this oracle exists for: the legacy
        # spelling printing something the registry spelling does not.
        from repro import cli
        from repro.output import OutputWriter

        real_main = cli.main

        def noisy_main(argv):
            rc = real_main(argv)
            OutputWriter().line("legacy extra line")
            return rc

        monkeypatch.setattr(cli, "main", noisy_main)
        result = oracle_registry_cli(seed=0)
        assert not result.ok


class TestResultCacheOracle:
    def test_passes_clean(self):
        result = oracle_result_cache(seed=0)
        assert result.ok, result.detail
        # the probe spec must not leak into the registry
        from repro.experiments.registry import EXPERIMENT_REGISTRY

        assert "cache_probe" not in EXPERIMENT_REGISTRY

    def test_catches_tampered_cache_entry(self, monkeypatch):
        # Planted bug: a store that serves subtly corrupted bytes on a
        # hit — the exact silent failure mode a content-addressed cache
        # must never have.
        from repro.experiments.registry import ResultArtifacts
        from repro.service import ResultStore

        real_get = ResultStore.get

        def tampered_get(self, fingerprint):
            stored = real_get(self, fingerprint)
            if stored is None:
                return None
            arts = stored.artifacts
            return type(stored)(
                stored.fingerprint,
                ResultArtifacts(
                    arts.result_name, arts.text + " ", arts.manifest_text
                ),
                stored.record,
            )

        monkeypatch.setattr(ResultStore, "get", tampered_get)
        result = oracle_result_cache(seed=0)
        assert not result.ok
        assert "differs" in result.detail

    def test_catches_double_execution(self, monkeypatch):
        # Planted bug: a store that never reports a hit, so the duplicate
        # submission simulates again instead of being served from cache.
        from repro.service import ResultStore

        def always_miss(self, fingerprint):
            self.misses += 1
            return None

        monkeypatch.setattr(ResultStore, "get", always_miss)
        result = oracle_result_cache(seed=0)
        assert not result.ok
        assert "2 times" in result.detail


class TestFlowMemoOracle:
    """The memoized-vs-cold comparison lives in evaluate_case."""

    def test_catches_memo_divergence(self, net_spec, monkeypatch):
        # Skew grants only when the memo is enabled; the cold reference
        # path stays exact, so the flow_memo oracle must fire.
        real = FlowSolver.solve

        def perturbed(self, flows, signature=None):
            result = real(self, flows, signature=signature)
            if self.memoize and result.grants:
                return FlowResult(
                    grants={k: g * 0.75 for k, g in result.grants.items()},
                    edge_load=dict(result.edge_load),
                )
            return result

        monkeypatch.setattr(FlowSolver, "solve", perturbed)
        outcome = evaluate_case(net_spec)
        assert not outcome.ok
        names = [name for name, _ in outcome.mismatches]
        assert "flow_memo" in names
        # incremental and full runs both use the perturbed memoized
        # solver, so they still agree with each other
        assert "incremental_resolve" not in names


class TestStreamExportOracle:
    def test_passes_clean(self):
        result = oracle_stream_export(seed=1, cases=2)
        assert result.ok, result.detail

    def test_catches_dropped_records(self, monkeypatch):
        # A sink that silently loses instants — the lost-flush regression
        # streaming exists to never ship with.
        from repro.obs.stream import JsonlStreamWriter

        monkeypatch.setattr(
            JsonlStreamWriter, "on_instant", lambda self, event: None
        )
        result = oracle_stream_export(seed=0, cases=2)
        assert not result.ok
        assert "jsonl drift" in result.detail

    def test_catches_nonfinal_flush(self, monkeypatch):
        # A metric writer that mangles values at flush time: streamed
        # bytes must mirror the batch export, not a lossy rounding.
        from repro.obs.stream import MetricJsonlStreamWriter

        real = MetricJsonlStreamWriter.on_metric_sample

        def rounded(self, time, node, values):
            real(self, time, node, {k: round(v, 1) for k, v in values.items()})

        monkeypatch.setattr(MetricJsonlStreamWriter, "on_metric_sample", rounded)
        result = oracle_stream_export(seed=0, cases=2)
        assert not result.ok
        assert "metric stream" in result.detail
