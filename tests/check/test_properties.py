"""Seeded property tests: unit helpers and the max-min share solver.

Random inputs come from :func:`repro.sim.rng.spawn_rng` — the same
no-new-dependency generator discipline as the fuzz harness, so every
"random" assertion here replays identically on every machine.
"""

import pytest

from repro.check.invariants import assert_max_min
from repro.errors import CheckError
from repro.resources.fairshare import max_min_fair_share
from repro.sim.rng import spawn_rng
from repro.units import GB, KB, MB, fmt_bytes, fmt_rate, gib, kib, mib

TRIALS = 60


def _demand_vectors(seed: int, trials: int = TRIALS):
    """Yield (capacity, demands) pairs across the interesting regimes."""
    rng = spawn_rng(seed, "check:properties")
    for _ in range(trials):
        n = int(rng.integers(1, 9))
        demands = [float(d) for d in rng.uniform(0.0, 10.0, size=n)]
        # Draw capacities below, around, and above the total demand.
        capacity = float(rng.uniform(0.0, 1.5) * sum(demands)) + 1e-9
        yield capacity, demands


class TestUnitsRoundTrip:
    def test_binary_prefixes_invert_exactly(self):
        rng = spawn_rng(0, "check:units")
        for _ in range(TRIALS):
            n = int(rng.integers(1, 1 << 20))
            assert kib(n) / KB == n
            assert mib(n) / MB == n
            assert gib(n) / GB == n

    def test_prefix_ladder_is_consistent(self):
        rng = spawn_rng(1, "check:units")
        for _ in range(TRIALS):
            n = int(rng.integers(1, 1 << 16))
            assert mib(n) == kib(n * 1024)
            assert gib(n) == mib(n * 1024)

    def test_fmt_bytes_picks_the_right_prefix(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(kib(1)) == "1 KiB"
        assert fmt_bytes(mib(1)) == "1 MiB"
        assert fmt_bytes(gib(1)) == "1 GiB"
        assert fmt_bytes(gib(2048)) == "2 TiB"

    def test_fmt_rate_appends_per_second(self):
        rng = spawn_rng(2, "check:units")
        for _ in range(10):
            n = float(rng.uniform(1.0, 1e12))
            assert fmt_rate(n) == fmt_bytes(n) + "/s"


class TestMaxMinProperties:
    def test_contract_holds_across_regimes(self):
        for capacity, demands in _demand_vectors(seed=10):
            grants = max_min_fair_share(capacity, demands)
            assert_max_min(capacity, demands, grants)

    def test_permutation_invariance(self):
        rng = spawn_rng(11, "check:properties")
        for capacity, demands in _demand_vectors(seed=11, trials=30):
            grants = max_min_fair_share(capacity, demands)
            order = [int(i) for i in rng.permutation(len(demands))]
            permuted = max_min_fair_share(capacity, [demands[i] for i in order])
            for j, i in enumerate(order):
                assert permuted[j] == grants[i]

    def test_capacity_saturation(self):
        for capacity, demands in _demand_vectors(seed=12, trials=30):
            grants = max_min_fair_share(capacity, demands)
            if sum(demands) <= capacity:
                assert grants == demands
            else:
                assert sum(grants) == pytest.approx(capacity, rel=1e-12)

    def test_equal_demands_get_equal_grants(self):
        rng = spawn_rng(13, "check:properties")
        for _ in range(30):
            n = int(rng.integers(2, 9))
            demand = float(rng.uniform(1.0, 10.0))
            capacity = float(rng.uniform(0.5, 2.0)) * demand * n
            grants = max_min_fair_share(capacity, [demand] * n)
            assert len(set(grants)) == 1

    def test_assert_max_min_rejects_a_biased_solver(self):
        # A "solver" that feeds the first demand before the rest cannot
        # sneak past the checker.
        def greedy(capacity, demands):
            grants = []
            left = capacity
            for demand in demands:
                take = min(demand, left)
                grants.append(take)
                left -= take
            return grants

        capacity, demands = 10.0, [8.0, 8.0]
        with pytest.raises(CheckError):
            assert_max_min(capacity, demands, greedy(capacity, demands))
