"""Cross-module integration scenarios."""

import numpy as np
import pytest

from repro.apps import AppJob, get_app
from repro.cluster import Cluster
from repro.core import AnomalyInjector, make_anomaly
from repro.monitoring import MetricService
from repro.sim.process import ProcessState
from repro.units import GB


class TestInjectionDuringJob:
    def test_mid_run_anomaly_window_slows_only_that_window(self):
        cluster = Cluster(num_nodes=1)
        service = MetricService(cluster)
        service.attach(end=10_000)
        app = get_app("CoMD").scaled(iterations=30)
        job = AppJob(app, cluster, nodes=[0], ranks_per_node=2, seed=3)
        job.launch()
        injector = AnomalyInjector(cluster)
        injector.inject(
            make_anomaly("cpuoccupy"), node=0, core=0, start=15.0, duration=15.0
        )
        runtime = job.run(timeout=10_000)
        service.detach()
        nominal = app.profile.nominal_runtime
        # slowed, but only for the window: runtime < full-2x, > nominal
        assert nominal * 1.1 < runtime < nominal * 2.0
        # monitoring shows the utilization step while the anomaly ran
        util = service.series("node0", "user::procstat")
        during = np.mean(util[16:29])
        after_end = int(runtime) - 2
        before = np.mean(util[2:14])
        assert during != pytest.approx(before, rel=0.02)

    def test_ground_truth_labels_align_with_lifecycle(self):
        cluster = Cluster(num_nodes=2)
        injector = AnomalyInjector(cluster)
        injection = injector.inject(
            make_anomaly("memleak"), node=1, core=0, start=5.0, duration=10.0
        )
        cluster.sim.run(until=30)
        assert injection.process.state is ProcessState.KILLED
        assert injector.active_labels(7.0) == ["memleak"]
        assert injector.active_labels(20.0) == []


class TestCrashScenario:
    def test_oversized_memeater_crashes_big_application(self):
        """Paper: 'if the size of the memory anomalies are set too large,
        they result in application crashes'."""
        cluster = Cluster(num_nodes=1)
        app = get_app("cloverleaf").scaled(iterations=50, mem_alloc=60 * GB)
        job = AppJob(app, cluster, nodes=[0], ranks_per_node=1, seed=1)
        job.launch()
        make_anomaly("memeater", total_size=80 * GB, rate=1000.0).launch(
            cluster, "node0", core=2, start=5.0
        )
        cluster.sim.run(until=1000, stop_when=lambda: job.finished)
        assert job.crashed
        rank = job.procs[0]
        assert rank.exit_reason == "oom-killed"


class TestMonitoredMultiNodeRun:
    def test_anomalous_node_stands_out_in_metrics(self):
        cluster = Cluster.voltrino(num_nodes=4)
        service = MetricService(cluster)
        service.attach(end=10_000)
        app = get_app("miniGhost").scaled(iterations=12)
        job = AppJob(app, cluster, nodes=[0, 1, 2, 3], ranks_per_node=2, seed=2)
        job.launch()
        sibling = cluster.spec.sibling_of(0)
        make_anomaly("cachecopy").launch(cluster, "node0", core=sibling)
        job.run(timeout=10_000)
        service.detach()
        miss0 = np.mean(service.series("node0", "LLC_MISSES::spapiHASW")[2:10])
        miss1 = np.mean(service.series("node1", "LLC_MISSES::spapiHASW")[2:10])
        assert miss0 > 1.5 * miss1

    def test_determinism_across_identical_runs(self):
        def one():
            cluster = Cluster.voltrino(num_nodes=4)
            app = get_app("milc").scaled(iterations=8)
            job = AppJob(app, cluster, nodes=[0, 1], ranks_per_node=2, seed=9)
            return job.run(timeout=10_000)

        assert one() == one()
