"""Error-path coverage across packages."""

import pytest

from repro.apps import AppJob, get_app
from repro.cluster import Cluster
from repro.core import CpuOccupy
from repro.errors import ConfigError, SchedulingError
from repro.monitoring import MetricService
from repro.runtime import CharmRuntime, LBObjOnly, WorkObject
from repro.scheduling import JobScheduler, RoundRobin


def test_scheduler_refuses_when_all_nodes_busy():
    cluster = Cluster.voltrino(num_nodes=4)
    service = MetricService(cluster)
    service.attach(end=1_000_000)
    cluster.sim.run(until=5)
    scheduler = JobScheduler(cluster, service)
    app = get_app("CoMD").scaled(iterations=50)
    scheduler.submit(app, RoundRobin(), n_nodes=4, ranks_per_node=1)
    with pytest.raises(SchedulingError):
        scheduler.allocate(RoundRobin(), 1)


def test_scheduler_frees_nodes_after_completion():
    cluster = Cluster.voltrino(num_nodes=4)
    service = MetricService(cluster)
    service.attach(end=1_000_000)
    cluster.sim.run(until=5)
    scheduler = JobScheduler(cluster, service)
    app = get_app("CoMD").scaled(iterations=2)
    _, job = scheduler.submit(app, RoundRobin(), n_nodes=4, ranks_per_node=1)
    cluster.sim.run(until=10_000, stop_when=lambda: job.finished)
    assert scheduler.busy_nodes == set()
    allocation = scheduler.allocate(RoundRobin(), 2)
    assert allocation.nodes == ["node0", "node1"]


def test_charm_runtime_timeout_raises():
    cluster = Cluster(num_nodes=1)
    # one heavily-contended core: 20 iterations cannot finish in 0.01 s
    CpuOccupy(utilization=100).launch(cluster, "node0", core=0)
    runtime = CharmRuntime(
        cluster,
        "node0",
        [0],
        [WorkObject(0, 1.0)],
        LBObjOnly(),
        iterations=20,
    )
    with pytest.raises(ConfigError):
        runtime.run(timeout=0.01)


def test_appjob_runtime_unavailable_before_finish():
    cluster = Cluster(num_nodes=1)
    job = AppJob(get_app("CoMD").scaled(iterations=50), cluster, nodes=[0])
    job.launch()
    cluster.sim.run(until=1.0, stop_when=lambda: False)
    assert not job.finished
    with pytest.raises(ConfigError):
        job.runtime()


def test_anomaly_launch_invalid_core():
    cluster = Cluster(num_nodes=1)
    with pytest.raises(ConfigError):
        CpuOccupy().launch(cluster, node=0, core=10_000)


def test_osu_works_on_star_network():
    from repro.apps import OSUBandwidth
    from repro.units import MB

    cluster = Cluster.chameleon(num_nodes=4)
    osu = OSUBandwidth(message_size=1 * MB, messages=8)
    osu.launch(cluster, src="node0", dst="node2")
    cluster.sim.run(until=100)
    assert 0 < osu.bandwidth() <= cluster.spec.nic_bw
