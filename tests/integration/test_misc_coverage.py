"""Corner cases across modules."""

import math

import pytest

from repro.cluster import Cluster, MachineSpec
from repro.errors import SimulationError
from repro.memory.bandwidth import solve_bandwidth
from repro.resources.fairshare import proportional_share
from repro.sim.engine import MAX_EVENTS, Simulator
from repro.sim.process import Segment, SimProcess, Sleep


class TestEngineGuards:
    def test_event_budget_guard_exists(self):
        assert MAX_EVENTS >= 1_000_000

    def test_runaway_zero_sleep_loop_is_caught(self):
        sim = Simulator()
        sim._events_dispatched = MAX_EVENTS  # simulate exhaustion cheaply

        def body(proc):
            while True:
                yield Sleep(0.001)

        sim.spawn(SimProcess("spin", body, node="n", core=0))
        with pytest.raises(SimulationError):
            sim.run(until=10.0)


class TestClusterVariants:
    def test_custom_share_fn_changes_outcomes(self):
        def one(share_fn):
            spec = MachineSpec.voltrino().with_overrides(bw_latency_alpha=0.0)
            cluster = Cluster(num_nodes=1, spec=spec, share_fn=share_fn)

            def stream(proc):
                yield Segment(work=5.0, mem_bw=spec.core_mem_bw)

            p = cluster.spawn("s", stream, node=0, core=0)
            for i in range(15):

                def hog(proc):
                    yield Segment(work=math.inf, mem_bw=10e9)

                cluster.spawn(f"h{i}", hog, node=0, core=1 + i)
            cluster.sim.run(until=500)
            return p.runtime

        from repro.resources.fairshare import max_min_fair_share

        assert one(proportional_share) != one(max_min_fair_share)

    def test_cluster_without_topology_rejects_flows(self):
        """Flows on a network-less cluster are ignored (no solver)."""
        from repro.sim.process import Flow

        cluster = Cluster(num_nodes=2, topology=None)

        def sender(proc):
            yield Segment(work=2.0, flows=[Flow(dst="node1", rate=1e9)])

        p = cluster.spawn("snd", sender, node=0, core=0)
        cluster.sim.run(until=10)
        # without a topology the network stage is skipped entirely
        assert p.runtime == pytest.approx(2.0)

    def test_two_socket_placement_isolates_l3(self):
        spec = MachineSpec.voltrino()
        cluster = Cluster(num_nodes=1, spec=spec)

        def victim(proc):
            yield Segment(
                work=5.0,
                cache_footprint={"L3": 20 << 20},
                cache_intensity=1.0,
                miss_cpi_penalty=1.0,
                mpki_base=1.0,
                mpki_extra=10.0,
                ips=1e9,
            )

        def evictor(proc):
            yield Segment(
                work=math.inf,
                cache_footprint={"L3": 40 << 20},
                cache_intensity=4.0,
            )

        p = cluster.spawn("v", victim, node=0, core=0)  # socket 0
        cluster.spawn("e", evictor, node=0, core=16)  # socket 1
        cluster.sim.run(until=100)
        assert p.runtime == pytest.approx(5.0)  # other socket: no eviction


class TestBandwidthEdges:
    def test_zero_demands(self):
        assert solve_bandwidth(10e9, [0.0, 0.0]) == [0.0, 0.0]

    def test_single_huge_demand_capped_at_capacity(self):
        grants = solve_bandwidth(10e9, [50e9], alpha=0.0)
        assert grants[0] == pytest.approx(10e9)


class TestAppJobCrashFlag:
    def test_crashed_is_false_for_clean_run(self):
        from repro.apps import AppJob, get_app

        cluster = Cluster(num_nodes=1)
        job = AppJob(get_app("CoMD").scaled(iterations=2), cluster, nodes=[0])
        job.run(timeout=1000)
        assert job.finished and not job.crashed
