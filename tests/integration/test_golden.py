"""Golden regression values: exact outputs pinned against model drift.

The simulator is fully deterministic, so key experiment outputs can be
pinned to exact values.  A failure here means a *model change* — update
the constants deliberately, alongside EXPERIMENTS.md.
"""

import pytest

from repro.apps import AppJob, StreamBenchmark, get_app
from repro.cluster import Cluster
from repro.core import CacheCopy, MemBw

GOLDEN_STREAM_GBPS = {
    0: 12.5,
    1: 9.523809523809524,
    3: 6.451612903225806,
    7: 3.9215686274509802,
    15: 2.197802197802198,
}


@pytest.mark.parametrize("n,expected", sorted(GOLDEN_STREAM_GBPS.items()))
def test_fig4_stream_rates_exact(n, expected):
    cluster = Cluster(num_nodes=1)
    stream = StreamBenchmark()
    stream.launch(cluster, "node0", core=0)
    for i in range(n):
        MemBw().launch(cluster, "node0", core=1 + i)
    cluster.sim.run(until=500)
    assert stream.best_rate() / 1e9 == pytest.approx(expected, rel=1e-9)


def test_fig3_voltrino_mpki_exact():
    cluster = Cluster(num_nodes=1)
    app = get_app("miniGhost").scaled(iterations=10)
    job = AppJob(app, cluster, nodes=["node0"], ranks_per_node=1, seed=7)
    job.launch()
    CacheCopy(cache="L3").launch(
        cluster, "node0", core=cluster.spec.sibling_of(0)
    )
    job.run(timeout=10_000)
    rank = job.procs[0]
    mpki = rank.counters["l3_misses"] / rank.counters["instructions"] * 1000
    assert mpki == pytest.approx(5.626, abs=0.01)


def test_comd_clean_runtime_exact():
    cluster = Cluster.voltrino(num_nodes=8)
    app = get_app("CoMD").scaled(iterations=60)
    job = AppJob(app, cluster, nodes=[0, 1, 2, 3], ranks_per_node=4, seed=1)
    runtime = job.run(timeout=50_000)
    assert runtime == pytest.approx(91.5356562329149, rel=1e-9)


def test_repeatability_across_process_restarts():
    """Nothing depends on dict ordering, ids, or wall-clock state."""

    def fingerprint():
        cluster = Cluster.voltrino(num_nodes=4)
        app = get_app("milc").scaled(iterations=6)
        job = AppJob(app, cluster, nodes=[0, 1], ranks_per_node=2, seed=42)
        runtime = job.run(timeout=10_000)
        counters = tuple(
            round(cluster.node(0).counters[k], 6)
            for k in ("instructions", "l3_misses", "nic_tx_bytes")
        )
        return (round(runtime, 9), counters)

    assert fingerprint() == fingerprint()
