"""Worker pool: inline + sharded execution, dedup, crash and timeout paths."""

import os
import signal
import time
from pathlib import Path

import pytest

from repro.errors import ServiceError
from repro.experiments.registry import JobRequest, ResultArtifacts
from repro.service import JobQueue, ResultStore, WorkerPool


def request(name="probe", **overrides):
    return JobRequest(
        name=name,
        result_name="PoolResult",
        overrides=tuple(sorted(overrides.items())),
    )


def fp(tag):
    return f"{tag:0>8}" + "0" * 56


def echo_factory(req: JobRequest) -> ResultArtifacts:
    return ResultArtifacts("PoolResult", f"ran {req.name}\n", "{}\n")


def failing_factory(req: JobRequest) -> ResultArtifacts:
    raise ValueError("simulated defect")


def _crash_once_factory(req: JobRequest) -> ResultArtifacts:
    """Dies hard on its first attempt, succeeds on the retry."""
    flag = Path(dict(req.overrides)["flag"])
    if not flag.exists():
        flag.write_text("died here")
        os.kill(os.getpid(), signal.SIGKILL)
    return ResultArtifacts("PoolResult", "survived the retry\n", "{}\n")


def _always_crash_factory(req: JobRequest) -> ResultArtifacts:
    os.kill(os.getpid(), signal.SIGKILL)
    raise AssertionError("unreachable")


def _sleepy_factory(req: JobRequest) -> ResultArtifacts:
    time.sleep(120)
    raise AssertionError("unreachable")


class TestInline:
    def test_runs_jobs_and_stores_results(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        store = ResultStore(tmp_path / "s")
        queue.submit(request("a"), fp("a"))
        queue.submit(request("b"), fp("b"))
        settled = WorkerPool(factory=echo_factory).run(queue, store)
        assert [j.state.value for j in settled] == ["done", "done"]
        assert store.get(fp("a")).artifacts.text == "ran a\n"

    def test_duplicate_fingerprint_executes_once(self, tmp_path):
        calls = []

        def counting(req):
            calls.append(req.name)
            return echo_factory(req)

        queue = JobQueue(tmp_path / "q")
        store = ResultStore(tmp_path / "s")
        for _ in range(3):
            queue.submit(request("a"), fp("dup"))
        settled = WorkerPool(factory=counting).run(queue, store)
        assert calls == ["a"]
        assert [j.cached for j in settled] == [False, True, True]

    def test_factory_exception_fails_the_job(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        job = queue.submit(request(), fp("a"))
        settled = WorkerPool(factory=failing_factory).run(queue)
        assert settled[0].state.value == "failed"
        assert "ValueError: simulated defect" in queue.job(job.job_id).reason

    def test_max_jobs_stops_early(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        for tag in "abc":
            queue.submit(request(tag), fp(tag))
        settled = WorkerPool(factory=echo_factory).run(queue, max_jobs=2)
        assert len(settled) == 2
        assert queue.counts()["queued"] == 1

    def test_priority_order_is_respected(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit(request("low"), fp("a"), priority=0)
        queue.submit(request("high"), fp("b"), priority=9)
        settled = WorkerPool(factory=echo_factory).run(queue)
        assert [j.request.name for j in settled] == ["high", "low"]

    def test_rejects_bad_configuration(self):
        with pytest.raises(ServiceError):
            WorkerPool(shards=-1)
        with pytest.raises(ServiceError):
            WorkerPool(max_attempts=0)

    def test_closed_pool_refuses_work(self, tmp_path):
        pool = WorkerPool(factory=echo_factory)
        pool.shutdown()
        with pytest.raises(ServiceError):
            pool.run(JobQueue(tmp_path / "q"))


class TestSharding:
    def test_shard_assignment_is_deterministic(self):
        pool = WorkerPool(factory=echo_factory, shards=3)
        fingerprint = "deadbeef" + "0" * 56
        assert pool.shard_for(fingerprint) == int("deadbeef", 16) % 3
        assert pool.shard_for(fingerprint) == pool.shard_for(fingerprint)

    def test_sharded_execution_completes_jobs(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        store = ResultStore(tmp_path / "s")
        for tag in "ab":
            queue.submit(request(tag), fp(tag))
        with WorkerPool(factory=echo_factory, shards=2) as pool:
            settled = pool.run(queue, store)
        assert sorted(j.state.value for j in settled) == ["done", "done"]
        assert store.get(fp("a")).artifacts.text == "ran a\n"

    def test_worker_death_requeues_then_succeeds(self, tmp_path):
        # The worker SIGKILLs itself mid-job on attempt one; the pool must
        # requeue the job, respawn the shard, and let the retry finish.
        queue = JobQueue(tmp_path / "q")
        store = ResultStore(tmp_path / "s")
        job = queue.submit(
            request("crashy", flag=str(tmp_path / "crashed.flag")), fp("a")
        )
        with WorkerPool(factory=_crash_once_factory, shards=1) as pool:
            settled = pool.run(queue, store)
        assert queue.job(job.job_id).state.value == "done"
        assert queue.job(job.job_id).attempt == 2
        assert (tmp_path / "crashed.flag").exists()
        assert store.get(fp("a")).artifacts.text == "survived the retry\n"

    def test_repeated_worker_death_fails_the_job(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        job = queue.submit(request("doomed"), fp("a"))
        with WorkerPool(factory=_always_crash_factory, shards=1) as pool:
            settled = pool.run(queue)
        assert settled[-1].state.value == "failed"
        assert "died" in queue.job(job.job_id).reason

    def test_timeout_fails_the_job_and_respawns(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        slow = queue.submit(request("slow"), fp("a"))
        with WorkerPool(factory=_sleepy_factory, shards=1, timeout=0.5) as pool:
            settled = pool.run(queue)
        assert settled[0].state.value == "failed"
        assert "timeout" in queue.job(slow.job_id).reason
