"""Fingerprint semantics: what must and must not move the cache key."""

from repro.experiments.registry import ExperimentSpec
from repro.service import fingerprint_key, fingerprint_request


def test_equal_requests_fingerprint_equally():
    a = ExperimentSpec.from_args("fig8", overrides={"iterations": 5})
    b = ExperimentSpec.from_args("fig8", overrides={"iterations": 5})
    assert fingerprint_request(a) == fingerprint_request(b)


def test_override_spelling_does_not_matter():
    # tuples canonicalize to lists; dict ordering canonicalizes by name
    a = ExperimentSpec.from_args(
        "fig8", overrides={"apps": ("miniGhost",), "iterations": 5}
    )
    b = ExperimentSpec.from_args(
        "fig8", overrides={"iterations": 5, "apps": ["miniGhost"]}
    )
    assert fingerprint_request(a) == fingerprint_request(b)


def test_seed_changes_the_fingerprint():
    a = ExperimentSpec.from_args("fig9", seed=0)
    b = ExperimentSpec.from_args("fig9", seed=1)
    assert fingerprint_request(a) != fingerprint_request(b)


def test_default_seed_resolves_to_explicit_value():
    # fig9's registered default seed is 0: omitting the seed and passing
    # it explicitly are the same experiment, so the same cache entry.
    a = ExperimentSpec.from_args("fig9")
    b = ExperimentSpec.from_args("fig9", seed=0)
    assert fingerprint_request(a) == fingerprint_request(b)


def test_semantic_override_changes_the_fingerprint():
    a = ExperimentSpec.from_args("fig8", overrides={"iterations": 5})
    b = ExperimentSpec.from_args("fig8", overrides={"iterations": 6})
    assert fingerprint_request(a) != fingerprint_request(b)


def test_jobs_fanout_is_not_semantic():
    # The parallel-sweep oracle proves jobs=N never changes results, so
    # it must not split the cache either.
    a = ExperimentSpec.from_args("varbench", overrides={"jobs": 1, "reps": 3})
    b = ExperimentSpec.from_args("varbench", overrides={"jobs": 4, "reps": 3})
    assert fingerprint_request(a) == fingerprint_request(b)


def test_backend_and_version_key_the_cache():
    request = ExperimentSpec.from_args("fig8")
    base = fingerprint_request(request)
    assert fingerprint_request(request, backend="array") != fingerprint_request(
        request, backend="object"
    )
    assert fingerprint_request(request, version="999.0.0") != base


def test_key_material_is_inspectable():
    request = ExperimentSpec.from_args("fig9", seed=2)
    key = fingerprint_key(request, backend="object", version="1.0.0")
    assert key == {
        "name": "fig9",
        "result_name": "Fig9Result",
        "seed": 2,
        "overrides": {},
        "backend": "object",
        "version": "1.0.0",
    }
