"""Queue semantics: priorities, quotas, transitions, crash recovery."""

import pytest

from repro.errors import JobNotFound, QuotaError, ServiceError
from repro.experiments.registry import JobRequest
from repro.service import JobQueue, JobState


def request(name="fig8", seed=None, **overrides):
    return JobRequest(
        name=name,
        result_name="Result",
        seed=seed,
        overrides=tuple(sorted(overrides.items())),
    )


def fp(tag):
    return f"{tag:0>8}" + "0" * 56


class TestScheduling:
    def test_fifo_within_equal_priority(self, tmp_path):
        queue = JobQueue(tmp_path)
        a = queue.submit(request("a"), fp("a"))
        b = queue.submit(request("b"), fp("b"))
        assert queue.claim_next().job_id == a.job_id
        assert queue.claim_next().job_id == b.job_id
        assert queue.claim_next() is None

    def test_higher_priority_wins_over_earlier_submission(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(request("a"), fp("a"), priority=0)
        urgent = queue.submit(request("b"), fp("b"), priority=5)
        assert queue.claim_next().job_id == urgent.job_id

    def test_claim_excludes_in_flight_fingerprints(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(request("a"), fp("dup"))
        twin = queue.submit(request("a"), fp("dup"))
        other = queue.submit(request("b"), fp("b"))
        first = queue.claim_next()
        # The twin must wait for its in-flight fingerprint; b may run.
        assert queue.claim_next(exclude_fingerprints={fp("dup")}).job_id == other.job_id
        assert queue.claim_next(exclude_fingerprints={fp("dup")}) is None
        queue.complete(first.job_id)
        assert queue.claim_next().job_id == twin.job_id


class TestQuota:
    def test_quota_bounds_active_jobs_per_client(self, tmp_path):
        queue = JobQueue(tmp_path, quota=2)
        queue.submit(request("a"), fp("a"), client="alice")
        queue.submit(request("b"), fp("b"), client="alice")
        with pytest.raises(QuotaError):
            queue.submit(request("c"), fp("c"), client="alice")
        # another client is unaffected
        queue.submit(request("c"), fp("c"), client="bob")

    def test_terminal_jobs_release_quota(self, tmp_path):
        queue = JobQueue(tmp_path, quota=1)
        job = queue.submit(request("a"), fp("a"))
        queue.claim_next()
        queue.complete(job.job_id)
        queue.submit(request("b"), fp("b"))


class TestTransitions:
    def test_complete_requires_running(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(request(), fp("a"))
        with pytest.raises(ServiceError):
            queue.complete(job.job_id)

    def test_cancel_only_queued(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(request(), fp("a"))
        queue.claim_next()
        with pytest.raises(ServiceError):
            queue.cancel(job.job_id)

    def test_unknown_job_id(self, tmp_path):
        with pytest.raises(JobNotFound):
            JobQueue(tmp_path).job("j999999")

    def test_requeue_preserves_attempt_count(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(request(), fp("a"))
        queue.claim_next()
        queue.requeue(job.job_id, "worker died")
        assert job.state is JobState.QUEUED
        claimed = queue.claim_next()
        assert claimed.attempt == 2

    def test_counts_cover_every_state(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(request(), fp("a"))
        counts = queue.counts()
        assert counts["queued"] == 1
        assert set(counts) == {s.value for s in JobState}


class TestCrashRecovery:
    def test_reopen_replays_journal_exactly(self, tmp_path):
        queue = JobQueue(tmp_path)
        a = queue.submit(request("a", seed=3, iterations=5), fp("a"), priority=2)
        b = queue.submit(request("b"), fp("b"), client="bob")
        queue.claim_next()
        queue.complete(a.job_id)
        reopened = JobQueue(tmp_path)
        ra, rb = reopened.jobs()
        assert ra.state is JobState.DONE
        assert ra.request == a.request
        assert ra.priority == 2
        assert rb.state is JobState.QUEUED
        assert rb.client == "bob"
        assert reopened.recovered == ()

    def test_running_orphan_is_requeued_on_reopen(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(request(), fp("a"))
        queue.claim_next()
        # ... the worker is SIGKILLed here; the journal's last word on the
        # job is "start".  A fresh queue must requeue it durably.
        reopened = JobQueue(tmp_path)
        assert reopened.recovered == (job.job_id,)
        assert reopened.job(job.job_id).state is JobState.QUEUED
        # and the recovery itself was journalled: a third open is clean
        third = JobQueue(tmp_path)
        assert third.recovered == ()
        assert third.job(job.job_id).state is JobState.QUEUED

    def test_new_submissions_continue_the_sequence(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(request("a"), fp("a"))
        reopened = JobQueue(tmp_path)
        newer = reopened.submit(request("b"), fp("b"))
        assert newer.job_id == "j000002"

    def test_torn_final_append_loses_only_that_event(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(request(), fp("a"))
        queue.claim_next()
        queue.complete(job.job_id)
        journal = tmp_path / "journal.jsonl"
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        reopened = JobQueue(tmp_path)
        # the torn "done" is gone; the job falls back to the replayed
        # RUNNING state and is recovered like any orphan
        assert reopened.job(job.job_id).state is JobState.QUEUED
        assert reopened.recovered == (job.job_id,)


class TestTransitionHook:
    def test_hook_sees_every_journalled_event(self, tmp_path):
        events = []
        queue = JobQueue(
            tmp_path,
            on_transition=lambda job, event, counts: events.append(
                (job.job_id, event, counts["queued"])
            ),
        )
        job = queue.submit(request(), fp("a"))
        queue.claim_next()
        queue.complete(job.job_id)
        assert [e[1] for e in events] == ["submit", "start", "done"]
        assert events[0][2] == 1 and events[-1][2] == 0
