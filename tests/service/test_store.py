"""Content-addressed store: commit marker, byte fidelity, crash safety."""

import json

import pytest

from repro.errors import ServiceError
from repro.experiments.registry import ResultArtifacts
from repro.service import ResultStore
from repro.service._store import MANIFEST_FILE, RECORD_FILE, RESULT_FILE

ARTS = ResultArtifacts("ProbeResult", "row one\nrow two\n", '{"k": 1}\n')
FP = "ab" + "c" * 62


def test_round_trip_preserves_bytes(tmp_path):
    store = ResultStore(tmp_path)
    store.put(FP, ARTS, record={"name": "probe"})
    stored = store.get(FP)
    assert stored.artifacts == ARTS
    assert stored.record["name"] == "probe"
    assert stored.record["fingerprint"] == FP


def test_miss_returns_none_and_counts(tmp_path):
    store = ResultStore(tmp_path)
    assert store.get("ff" * 32) is None
    assert (store.hits, store.misses) == (0, 1)
    store.put(FP, ARTS)
    store.get(FP)
    assert (store.hits, store.misses, store.puts) == (1, 1, 1)


def test_entries_are_sharded_by_prefix(tmp_path):
    store = ResultStore(tmp_path)
    store.put(FP, ARTS)
    assert (tmp_path / FP[:2] / FP / RESULT_FILE).exists()
    assert store.fingerprints() == (FP,)
    assert FP in store


def test_uncommitted_entry_is_invisible(tmp_path):
    # A worker killed between artefact writes and the record write leaves
    # files but no commit marker — the store must treat that as a miss.
    store = ResultStore(tmp_path)
    entry = store.entry_dir(FP)
    entry.mkdir(parents=True)
    (entry / RESULT_FILE).write_text("half-written")
    (entry / MANIFEST_FILE).write_text("{}")
    assert store.get(FP) is None
    assert FP not in store
    # a later successful put overwrites the debris
    store.put(FP, ARTS)
    assert store.get(FP).artifacts == ARTS


def test_record_json_is_the_commit_marker(tmp_path):
    store = ResultStore(tmp_path)
    store.put(FP, ARTS)
    record = json.loads((store.entry_dir(FP) / RECORD_FILE).read_text())
    assert record["result_name"] == "ProbeResult"


def test_persist_to_writes_harness_layout(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.put(FP, ARTS)
    path = store.persist_to(FP, tmp_path / "archive")
    assert path.read_text() == ARTS.text
    manifest = tmp_path / "archive" / "ProbeResult.manifest.json"
    assert manifest.read_text() == ARTS.manifest_text


def test_persist_to_missing_entry_raises(tmp_path):
    with pytest.raises(ServiceError):
        ResultStore(tmp_path).persist_to("ee" * 32, tmp_path / "out")


def test_malformed_fingerprint_rejected(tmp_path):
    with pytest.raises(ServiceError):
        ResultStore(tmp_path).entry_dir("ab")


def test_clear_removes_committed_entries(tmp_path):
    store = ResultStore(tmp_path)
    store.put(FP, ARTS)
    assert store.clear() == 1
    assert store.get(FP) is None
    assert store.fingerprints() == ()
