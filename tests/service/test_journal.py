"""Journal durability: append-only JSONL with torn-tail tolerance."""

import json

import pytest

from repro.errors import ServiceError
from repro.service import JOURNAL_VERSION, Journal


def test_append_and_replay_round_trip(tmp_path):
    journal = Journal(tmp_path / "journal.jsonl")
    journal.append({"event": "submit", "job_id": "j1"})
    journal.append({"event": "start", "job_id": "j1", "attempt": 1})
    records = list(Journal(tmp_path / "journal.jsonl").replay())
    assert [r["event"] for r in records] == ["submit", "start"]
    assert all(r["v"] == JOURNAL_VERSION for r in records)


def test_replay_of_missing_file_is_empty(tmp_path):
    assert list(Journal(tmp_path / "journal.jsonl").replay()) == []


def test_records_require_an_event(tmp_path):
    journal = Journal(tmp_path / "journal.jsonl")
    with pytest.raises(ServiceError):
        journal.append({"job_id": "j1"})


def test_torn_trailing_line_is_dropped(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = Journal(path)
    journal.append({"event": "submit", "job_id": "j1"})
    journal.append({"event": "start", "job_id": "j1"})
    # Simulate a crash mid-append: the final line is half-written.
    with path.open("a") as handle:
        handle.write('{"event": "done", "job_')
    records = list(Journal(path).replay())
    assert [r["event"] for r in records] == ["submit", "start"]


def test_mid_file_corruption_is_an_error(tmp_path):
    path = tmp_path / "journal.jsonl"
    good = json.dumps({"event": "submit", "job_id": "j1", "v": 1})
    path.write_text("not json at all\n" + good + "\n")
    with pytest.raises(ServiceError):
        list(Journal(path).replay())


def test_lines_are_canonical_json(tmp_path):
    path = tmp_path / "journal.jsonl"
    Journal(path).append({"event": "submit", "b": 2, "a": 1})
    line = path.read_text().splitlines()[0]
    assert line == json.dumps(
        json.loads(line), sort_keys=True, separators=(",", ":")
    )
