"""Service telemetry: incremental job spans and queue gauges over ObsSink."""

import json

from repro.experiments.registry import JobRequest
from repro.service import (
    SERVICE_METRICS,
    SERVICE_NODE,
    JobQueue,
    ServiceTelemetry,
)


def request(name="probe"):
    return JobRequest(name=name, result_name="Result")


FP = "ab" + "0" * 62


class RecordingSink:
    """Minimal ObsSink capturing everything it is fed."""

    def __init__(self):
        self.opened = []
        self.spans = []
        self.instants = []
        self.samples = []
        self.closed = False

    def on_span_open(self, span):
        self.opened.append(span)

    def on_span_close(self, span):
        self.spans.append(span)

    def on_instant(self, instant):
        self.instants.append(instant)

    def on_metric_sample(self, t, node, values):
        self.samples.append((t, node, dict(values)))

    def close(self):
        self.closed = True


def wired(tmp_path):
    telemetry = ServiceTelemetry()
    sink = RecordingSink()
    telemetry.subscribe(sink)
    queue = JobQueue(tmp_path / "q", on_transition=telemetry.on_transition)
    return telemetry, sink, queue


def test_job_lifecycle_becomes_one_span(tmp_path):
    telemetry, sink, queue = wired(tmp_path)
    job = queue.submit(request(), FP, priority=3, client="alice")
    queue.claim_next()
    queue.complete(job.job_id)
    assert len(sink.spans) == 1
    span = sink.spans[0]
    assert span.cat == "job"
    assert span.name == "probe"
    assert span.args["job_id"] == job.job_id
    assert span.args["priority"] == 3
    assert span.args["client"] == "alice"
    assert span.args["state"] == "done"
    # logical clock: submit at tick 1, done at tick 3
    assert (span.start, span.end) == (1.0, 3.0)


def test_every_transition_emits_instant_and_gauges(tmp_path):
    telemetry, sink, queue = wired(tmp_path)
    job = queue.submit(request(), FP)
    queue.claim_next()
    queue.fail(job.job_id, "boom")
    assert [i.name for i in sink.instants] == ["submit", "start", "fail"]
    assert [t for t, _, _ in sink.samples] == [1.0, 2.0, 3.0]
    last = sink.samples[-1][2]
    assert set(last) == set(SERVICE_METRICS)
    assert last["failed"] == 1.0


def test_cache_hits_are_counted(tmp_path):
    telemetry, sink, queue = wired(tmp_path)
    job = queue.submit(request(), FP)
    queue.claim_next()
    queue.complete(job.job_id, cached=True)
    assert telemetry.cache_hits == 1
    assert sink.samples[-1][2]["cache_hits"] == 1.0
    assert sink.spans[0].args["cached"] is True


def test_stream_to_writes_tailable_files(tmp_path):
    telemetry = ServiceTelemetry()
    telemetry.stream_to(tmp_path / "obs")
    queue = JobQueue(tmp_path / "q", on_transition=telemetry.on_transition)
    job = queue.submit(request(), FP)
    queue.claim_next()
    queue.complete(job.job_id)
    telemetry.close()
    trace_lines = (tmp_path / "obs" / "trace.jsonl").read_text().splitlines()
    kinds = [json.loads(line)["type"] for line in trace_lines if line]
    assert "span" in kinds and "instant" in kinds
    metric_path = tmp_path / "obs" / "metrics" / f"{SERVICE_NODE}.jsonl"
    samples = [json.loads(line) for line in metric_path.read_text().splitlines()]
    assert len(samples) == 3


def test_unsubscribed_sink_stops_receiving(tmp_path):
    telemetry, sink, queue = wired(tmp_path)
    queue.submit(request(), FP)
    telemetry.unsubscribe(sink)
    queue.submit(request("other"), "cd" + "0" * 62)
    assert len(sink.instants) == 1
