"""CSV export / import round-trip."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import CpuOccupy
from repro.errors import ConfigError
from repro.monitoring import MetricService
from repro.monitoring.export import read_csv, to_csv_text, write_csv


@pytest.fixture
def collected():
    cluster = Cluster(num_nodes=1)
    service = MetricService(cluster)
    service.attach(end=10)
    CpuOccupy(utilization=60).launch(cluster, "node0", core=0)
    cluster.sim.run(until=10)
    return service


def test_csv_has_header_and_rows(collected):
    text = to_csv_text(collected, "node0")
    lines = text.strip().splitlines()
    assert lines[0].startswith("time,")
    assert "user::procstat" in lines[0]
    assert len(lines) == 1 + len(collected.times)


def test_round_trip_exact(tmp_path, collected):
    path = write_csv(collected, "node0", tmp_path / "node0.csv")
    times, series = read_csv(path)
    assert np.allclose(times, collected.timestamps(), atol=1e-3)
    for metric in collected.metric_names:
        assert np.allclose(series[metric], collected.series("node0", metric))


def test_empty_service_rejected():
    cluster = Cluster(num_nodes=1)
    service = MetricService(cluster)
    with pytest.raises(ConfigError):
        to_csv_text(service, "node0")


def test_read_rejects_foreign_csv(tmp_path):
    bad = tmp_path / "other.csv"
    bad.write_text("a,b\n1,2\n")
    with pytest.raises(ConfigError):
        read_csv(bad)
