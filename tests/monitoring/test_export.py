"""CSV export / import round-trip."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import CpuOccupy
from repro.errors import ConfigError
from repro.monitoring import MetricService
from repro.monitoring.export import (
    read_csv,
    read_jsonl,
    to_csv_text,
    to_jsonl_text,
    write_csv,
    write_jsonl,
)


@pytest.fixture
def collected():
    cluster = Cluster(num_nodes=1)
    service = MetricService(cluster)
    service.attach(end=10)
    CpuOccupy(utilization=60).launch(cluster, "node0", core=0)
    cluster.sim.run(until=10)
    return service


def test_csv_has_header_and_rows(collected):
    text = to_csv_text(collected, "node0")
    lines = text.strip().splitlines()
    assert lines[0].startswith("time,")
    assert "user::procstat" in lines[0]
    assert len(lines) == 1 + len(collected.times)


def test_round_trip_exact(tmp_path, collected):
    path = write_csv(collected, "node0", tmp_path / "node0.csv")
    times, series = read_csv(path)
    assert np.allclose(times, collected.timestamps(), atol=1e-3)
    for metric in collected.metric_names:
        assert np.allclose(series[metric], collected.series("node0", metric))


def test_empty_service_rejected():
    cluster = Cluster(num_nodes=1)
    service = MetricService(cluster)
    with pytest.raises(ConfigError):
        to_csv_text(service, "node0")


def test_read_rejects_foreign_csv(tmp_path):
    bad = tmp_path / "other.csv"
    bad.write_text("a,b\n1,2\n")
    with pytest.raises(ConfigError):
        read_csv(bad)


def test_jsonl_one_record_per_sample(collected):
    text = to_jsonl_text(collected, "node0")
    lines = text.strip().splitlines()
    assert len(lines) == len(collected.times)
    assert all(line.startswith("{") for line in lines)


def test_jsonl_round_trip_exact(tmp_path, collected):
    path = write_jsonl(collected, "node0", tmp_path / "node0.jsonl")
    times, series = read_jsonl(path)
    assert np.allclose(times, collected.timestamps())
    assert sorted(series) == sorted(collected.metric_names)
    for metric in collected.metric_names:
        assert np.array_equal(series[metric], collected.series("node0", metric))


def test_jsonl_deterministic_bytes(collected):
    assert to_jsonl_text(collected, "node0") == to_jsonl_text(collected, "node0")


def test_jsonl_empty_service_rejected():
    cluster = Cluster(num_nodes=1)
    service = MetricService(cluster)
    with pytest.raises(ConfigError):
        to_jsonl_text(service, "node0")


def test_read_jsonl_rejects_foreign_file(tmp_path):
    bad = tmp_path / "other.jsonl"
    bad.write_text('{"a": 1}\n')
    with pytest.raises(ConfigError):
        read_jsonl(bad)


def test_read_jsonl_empty_file(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    times, series = read_jsonl(empty)
    assert times.size == 0 and series == {}
