"""Individual sampler conversions."""

import pytest

from repro.cluster import MachineSpec
from repro.cluster.node import Node
from repro.monitoring.samplers import (
    ARIES_FLIT_BYTES,
    PAGE_BYTES,
    AriesNicSampler,
    MeminfoSampler,
    PapiSampler,
    ProcstatSampler,
    VmstatSampler,
    default_samplers,
)


@pytest.fixture
def node():
    return Node("node0", MachineSpec.voltrino())


class TestProcstat:
    def test_percentages(self, node):
        delta = {"cpu_user_seconds": 32.0, "cpu_sys_seconds": 6.4}
        values = ProcstatSampler().sample(node, delta, dt=1.0)
        assert values["user"] == pytest.approx(50.0)
        assert values["sys"] == pytest.approx(10.0)
        assert values["idle"] == pytest.approx(40.0)

    def test_idle_floor(self, node):
        delta = {"cpu_user_seconds": 128.0}
        values = ProcstatSampler().sample(node, delta, dt=1.0)
        assert values["idle"] == 0.0

    def test_dt_scaling(self, node):
        delta = {"cpu_user_seconds": 64.0}
        values = ProcstatSampler().sample(node, delta, dt=2.0)
        assert values["user"] == pytest.approx(50.0)


class TestMeminfo:
    def test_gauges(self, node):
        node.memory.alloc(1, 10e9)
        values = MeminfoSampler().sample(node, {}, dt=1.0)
        assert values["MemTotal"] == node.memory.capacity
        assert values["MemUsed"] == node.memory.used
        assert values["MemFree"] == node.memory.free
        assert values["Active"] == pytest.approx(10e9)

    def test_is_gauge(self):
        assert MeminfoSampler.gauge is True
        assert ProcstatSampler.gauge is False


class TestVmstat:
    def test_pages(self, node):
        delta = {"io_read_bytes": PAGE_BYTES * 100, "io_write_bytes": PAGE_BYTES * 50}
        values = VmstatSampler().sample(node, delta, dt=1.0)
        assert values["pgpgin"] == pytest.approx(100)
        assert values["pgpgout"] == pytest.approx(50)
        assert values["nr_free_pages"] == pytest.approx(node.memory.free / PAGE_BYTES)


class TestPapi:
    def test_rates(self, node):
        delta = {"instructions": 2e9, "l2_misses": 4e6, "l3_misses": 1e6}
        values = PapiSampler().sample(node, delta, dt=2.0)
        assert values["INST_RETIRED:ANY"] == pytest.approx(1e9)
        assert values["L2_RQSTS:MISS"] == pytest.approx(2e6)
        assert values["LLC_MISSES"] == pytest.approx(5e5)


class TestAriesNic:
    def test_flit_conversion(self, node):
        delta = {"nic_tx_bytes": 3200.0, "nic_rx_bytes": 6400.0}
        values = AriesNicSampler().sample(node, delta, dt=1.0)
        assert values["AR_NIC_NETMON_ORB_EVENT_CNTR_REQ_FLITS"] == pytest.approx(
            3200 / ARIES_FLIT_BYTES
        )
        assert values["AR_NIC_NETMON_ORB_EVENT_CNTR_RSP_FLITS"] == pytest.approx(
            6400 / ARIES_FLIT_BYTES
        )


def test_default_sampler_set_matches_voltrino_ldms():
    names = [s.name for s in default_samplers()]
    assert names == ["procstat", "meminfo", "vmstat", "spapiHASW", "aries_nic_mmr"]


def test_metric_name_qualification():
    sampler = ProcstatSampler()
    assert "user::procstat" in sampler.metric_names()
