"""Per-core procstat sampler."""

import math

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import CpuOccupy
from repro.monitoring import MetricService, PerCoreProcstatSampler
from repro.monitoring.samplers import default_samplers
from repro.sim.process import Segment


def test_percore_utilization_pinpoints_the_busy_core():
    cluster = Cluster(num_nodes=1)
    samplers = default_samplers() + [
        PerCoreProcstatSampler(cluster.spec.logical_cores)
    ]
    service = MetricService(cluster, samplers=samplers)
    service.attach(end=10)
    CpuOccupy(utilization=100).launch(cluster, "node0", core=5)
    cluster.sim.run(until=10)
    busy = service.series("node0", "user5::procstat_percore")
    idle = service.series("node0", "user6::procstat_percore")
    assert np.mean(busy[2:]) == pytest.approx(100.0, rel=1e-6)
    assert np.mean(idle[2:]) == 0.0


def test_percore_shares_on_contended_core():
    cluster = Cluster(num_nodes=1)
    samplers = [PerCoreProcstatSampler(cluster.spec.logical_cores)]
    service = MetricService(cluster, samplers=samplers)
    service.attach(end=10)

    def hog(proc):
        yield Segment(work=math.inf, cpu=1.0)

    cluster.spawn("a", hog, node=0, core=0)
    cluster.spawn("b", hog, node=0, core=0)
    cluster.sim.run(until=10)
    core0 = service.series("node0", "user0::procstat_percore")
    # two full-duty processes time-share: the core is 100% busy
    assert np.mean(core0[2:]) == pytest.approx(100.0, rel=1e-6)


def test_percore_consistent_with_node_level():
    cluster = Cluster(num_nodes=1)
    samplers = default_samplers() + [
        PerCoreProcstatSampler(cluster.spec.logical_cores)
    ]
    service = MetricService(cluster, samplers=samplers)
    service.attach(end=10)
    for core in (0, 3, 9):
        CpuOccupy(utilization=50).launch(cluster, "node0", core=core)
    cluster.sim.run(until=10)
    node_user = np.mean(service.series("node0", "user::procstat")[2:])
    percore_sum = sum(
        np.mean(service.series("node0", f"user{c}::procstat_percore")[2:])
        for c in range(cluster.spec.logical_cores)
    )
    assert percore_sum == pytest.approx(
        node_user * cluster.spec.logical_cores, rel=1e-6
    )
