"""Metric service: sampling cadence, series access, noise model."""

import math

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.errors import ConfigError
from repro.monitoring import MetricService
from repro.sim.process import Segment


def busy(cpu=1.0):
    def body(proc):
        yield Segment(work=math.inf, cpu=cpu, ips=1e9)

    return body


class TestCollection:
    def test_one_sample_per_second(self):
        cluster = Cluster(num_nodes=1)
        svc = MetricService(cluster)
        svc.attach(end=10)
        cluster.sim.run(until=10)
        assert len(svc.times) == 11  # t = 0..10

    def test_series_lookup(self):
        cluster = Cluster(num_nodes=2)
        svc = MetricService(cluster)
        svc.attach(end=5)
        cluster.spawn("b", busy(), node=0, core=0)
        cluster.sim.run(until=5)
        series = svc.series("node0", "user::procstat")
        assert series.shape == (6,)
        with pytest.raises(ConfigError):
            svc.series("node0", "nope::nosampler")
        with pytest.raises(ConfigError):
            svc.series("node9", "user::procstat")

    def test_utilization_reflects_load(self):
        cluster = Cluster(num_nodes=1)
        svc = MetricService(cluster)
        svc.attach(end=10)
        cluster.spawn("b", busy(), node=0, core=0)
        cluster.sim.run(until=10)
        util = svc.series("node0", "user::procstat")
        expected = 100.0 / cluster.spec.logical_cores
        assert np.mean(util[2:]) == pytest.approx(expected, rel=1e-6)

    def test_sys_shows_os_noise_floor(self):
        cluster = Cluster(num_nodes=1)
        svc = MetricService(cluster)
        svc.attach(end=10)
        cluster.sim.run(until=10)
        sys = svc.series("node0", "sys::procstat")
        assert np.mean(sys[1:]) == pytest.approx(
            100 * cluster.spec.os_noise_util, rel=1e-6
        )

    def test_matrix_stacks_all_metrics(self):
        cluster = Cluster(num_nodes=1)
        svc = MetricService(cluster)
        svc.attach(end=5)
        cluster.sim.run(until=5)
        mat = svc.matrix("node0")
        assert mat.shape == (6, len(svc.metric_names))

    def test_detach_stops_sampling(self):
        cluster = Cluster(num_nodes=1)
        svc = MetricService(cluster)
        svc.attach()
        cluster.sim.run(until=3)
        svc.detach()
        cluster.sim.run(until=10)
        assert svc.times[-1] <= 4.0

    def test_double_attach_rejected(self):
        cluster = Cluster(num_nodes=1)
        svc = MetricService(cluster)
        svc.attach(end=5)
        with pytest.raises(ConfigError):
            svc.attach()

    def test_attached_property_tracks_lifecycle(self):
        cluster = Cluster(num_nodes=1)
        svc = MetricService(cluster)
        assert not svc.attached
        svc.attach(end=5)
        assert svc.attached
        svc.detach()
        assert not svc.attached

    def test_unknown_metric_error_suggests_close_match(self):
        cluster = Cluster(num_nodes=1)
        svc = MetricService(cluster)
        svc.attach(end=3)
        cluster.sim.run(until=3)
        with pytest.raises(ConfigError, match="did you mean.*user::procstat"):
            svc.series("node0", "user::procstats")

    def test_unknown_metric_error_lists_available(self):
        cluster = Cluster(num_nodes=1)
        svc = MetricService(cluster)
        svc.attach(end=3)
        cluster.sim.run(until=3)
        with pytest.raises(ConfigError, match="available:"):
            svc.series("node0", "zz-completely-unlike-anything")

    def test_unknown_metric_before_sampling_mentions_attach(self):
        cluster = Cluster(num_nodes=1)
        svc = MetricService(cluster)
        with pytest.raises(ConfigError, match="no samples collected"):
            svc.series("node0", "user::procstat")

    def test_unknown_node_error_lists_known_nodes(self):
        cluster = Cluster(num_nodes=2)
        svc = MetricService(cluster)
        with pytest.raises(ConfigError, match="known nodes: node0, node1"):
            svc.series("node9", "user::procstat")

    def test_unknown_node_error_suggests_close_match(self):
        cluster = Cluster(num_nodes=2)
        svc = MetricService(cluster)
        with pytest.raises(ConfigError, match="did you mean 'node0'"):
            svc.series("nod0", "user::procstat")

    def test_invalid_interval(self):
        with pytest.raises(ConfigError):
            MetricService(Cluster(num_nodes=1), interval=0)


class TestNoise:
    def test_noise_applies_to_rates_not_gauges(self):
        cluster = Cluster(num_nodes=1)
        svc = MetricService(cluster, noise=0.05, seed=3)
        svc.attach(end=20)
        cluster.spawn("b", busy(), node=0, core=0)
        cluster.sim.run(until=20)
        util = svc.series("node0", "user::procstat")
        memtotal = svc.series("node0", "MemTotal::meminfo")
        assert np.std(util[2:]) > 0  # jittered
        assert np.std(memtotal) == 0  # exact gauge

    def test_noise_is_deterministic_per_seed(self):
        def collect(seed):
            cluster = Cluster(num_nodes=1)
            svc = MetricService(cluster, noise=0.05, seed=seed)
            svc.attach(end=10)
            cluster.spawn("b", busy(), node=0, core=0)
            cluster.sim.run(until=10)
            return svc.series("node0", "user::procstat")

        assert np.array_equal(collect(1), collect(1))
        assert not np.array_equal(collect(1), collect(2))

    def test_negative_noise_rejected(self):
        with pytest.raises(ConfigError):
            MetricService(Cluster(num_nodes=1), noise=-0.1)


class TestMetricNames:
    def test_paper_metric_names_present(self):
        cluster = Cluster(num_nodes=1)
        svc = MetricService(cluster)
        names = svc.metric_names
        for expected in (
            "user::procstat",
            "MemFree::meminfo",
            "nr_free_pages::vmstat",
            "INST_RETIRED:ANY::spapiHASW",
            "L2_RQSTS:MISS::spapiHASW",
            "AR_NIC_NETMON_ORB_EVENT_CNTR_REQ_FLITS::aries_nic_mmr",
        ):
            assert expected in names


class TestSeriesEdgeCases:
    def test_empty_store_hints_at_attachment(self):
        svc = MetricService(Cluster(num_nodes=1))  # never attached
        with pytest.raises(ConfigError, match="is the service attached"):
            svc.series("node0", "user::procstat")

    def test_metric_typo_gets_a_fuzzy_hint(self):
        cluster = Cluster(num_nodes=1)
        svc = MetricService(cluster)
        svc.attach(end=2)
        cluster.sim.run(until=2)
        with pytest.raises(ConfigError, match="did you mean 'user::procstat'"):
            svc.series("node0", "user::prostat")

    def test_node_typo_gets_a_fuzzy_hint(self):
        svc = MetricService(Cluster(num_nodes=2))
        with pytest.raises(ConfigError, match="did you mean 'node0'"):
            svc.series("nod0", "user::procstat")

    def test_unrelated_node_name_lists_known_nodes(self):
        svc = MetricService(Cluster(num_nodes=2))
        with pytest.raises(ConfigError, match="known nodes: node0, node1"):
            svc.series("gpu7", "user::procstat")

    def test_int_and_string_node_names_collide_onto_one_series(self):
        cluster = Cluster(num_nodes=2)
        svc = MetricService(cluster)
        svc.attach(end=3)
        cluster.spawn("b", busy(), node=0, core=0)
        cluster.sim.run(until=3)
        assert np.array_equal(
            svc.series(0, "user::procstat"), svc.series("node0", "user::procstat")
        )

    def test_single_sample_series(self):
        cluster = Cluster(num_nodes=1)
        svc = MetricService(cluster)
        svc.attach(end=0)  # exactly one tick, at t=0
        cluster.sim.run(until=1)
        series = svc.series("node0", "user::procstat")
        assert series.shape == (1,)
        assert svc.timestamps().tolist() == [0.0]
        assert svc.matrix("node0").shape[0] == 1
