"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_everything_derives_from_repro_error():
    for name in (
        "SimulationError",
        "ConfigError",
        "ResourceError",
        "OutOfMemoryError",
        "ProcessCrash",
        "ProcessKilled",
        "SchedulingError",
        "AnomalyError",
    ):
        assert issubclass(getattr(errors, name), errors.ReproError), name


def test_oom_is_both_resource_error_and_crash():
    exc = errors.OutOfMemoryError("node0", requested=100.0, available=10.0)
    assert isinstance(exc, errors.ResourceError)
    assert isinstance(exc, errors.ProcessCrash)


def test_oom_message_contents():
    exc = errors.OutOfMemoryError("node3", requested=5e9, available=1e9)
    text = str(exc)
    assert "node3" in text and "killed" in text
    assert exc.node == "node3"
    assert exc.requested == 5e9


def test_catching_repro_error_covers_all():
    with pytest.raises(errors.ReproError):
        raise errors.AnomalyError("bad knob")
