"""Allocation policies: RR ordering and the WBAS capacity ranking."""

import pytest

from repro.errors import SchedulingError
from repro.scheduling.policies import (
    NodeStatus,
    RoundRobin,
    WellBalancedAllocation,
)


def status(name, load=0.0, avg=0.0, free=100e9):
    return NodeStatus(name=name, load_current=load, load_avg5min=avg, mem_free=free)


class TestNodeStatus:
    def test_wbas_load_blend(self):
        s = status("node0", load=0.6, avg=0.0)
        assert s.wbas_load == pytest.approx(0.5)

    def test_computing_capacity(self):
        s = status("node0", load=0.5, avg=0.5, free=10e9)
        assert s.computing_capacity == pytest.approx(0.5 * 10e9)

    def test_capacity_floor_at_full_load(self):
        s = status("node0", load=1.5, avg=1.5, free=10e9)
        assert s.computing_capacity == 0.0


class TestRoundRobin:
    def test_label_order(self):
        statuses = [status(f"node{i}") for i in (3, 1, 0, 2)]
        assert RoundRobin().select(statuses, 2) == ["node0", "node1"]

    def test_numeric_suffix_ordering(self):
        statuses = [status("node10"), status("node2"), status("node1")]
        assert RoundRobin().select(statuses, 3) == ["node1", "node2", "node10"]

    def test_ignores_load(self):
        statuses = [status("node0", load=1.0), status("node1", load=0.0)]
        assert RoundRobin().select(statuses, 1) == ["node0"]


class TestWBAS:
    def test_avoids_loaded_node(self):
        statuses = [
            status("node0", load=0.9),
            status("node1"),
            status("node2"),
        ]
        assert WellBalancedAllocation().select(statuses, 2) == ["node1", "node2"]

    def test_avoids_low_memory_node(self):
        statuses = [
            status("node0", free=1e9),
            status("node1"),
            status("node2"),
        ]
        assert "node0" not in WellBalancedAllocation().select(statuses, 2)

    def test_five_minute_average_matters(self):
        # node0 quiet now but was busy recently; node1 consistently quiet
        statuses = [
            status("node0", load=0.0, avg=0.9),
            status("node1", load=0.0, avg=0.0),
        ]
        assert WellBalancedAllocation().select(statuses, 1) == ["node1"]

    def test_paper_scenario(self):
        """Fig 11: cpuoccupy on node0, memleak on node2 -> WBAS picks 1,3,4,5."""
        statuses = [
            status("node0", load=0.03, avg=0.03),  # cpuoccupy, one core
            status("node1"),
            status("node2", free=1e9),  # memleak pinned memory
        ] + [status(f"node{i}") for i in range(3, 8)]
        chosen = WellBalancedAllocation().select(statuses, 4)
        assert chosen == ["node1", "node3", "node4", "node5"]


class TestValidation:
    def test_too_many_nodes_requested(self):
        with pytest.raises(SchedulingError):
            RoundRobin().select([status("node0")], 2)

    def test_zero_nodes_requested(self):
        with pytest.raises(SchedulingError):
            WellBalancedAllocation().select([status("node0")], 0)
