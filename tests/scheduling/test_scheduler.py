"""JobScheduler over live monitoring data."""

import pytest

from repro.apps import get_app
from repro.cluster import Cluster
from repro.core import CpuOccupy, MemLeak
from repro.monitoring import MetricService
from repro.scheduling import (
    JobScheduler,
    RoundRobin,
    WellBalancedAllocation,
    observe_nodes,
)
from repro.units import GB, MB


@pytest.fixture
def monitored_cluster():
    cluster = Cluster.voltrino(num_nodes=8)
    service = MetricService(cluster)
    service.attach(end=1_000_000)
    return cluster, service


def test_observe_nodes_reads_monitoring(monitored_cluster):
    cluster, service = monitored_cluster
    CpuOccupy(utilization=100).launch(cluster, "node0", core=0)
    cluster.sim.run(until=30)
    statuses = {s.name: s for s in observe_nodes(service)}
    assert statuses["node0"].load_current > statuses["node1"].load_current
    assert statuses["node1"].mem_free > 0


def test_allocation_history_recorded(monitored_cluster):
    cluster, service = monitored_cluster
    cluster.sim.run(until=5)
    scheduler = JobScheduler(cluster, service)
    allocation = scheduler.allocate(RoundRobin(), 4)
    assert allocation.nodes == ["node0", "node1", "node2", "node3"]
    assert scheduler.history == [allocation]


def test_wbas_avoids_anomalous_nodes_live(monitored_cluster):
    cluster, service = monitored_cluster
    CpuOccupy(utilization=100).launch(cluster, "node0", core=0)
    leak_target = cluster.node(2).memory.free - 1 * GB
    MemLeak(buffer_size=512 * MB, rate=50, limit=leak_target).launch(
        cluster, "node2", core=0
    )
    cluster.sim.run(until=60)
    scheduler = JobScheduler(cluster, service)
    allocation = scheduler.allocate(WellBalancedAllocation(), 4)
    assert "node0" not in allocation.nodes
    assert "node2" not in allocation.nodes


def test_submit_launches_on_allocated_nodes(monitored_cluster):
    cluster, service = monitored_cluster
    cluster.sim.run(until=5)
    scheduler = JobScheduler(cluster, service)
    app = get_app("sw4lite").scaled(iterations=3)
    allocation, job = scheduler.submit(app, RoundRobin(), n_nodes=2, ranks_per_node=2)
    runtime = job.run(timeout=10_000)
    assert runtime > 0
    assert {p.node for p in job.procs} == set(allocation.nodes)
