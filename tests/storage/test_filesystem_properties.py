"""Property-based invariants of the shared-filesystem solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.process import IODemand
from repro.storage.filesystem import SharedFilesystem

demand_strategy = st.tuples(
    st.floats(min_value=0, max_value=1e9),  # write
    st.floats(min_value=0, max_value=1e9),  # read
    st.floats(min_value=0, max_value=1e5),  # meta ops
    st.integers(min_value=0, max_value=4),  # client node
)


@settings(max_examples=120, deadline=None)
@given(demands=st.lists(demand_strategy, min_size=1, max_size=12),
       separate=st.booleans())
def test_solver_invariants(demands, separate):
    fs = SharedFilesystem(separate_metadata=separate)
    request = [
        (i, f"node{node}", IODemand(fs="nfs", write_bw=w, read_bw=r, meta_ops=m))
        for i, (w, r, m, node) in enumerate(demands)
    ]
    grants = fs.solve(request)
    assert set(grants) == set(range(len(demands)))
    total_disk = 0.0
    total_meta = 0.0
    for i, (w, r, m, _) in enumerate(demands):
        g = grants[i]
        # ratios are proper fractions, granted rates scale the demand
        assert 0.0 <= g.ratio <= 1.0 + 1e-9
        assert g.write_bw == pytest.approx(w * g.ratio, rel=1e-9, abs=1e-9)
        assert g.read_bw == pytest.approx(r * g.ratio, rel=1e-9, abs=1e-9)
        assert g.meta_ops == pytest.approx(m * g.ratio, rel=1e-9, abs=1e-9)
        total_disk += g.write_bw + g.read_bw
        total_meta += g.meta_ops
    # conservation: granted traffic never exceeds the pools
    assert total_disk <= fs.disk_bw * (1 + 1e-6) + 1e-3
    assert total_meta <= fs.meta_capacity * (1 + 1e-6) + 1e-3


@settings(max_examples=60, deadline=None)
@given(demands=st.lists(demand_strategy, min_size=2, max_size=8))
def test_adding_a_client_never_helps_existing_ones(demands):
    """Monotonicity: more contention cannot increase anyone's grant."""
    fs = SharedFilesystem()
    base = [
        (i, f"node{node}", IODemand(fs="nfs", write_bw=w, read_bw=r, meta_ops=m))
        for i, (w, r, m, node) in enumerate(demands[:-1])
    ]
    extended = base + [
        (
            len(demands) - 1,
            f"node{demands[-1][3]}",
            IODemand(
                fs="nfs",
                write_bw=demands[-1][0],
                read_bw=demands[-1][1],
                meta_ops=demands[-1][2],
            ),
        )
    ]
    before = fs.solve(base)
    after = fs.solve(extended)
    for i, _ in enumerate(base):
        assert after[i].ratio <= before[i].ratio + 1e-6
