"""Shared-filesystem model: pool sharing, node fairness, CPU thread grabbing."""

import pytest

from repro.errors import ConfigError
from repro.sim.process import IODemand
from repro.storage.filesystem import SharedFilesystem
from repro.units import MB10


def fs(**kwargs):
    defaults = dict(
        name="nfs",
        disk_bw=320 * MB10,
        meta_capacity=6000.0,
        server_cpu=24.0,
    )
    defaults.update(kwargs)
    return SharedFilesystem(**defaults)


def wdemand(bw, fs_name="nfs"):
    return IODemand(fs=fs_name, write_bw=bw)


class TestBasics:
    def test_single_writer_full_rate(self):
        grants = fs().solve([(1, "node0", wdemand(100 * MB10))])
        assert grants[1].write_bw == pytest.approx(100 * MB10, rel=1e-6)
        assert grants[1].ratio == pytest.approx(1.0)

    def test_empty(self):
        assert fs().solve([]) == {}

    def test_wrong_fs_rejected(self):
        with pytest.raises(ConfigError):
            fs().solve([(1, "node0", wdemand(1.0, fs_name="lustre"))])

    def test_disk_oversubscription_shared(self):
        grants = fs().solve(
            [(1, "node0", wdemand(300 * MB10)), (2, "node1", wdemand(300 * MB10))]
        )
        assert grants[1].write_bw == pytest.approx(160 * MB10, rel=1e-3)
        assert grants[2].write_bw == pytest.approx(160 * MB10, rel=1e-3)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            SharedFilesystem(disk_bw=0)
        with pytest.raises(ConfigError):
            SharedFilesystem(cpu_per_byte=-1)


class TestNodeFairness:
    def test_many_processes_on_one_node_share_that_nodes_slice(self):
        # 10 hogs on node1 vs 1 client on node0: per-node fairness gives
        # the lone client half the disk, not 1/11th.
        demands = [(0, "node0", wdemand(300 * MB10))]
        demands += [(i, "node1", wdemand(300 * MB10)) for i in range(1, 11)]
        grants = fs().solve(demands)
        assert grants[0].write_bw == pytest.approx(160 * MB10, rel=1e-3)
        hog_total = sum(grants[i].write_bw for i in range(1, 11))
        assert hog_total == pytest.approx(160 * MB10, rel=1e-3)

    def test_meta_capacity_node_fair(self):
        demands = [
            (1, "node0", IODemand(fs="nfs", meta_ops=5000.0)),
            (2, "node1", IODemand(fs="nfs", meta_ops=500.0)),
        ]
        grants = fs().solve(demands)
        # node1's modest demand is protected by per-node max-min
        assert grants[2].meta_ops == pytest.approx(500.0, rel=1e-3)
        assert grants[1].meta_ops <= 5500.0


class TestCpuThreadGrabbing:
    def test_metadata_storm_starves_data_path_cpu(self):
        """Worker threads are grabbed FCFS: proportional CPU sharing.

        This is the Fig. 7 coupling — the data path asks for little CPU
        but gets squeezed out anyway when a metadata storm saturates the
        server threads.
        """
        shared = fs(server_cpu=4.0, cpu_per_meta_op=1e-3)
        storm = [
            (i, f"node{i % 3}", IODemand(fs="nfs", meta_ops=4000.0)) for i in range(3)
        ]
        writer = [(99, "node4", wdemand(100 * MB10))]
        grants = shared.solve(storm + writer)
        # storm cpu demand = 12, writer = 0.5 -> writer ratio ~ 4/12.5
        assert grants[99].ratio == pytest.approx(4.0 / 12.5, rel=0.05)

    def test_no_cpu_contention_when_pool_fits(self):
        shared = fs(server_cpu=24.0)
        demands = [
            (1, "node0", IODemand(fs="nfs", meta_ops=1000.0)),
            (2, "node1", wdemand(100 * MB10)),
        ]
        grants = shared.solve(demands)
        assert grants[2].ratio == pytest.approx(1.0)


class TestSeparateMetadata:
    def test_separate_mds_decouples_cpu(self):
        """With a dedicated MDS, metadata CPU does not throttle data."""
        kwargs = dict(server_cpu=2.0, cpu_per_meta_op=1e-2)
        coupled = fs(**kwargs)
        lustre = fs(separate_metadata=True, **kwargs)
        demands = [
            (1, "node0", IODemand(fs="nfs", meta_ops=5000.0)),
            (2, "node1", wdemand(50 * MB10)),
        ]
        with_mds = lustre.solve(demands)[2].write_bw
        without = coupled.solve(demands)[2].write_bw
        assert with_mds > without

    def test_separate_mds_keeps_journal_off_shared_disk(self):
        kwargs = dict(meta_disk_bytes=64 * 1024, disk_bw=100 * MB10)
        coupled = fs(**kwargs)
        lustre = fs(separate_metadata=True, **kwargs)
        demands = [
            (1, "node0", IODemand(fs="nfs", meta_ops=3000.0)),  # 192 MB/s journal
            (2, "node1", wdemand(90 * MB10)),
        ]
        assert lustre.solve(demands)[2].ratio > coupled.solve(demands)[2].ratio


class TestRatioSemantics:
    def test_ratio_is_worst_pool(self):
        shared = fs(disk_bw=50 * MB10)
        grants = shared.solve([(1, "node0", wdemand(100 * MB10))])
        assert grants[1].ratio == pytest.approx(0.5, rel=1e-6)
        assert grants[1].write_bw == pytest.approx(50 * MB10, rel=1e-6)

    def test_all_rates_scale_together(self):
        shared = fs(disk_bw=50 * MB10)
        demand = IODemand(fs="nfs", write_bw=100 * MB10, meta_ops=100.0)
        grant = shared.solve([(1, "node0", demand)])[1]
        assert grant.meta_ops == pytest.approx(100.0 * grant.ratio, rel=1e-6)


def test_presets():
    nfs = SharedFilesystem.nfs_appliance()
    assert nfs.name == "nfs" and not nfs.separate_metadata
    lustre = SharedFilesystem.lustre_like()
    assert lustre.separate_metadata
    assert lustre.disk_bw > nfs.disk_bw
