"""Chrome trace / JSONL exporters and the CI schema validator."""

import json
import math

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    SpanCollector,
    assert_valid_chrome_trace,
    chrome_trace,
    jsonl_lines,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl_trace,
)
from repro.sim.engine import Simulator


@pytest.fixture
def collector():
    sim = Simulator()
    c = SpanCollector()
    c.attach(sim)
    parent = c.begin("engine", "proc", ("node0", "pid1"), start=0.0)
    c.complete("engine", "compute", ("node0", "pid1"), 0.0, 2.0, parent=parent.sid)
    c.end(parent, t=3.0)
    c.instant("scheduler", "allocate", ("cluster", "scheduler"), t=1.0)
    c.complete(
        "injector",
        "cpuoccupy",
        ("cluster", "injector"),
        0.5,
        2.5,
        args={"duration": math.inf},
    )
    return c


class TestChromeTrace:
    def test_valid_by_own_validator(self, collector):
        assert validate_chrome_trace(chrome_trace(collector)) == []

    def test_event_counts(self, collector):
        trace = chrome_trace(collector)
        phases = [e["ph"] for e in trace["traceEvents"]]
        assert phases.count("X") == 3
        assert phases.count("i") == 1
        assert phases.count("M") >= 3  # process + thread names

    def test_times_in_microseconds(self, collector):
        trace = chrome_trace(collector)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        proc = next(e for e in spans if e["name"] == "proc")
        assert proc["ts"] == pytest.approx(0.0)
        assert proc["dur"] == pytest.approx(3.0e6)

    def test_parent_sid_preserved_in_args(self, collector):
        trace = chrome_trace(collector)
        compute = next(
            e for e in trace["traceEvents"] if e.get("name") == "compute"
        )
        assert compute["args"]["parent"] == 1

    def test_nonfinite_args_stringified(self, collector):
        text = json.dumps(chrome_trace(collector))  # strict JSON must not fail
        assert "Infinity" not in text

    def test_track_ids_deterministic(self, collector):
        a = chrome_trace(collector)
        b = chrome_trace(collector)
        assert a == b

    def test_write_and_reload(self, tmp_path, collector):
        path = write_chrome_trace(collector, tmp_path / "t.json")
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []

    def test_written_bytes_deterministic(self, tmp_path, collector):
        a = write_chrome_trace(collector, tmp_path / "a.json").read_text()
        b = write_chrome_trace(collector, tmp_path / "b.json").read_text()
        assert a == b

    def test_open_span_closed_at_horizon(self):
        c = SpanCollector()
        c.attach(Simulator())
        c.begin("x", "open", ("g", "l"), start=1.0)
        c.complete("x", "done", ("g", "l"), 0.0, 9.0)
        trace = chrome_trace(c)
        open_event = next(
            e for e in trace["traceEvents"] if e.get("name") == "open"
        )
        assert open_event["dur"] == pytest.approx(8.0e6)


class TestJsonl:
    def test_one_line_per_record(self, collector):
        lines = jsonl_lines(collector)
        assert len(lines) == len(collector.spans) + len(collector.instants)

    def test_lines_parse_and_are_typed(self, collector):
        records = [json.loads(line) for line in jsonl_lines(collector)]
        kinds = {r["type"] for r in records}
        assert kinds == {"span", "instant"}

    def test_completion_seq_ordered(self, collector):
        seqs = [r["seq"] for r in map(json.loads, jsonl_lines(collector))]
        assert seqs == sorted(seqs)
        assert seqs == list(range(1, len(seqs) + 1))

    def test_retroactive_complete_streams_at_record_time(self, collector):
        # The cpuoccupy span starts at t=0.5 but was recorded last, so it
        # is last in canonical order — the property that lets streaming
        # writers flush records the moment they close.
        records = [json.loads(line) for line in jsonl_lines(collector)]
        assert records[-1]["name"] == "cpuoccupy"
        assert records[-1]["start"] == pytest.approx(0.5)

    def test_write_jsonl(self, tmp_path, collector):
        path = write_jsonl_trace(collector, tmp_path / "t.jsonl")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(jsonl_lines(collector))


class TestValidator:
    def test_non_dict_rejected(self):
        assert validate_chrome_trace([]) != []

    def test_missing_trace_events_rejected(self):
        assert validate_chrome_trace({}) != []

    def test_missing_keys_reported(self):
        problems = validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        assert any("missing key" in p for p in problems)

    def test_unknown_phase_reported(self):
        event = {"name": "e", "ph": "Z", "ts": 0, "pid": 1, "tid": 1}
        problems = validate_chrome_trace({"traceEvents": [event]})
        assert any("unknown phase" in p for p in problems)

    def test_negative_duration_reported(self):
        event = {
            "name": "e", "cat": "c", "ph": "X", "ts": 0, "dur": -1,
            "pid": 1, "tid": 1,
        }
        meta = {
            "name": "process_name", "ph": "M", "ts": 0, "pid": 1, "tid": 0,
            "args": {"name": "g"},
        }
        problems = validate_chrome_trace({"traceEvents": [meta, event]})
        assert any("dur" in p for p in problems)

    def test_unnamed_pid_reported(self):
        event = {
            "name": "e", "cat": "c", "ph": "X", "ts": 0, "dur": 1,
            "pid": 7, "tid": 1,
        }
        problems = validate_chrome_trace({"traceEvents": [event]})
        assert any("process_name" in p for p in problems)

    def test_assert_raises_with_summary(self):
        with pytest.raises(ObservabilityError, match="invalid Chrome trace"):
            assert_valid_chrome_trace({"traceEvents": "nope"})
