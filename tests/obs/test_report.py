"""``repro report``: run summaries and wall-clock self-profiling."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import run_scenario
from repro.obs.report import (
    SUBSYSTEM_TIMERS,
    report_run_dir,
    report_scenario,
    wallclock_attribution,
)

HORIZON = 60.0


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("report") / "run"
    run = run_scenario(
        "loadbalance",
        seed=0,
        horizon=HORIZON,
        on_obs=lambda obs: obs.stream_to(directory, chrome=False),
    )
    run.obs.close_streams()
    return directory


class TestWallclockAttribution:
    def test_rows_follow_the_timer_map(self):
        timings = {"accrue": 0.5, "resolve": 1.0, "node": 0.3, "network": 0.2}
        rows = {label: secs for label, secs, _ in wallclock_attribution(timings)}
        assert rows["engine.accrue"] == 0.5
        assert rows["engine.resolve"] == 1.0
        assert rows["rate_model"] == 0.3
        assert rows["flow_solver"] == 0.2

    def test_resolve_self_is_derived(self):
        timings = {"resolve": 1.0, "node": 0.3, "network": 0.2, "storage": 0.1}
        rows = dict(
            (label, secs) for label, secs, _ in wallclock_attribution(timings)
        )
        assert rows["engine.resolve (self)"] == pytest.approx(0.4)

    def test_resolve_self_never_negative(self):
        rows = dict(
            (label, secs)
            for label, secs, _ in wallclock_attribution(
                {"resolve": 0.1, "node": 0.3}
            )
        )
        assert rows["engine.resolve (self)"] == 0.0

    def test_unknown_timers_survive_verbatim(self):
        rows = wallclock_attribution({"mystery": 0.7})
        assert ("mystery", 0.7, "unattributed timer") in rows

    def test_timer_map_names_every_bucket(self):
        labels = {label for label, _ in SUBSYSTEM_TIMERS.values()}
        assert {"engine.resolve", "rate_model", "monitoring", "obs"} <= labels


class TestScenarioReports:
    def test_no_wallclock_report_is_deterministic(self):
        render = lambda: report_scenario(  # noqa: E731
            "loadbalance", seed=0, horizon=HORIZON, wallclock=False
        ).render()
        first = render()
        assert first == render()
        assert "wall-clock attribution" not in first

    def test_wallclock_report_attributes_subsystems(self):
        report = report_scenario("loadbalance", seed=0, horizon=HORIZON)
        assert report.timings
        text = report.render()
        assert "wall-clock attribution (not deterministic):" in text
        assert "engine.resolve (self)" in text

    def test_sections_are_populated(self):
        report = report_scenario(
            "loadbalance", seed=0, horizon=HORIZON, wallclock=False
        )
        assert report.categories
        assert report.horizon > 0
        assert report.utilization
        assert report.critical_path
        assert report.counters
        assert report.samples

    def test_markdown_mirrors_terminal_sections(self):
        report = report_scenario(
            "loadbalance", seed=0, horizon=HORIZON, wallclock=False
        )
        md = report.render_markdown()
        assert "# Run report:" in md
        assert "## Timeline" in md
        assert "## Utilization (engine spans)" in md
        assert "## Critical path" in md
        assert "Wall-clock" not in md


class TestRunDirReports:
    def test_run_dir_report_reads_streamed_artefacts(self, run_dir):
        report = report_run_dir(run_dir)
        assert report.source == str(run_dir)
        assert report.categories
        assert report.counters
        assert report.samples == {
            "node0": report.samples["node0"],
            "node1": report.samples["node1"],
        }

    def test_run_dir_never_fakes_wallclock(self, run_dir):
        # Streamed artefacts carry no timer snapshot; asking for wallclock
        # must not invent one.
        report = report_run_dir(run_dir, wallclock=True)
        assert report.timings == {}
        assert "wall-clock" not in report.render()

    def test_run_dir_matches_live_scenario_sections(self, run_dir):
        live = report_scenario(
            "loadbalance", seed=0, horizon=HORIZON, wallclock=False
        )
        streamed = report_run_dir(run_dir)
        assert streamed.categories == live.categories
        assert streamed.critical_path == live.critical_path
        assert streamed.counters == live.counters
        assert streamed.samples == live.samples

    def test_missing_trace_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError, match="trace.jsonl"):
            report_run_dir(tmp_path)
