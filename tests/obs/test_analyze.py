"""The trace-query engine: filters, rollups, and causal walks."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import run_scenario
from repro.obs.analyze import Trace
from repro.obs.export import write_jsonl_trace

HORIZON = 120.0


@pytest.fixture(scope="module")
def run():
    return run_scenario("mixed", seed=0, horizon=HORIZON)


@pytest.fixture(scope="module")
def trace(run):
    return Trace.from_collector(run.obs.collector)


class TestLoading:
    def test_load_roundtrips_from_collector(self, run, trace, tmp_path_factory):
        path = tmp_path_factory.mktemp("analyze") / "trace.jsonl"
        write_jsonl_trace(run.obs.collector, path)
        loaded = Trace.load(path)
        assert len(loaded) == len(trace)
        assert loaded.categories() == trace.categories()
        assert [s.sid for s in loaded] == [s.sid for s in trace]

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ObservabilityError):
            Trace.load(path)

    def test_categories_cover_the_stack(self, trace):
        cats = trace.categories()
        assert {"engine", "injector", "scheduler"} <= set(cats)
        assert all(n > 0 for n in cats.values())


class TestFilters:
    def test_filter_by_category(self, trace):
        engine = trace.filter(cat="engine")
        assert 0 < len(engine) < len(trace)
        assert all(s.cat == "engine" for s in engine)

    def test_filters_compose(self, trace):
        some = trace.filter(cat="engine").filter(group="node0")
        assert all(s.cat == "engine" and s.group == "node0" for s in some)

    def test_predicate_filter(self, trace):
        long_spans = trace.filter(predicate=lambda s: s.duration > 10.0)
        assert all(s.duration > 10.0 for s in long_spans)


class TestRollups:
    def test_duration_stats_counts_sum_to_spans(self, trace):
        stats = trace.duration_stats(by="cat")
        assert sum(s.count for s in stats.values()) == len(trace.spans)
        assert stats == dict(sorted(stats.items()))

    def test_duration_stats_rejects_unknown_grouping(self, trace):
        with pytest.raises(ObservabilityError, match="grouping"):
            trace.duration_stats(by="lane")

    def test_utilization_is_a_fraction(self, trace):
        util = trace.utilization(cat="engine")
        assert util  # the mixed scenario keeps nodes busy
        assert all(0.0 < frac <= 1.0 for frac in util.values())

    def test_nested_spans_never_double_count(self, trace):
        # Engine process spans fully contain their segment spans; a naive
        # sum would exceed the horizon, the merged union cannot.
        assert all(f <= 1.0 for f in trace.utilization().values())

    def test_lane_utilization_refines_groups(self, trace):
        by_node = trace.utilization(cat="engine")
        by_lane = trace.lane_utilization(cat="engine")
        assert {group for group, _ in by_lane} == set(by_node)


class TestCausalWalks:
    def test_critical_path_is_a_causal_chain(self, trace):
        path = trace.critical_path()
        assert path
        assert path[0].parent is None  # starts at a root
        for parent, child in zip(path, path[1:]):
            assert child.parent == parent.sid

    def test_critical_path_root_ends_last(self, trace):
        path = trace.critical_path()
        assert path[0].end == max(s.end for s in trace.roots())

    def test_enclosing_finds_innermost(self, trace):
        span = trace.critical_path()[-1]
        mid = (span.start + span.end) / 2
        found = trace.enclosing(span.group, mid)
        assert found is not None
        assert found.contains(mid)
        assert found.duration <= span.duration

    def test_enclosing_misses_cleanly(self, trace):
        assert trace.enclosing("no-such-node", 1.0) is None


class TestMisc:
    def test_horizon_is_latest_end(self, trace):
        assert trace.horizon == max(s.end for s in trace.spans)

    def test_shifted_moves_everything(self, trace):
        moved = trace.shifted(5.0)
        assert moved.horizon == trace.horizon + 5.0
        assert len(moved) == len(trace)
