"""``repro diff``: artefact comparison and divergence localization."""

import json
import math
import shutil

import pytest

from repro.obs import run_scenario
from repro.obs.diff import diff_runs

HORIZON = 60.0


def _stream_run(directory, seed=0):
    run = run_scenario(
        "loadbalance",
        seed=seed,
        horizon=HORIZON,
        on_obs=lambda obs: obs.stream_to(directory, chrome=True),
    )
    run.obs.close_streams()
    return run


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    root = tmp_path_factory.mktemp("diff")
    _stream_run(root / "a")
    _stream_run(root / "b")
    return root / "a", root / "b"


class TestIdenticalRuns:
    def test_same_seed_runs_are_identical(self, runs):
        dir_a, dir_b = runs
        report = diff_runs(dir_a, dir_b)
        assert report.is_identical
        assert not report.series
        # trace.jsonl, trace.json, metrics/*, counters.jsonl, counters.json
        assert len(report.identical) >= 5

    def test_identical_render_and_exit_contract(self, runs):
        report = diff_runs(*runs)
        assert "0 differences" in report.render()


class TestSeriesLocalization:
    def test_one_ulp_bump_is_localized(self, runs, tmp_path):
        dir_a, dir_b = runs
        mutated = tmp_path / "mutated"
        shutil.copytree(dir_b, mutated)
        path = mutated / "metrics" / "node0.jsonl"
        records = [json.loads(line) for line in path.read_text().splitlines()]
        target = 17
        metric = next(
            k for k in sorted(records[target]) if k not in ("time", "node")
        )
        records[target][metric] = math.nextafter(
            records[target][metric], math.inf
        )
        path.write_text(
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
        )

        report = diff_runs(dir_a, mutated)
        assert not report.is_identical
        assert len(report.series) == 1
        div = report.series[0]
        assert div.file == "metrics/node0.jsonl"
        assert div.node == "node0"
        assert div.index == target
        assert div.metric == metric
        assert div.value_a != div.value_b
        assert div.value_b == math.nextafter(div.value_a, math.inf)

    def test_divergence_names_the_enclosing_span(self, runs, tmp_path):
        dir_a, dir_b = runs
        mutated = tmp_path / "mutated"
        shutil.copytree(dir_b, mutated)
        path = mutated / "metrics" / "node0.jsonl"
        lines = path.read_text().splitlines()
        record = json.loads(lines[10])
        metric = next(k for k in sorted(record) if k not in ("time", "node"))
        record[metric] = record[metric] + 1.0
        lines[10] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")

        report = diff_runs(dir_a, mutated)
        div = report.series[0]
        assert div.span is not None
        assert div.span.group == "node0"
        assert div.span.start <= div.time <= div.span.end
        rendered = report.render()
        assert "first divergence at sample 10" in rendered
        assert "enclosing span:" in rendered
        assert float(div.value_a).hex() in rendered


class TestStructuralDiffs:
    def test_missing_artefact_is_reported(self, runs, tmp_path):
        dir_a, dir_b = runs
        pruned = tmp_path / "pruned"
        shutil.copytree(dir_b, pruned)
        (pruned / "counters.json").unlink()
        report = diff_runs(dir_a, pruned)
        assert not report.is_identical
        assert report.only_in_a == ["counters.json"]
        assert "only in a: counters.json" in report.render()

    def test_manifest_diff_names_the_key_path(self, runs, tmp_path):
        dir_a, dir_b = runs
        copy_a, copy_b = tmp_path / "a", tmp_path / "b"
        shutil.copytree(dir_a, copy_a)
        shutil.copytree(dir_b, copy_b)
        base = {"seed": 0, "config": {"nodes": 2, "app": "stencil"}}
        (copy_a / "manifest.json").write_text(json.dumps(base, sort_keys=True))
        base["config"]["nodes"] = 3
        (copy_b / "manifest.json").write_text(json.dumps(base, sort_keys=True))
        report = diff_runs(copy_a, copy_b)
        assert report.differing["manifest.json"] == "manifest key config.nodes"

    def test_counters_diff_reports_first_line(self, runs, tmp_path):
        dir_a, dir_b = runs
        mutated = tmp_path / "mutated"
        shutil.copytree(dir_b, mutated)
        path = mutated / "counters.json"
        payload = json.loads(path.read_text())
        key = sorted(payload["counters"])[0]
        payload["counters"][key] += 1
        path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        report = diff_runs(dir_a, mutated)
        assert report.differing["counters.json"].startswith("line ")

    def test_labels_surface_in_render(self, runs):
        report = diff_runs(*runs, label_a="baseline", label_b="candidate")
        assert "baseline" in report.render()
        assert "candidate" in report.render()
