"""The unified Observability handle and the end-to-end trace scenarios."""

import json

import pytest

from repro.cluster import Cluster
from repro.errors import ObservabilityError
from repro.obs import (
    Observability,
    SCENARIOS,
    run_scenario,
    validate_chrome_trace,
)


class TestObservabilityHandle:
    def test_attach_wires_sim_and_service(self):
        cluster = Cluster(num_nodes=1)
        obs = Observability(cluster).attach(end=5)
        assert cluster.sim.obs is obs.collector
        assert obs.service is not None and obs.service.attached
        cluster.sim.run(until=5)
        assert len(obs.service.times) > 0

    def test_attach_adopts_existing_service(self):
        cluster = Cluster(num_nodes=1)
        from repro.monitoring import MetricService

        service = MetricService(cluster)
        service.attach(end=5)
        obs = Observability(cluster, service=service).attach()
        assert obs.service is service  # adopted, not re-attached

    def test_detach_restores_zero_cost_state(self):
        cluster = Cluster.chameleon(num_nodes=2, with_nfs=True)
        obs = Observability(cluster).attach()
        obs.detach()
        assert cluster.sim.obs is None
        assert all(fs.obs is None for fs in cluster.filesystems.values())
        assert not obs.service.attached

    def test_snapshot_unifies_surfaces(self):
        cluster = Cluster(num_nodes=1)
        obs = Observability(cluster).attach(end=3)
        cluster.sim.run(until=3)
        snap = obs.snapshot()
        assert set(snap) >= {"counters", "spans", "instants", "metrics", "samples"}

    def test_unknown_trace_format_rejected(self, tmp_path):
        cluster = Cluster(num_nodes=1)
        obs = Observability(cluster).attach()
        with pytest.raises(ObservabilityError, match="unknown trace format"):
            obs.write_trace(tmp_path / "t.bin", fmt="binary")


class TestScenarios:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ObservabilityError, match="unknown scenario"):
            run_scenario("nope")

    def test_bad_horizon_rejected(self):
        with pytest.raises(ObservabilityError, match="horizon"):
            run_scenario("mixed", horizon=0.0)

    def test_scenario_registry_names(self):
        assert set(SCENARIOS) == {"mixed", "loadbalance", "faults", "replay_ai"}

    def test_faults_covers_fault_and_recovery_spans(self):
        run = run_scenario("faults", seed=0, horizon=3600.0)
        collector = run.obs.collector
        assert "faults" in set(collector.categories())
        names = {e.name for e in collector.instants}
        assert any(n.startswith("recovered:") for n in names)

    def test_mixed_covers_five_subsystems(self):
        run = run_scenario("mixed", seed=0, horizon=120.0)
        categories = set(run.obs.collector.categories())
        assert categories >= {"engine", "injector", "scheduler", "mpi", "storage"}

    def test_mixed_trace_is_valid_chrome_json(self, tmp_path):
        run = run_scenario("mixed", seed=0, horizon=120.0)
        path = run.obs.write_trace(tmp_path / "trace.json")
        assert validate_chrome_trace(json.loads(path.read_text())) == []

    def test_mixed_manifest_byte_identical_across_reruns(self, tmp_path):
        def manifest_bytes(path):
            run = run_scenario("mixed", seed=3, horizon=120.0)
            out = run.obs.write_manifest(
                tmp_path / path,
                name="trace-mixed",
                seed=run.seed,
                config=run.config,
                injector=run.injector,
            )
            return out.read_bytes()

        assert manifest_bytes("a.json") == manifest_bytes("b.json")

    def test_mixed_trace_byte_identical_across_reruns(self, tmp_path):
        def trace_bytes(path):
            run = run_scenario("mixed", seed=0, horizon=120.0)
            return run.obs.write_trace(tmp_path / path).read_bytes()

        assert trace_bytes("a.json") == trace_bytes("b.json")

    def test_loadbalance_emits_charm_spans(self):
        run = run_scenario("loadbalance", seed=0, horizon=60.0)
        categories = run.obs.collector.categories()
        assert categories.get("charm", 0) >= 12  # one span per iteration
        migrations = [
            e for e in run.obs.collector.instants if e.name == "migrate"
        ]
        assert migrations  # the balancer reacts to the cpuoccupy squat


class TestTraceCli:
    def test_trace_subcommand_writes_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.json"
        manifest = tmp_path / "manifest.json"
        code = main(
            [
                "trace",
                "mixed",
                "--out",
                str(out),
                "--manifest",
                str(manifest),
                "--horizon",
                "60",
            ]
        )
        assert code == 0
        assert validate_chrome_trace(json.loads(out.read_text())) == []
        assert json.loads(manifest.read_text())["name"] == "trace-mixed"
        stdout = capsys.readouterr().out
        assert "traced scenario 'mixed'" in stdout

    def test_trace_subcommand_jsonl_format(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "trace.jsonl"
        code = main(
            ["trace", "loadbalance", "--out", str(out), "--format", "jsonl",
             "--horizon", "40"]
        )
        assert code == 0
        lines = out.read_text().strip().splitlines()
        assert all(json.loads(line)["type"] in ("span", "instant") for line in lines)

    def test_anomaly_trace_flag(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "anomaly.json"
        code = main(
            ["cpuoccupy", "-u", "80", "--horizon", "20", "--trace", str(out)]
        )
        assert code == 0
        assert validate_chrome_trace(json.loads(out.read_text())) == []
