"""SpanCollector: lifecycle, emission primitives, engine integration."""

import pytest

from repro.cluster import Cluster
from repro.errors import ObservabilityError
from repro.obs import SpanCollector
from repro.sim.engine import Simulator
from repro.sim.process import Segment, Sleep


def run_app(collector=None, work=5.0):
    cluster = Cluster(num_nodes=1)
    if collector is not None:
        collector.attach(cluster.sim)

    def app(proc):
        yield Segment(work=work, label="compute")

    cluster.spawn("app", app, node=0, core=0)
    cluster.sim.run()
    return cluster


class TestLifecycle:
    def test_attach_sets_sim_obs(self):
        sim = Simulator()
        collector = SpanCollector()
        assert sim.obs is None
        collector.attach(sim)
        assert sim.obs is collector
        assert collector.attached

    def test_detach_restores_zero_cost_state(self):
        sim = Simulator()
        collector = SpanCollector()
        collector.attach(sim)
        collector.detach()
        assert sim.obs is None
        assert not collector.attached

    def test_double_attach_rejected(self):
        sim = Simulator()
        collector = SpanCollector()
        collector.attach(sim)
        with pytest.raises(ObservabilityError):
            collector.attach(sim)

    def test_second_collector_on_same_sim_rejected(self):
        sim = Simulator()
        SpanCollector().attach(sim)
        with pytest.raises(ObservabilityError):
            SpanCollector().attach(sim)

    def test_detach_without_attach_rejected(self):
        with pytest.raises(ObservabilityError):
            SpanCollector().detach()

    def test_now_requires_attachment(self):
        with pytest.raises(ObservabilityError):
            SpanCollector().now

    def test_unobserved_sim_records_nothing(self):
        cluster = run_app(collector=None)
        assert cluster.sim.obs is None


class TestEngineSpans:
    def test_process_and_segment_spans(self):
        collector = SpanCollector()
        run_app(collector)
        engine = collector.by_category("engine")
        names = {s.name for s in engine}
        assert "app" in names and "compute" in names
        proc_span = next(s for s in engine if s.name == "app")
        seg_span = next(s for s in engine if s.name == "compute")
        assert seg_span.parent == proc_span.sid
        assert proc_span.start == pytest.approx(0.0)
        assert proc_span.end == pytest.approx(5.0)
        assert proc_span.args["exit"] == "done"

    def test_sleep_closes_segment_span(self):
        cluster = Cluster(num_nodes=1)
        collector = SpanCollector()
        collector.attach(cluster.sim)

        def app(proc):
            yield Segment(work=2.0, label="a")
            yield Sleep(3.0)
            yield Segment(work=1.0, label="b")

        cluster.spawn("app", app, node=0, core=0)
        cluster.sim.run()
        by_name = {s.name: s for s in collector.by_category("engine")}
        assert by_name["a"].end == pytest.approx(2.0)
        assert by_name["b"].start == pytest.approx(5.0)
        assert by_name["b"].end == pytest.approx(6.0)

    def test_resolve_instants_recorded(self):
        collector = SpanCollector()
        run_app(collector)
        resolves = [e for e in collector.instants if e.name == "resolve"]
        assert resolves
        assert all(e.args["running"] >= 0 for e in resolves)

    def test_resolve_instants_can_be_disabled(self):
        collector = SpanCollector(resolve_events=False)
        run_app(collector)
        assert [e for e in collector.instants if e.name == "resolve"] == []

    def test_collection_does_not_perturb_simulated_time(self):
        plain = run_app(collector=None)
        observed = run_app(SpanCollector())
        assert observed.sim.now == plain.sim.now
        assert (
            observed.sim.stats.counters["resolves"]
            == plain.sim.stats.counters["resolves"]
        )


class TestEmission:
    def test_end_twice_rejected(self):
        sim = Simulator()
        collector = SpanCollector()
        collector.attach(sim)
        span = collector.begin("x", "s", ("g", "l"))
        collector.end(span)
        with pytest.raises(ObservabilityError):
            collector.end(span)

    def test_open_span_duration_rejected(self):
        sim = Simulator()
        collector = SpanCollector()
        collector.attach(sim)
        span = collector.begin("x", "s", ("g", "l"))
        assert span.open
        with pytest.raises(ObservabilityError):
            span.duration

    def test_sids_unique_and_ordered(self):
        sim = Simulator()
        collector = SpanCollector()
        collector.attach(sim)
        sids = [collector.begin("x", f"s{i}", ("g", "l")).sid for i in range(5)]
        assert sids == sorted(set(sids))

    def test_watch_closes_span_when_last_pid_ends(self):
        cluster = Cluster(num_nodes=1)
        collector = SpanCollector()
        collector.attach(cluster.sim)

        def app(work):
            def body(proc):
                yield Segment(work=work)

            return body

        p1 = cluster.spawn("a", app(2.0), node=0, core=0)
        p2 = cluster.spawn("b", app(4.0), node=0, core=1)
        group = collector.begin("group", "pair", ("cluster", "group"))
        collector.watch(group, [p1.pid, p2.pid])
        cluster.sim.run()
        assert group.end == pytest.approx(4.0)

    def test_window_opens_and_closes_once(self):
        sim = Simulator()
        collector = SpanCollector()
        collector.attach(sim)
        for active in (True, True, False, False):
            collector.window("k", "io", "busy", ("g", "l"), active=active)
        spans = collector.by_category("io")
        assert len(spans) == 1
        assert not spans[0].open

    def test_finalize_closes_open_spans(self):
        sim = Simulator()
        collector = SpanCollector()
        collector.attach(sim)
        span = collector.begin("x", "s", ("g", "l"))
        collector.finalize(t=7.0)
        assert span.end == pytest.approx(7.0)
        assert span.args["unfinished"] is True

    def test_wallclock_annotation_opt_in(self):
        sim = Simulator()
        collector = SpanCollector(wallclock=True)
        collector.attach(sim)
        span = collector.begin("x", "s", ("g", "l"))
        assert "host_s" in span.args
        plain = SpanCollector()
        plain.attach(Simulator())
        assert "host_s" not in plain.begin("x", "s", ("g", "l")).args

    def test_categories_summary(self):
        sim = Simulator()
        collector = SpanCollector()
        collector.attach(sim)
        collector.begin("a", "s1", ("g", "l"))
        collector.begin("b", "s2", ("g", "l"))
        collector.begin("a", "s3", ("g", "l"))
        assert collector.categories() == {"a": 2, "b": 1}
