"""Run manifests: content, canonical rendering, byte-identity contract."""

import json
import math

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import AnomalyInjector, CpuOccupy, Injection, MemBw
from repro.monitoring import MetricService
from repro.obs import (
    build_manifest,
    injection_labels,
    manifest_text,
    series_checksum,
    service_checksums,
    text_checksum,
    write_manifest,
)
from repro.version import __version__


def make_injector():
    cluster = Cluster(num_nodes=2)
    injector = AnomalyInjector(cluster)
    injector.add(
        Injection(MemBw(), node="node1", core=2, start=5.0, duration=10.0)
    )
    injector.add(Injection(CpuOccupy(utilization=80), node="node0", core=0, start=1.0))
    return injector


class TestChecksums:
    def test_text_checksum_stable(self):
        assert text_checksum("abc") == text_checksum("abc")
        assert text_checksum("abc") != text_checksum("abd")

    def test_series_checksum_uses_float64_bytes(self):
        a = series_checksum(np.array([1.0, 2.0, 3.0]))
        b = series_checksum(np.array([1, 2, 3], dtype=int))
        assert a == b  # both normalised to <f8
        assert a != series_checksum(np.array([1.0, 2.0, 3.5]))

    def test_service_checksums_one_digest_per_node(self):
        cluster = Cluster(num_nodes=2)
        service = MetricService(cluster)
        service.attach(end=5)
        cluster.sim.run(until=5)
        digests = service_checksums(service)
        assert sorted(digests) == ["node0", "node1"]
        assert all(len(d) == 64 for d in digests.values())


class TestInjectionLabels:
    def test_sorted_by_start_node_name(self):
        labels = injection_labels(make_injector())
        assert [lab["anomaly"] for lab in labels] == ["cpuoccupy", "membw"]
        assert labels[0]["start"] == pytest.approx(1.0)

    def test_infinite_duration_stringified(self):
        labels = injection_labels(make_injector())
        cpu = next(lab for lab in labels if lab["anomaly"] == "cpuoccupy")
        assert cpu["duration"] == "inf"

    def test_knobs_carry_table1_settings(self):
        labels = injection_labels(make_injector())
        cpu = next(lab for lab in labels if lab["anomaly"] == "cpuoccupy")
        assert cpu["knobs"]["utilization"] == 80


class TestBuildManifest:
    def test_minimal_manifest(self):
        manifest = build_manifest("exp")
        assert manifest["name"] == "exp"
        assert manifest["version"] == __version__
        assert manifest["seed"] is None

    def test_counters_included_timings_excluded(self):
        cluster = Cluster(num_nodes=1)
        CpuOccupy(utilization=50, duration=1.0).launch(cluster, "node0", core=0)
        cluster.sim.run(until=2)
        manifest = build_manifest("exp", stats=cluster.sim.stats)
        assert "resolves" in manifest["counters"]
        text = manifest_text(manifest)
        assert "timings" not in text and "t_resolve" not in text

    def test_results_checksum_matches_text(self):
        manifest = build_manifest("exp", results_text="table\n")
        assert manifest["results_checksum"] == text_checksum("table\n")

    def test_manifest_text_is_canonical(self):
        manifest = build_manifest("exp", config={"b": 1, "a": math.inf})
        text = manifest_text(manifest)
        assert text.endswith("\n")
        assert json.loads(text)["config"]["a"] == "inf"
        # sorted keys: "a" rendered before "b"
        assert text.index('"a"') < text.index('"b"')

    def test_write_manifest_round_trip(self, tmp_path):
        manifest = build_manifest("exp", seed=3, config={"n": 2})
        path = write_manifest(tmp_path / "manifest.json", manifest)
        assert json.loads(path.read_text())["seed"] == 3


class TestByteIdentity:
    def run_once(self, seed):
        cluster = Cluster(num_nodes=2)
        service = MetricService(cluster, noise=0.02, seed=seed)
        service.attach(end=20)
        injector = AnomalyInjector(cluster)
        injector.add(
            Injection(CpuOccupy(utilization=90), node="node0", core=0, start=2.0, duration=10.0)
        )
        injector.deploy()
        cluster.sim.run(until=20)
        return manifest_text(
            build_manifest(
                "identity",
                seed=seed,
                config={"nodes": 2},
                stats=cluster.sim.stats,
                injector=injector,
                service=service,
            )
        )

    def test_same_seed_reruns_byte_identical(self):
        assert self.run_once(7) == self.run_once(7)

    def test_different_seed_changes_checksums(self):
        assert self.run_once(7) != self.run_once(8)
