"""Streaming sinks: byte-identity with the batch exporters.

The contract under test (docs/OBSERVABILITY.md, "Streaming sinks"): a
sink receives records in completion (``seq``) order and an incremental
writer therefore produces *byte-identical* files to the end-of-run
exporters, while holding O(tracks) state instead of the record backlog.
"""

import io
import json

import pytest

from repro.errors import ConfigError, ObservabilityError
from repro.monitoring.export import to_jsonl_text
from repro.obs import assert_valid_chrome_trace, run_scenario
from repro.obs.export import chrome_trace, jsonl_lines, write_jsonl_trace
from repro.obs.stream import (
    COUNTERS_JSON,
    COUNTERS_JSONL,
    METRICS_DIR,
    TRACE_CHROME,
    TRACE_JSONL,
    ChromeStreamWriter,
    JsonlStreamWriter,
    MetricJsonlStreamWriter,
    ObsSink,
    counters_snapshot_text,
)

HORIZON = 60.0


class _CountingSink(ObsSink):
    def __init__(self):
        self.opened = 0
        self.closed = 0
        self.instants = 0
        self.samples = 0

    def on_span_open(self, span):
        self.opened += 1

    def on_span_close(self, span):
        self.closed += 1

    def on_instant(self, event):
        self.instants += 1

    def on_metric_sample(self, time, node, values):
        self.samples += 1


@pytest.fixture(scope="module")
def streamed(tmp_path_factory):
    """One scenario run with in-memory sinks *and* a RunStreamer attached."""
    run_dir = tmp_path_factory.mktemp("stream") / "run"
    buffers = {"jsonl": io.StringIO(), "chrome": io.StringIO()}
    metric_buffers = {}
    counter = _CountingSink()

    def hook(obs):
        obs.collector.add_sink(JsonlStreamWriter(buffers["jsonl"]))
        obs.collector.add_sink(ChromeStreamWriter(buffers["chrome"]))
        obs.collector.add_sink(counter)
        service = obs.service
        for node in sorted(service.data):
            buf = metric_buffers.setdefault(node, io.StringIO())
            service.add_sink(
                MetricJsonlStreamWriter(buf, node, service.metric_names)
            )
        service.add_sink(counter)
        obs.stream_to(run_dir, chrome=True)

    run = run_scenario("loadbalance", seed=0, horizon=HORIZON, on_obs=hook)
    # close_streams() finalizes the collector, so the in-memory sinks see
    # the horizon-sealed spans too; only the Chrome footer is left to us.
    assert run.obs.close_streams() == [run_dir]
    for sink in list(run.obs.collector.sinks):
        sink.close()
    return run, run_dir, buffers, metric_buffers, counter


class TestByteIdentity:
    def test_jsonl_stream_matches_batch(self, streamed):
        run, _, buffers, _, _ = streamed
        batch = "\n".join(jsonl_lines(run.obs.collector)) + "\n"
        assert buffers["jsonl"].getvalue() == batch

    def test_chrome_stream_matches_batch(self, streamed):
        run, _, buffers, _, _ = streamed
        batch = (
            json.dumps(chrome_trace(run.obs.collector), sort_keys=True, indent=1)
            + "\n"
        )
        assert buffers["chrome"].getvalue() == batch

    def test_chrome_stream_is_schema_valid(self, streamed):
        _, _, buffers, _, _ = streamed
        trace = json.loads(buffers["chrome"].getvalue())
        assert_valid_chrome_trace(trace)

    def test_metric_streams_match_batch(self, streamed):
        run, _, _, metric_buffers, _ = streamed
        assert metric_buffers  # the scenario samples at least one node
        for node, buf in metric_buffers.items():
            assert buf.getvalue() == to_jsonl_text(run.obs.service, node)

    def test_counting_sink_saw_every_record(self, streamed):
        run, _, _, _, counter = streamed
        collector = run.obs.collector
        assert counter.closed == len(collector.spans)
        assert counter.instants == len(collector.instants)
        # begin()ed spans open before they close; complete() skips the
        # open callback, so opened <= closed.
        assert 0 < counter.opened <= counter.closed
        nodes = len(run.obs.service.data)
        assert counter.samples == len(run.obs.service.times) * nodes


class TestRunStreamer:
    def test_run_directory_layout(self, streamed):
        _, run_dir, _, _, _ = streamed
        assert (run_dir / TRACE_JSONL).is_file()
        assert (run_dir / TRACE_CHROME).is_file()
        assert (run_dir / COUNTERS_JSONL).is_file()
        assert (run_dir / COUNTERS_JSON).is_file()
        metrics = sorted(p.name for p in (run_dir / METRICS_DIR).iterdir())
        assert metrics == ["node0.jsonl", "node1.jsonl"]

    def test_streamed_files_match_batch_exports(self, streamed, tmp_path):
        run, run_dir, _, _, _ = streamed
        batch_path = tmp_path / "batch.jsonl"
        write_jsonl_trace(run.obs.collector, batch_path)
        assert (run_dir / TRACE_JSONL).read_bytes() == batch_path.read_bytes()

    def test_final_counter_snapshot(self, streamed):
        run, run_dir, _, _, _ = streamed
        text = (run_dir / COUNTERS_JSON).read_text()
        assert text == counters_snapshot_text(run.obs.stats)
        payload = json.loads(text)
        assert payload["counters"] == dict(run.obs.stats.counters)

    def test_counter_stream_is_one_snapshot_per_tick(self, streamed):
        run, run_dir, _, _, _ = streamed
        lines = (run_dir / COUNTERS_JSONL).read_text().splitlines()
        times = [json.loads(line)["time"] for line in lines]
        assert times == sorted(set(times))  # strictly one record per tick
        assert len(times) == len(run.obs.service.times)

    def test_sinks_detached_after_close(self, streamed):
        run, _, _, _, counter = streamed
        # close_streams() removed the streamer's sinks; only the three
        # in-memory ones registered by the fixture hook remain.
        assert len(run.obs.collector.sinks) == 3
        assert counter in run.obs.service.sinks


class TestWriterEdges:
    def test_write_after_close_raises(self):
        sink = JsonlStreamWriter(io.StringIO())
        sink.close()
        with pytest.raises(ObservabilityError, match="closed"):
            sink._write("x")

    def test_close_is_idempotent(self):
        buf = io.StringIO()
        sink = ChromeStreamWriter(buf)
        sink.close()
        first = buf.getvalue()
        sink.close()
        assert buf.getvalue() == first

    def test_empty_chrome_stream_is_valid_json(self):
        buf = io.StringIO()
        ChromeStreamWriter(buf).close()
        trace = json.loads(buf.getvalue())
        assert trace["traceEvents"] == []

    def test_metric_writer_ignores_other_nodes(self):
        buf = io.StringIO()
        sink = MetricJsonlStreamWriter(buf, "node0", ["m"])
        sink.on_metric_sample(1.0, "node1", {"m": 2.0})
        assert buf.getvalue() == ""
        sink.on_metric_sample(1.0, "node0", {"m": 2.0})
        assert json.loads(buf.getvalue()) == {"time": 1.0, "node": "node0", "m": 2.0}

    def test_base_sink_callbacks_are_noops(self):
        sink = ObsSink()
        sink.on_span_open(None)
        sink.on_span_close(None)
        sink.on_instant(None)
        sink.on_metric_sample(0.0, "node0", {})
        sink.flush()
        sink.close()


class TestServiceSinkRegistry:
    def test_duplicate_add_rejected(self, streamed):
        run, _, _, _, counter = streamed
        with pytest.raises(ConfigError):
            run.obs.service.add_sink(counter)

    def test_remove_absent_rejected(self, streamed):
        run, _, _, _, _ = streamed
        with pytest.raises(ConfigError):
            run.obs.service.remove_sink(ObsSink())
