"""Cache-occupancy model: examples and property-based invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.model import (
    CacheDemand,
    cascade_miss_factor,
    inclusive_footprints,
    solve_occupancy,
)
from repro.errors import ResourceError
from repro.units import KB, MB


class TestSolveOccupancy:
    def test_everything_fits_no_eviction(self):
        res = solve_occupancy(
            40 * MB,
            [CacheDemand(1, 10 * MB, 1.0), CacheDemand(2, 20 * MB, 1.0)],
        )
        assert res[1].eviction == 0.0
        assert res[2].eviction == 0.0
        assert res[1].occupancy == 10 * MB

    def test_oversubscription_splits_by_pressure(self):
        res = solve_occupancy(
            40 * MB,
            [CacheDemand(1, 40 * MB, 1.0), CacheDemand(2, 40 * MB, 1.0)],
        )
        assert res[1].occupancy == pytest.approx(20 * MB, rel=1e-6)
        assert res[1].eviction == pytest.approx(0.5, rel=1e-6)

    def test_intensity_weights_the_contest(self):
        res = solve_occupancy(
            40 * MB,
            [CacheDemand(1, 40 * MB, 4.0), CacheDemand(2, 40 * MB, 1.0)],
        )
        assert res[1].occupancy > res[2].occupancy
        assert res[1].eviction < res[2].eviction

    def test_zero_footprint_untouched(self):
        res = solve_occupancy(10 * MB, [CacheDemand(1, 0.0, 1.0)])
        assert res[1].eviction == 0.0
        assert res[1].occupancy == 0.0

    def test_small_tenant_squeezed_proportionally(self):
        # Equal intensity: occupancy follows footprint pressure, so the
        # small tenant holds only its proportional share.
        res = solve_occupancy(
            10 * MB,
            [CacheDemand(1, 1 * MB, 1.0), CacheDemand(2, 100 * MB, 1.0)],
        )
        assert res[1].occupancy == pytest.approx(10 * MB / 101, rel=1e-3)
        assert res[1].occupancy + res[2].occupancy == pytest.approx(10 * MB, rel=1e-6)

    def test_capped_tenant_leftover_redistributed(self):
        # A hot small tenant reaches its footprint cap; the leftover
        # share flows to the big tenant.
        res = solve_occupancy(
            10 * MB,
            [CacheDemand(1, 1 * MB, 50.0), CacheDemand(2, 100 * MB, 1.0)],
        )
        assert res[1].occupancy == pytest.approx(1 * MB, rel=1e-3)
        assert res[2].occupancy == pytest.approx(9 * MB, rel=1e-3)

    def test_self_eviction_when_alone_and_oversized(self):
        res = solve_occupancy(10 * MB, [CacheDemand(1, 20 * MB, 1.0)])
        assert res[1].eviction == pytest.approx(0.5, rel=1e-6)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ResourceError):
            solve_occupancy(-1.0, [])

    def test_negative_footprint_rejected(self):
        with pytest.raises(ResourceError):
            CacheDemand(1, -1.0, 1.0)


@settings(max_examples=200, deadline=None)
@given(
    capacity=st.floats(min_value=1e3, max_value=1e9, allow_nan=False),
    tenants=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e9, allow_nan=False),  # footprint
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),  # intensity
        ),
        min_size=1,
        max_size=8,
    ),
)
def test_occupancy_invariants(capacity, tenants):
    demands = [CacheDemand(i, fp, w) for i, (fp, w) in enumerate(tenants)]
    res = solve_occupancy(capacity, demands)
    total_occupancy = sum(r.occupancy for r in res.values())
    assert total_occupancy <= capacity * (1 + 1e-6) + 1e-6
    for d in demands:
        r = res[d.pid]
        assert 0.0 <= r.eviction <= 1.0
        assert r.occupancy <= d.footprint + 1e-6
        # Anyone who fits entirely has zero eviction accounting consistency.
        if d.footprint > 0:
            assert r.eviction == pytest.approx(
                1.0 - r.occupancy / d.footprint, abs=1e-6
            )


@settings(max_examples=100, deadline=None)
@given(
    capacity=st.floats(min_value=1e3, max_value=1e9),
    footprint=st.floats(min_value=1.0, max_value=1e9),
)
def test_single_tenant_gets_min_of_footprint_and_capacity(capacity, footprint):
    res = solve_occupancy(capacity, [CacheDemand(0, footprint, 1.0)])
    assert res[0].occupancy == pytest.approx(min(capacity, footprint), rel=1e-6)


class TestInclusiveFootprints:
    SIZES = {"L1": 32 * KB, "L2": 256 * KB, "L3": 40 * MB}

    def test_single_l3_number_fills_inner_levels(self):
        fp = inclusive_footprints({"L3": 10 * MB}, self.SIZES)
        assert fp["L1"] == 32 * KB
        assert fp["L2"] == 256 * KB
        assert fp["L3"] == 10 * MB

    def test_small_set_fits_everywhere(self):
        fp = inclusive_footprints({"L3": 4 * KB}, self.SIZES)
        assert fp["L1"] == 4 * KB
        assert fp["L2"] == 4 * KB
        assert fp["L3"] == 4 * KB

    def test_explicit_levels_respected(self):
        fp = inclusive_footprints({"L1": 16 * KB, "L3": 1 * MB}, self.SIZES)
        assert fp["L1"] == 16 * KB
        assert fp["L3"] == 1 * MB

    def test_empty_footprint(self):
        fp = inclusive_footprints({}, self.SIZES)
        assert fp == {"L1": 0.0, "L2": 0.0, "L3": 0.0}

    def test_derived_levels_clamped_declared_kept(self):
        fp = inclusive_footprints({"L3": 100 * MB}, self.SIZES)
        # the declared level keeps its oversized demand (self-eviction)...
        assert fp["L3"] == 100 * MB
        # ...while derived inner levels clamp to their capacity
        assert fp["L1"] == 32 * KB
        assert fp["L2"] == 256 * KB


class TestCascade:
    CASCADE = (0.15, 0.35, 1.0)

    def test_no_eviction_no_misses(self):
        assert cascade_miss_factor({}, self.CASCADE) == 0.0

    def test_l3_eviction_dominates(self):
        full_l3 = cascade_miss_factor({"L3": 1.0}, self.CASCADE)
        full_l1 = cascade_miss_factor({"L1": 1.0}, self.CASCADE)
        assert full_l3 > full_l1

    def test_monotone_in_level(self):
        l1 = cascade_miss_factor({"L1": 0.5}, self.CASCADE)
        l2 = cascade_miss_factor({"L2": 0.5}, self.CASCADE)
        l3 = cascade_miss_factor({"L3": 0.5}, self.CASCADE)
        assert l1 < l2 < l3

    def test_saturates_at_one(self):
        val = cascade_miss_factor({"L1": 1.0, "L2": 1.0, "L3": 1.0}, self.CASCADE)
        assert val == 1.0
