"""Property-based checks on the cache model helpers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.model import cascade_miss_factor, inclusive_footprints
from repro.units import KB, MB

SIZES = {"L1": 32 * KB, "L2": 256 * KB, "L3": 40 * MB}
CASCADE = (0.15, 0.35, 1.0)

evictions = st.fixed_dictionaries(
    {
        "L1": st.floats(min_value=0, max_value=1),
        "L2": st.floats(min_value=0, max_value=1),
        "L3": st.floats(min_value=0, max_value=1),
    }
)


@settings(max_examples=200, deadline=None)
@given(e=evictions)
def test_cascade_bounded(e):
    factor = cascade_miss_factor(e, CASCADE)
    assert 0.0 <= factor <= 1.0


@settings(max_examples=200, deadline=None)
@given(e=evictions, bump=st.sampled_from(["L1", "L2", "L3"]))
def test_cascade_monotone_in_each_level(e, bump):
    factor = cascade_miss_factor(e, CASCADE)
    bumped = dict(e)
    bumped[bump] = min(1.0, bumped[bump] + 0.2)
    assert cascade_miss_factor(bumped, CASCADE) >= factor - 1e-12


@settings(max_examples=200, deadline=None)
@given(total=st.floats(min_value=0, max_value=200 * MB))
def test_inclusive_derived_levels_clamped(total):
    fp = inclusive_footprints({"L3": total}, SIZES)
    assert fp["L3"] == total  # declared level preserved verbatim
    assert fp["L1"] <= SIZES["L1"]
    assert fp["L2"] <= SIZES["L2"]
    assert fp["L1"] <= fp["L2"] + 1e-9 or total < SIZES["L1"]


@settings(max_examples=100, deadline=None)
@given(
    l1=st.floats(min_value=0, max_value=64 * KB),
    l3=st.floats(min_value=0, max_value=80 * MB),
)
def test_inclusive_explicit_levels_kept(l1, l3):
    fp = inclusive_footprints({"L1": l1, "L3": l3}, SIZES)
    assert fp["L1"] == l1
    assert fp["L3"] == l3
    # the derived middle level inherits the largest declared value, capped
    assert fp["L2"] == min(max(l1, l3), SIZES["L2"])
