"""Top-level package surface and entry points."""

import subprocess
import sys

import repro


def test_version_exposed():
    assert repro.__version__.count(".") == 2


def test_module_entry_point_help():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0
    assert "cpuoccupy" in proc.stdout
    assert "cachecopy" in proc.stdout


def test_module_entry_point_runs_anomaly():
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "cpuoccupy",
            "-u",
            "50",
            "--horizon",
            "5",
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0
    assert "ran cpuoccupy" in proc.stdout


def test_public_subpackages_importable():
    import repro.analytics
    import repro.api
    import repro.apps
    import repro.cluster
    import repro.core
    import repro.experiments
    import repro.monitoring
    import repro.mpi
    import repro.network
    import repro.runtime
    import repro.scheduling
    import repro.service
    import repro.storage
    import repro.varbench  # noqa: F401


def test_api_and_service_declare_their_surface():
    import repro.api
    import repro.service

    for package in (repro.api, repro.service):
        assert package.__all__ == sorted(package.__all__)
        for name in package.__all__:
            assert not name.startswith("_")
            assert hasattr(package, name)


def test_anomaly_names_match_paper_table1():
    from repro.core import ANOMALY_REGISTRY

    assert sorted(ANOMALY_REGISTRY) == [
        "cachecopy",
        "cpuoccupy",
        "iobandwidth",
        "iometadata",
        "membw",
        "memeater",
        "memleak",
        "netoccupy",
    ]
