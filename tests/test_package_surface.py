"""Top-level package surface and entry points."""

import subprocess
import sys

import repro


def test_version_exposed():
    assert repro.__version__.count(".") == 2


def test_module_entry_point_help():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0
    assert "cpuoccupy" in proc.stdout
    assert "cachecopy" in proc.stdout


def test_module_entry_point_runs_anomaly():
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "cpuoccupy",
            "-u",
            "50",
            "--horizon",
            "5",
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0
    assert "ran cpuoccupy" in proc.stdout


def test_public_subpackages_importable():
    import repro.analytics
    import repro.api
    import repro.apps
    import repro.cluster
    import repro.core
    import repro.experiments
    import repro.monitoring
    import repro.mpi
    import repro.network
    import repro.runtime
    import repro.scheduling
    import repro.service
    import repro.storage
    import repro.traces
    import repro.varbench  # noqa: F401


def test_api_and_service_declare_their_surface():
    import repro.api
    import repro.service

    for package in (repro.api, repro.service):
        assert package.__all__ == sorted(package.__all__)
        for name in package.__all__:
            assert not name.startswith("_")
            assert hasattr(package, name)


def test_traces_declare_their_surface():
    import repro.traces

    assert repro.traces.__all__ == sorted(repro.traces.__all__)
    for name in repro.traces.__all__:
        assert not name.startswith("_")
        assert hasattr(repro.traces, name)


def test_trace_schema_surface_is_pinned():
    # The canonical format is a compatibility contract: kinds, machines
    # and the version only change together with a corpus re-pin and a
    # docs/TRACES.md update.
    from repro.traces import RECORD_KINDS, TRACE_MACHINES, TRACE_VERSION

    assert TRACE_VERSION == 1
    assert RECORD_KINDS == ("collective", "compute", "io", "recv", "send", "sleep")
    assert TRACE_MACHINES == ("chameleon", "voltrino")


def test_trace_generator_names_are_pinned():
    from repro.traces import TRACE_GENERATORS

    assert sorted(TRACE_GENERATORS) == [
        "ai_training",
        "checkpoint_burst",
        "metadata_storm",
        "parameter_server",
    ]


def test_anomaly_names_match_paper_table1():
    from repro.core import ANOMALY_REGISTRY

    assert sorted(ANOMALY_REGISTRY) == [
        "cachecopy",
        "cpuoccupy",
        "iobandwidth",
        "iometadata",
        "membw",
        "memeater",
        "memleak",
        "netoccupy",
    ]
