"""FaultSchedule: explicit campaigns and seeded generation."""

import math

import pytest

from repro.errors import FaultError
from repro.faults import FaultSchedule
from repro.faults.models import TransientSlowdown


def _signature(schedule):
    return [
        (e.time, e.node, e.fault.name, e.duration) for e in schedule.events
    ]


class TestExplicit:
    def test_add_by_name_builds_fault_with_knobs(self):
        schedule = FaultSchedule()
        event = schedule.add(5.0, "node1", "slowdown", duration=10.0, factor=0.5)
        assert event.fault.name == "slowdown"
        assert event.fault.factor == 0.5

    def test_knobs_rejected_with_fault_instance(self):
        with pytest.raises(FaultError, match="knobs"):
            FaultSchedule().add(0.0, "n", TransientSlowdown(), factor=0.5)

    def test_events_sorted_by_time_node_name(self):
        schedule = FaultSchedule()
        schedule.add(9.0, "node1", "node_hang", duration=1.0)
        schedule.add(3.0, "node2", "slowdown", duration=1.0)
        schedule.add(3.0, "node0", "node_crash", duration=1.0)
        assert [(e.time, e.node) for e in schedule.events] == [
            (3.0, "node0"),
            (3.0, "node2"),
            (9.0, "node1"),
        ]

    def test_negative_time_rejected(self):
        with pytest.raises(FaultError):
            FaultSchedule().add(-1.0, "n", "node_crash")

    def test_default_duration_is_permanent(self):
        event = FaultSchedule().add(0.0, "n", "node_crash")
        assert math.isinf(event.duration)


class TestGenerate:
    NODES = ["node0", "node1", "node2", "node3"]

    def test_same_seed_same_campaign(self):
        a = FaultSchedule.generate(11, horizon=1000, nodes=self.NODES, rate=0.01)
        b = FaultSchedule.generate(11, horizon=1000, nodes=self.NODES, rate=0.01)
        assert len(a) > 0
        assert _signature(a) == _signature(b)

    def test_scope_separates_campaigns(self):
        a = FaultSchedule.generate(
            11, horizon=1000, nodes=self.NODES, rate=0.01, scope="a"
        )
        b = FaultSchedule.generate(
            11, horizon=1000, nodes=self.NODES, rate=0.01, scope="b"
        )
        assert _signature(a) != _signature(b)

    def test_zero_rate_is_empty(self):
        schedule = FaultSchedule.generate(
            1, horizon=1000, nodes=self.NODES, rate=0.0
        )
        assert len(schedule) == 0

    def test_events_within_horizon_and_kinds(self):
        kinds = ("node_hang", "slowdown")
        schedule = FaultSchedule.generate(
            2, horizon=500, nodes=self.NODES, rate=0.05, kinds=kinds
        )
        for event in schedule.events:
            assert 0 <= event.time < 500
            assert event.node in self.NODES
            assert event.fault.name in kinds
            assert 30.0 <= event.duration <= 300.0

    def test_validation(self):
        with pytest.raises(FaultError):
            FaultSchedule.generate(1, horizon=0, nodes=self.NODES, rate=0.1)
        with pytest.raises(FaultError):
            FaultSchedule.generate(1, horizon=10, nodes=[], rate=0.1)
        with pytest.raises(FaultError):
            FaultSchedule.generate(1, horizon=10, nodes=self.NODES, rate=-0.1)
        with pytest.raises(FaultError):
            FaultSchedule.generate(
                1, horizon=10, nodes=self.NODES, rate=0.1, kinds=()
            )
