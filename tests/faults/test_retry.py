"""RetryPolicy: deterministic backoff schedules."""

import math

import pytest

from repro.errors import FaultError
from repro.faults import RetryPolicy


class TestDelays:
    def test_same_seed_and_scope_identical(self):
        policy = RetryPolicy(base_delay=2.0, factor=2.0, jitter=0.5, max_retries=6)
        assert policy.delays(7, "jobA") == policy.delays(7, "jobA")

    def test_scope_separates_streams(self):
        policy = RetryPolicy(max_retries=6)
        assert policy.delays(7, "jobA") != policy.delays(7, "jobB")

    def test_seed_separates_streams(self):
        policy = RetryPolicy(max_retries=6)
        assert policy.delays(7, "jobA") != policy.delays(8, "jobA")

    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(
            base_delay=1.0, factor=2.0, jitter=0.0, max_delay=8.0, max_retries=6
        )
        assert policy.delays(0, "x") == [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]

    def test_jitter_bounded_and_positive(self):
        policy = RetryPolicy(base_delay=1.0, factor=1.0, jitter=0.25, max_retries=50)
        for delay in policy.delays(3, "jitter"):
            assert 1.0 <= delay <= 1.25

    def test_delay_count_is_max_retries(self):
        assert len(RetryPolicy(max_retries=3).delays(0, "n")) == 3


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_delay": 0.0},
            {"factor": 0.5},
            {"jitter": -0.1},
            {"max_delay": 0.0},
            {"max_retries": -1},
            {"deadline": 0.0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(FaultError):
            RetryPolicy(**kwargs)

    def test_default_deadline_is_unbounded(self):
        assert math.isinf(RetryPolicy().deadline)
