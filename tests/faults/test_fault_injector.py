"""Fault models wired through the injector, engine and rate model."""

import pytest

from repro.cluster import Cluster
from repro.core import AnomalyInjector, CpuOccupy, Injection
from repro.errors import FaultError
from repro.faults import FaultInjector, FaultSchedule
from repro.mpi.comm import p2p_transfer
from repro.obs import SpanCollector
from repro.sim.process import ProcessState, Segment, Sleep
from repro.units import GB


def busy(work=10.0):
    def body(proc):
        yield Segment(work=work, cpu=1.0, label="busy")

    return body


class TestAttachment:
    def test_attach_sets_cluster_faults(self):
        cluster = Cluster(num_nodes=1)
        assert cluster.faults is None
        injector = FaultInjector(cluster)
        assert cluster.faults is injector.state

    def test_double_attach_rejected(self):
        cluster = Cluster(num_nodes=1)
        FaultInjector(cluster)
        with pytest.raises(FaultError, match="already"):
            FaultInjector(cluster)

    def test_detach_restores_unfaulted_state(self):
        cluster = Cluster(num_nodes=1)
        injector = FaultInjector(cluster)
        injector.detach()
        assert cluster.faults is None


class TestComputeFaults:
    def test_slowdown_stretches_runtime(self):
        cluster = Cluster.voltrino(num_nodes=2)
        injector = FaultInjector(cluster)
        injector.inject("slowdown", "node0", factor=0.5)
        proc = cluster.spawn("p", busy(10.0), node="node0", core=0)
        cluster.sim.run()
        assert proc.end_time == pytest.approx(20.0, rel=0.05)

    def test_slowdown_window_reverts(self):
        cluster = Cluster.voltrino(num_nodes=2)
        injector = FaultInjector(cluster)
        injector.inject("slowdown", "node0", start=0.0, duration=10.0, factor=0.5)
        proc = cluster.spawn("p", busy(10.0), node="node0", core=0)
        cluster.sim.run()
        # 5 units done slow by t=10, the rest at (near) full speed.
        assert proc.end_time == pytest.approx(15.0, rel=0.05)
        assert not injector.state.active

    def test_hang_freezes_without_killing(self):
        cluster = Cluster.voltrino(num_nodes=2)
        injector = FaultInjector(cluster)
        injector.inject("node_hang", "node0", start=0.0, duration=5.0)
        proc = cluster.spawn("p", busy(10.0), node="node0", core=0)
        cluster.sim.run()
        assert proc.state is ProcessState.DONE
        assert proc.end_time == pytest.approx(15.0, rel=0.05)

    def test_other_nodes_unaffected(self):
        cluster = Cluster.voltrino(num_nodes=2)
        injector = FaultInjector(cluster)
        injector.inject("slowdown", "node0", factor=0.5)
        other = cluster.spawn("q", busy(10.0), node="node1", core=0)
        cluster.sim.run()
        assert other.end_time == pytest.approx(10.0, rel=0.05)


class TestNodeCrash:
    def test_crash_kills_local_processes_only(self):
        cluster = Cluster.voltrino(num_nodes=2)
        injector = FaultInjector(cluster)
        victim = cluster.spawn("v", busy(100.0), node="node0", core=0)
        survivor = cluster.spawn("s", busy(10.0), node="node1", core=0)
        injector.inject("node_crash", "node0", start=2.0, duration=50.0)
        cluster.sim.run()
        assert victim.state is ProcessState.KILLED
        assert victim.exit_reason == "node-crash"
        assert victim.end_time == pytest.approx(2.0)
        assert survivor.state is ProcessState.DONE

    def test_down_window_and_recovery(self):
        cluster = Cluster.voltrino(num_nodes=2)
        injector = FaultInjector(cluster)
        injector.inject("node_crash", "node0", start=2.0, duration=8.0)
        cluster.sim.run(until=20)
        assert injector.state.down_nodes == ()
        assert injector.crashed_between("node0", 0.0, 20.0)
        assert injector.crashed_between("node0", 3.0, 4.0)
        assert not injector.crashed_between("node0", 11.0, 20.0)
        assert not injector.crashed_between("node1", 0.0, 20.0)

    def test_fault_labels_ground_truth(self):
        cluster = Cluster.voltrino(num_nodes=2)
        injector = FaultInjector(cluster)
        injector.add(2.0, "node0", "node_crash", duration=8.0)
        injector.deploy()
        assert injector.fault_labels(5.0) == ["node_crash"]
        assert injector.fault_labels(15.0) == []


class TestLinkDown:
    def test_transfer_stalls_until_link_restored(self):
        cluster = Cluster.voltrino(num_nodes=2)
        injector = FaultInjector(cluster)
        injector.inject("link_down", "node0", start=0.0, duration=3.0)

        def sender(proc):
            yield p2p_transfer(dst="node1", nbytes=1e9, peak_bw=1e9)

        proc = cluster.spawn("tx", sender, node="node0", core=0)
        cluster.sim.run()
        assert proc.state is ProcessState.DONE
        assert proc.end_time == pytest.approx(4.0, rel=0.1)


class TestOomKill:
    def test_largest_consumer_dies(self):
        cluster = Cluster.voltrino(num_nodes=1)
        injector = FaultInjector(cluster)

        def hog(size):
            def body(proc):
                cluster.node("node0").memory.alloc(proc.pid, size)
                yield Sleep(100.0)

            return body

        big = cluster.spawn("big", hog(8 * GB), node="node0", core=0)
        small = cluster.spawn("small", hog(1 * GB), node="node0", core=1)
        injector.inject("oom_kill", "node0", start=5.0)
        cluster.sim.run()
        assert big.state is ProcessState.KILLED
        assert big.exit_reason == "oom-killed"
        assert small.state is ProcessState.DONE


class TestStorageFaults:
    def test_meta_brownout_window(self):
        cluster = Cluster.chameleon(num_nodes=2, with_nfs=True)
        injector = FaultInjector(cluster)
        fs = cluster.filesystem("nfs")
        injector.inject("meta_brownout", "node0", start=1.0, duration=5.0, factor=0.2)
        cluster.sim.run(until=3)
        assert fs.meta_health == pytest.approx(0.2)
        assert fs.effective_meta_capacity == pytest.approx(0.2 * fs.meta_capacity)
        cluster.sim.run(until=10)
        assert fs.meta_health == pytest.approx(1.0)

    def test_ost_failure_degrades_bandwidth_then_recovers(self):
        cluster = Cluster.chameleon(num_nodes=2, with_nfs=True)
        fs = cluster.filesystem("nfs")
        fs.n_osts = 4
        injector = FaultInjector(cluster)
        injector.inject("ost_failure", "node0", start=1.0, duration=5.0, count=2)
        cluster.sim.run(until=3)
        assert fs.effective_disk_bw == pytest.approx(0.5 * fs.disk_bw)
        cluster.sim.run(until=10)
        assert fs.effective_disk_bw == pytest.approx(fs.disk_bw)
        assert fs.health_revision == 4  # 2 failures + 2 restores


class TestComposition:
    def test_active_labels_drop_anomalies_on_crashed_nodes(self):
        cluster = Cluster.voltrino(num_nodes=2)
        anomalies = AnomalyInjector(cluster)
        anomalies.add(
            Injection(CpuOccupy(utilization=80), node="node0", start=0.0, duration=50.0)
        )
        anomalies.add(
            Injection(CpuOccupy(utilization=80), node="node1", start=0.0, duration=50.0)
        )
        anomalies.deploy()
        faults = FaultInjector(cluster)
        faults.add(10.0, "node0", "node_crash", duration=20.0)
        faults.deploy()
        cluster.sim.run(until=40)
        assert anomalies.active_labels(5.0) == ["cpuoccupy", "cpuoccupy"]
        assert anomalies.active_labels(15.0, faults=faults) == ["cpuoccupy"]
        assert anomalies.active_labels(15.0) == ["cpuoccupy", "cpuoccupy"]

    def test_fault_spans_and_recovery_instants(self):
        cluster = Cluster.voltrino(num_nodes=2)
        collector = SpanCollector()
        collector.attach(cluster.sim)
        injector = FaultInjector(cluster)
        injector.inject("slowdown", "node0", start=2.0, duration=6.0, factor=0.5)
        cluster.sim.run(until=20)
        spans = [s for s in collector.spans if s.cat == "faults"]
        assert len(spans) == 1
        assert spans[0].name == "slowdown"
        assert spans[0].start == pytest.approx(2.0)
        assert spans[0].end == pytest.approx(8.0)
        assert spans[0].args["node"] == "node0"
        assert spans[0].args["factor"] == 0.5
        recoveries = [
            e for e in collector.instants if e.name == "recovered:slowdown"
        ]
        assert len(recoveries) == 1

    def test_schedule_extension_deploys_once(self):
        cluster = Cluster.voltrino(num_nodes=2)
        injector = FaultInjector(cluster)
        schedule = FaultSchedule()
        schedule.add(1.0, "node0", "slowdown", duration=2.0)
        injector.extend(schedule)
        assert injector.deploy() == 1
        assert injector.deploy() == 0
