"""Resilience mechanics: checkpoint/restart, requeue, barrier timeouts."""

import pytest

from repro.apps import AppJob, get_app
from repro.apps.base import CheckpointStore
from repro.cluster import Cluster
from repro.errors import ConfigError, MPITimeoutError
from repro.faults import FaultInjector, RetryPolicy
from repro.monitoring import MetricService
from repro.mpi.comm import Barrier
from repro.scheduling import JobScheduler, RoundRobin
from repro.sim.process import ProcessState, Sleep


class TestCheckpointStore:
    def test_commit_is_monotonic(self):
        store = CheckpointStore()
        store.commit(4)
        store.commit(2)
        assert store.committed == 4
        assert store.commits == 2


class TestCheckpointing:
    def test_zero_cost_checkpointing_is_exactly_free(self):
        """With no faults and zero cost, checkpointing must not perturb
        the simulation at all — byte-for-byte identical runtimes."""
        runtimes = []
        for interval in (None, 4):
            cluster = Cluster(num_nodes=1)
            app = get_app("CoMD").scaled(iterations=12)
            job = AppJob(
                app,
                cluster,
                nodes=[0],
                ranks_per_node=2,
                seed=7,
                checkpoint_interval=interval,
            )
            runtimes.append(job.run(timeout=10_000))
        assert runtimes[0] == runtimes[1]

    def test_checkpoint_cost_adds_time(self):
        runtimes = []
        for cost in (0.0, 0.5):
            cluster = Cluster(num_nodes=1)
            app = get_app("CoMD").scaled(iterations=12)
            job = AppJob(
                app,
                cluster,
                nodes=[0],
                ranks_per_node=1,
                seed=7,
                checkpoint_interval=4,
                checkpoint_cost=cost,
            )
            runtimes.append(job.run(timeout=10_000))
        assert runtimes[1] > runtimes[0]

    def test_commits_follow_interval(self):
        cluster = Cluster(num_nodes=1)
        app = get_app("CoMD").scaled(iterations=12)
        job = AppJob(
            app, cluster, nodes=[0], ranks_per_node=2, seed=7,
            checkpoint_interval=4,
        )
        job.run(timeout=10_000)
        # commits at iterations 4 and 8; the final iteration needs none.
        assert job.checkpoint.committed == 8
        assert job.checkpoint.commits == 2 * 2  # per rank

    def test_restart_resumes_from_committed_iteration(self):
        cluster = Cluster(num_nodes=1)
        app = get_app("CoMD").scaled(iterations=12)
        store = CheckpointStore()
        store.commit(8)
        job = AppJob(
            app,
            cluster,
            nodes=[0],
            ranks_per_node=1,
            seed=7,
            checkpoint=store,
            checkpoint_interval=4,
            start_iteration=store.committed,
        )
        runtime = job.run(timeout=10_000)
        assert runtime == pytest.approx(4 * app.profile.iter_seconds, rel=0.1)

    def test_invalid_checkpoint_knobs(self):
        cluster = Cluster(num_nodes=1)
        app = get_app("CoMD").scaled(iterations=4)
        with pytest.raises(ConfigError):
            AppJob(app, cluster, nodes=[0], checkpoint_interval=0)
        with pytest.raises(ConfigError):
            AppJob(app, cluster, nodes=[0], checkpoint_cost=-1.0)
        with pytest.raises(ConfigError):
            AppJob(app, cluster, nodes=[0], start_iteration=5)


@pytest.fixture
def managed_cluster():
    cluster = Cluster.voltrino(num_nodes=8)
    service = MetricService(cluster)
    service.attach(end=1_000_000)
    scheduler = JobScheduler(cluster, service)
    faults = FaultInjector(cluster)
    return cluster, scheduler, faults


class TestManagedJob:
    APP_ITERS = 12

    def _app(self):
        return get_app("CoMD").scaled(iterations=self.APP_ITERS)

    def _run_until_settled(self, cluster, managed, timeout=10_000):
        cluster.sim.run(until=timeout, stop_when=lambda: managed.settled)

    def test_clean_run_finishes_in_one_attempt(self, managed_cluster):
        cluster, scheduler, _ = managed_cluster
        managed = scheduler.submit_managed(
            self._app(), RoundRobin(), n_nodes=2, ranks_per_node=2, seed=1
        )
        self._run_until_settled(cluster, managed)
        assert managed.done
        assert managed.attempts == 1
        assert managed.requeues == 0
        assert managed.makespan() > 0

    def test_crash_without_retry_fails_job(self, managed_cluster):
        cluster, scheduler, faults = managed_cluster
        app = self._app()
        crash_at = 0.5 * app.profile.nominal_runtime
        faults.inject("node_crash", "node0", start=crash_at, duration=1_000.0)
        managed = scheduler.submit_managed(
            app, RoundRobin(), n_nodes=2, ranks_per_node=2, seed=1
        )
        self._run_until_settled(cluster, managed)
        assert managed.failed
        assert managed.attempts == 1
        assert managed.reason == "node-crash"

    def test_retry_with_checkpoint_survives_crash(self, managed_cluster):
        cluster, scheduler, faults = managed_cluster
        app = self._app()
        crash_at = 0.5 * app.profile.nominal_runtime
        faults.inject("node_crash", "node0", start=crash_at, duration=1_000.0)
        managed = scheduler.submit_managed(
            app,
            RoundRobin(),
            n_nodes=2,
            ranks_per_node=2,
            seed=1,
            retry=RetryPolicy(base_delay=1.0, max_retries=5),
            checkpoint_interval=3,
        )
        self._run_until_settled(cluster, managed)
        assert managed.done
        assert managed.requeues >= 1
        assert managed.makespan() > app.profile.nominal_runtime

    def test_requeue_avoids_down_node(self, managed_cluster):
        cluster, scheduler, faults = managed_cluster
        app = self._app()
        crash_at = 0.5 * app.profile.nominal_runtime
        faults.inject("node_crash", "node0", start=crash_at, duration=1_000.0)
        managed = scheduler.submit_managed(
            app,
            RoundRobin(),
            n_nodes=2,
            ranks_per_node=2,
            seed=1,
            retry=RetryPolicy(base_delay=1.0, max_retries=5),
            checkpoint_interval=3,
        )
        self._run_until_settled(cluster, managed)
        assert managed.done
        assert "node0" not in managed.job.node_names

    def test_checkpoint_restart_skips_completed_work(self, managed_cluster):
        """The restarted attempt resumes from the last commit, so the
        total iterations executed stay close to the nominal count."""
        cluster, scheduler, faults = managed_cluster
        app = self._app()
        crash_at = 0.6 * app.profile.nominal_runtime
        faults.inject("node_crash", "node0", start=crash_at, duration=1_000.0)
        managed = scheduler.submit_managed(
            app,
            RoundRobin(),
            n_nodes=2,
            ranks_per_node=2,
            seed=1,
            retry=RetryPolicy(base_delay=1.0, max_retries=5),
            checkpoint_interval=3,
        )
        self._run_until_settled(cluster, managed)
        assert managed.done
        assert managed.checkpoint.committed > 0
        ranks = 4
        # lost work per rank is bounded by one checkpoint interval (+1
        # requeue's worth of slack for the in-flight iteration).
        assert managed.iterations_done <= ranks * (self.APP_ITERS + 4)

    def test_retry_deadline_gives_up(self, managed_cluster):
        cluster, scheduler, faults = managed_cluster
        app = self._app()
        faults.inject("node_crash", "node0", start=2.0, duration=1_000.0)
        managed = scheduler.submit_managed(
            app,
            RoundRobin(),
            n_nodes=2,
            ranks_per_node=2,
            seed=1,
            retry=RetryPolicy(base_delay=50.0, jitter=0.0, max_retries=8,
                              deadline=10.0),
        )
        self._run_until_settled(cluster, managed)
        assert managed.failed
        assert managed.attempts == 1

    def test_allocate_excludes_down_nodes(self, managed_cluster):
        cluster, scheduler, faults = managed_cluster
        faults.inject("node_crash", "node0", start=1.0, duration=100.0)
        cluster.sim.run(until=5)
        allocation = scheduler.allocate(RoundRobin(), 2)
        assert "node0" not in allocation.nodes


class TestBarrierTimeout:
    def test_abort_interrupts_waiters(self):
        cluster = Cluster(num_nodes=1)
        sim = cluster.sim
        barrier = Barrier(sim, n=2, name="b", timeout=5.0, on_timeout="abort")
        outcomes = []

        def arriving(proc):
            try:
                yield from barrier.wait()
                outcomes.append("released")
            except MPITimeoutError:
                outcomes.append("timeout")

        def straggler(proc):
            yield Sleep(100.0)

        cluster.spawn("r0", arriving, node=0, core=0)
        cluster.spawn("lag", straggler, node=0, core=1)
        sim.run()
        assert outcomes == ["timeout"]
        assert barrier.timeouts == 1

    def test_degrade_shrinks_collective(self):
        cluster = Cluster(num_nodes=1)
        sim = cluster.sim
        barrier = Barrier(sim, n=3, name="b", timeout=5.0, on_timeout="degrade")
        released = []

        def arriving(name):
            def body(proc):
                yield from barrier.wait()
                released.append(name)

            return body

        cluster.spawn("r0", arriving("r0"), node=0, core=0)
        cluster.spawn("r1", arriving("r1"), node=0, core=1)
        sim.run()
        assert sorted(released) == ["r0", "r1"]
        assert barrier.n == 2
        assert barrier.timeouts == 1

    def test_leave_uncounts_dead_waiter(self):
        cluster = Cluster(num_nodes=1)
        sim = cluster.sim
        barrier = Barrier(sim, n=2, name="b")
        released = []

        def arriving(proc):
            yield from barrier.wait()
            released.append(proc.name)

        p0 = cluster.spawn("r0", arriving, node=0, core=0)
        sim.run(until=1.0)
        assert p0.state is ProcessState.WAITING
        barrier.leave(p0)
        sim.kill(p0, reason="node-crash")
        sim.run(until=2.0)
        # the barrier shrank to n=1 and the dead rank's arrival was
        # uncounted, so a fresh rank can pass alone.
        cluster.spawn("r1", arriving, node=0, core=1)
        sim.run()
        assert released == ["r1"]

    def test_validation(self):
        cluster = Cluster(num_nodes=1)
        with pytest.raises(ConfigError):
            Barrier(cluster.sim, n=2, name="b", timeout=0.0)
        with pytest.raises(ConfigError):
            Barrier(cluster.sim, n=2, name="b", on_timeout="retry")
