"""Seeded property tests for the vectorized max-min share solver.

PR 7 replaced the scalar sorted-waterfilling loop with a vectorized
cumulative-sum formulation (``np.subtract.accumulate`` keeps the running
remainder strictly sequential, so every level is bit-identical to the
scalar loop's).  The scalar loop survives as
:func:`max_min_fair_share_reference`; these tests pin exact float
equality between the two on random cases across magnitude regimes, plus
the classic fairness properties on the vectorized path itself.
"""

import numpy as np
import pytest

from repro.errors import ResourceError
from repro.resources.fairshare import (
    max_min_fair_share,
    max_min_fair_share_reference,
    waterfill,
)
from repro.sim.rng import spawn_rng

TRIALS = 120


def _demand_vectors(seed: int, trials: int = TRIALS):
    """Yield (capacity, demands) pairs across the interesting regimes.

    Magnitudes span 1e-9..1e12, with deliberate ties and zeros — the
    regimes where a sloppy vectorization would diverge from the scalar
    loop (tie-order in the stable sort, zero demands, huge totals).
    """
    rng = spawn_rng(seed, "fairshare:vectorized")
    for trial in range(trials):
        n = int(rng.integers(1, 33))
        scale = 10.0 ** float(rng.uniform(-9, 12))
        demands = [float(d) for d in rng.uniform(0.0, 10.0, size=n) * scale]
        if trial % 3 == 0 and n >= 2:
            # Plant exact ties: stable argsort order must not matter.
            demands[n // 2] = demands[0]
        if trial % 5 == 0:
            demands[int(rng.integers(0, n))] = 0.0
        capacity = float(rng.uniform(0.0, 1.5) * sum(demands)) + 1e-9
        yield capacity, demands


class TestExactEqualityWithScalarReference:
    def test_bitwise_equal_on_random_cases(self):
        for capacity, demands in _demand_vectors(seed=70):
            fast = max_min_fair_share(capacity, demands)
            slow = max_min_fair_share_reference(capacity, demands)
            # Exact float equality, not approx: the backends must be
            # byte-interchangeable inside the rate model.
            assert fast == slow

    def test_bitwise_equal_on_adversarial_edges(self):
        cases = [
            (0.0, [1.0, 2.0]),  # zero capacity, all level-capped
            (1e-9, [0.0, 0.0, 5.0]),  # zeros sort first
            (10.0, [10.0]),  # single demand, exactly satisfied
            (5.0, [5.0, 5.0]),  # tie at the break point
            (1e300, [1e300, 1e300]),  # near-overflow magnitudes
            (3.0, [1.0, 1.0, 1.0, 1.0]),  # equal demands, oversubscribed
        ]
        for capacity, demands in cases:
            assert max_min_fair_share(capacity, demands) == (
                max_min_fair_share_reference(capacity, demands)
            )

    def test_empty_and_validation_behaviour_unchanged(self):
        assert max_min_fair_share(5.0, []) == []
        assert max_min_fair_share_reference(5.0, []) == []
        for bad in ([-1.0], [float("nan")], [float("inf")]):
            with pytest.raises(ResourceError):
                max_min_fair_share(1.0, bad)
            with pytest.raises(ResourceError):
                max_min_fair_share_reference(1.0, bad)


class TestVectorizedProperties:
    def test_permutation_invariance(self):
        rng = spawn_rng(71, "fairshare:vectorized")
        for capacity, demands in _demand_vectors(seed=71, trials=40):
            grants = max_min_fair_share(capacity, demands)
            order = [int(i) for i in rng.permutation(len(demands))]
            permuted = max_min_fair_share(capacity, [demands[i] for i in order])
            for j, i in enumerate(order):
                assert permuted[j] == grants[i]

    def test_capacity_saturation(self):
        for capacity, demands in _demand_vectors(seed=72, trials=40):
            grants = max_min_fair_share(capacity, demands)
            assert all(g <= d for g, d in zip(grants, demands))
            if sum(demands) <= capacity:
                assert grants == demands
            else:
                assert sum(grants) == pytest.approx(capacity, rel=1e-12)

    def test_equal_demands_get_equal_grants(self):
        rng = spawn_rng(73, "fairshare:vectorized")
        for _ in range(40):
            n = int(rng.integers(2, 17))
            demand = float(rng.uniform(1.0, 10.0))
            capacity = float(rng.uniform(0.5, 2.0)) * demand * n
            grants = max_min_fair_share(capacity, [demand] * n)
            assert len(set(grants)) == 1

    def test_waterfill_ndarray_matches_list_api(self):
        # waterfill() is the array-native entry the rate model calls; it
        # must agree with the list API bit-for-bit on the oversubscribed
        # regime it is documented for.
        rng = spawn_rng(74, "fairshare:vectorized")
        for _ in range(40):
            n = int(rng.integers(1, 33))
            arr = np.asarray(rng.uniform(0.0, 10.0, size=n), dtype=float)
            capacity = float(arr.sum()) * float(rng.uniform(0.1, 0.9))
            if float(arr.sum()) <= capacity:
                continue
            grants = waterfill(capacity, arr)
            assert [float(g) for g in grants] == max_min_fair_share(capacity, arr)
