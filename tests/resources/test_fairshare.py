"""Max-min and proportional sharing, including property-based invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ResourceError
from repro.resources.fairshare import max_min_fair_share, proportional_share

demands_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=20,
)
capacity_strategy = st.floats(min_value=0.0, max_value=1e12, allow_nan=False)


class TestMaxMinExamples:
    def test_all_fit(self):
        assert max_min_fair_share(10, [2, 3]) == [2, 3]

    def test_equal_split_when_oversubscribed(self):
        grants = max_min_fair_share(10, [20, 20])
        assert grants == pytest.approx([5, 5])

    def test_small_demand_protected(self):
        grants = max_min_fair_share(10, [1, 100])
        assert grants == pytest.approx([1, 9])

    def test_three_way_with_one_small(self):
        grants = max_min_fair_share(9, [1, 10, 10])
        assert grants == pytest.approx([1, 4, 4])

    def test_empty(self):
        assert max_min_fair_share(5, []) == []

    def test_zero_capacity(self):
        assert max_min_fair_share(0, [1, 2]) == pytest.approx([0, 0])

    def test_negative_demand_rejected(self):
        with pytest.raises(ResourceError):
            max_min_fair_share(10, [-1])

    def test_infinite_demand_rejected(self):
        with pytest.raises(ResourceError):
            max_min_fair_share(10, [float("inf")])

    def test_nan_capacity_rejected(self):
        with pytest.raises(ResourceError):
            max_min_fair_share(float("nan"), [1])


class TestProportionalExamples:
    def test_all_fit(self):
        assert proportional_share(10, [2, 3]) == [2, 3]

    def test_proportional_when_oversubscribed(self):
        grants = proportional_share(10, [10, 30])
        assert grants == pytest.approx([2.5, 7.5])

    def test_small_demand_not_protected(self):
        maxmin = max_min_fair_share(10, [1, 100])
        prop = proportional_share(10, [1, 100])
        assert prop[0] < maxmin[0]


@settings(max_examples=200, deadline=None)
@given(capacity=capacity_strategy, demands=demands_strategy)
def test_maxmin_invariants(capacity, demands):
    grants = max_min_fair_share(capacity, demands)
    assert len(grants) == len(demands)
    # Never grant more than demanded.
    for g, d in zip(grants, demands):
        assert g <= d + 1e-6
        assert g >= 0
    # Work conserving up to capacity.
    total = sum(grants)
    assert total <= capacity * (1 + 1e-9) + 1e-6
    expected = min(capacity, sum(demands))
    assert total == pytest.approx(expected, rel=1e-6, abs=1e-3)


@settings(max_examples=200, deadline=None)
@given(capacity=capacity_strategy, demands=demands_strategy)
def test_maxmin_fairness_property(capacity, demands):
    """An unsatisfied demand's grant is >= every other grant (max-min)."""
    grants = max_min_fair_share(capacity, demands)
    for i, (g, d) in enumerate(zip(grants, demands)):
        if g < d - 1e-6:  # unsatisfied
            assert g >= max(grants) - 1e-5


@settings(max_examples=200, deadline=None)
@given(capacity=capacity_strategy, demands=demands_strategy)
def test_proportional_invariants(capacity, demands):
    grants = proportional_share(capacity, demands)
    for g, d in zip(grants, demands):
        assert 0 <= g <= d + 1e-6
    assert sum(grants) <= max(capacity, sum(demands)) * (1 + 1e-9) + 1e-6


@settings(max_examples=100, deadline=None)
@given(
    capacity=st.floats(min_value=1.0, max_value=1e9, allow_nan=False),
    demands=st.lists(
        st.floats(min_value=0.1, max_value=1e9, allow_nan=False),
        min_size=1,
        max_size=10,
    ),
)
def test_maxmin_scale_invariance(capacity, demands):
    """Scaling capacity and demands together scales grants."""
    grants = np.array(max_min_fair_share(capacity, demands))
    scaled = np.array(max_min_fair_share(capacity * 3, [d * 3 for d in demands]))
    assert np.allclose(scaled, grants * 3, rtol=1e-6, atol=1e-6)
