"""Barrier and transfer primitives."""

import math

import pytest

from repro.cluster import Cluster
from repro.errors import ConfigError
from repro.mpi.comm import Barrier, p2p_transfer, sustained_stream
from repro.sim.engine import Simulator
from repro.sim.process import ProcessState, Segment, SimProcess, Sleep


class TestBarrier:
    def test_all_ranks_meet(self):
        sim = Simulator()
        barrier = Barrier(sim, 3)
        times = {}

        def rank(delay):
            def body(proc):
                yield Sleep(delay)
                yield from barrier.wait()
                times[proc.name] = proc.now

            return body

        for i, delay in enumerate((1.0, 2.0, 5.0)):
            sim.spawn(SimProcess(f"r{i}", rank(delay), node="n", core=i))
        sim.run()
        # everyone resumes when the slowest arrives
        assert all(t == pytest.approx(5.0) for t in times.values())
        assert barrier.cycles == 1

    def test_barrier_is_reusable(self):
        sim = Simulator()
        barrier = Barrier(sim, 2)
        log = []

        def rank(name, delays):
            def body(proc):
                for d in delays:
                    yield Sleep(d)
                    yield from barrier.wait()
                    log.append((name, proc.now))

            return body

        sim.spawn(SimProcess("a", rank("a", [1.0, 1.0]), node="n", core=0))
        sim.spawn(SimProcess("b", rank("b", [3.0, 1.0]), node="n", core=1))
        sim.run()
        assert barrier.cycles == 2
        cycle2 = [t for (_, t) in log[2:]]
        assert all(t == pytest.approx(4.0) for t in cycle2)

    def test_single_rank_barrier_is_free(self):
        sim = Simulator()
        barrier = Barrier(sim, 1)

        def body(proc):
            yield Segment(work=1.0)
            yield from barrier.wait()
            yield Segment(work=1.0)

        p = sim.spawn(SimProcess("p", body, node="n", core=0))
        sim.run()
        assert p.state is ProcessState.DONE
        assert p.runtime == pytest.approx(2.0)

    def test_invalid_size(self):
        with pytest.raises(ConfigError):
            Barrier(Simulator(), 0)


class TestTransfers:
    def test_p2p_duration_is_latency_plus_bytes(self):
        seg = p2p_transfer(dst="node1", nbytes=1e9, peak_bw=1e9, latency=0.5)
        assert seg.work == pytest.approx(1.5)
        assert seg.flows[0].dst == "node1"
        assert seg.flows[0].rate == 1e9

    def test_p2p_validation(self):
        with pytest.raises(ConfigError):
            p2p_transfer(dst="x", nbytes=-1, peak_bw=1e9)
        with pytest.raises(ConfigError):
            p2p_transfer(dst="x", nbytes=1, peak_bw=0)

    def test_sustained_stream_is_open_ended(self):
        seg = sustained_stream(dst="node1", rate=5e9)
        assert math.isinf(seg.work)
        assert seg.flows[0].rate == 5e9

    def test_transfer_on_cluster_finishes_at_rate(self):
        cluster = Cluster.voltrino(num_nodes=8)

        def body(proc):
            yield p2p_transfer(dst="node4", nbytes=10e9, peak_bw=5e9)

        p = cluster.spawn("snd", body, node=0, core=0)
        cluster.sim.run(until=100)
        assert p.runtime == pytest.approx(2.0, rel=1e-3)
