"""The deterministic sweep runner: jobs=N must be invisible in results."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments.diagnosis_data import build_dataset, generate_runs
from repro.parallel import derive_seeds, run_trials
from repro.varbench import VariabilityReport


def _square(x: int) -> int:
    return x * x


def _spin(payload: tuple[int, float]) -> int:
    index, _ = payload
    return index


class TestRunTrials:
    def test_serial_matches_map(self):
        assert run_trials(_square, [1, 2, 3]) == [1, 4, 9]

    def test_empty_payloads(self):
        assert run_trials(_square, [], jobs=4) == []

    def test_rejects_zero_jobs(self):
        with pytest.raises(ConfigError):
            run_trials(_square, [1], jobs=0)

    def test_parallel_matches_serial(self):
        serial = run_trials(_square, list(range(20)), jobs=1)
        parallel = run_trials(_square, list(range(20)), jobs=4)
        assert parallel == serial

    def test_results_come_back_in_payload_order(self):
        # Uneven payloads; merged order must follow submission, not finish.
        payloads = [(i, 0.0) for i in range(16)]
        assert run_trials(_spin, payloads, jobs=4) == list(range(16))


class TestDeriveSeeds:
    def test_stable_across_calls(self):
        assert derive_seeds(7, "sweep", 5) == derive_seeds(7, "sweep", 5)

    def test_scope_separates_streams(self):
        assert derive_seeds(7, "a", 3) != derive_seeds(7, "b", 3)

    def test_prefix_property(self):
        assert derive_seeds(7, "sweep", 3) == derive_seeds(7, "sweep", 5)[:3]

    def test_rejects_negative_count(self):
        with pytest.raises(ConfigError):
            derive_seeds(7, "sweep", -1)


class TestVarbenchParallel:
    def test_jobs_do_not_change_runtimes(self):
        kwargs = dict(repetitions=4, iterations=6, seed=11)
        serial = VariabilityReport.measure("miniMD", jobs=1, **kwargs)
        parallel = VariabilityReport.measure("miniMD", jobs=4, **kwargs)
        assert parallel.runtimes == serial.runtimes


class TestFig8Parallel:
    def test_jobs_do_not_change_the_matrix(self):
        from repro.experiments.fig8_matrix import run_fig8

        kwargs = dict(
            iterations=10, apps=("miniMD",), anomalies=("none", "cpuoccupy")
        )
        serial = run_fig8(jobs=1, **kwargs)
        parallel = run_fig8(jobs=2, **kwargs)
        assert parallel.runtimes == serial.runtimes


class TestDiagnosisParallel:
    def test_jobs_do_not_change_feature_matrix(self):
        kwargs = dict(
            apps=("miniMD", "CoMD"),
            labels=("none", "membw"),
            iterations=25,
            trim=2,
        )
        serial = generate_runs(jobs=1, **kwargs)
        parallel = generate_runs(jobs=4, **kwargs)
        assert [r.label for r in parallel] == [r.label for r in serial]
        for a, b in zip(parallel, serial):
            assert a.series.tobytes() == b.series.tobytes()
        ds_serial = build_dataset(serial, window=20)
        ds_parallel = build_dataset(parallel, window=20)
        assert np.array_equal(ds_parallel.X, ds_serial.X)
        assert np.array_equal(ds_parallel.y, ds_serial.y)
