"""CLI surface: ``python -m repro lint`` routing, formats, exit codes."""

import json

import pytest

from repro.cli import main as repro_main
from repro.lint.cli import JSON_SCHEMA_VERSION, main as lint_main


@pytest.fixture
def violating_tree(tmp_path):
    """A mini source tree with one seeded-RNG violation and one clean file."""
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("import numpy as np\nr = np.random.default_rng(3)\n")
    (pkg / "good.py").write_text("from repro.sim.rng import make_rng\nr = make_rng(3)\n")
    return tmp_path


class TestExitCodes:
    def test_violation_exits_nonzero(self, violating_tree, capsys):
        rc = lint_main([str(violating_tree), "--no-config"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "RL001" in out and "bad.py" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        rc = lint_main([str(tmp_path), "--no-config"])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        rc = lint_main([str(tmp_path / "missing"), "--no-config"])
        assert rc == 2

    def test_repro_cli_routes_lint(self, violating_tree, capsys):
        rc = repro_main(["lint", str(violating_tree), "--no-config"])
        assert rc == 1
        assert "RL001" in capsys.readouterr().out


class TestJsonOutput:
    def test_schema(self, violating_tree, capsys):
        rc = lint_main([str(violating_tree), "--no-config", "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["summary"]["findings"] == 1
        assert payload["summary"]["files"] == 2
        assert payload["summary"]["by_rule"] == {"RL001": 1}
        (finding,) = payload["findings"]
        assert set(finding) == {
            "path", "line", "col", "rule_id", "rule_name", "severity", "message",
        }
        assert finding["rule_id"] == "RL001"
        assert finding["severity"] == "error"
        assert finding["line"] == 2

    def test_clean_json(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        rc = lint_main([str(tmp_path), "--no-config", "--format", "json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["summary"]["findings"] == 0


class TestOptions:
    def test_disable_flag(self, violating_tree, capsys):
        rc = lint_main([str(violating_tree), "--no-config", "--disable", "RL001"])
        assert rc == 0

    def test_config_table_respected(self, violating_tree, capsys):
        (violating_tree / "pyproject.toml").write_text(
            "[tool.repro-lint]\ndisable = ['RL001']\n"
        )
        rc = lint_main([str(violating_tree)])
        assert rc == 0

    def test_bad_config_exits_two(self, violating_tree, capsys):
        (violating_tree / "pyproject.toml").write_text(
            "[tool.repro-lint]\nnot-a-key = ['x']\n"
        )
        rc = lint_main([str(violating_tree)])
        assert rc == 2
        assert "unknown" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        rc = lint_main(["--list-rules"])
        assert rc == 0
        out = capsys.readouterr().out
        for rule_id in [f"RL00{i}" for i in range(1, 9)]:
            assert rule_id in out
