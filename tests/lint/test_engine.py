"""Engine behaviours: suppressions, config, parse errors, path walking."""

import pytest

from repro.errors import ConfigError
from repro.lint import LintConfig, LintEngine, lint_source, load_config
from repro.lint.config import find_pyproject
from repro.lint.engine import PARSE_ERROR_ID
from repro.lint.findings import Severity

SIM_PATH = "src/repro/sim/example.py"

VIOLATION = "import numpy as np\nr = np.random.default_rng(3)\n"


class TestSuppressions:
    def test_trailing_comment_suppresses_line(self):
        src = "import numpy as np\nr = np.random.default_rng(3)  # repro-lint: disable=RL001\n"
        assert lint_source(src, SIM_PATH) == []

    def test_trailing_comment_is_line_scoped(self):
        src = (
            "import numpy as np\n"
            "a = np.random.default_rng(1)  # repro-lint: disable=RL001\n"
            "b = np.random.default_rng(2)\n"
        )
        findings = lint_source(src, SIM_PATH)
        assert [f.line for f in findings] == [3]

    def test_own_line_comment_suppresses_file(self):
        src = "# repro-lint: disable=RL001\n" + VIOLATION
        assert lint_source(src, SIM_PATH) == []

    def test_own_line_comment_anywhere_in_file(self):
        src = VIOLATION + "x = 1\n# repro-lint: disable=RL001\n"
        assert lint_source(src, SIM_PATH) == []

    def test_disable_all(self):
        src = "print(1)  # repro-lint: disable=all\n"
        assert lint_source(src, SIM_PATH) == []

    def test_comma_separated_rules(self):
        src = "# repro-lint: disable=RL001, RL010\n" + VIOLATION + "print(1)\n"
        assert lint_source(src, SIM_PATH) == []

    def test_unrelated_rule_not_suppressed(self):
        src = "# repro-lint: disable=RL007\n" + VIOLATION
        assert [f.rule_id for f in lint_source(src, SIM_PATH)] == ["RL001"]


class TestConfig:
    def test_disable_drops_rule(self):
        config = LintConfig(disable=("RL001",))
        assert lint_source(VIOLATION, SIM_PATH, config) == []

    def test_scoping_follows_config(self):
        src = "import time\nt = time.time()\n"
        flagged = LintConfig(wallclock_packages=("sim",))
        unflagged = LintConfig(wallclock_packages=("core",))
        assert lint_source(src, SIM_PATH, flagged) != []
        assert lint_source(src, SIM_PATH, unflagged) == []

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            LintConfig.from_mapping({"wallclock-pkgs": ["sim"]})

    def test_non_list_value_rejected(self):
        with pytest.raises(ConfigError, match="list of strings"):
            LintConfig.from_mapping({"disable": "RL001"})

    def test_dashes_map_to_underscores(self):
        config = LintConfig.from_mapping({"rng-allowed": ["x.py"], "disable": ["RL005"]})
        assert config.rng_allowed == ("x.py",)
        assert config.is_disabled("RL005")

    def test_load_config_from_tree(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-lint]\ndisable = ['RL004']\n"
        )
        nested = tmp_path / "pkg" / "sub"
        nested.mkdir(parents=True)
        config = load_config(nested)
        assert config.disable == ("RL004",)

    def test_load_config_defaults_without_table(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
        assert load_config(tmp_path) == LintConfig()

    def test_invalid_toml_rejected(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[tool.repro-lint\n")
        with pytest.raises(ConfigError, match="invalid TOML"):
            load_config(tmp_path)

    def test_find_pyproject_missing(self, tmp_path):
        assert find_pyproject(tmp_path) is None

    def test_repo_config_names_only_known_keys(self):
        # The committed [tool.repro-lint] table must load cleanly.
        config = load_config(".")
        assert "sim" in config.wallclock_packages


class TestParseErrors:
    def test_syntax_error_becomes_finding(self):
        findings = lint_source("def broken(:\n", SIM_PATH)
        assert len(findings) == 1
        assert findings[0].rule_id == PARSE_ERROR_ID
        assert findings[0].severity is Severity.ERROR


class TestPathWalking:
    def test_directory_walk_sorted_and_recursive(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "sub" / "a.py").write_text("y = 2\n")
        files = LintEngine.iter_files([tmp_path])
        assert files == sorted(files)
        assert {f.name for f in files} == {"a.py", "b.py"}

    def test_duplicate_paths_deduplicated(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("x = 1\n")
        assert LintEngine.iter_files([target, tmp_path]) == [target]

    def test_missing_path_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="no such file"):
            LintEngine.iter_files([tmp_path / "nope.py"])

    def test_findings_sorted_deterministically(self, tmp_path):
        src = "print(2)\nimport numpy as np\nnp.random.seed(0)\n"
        target = tmp_path / "src" / "repro" / "sim"
        target.mkdir(parents=True)
        (target / "m.py").write_text(src)
        engine = LintEngine(LintConfig())
        findings = engine.lint_paths([tmp_path])
        assert findings == sorted(findings)
        assert [f.rule_id for f in findings] == ["RL010", "RL001"]  # line order
