"""Per-rule fixtures: every rule has at least one positive and one negative.

Fixtures are linted under synthetic in-tree paths (``src/repro/sim/...``)
so package scoping behaves exactly as it does on the real tree.
"""

import textwrap

import pytest

from repro.lint import LintConfig, lint_source

SIM_PATH = "src/repro/sim/example.py"
SCHED_PATH = "src/repro/scheduling/example.py"
ANALYTICS_PATH = "src/repro/analytics/example.py"
TEST_PATH = "tests/sim/test_example.py"


def ids_for(source: str, path: str = SIM_PATH) -> list[str]:
    findings = lint_source(textwrap.dedent(source), path, LintConfig())
    return [f.rule_id for f in findings]


class TestRL001SeededRng:
    def test_flags_np_default_rng(self):
        assert "RL001" in ids_for("import numpy as np\nr = np.random.default_rng(3)\n")

    def test_flags_np_random_seed(self):
        assert "RL001" in ids_for("import numpy as np\nnp.random.seed(0)\n")

    def test_flags_stdlib_random_import(self):
        assert "RL001" in ids_for("import random\n")

    def test_flags_from_numpy_random_import(self):
        assert "RL001" in ids_for("from numpy.random import default_rng\n")

    def test_flags_in_tests_too(self):
        assert "RL001" in ids_for(
            "import numpy as np\nr = np.random.default_rng(0)\n", path=TEST_PATH
        )

    def test_allows_make_rng(self):
        assert ids_for(
            "from repro.sim.rng import make_rng\nr = make_rng(3)\nx = r.random()\n"
        ) == []

    def test_allows_generator_methods(self):
        # rng.random() is a method on a seeded Generator, not module-level.
        assert ids_for("def f(rng):\n    return rng.random(10)\n") == []

    def test_rng_module_itself_exempt(self):
        src = "import numpy as np\nr = np.random.default_rng(1)\n"
        assert lint_source(src, "src/repro/sim/rng.py", LintConfig()) == []


class TestRL002WallClock:
    def test_flags_time_time_in_sim(self):
        assert "RL002" in ids_for("import time\nt = time.time()\n")

    def test_flags_perf_counter_in_core(self):
        assert "RL002" in ids_for(
            "import time\nt = time.perf_counter()\n", path="src/repro/core/example.py"
        )

    def test_flags_datetime_now(self):
        assert "RL002" in ids_for(
            "from datetime import datetime\nt = datetime.now()\n"
        )

    def test_outside_scoped_packages_ok(self):
        assert ids_for("import time\nt = time.time()\n", path=ANALYTICS_PATH) == []

    def test_sleep_is_not_a_clock_read(self):
        assert ids_for("import time\ntime.sleep(0)\n") == []

    def test_stats_module_allowlisted(self):
        # Observability-only timers: sim/stats.py may read perf_counter.
        src = "import time\nt = time.perf_counter()\n"
        assert lint_source(src, "src/repro/sim/stats.py", LintConfig()) == []


class TestRL003UnorderedIteration:
    def test_flags_for_over_set_literal(self):
        assert "RL003" in ids_for("for x in {1, 2, 3}:\n    pass\n")

    def test_flags_for_over_set_call(self):
        assert "RL003" in ids_for("for x in set([1, 2]):\n    x\n", path=SCHED_PATH)

    def test_flags_comprehension_over_set(self):
        assert "RL003" in ids_for("out = [x for x in {1, 2}]\n")

    def test_flags_sum_over_dict_values(self):
        assert "RL003" in ids_for("def f(d):\n    return sum(d.values())\n")

    def test_sorted_wrapper_ok(self):
        assert ids_for("for x in sorted({1, 2}):\n    x\n") == []

    def test_plain_dict_iteration_ok(self):
        # Dict views are insertion-ordered; only order-sensitive
        # accumulation over them is flagged.
        assert ids_for("def f(d):\n    for v in d.values():\n        v\n") == []

    def test_outside_scoped_packages_ok(self):
        assert ids_for("for x in {1, 2}:\n    pass\n", path=ANALYTICS_PATH) == []


class TestRL004FloatEquality:
    def test_flags_float_literal_eq(self):
        assert "RL004" in ids_for("def f(x):\n    return x == 1.5\n")

    def test_flags_timey_name_neq(self):
        assert "RL004" in ids_for("def f(a, b):\n    return a.now != b.deadline\n")

    def test_int_literal_ok(self):
        assert ids_for("def f(x):\n    return x == 3\n") == []

    def test_ordering_comparison_ok(self):
        assert ids_for("def f(t):\n    return t >= 1.5\n") == []

    def test_string_equality_ok(self):
        assert ids_for("def f(s):\n    return s == 'rate'\n") == []


class TestRL005MagicUnits:
    def test_flags_mib_literal(self):
        assert "RL005" in ids_for("SIZE = 1048576\n")

    def test_flags_folded_product(self):
        assert "RL005" in ids_for("SIZE = 1024 * 1024\n")

    def test_flags_hour_literal(self):
        assert "RL005" in ids_for("TIMEOUT = 3600\n")

    def test_reports_outermost_only(self):
        ids = ids_for("SIZE = 1 * 1024 * 1024\n")
        assert ids == ["RL005"]

    def test_units_helpers_ok(self):
        assert ids_for(
            "from repro.units import MB, HOUR\nSIZE = MB\nTIMEOUT = HOUR\n"
        ) == []

    def test_units_module_exempt(self):
        assert lint_source("HOUR = 3600.0\n", "src/repro/units.py", LintConfig()) == []

    def test_non_library_code_ok(self):
        assert ids_for("SIZE = 1048576\n", path=TEST_PATH) == []


class TestRL006MutableDefault:
    def test_flags_list_default(self):
        assert "RL006" in ids_for("def f(items=[]):\n    return items\n")

    def test_flags_dict_default(self):
        assert "RL006" in ids_for("def f(table={}):\n    return table\n")

    def test_flags_set_call_default(self):
        assert "RL006" in ids_for("def f(seen=set()):\n    return seen\n")

    def test_flags_kwonly_default(self):
        assert "RL006" in ids_for("def f(*, items=[]):\n    return items\n")

    def test_none_default_ok(self):
        assert ids_for("def f(items=None):\n    return items or []\n") == []

    def test_tuple_default_ok(self):
        assert ids_for("def f(items=()):\n    return items\n") == []


class TestRL007NoPrint:
    # RL007 only reports when its superset RL010 is disabled; these
    # fixtures run with RL010 off to exercise the legacy behaviour.
    CONFIG = LintConfig(disable=("RL010",))

    def ids(self, source: str, path: str = SIM_PATH) -> list[str]:
        findings = lint_source(textwrap.dedent(source), path, self.CONFIG)
        return [f.rule_id for f in findings]

    def test_flags_print_in_library(self):
        assert "RL007" in self.ids("def f():\n    print('hi')\n")

    def test_suppressed_when_rl010_enabled(self):
        assert ids_for("def f():\n    print('hi')\n") == ["RL010"]

    def test_docstring_mention_ok(self):
        assert self.ids('def f():\n    """call print(x) yourself"""\n') == []

    def test_output_writer_ok(self):
        assert self.ids(
            "from repro.output import OutputWriter\n"
            "def f():\n    OutputWriter().line('hi')\n"
        ) == []

    def test_non_library_code_ok(self):
        assert self.ids("print('scratch')\n", path="benchmarks/scratch.py") == []


class TestRL008SilentExcept:
    def test_flags_bare_except(self):
        assert "RL008" in ids_for(
            "def f():\n    try:\n        g()\n    except:\n        raise\n"
        )

    def test_flags_swallowed_exception(self):
        assert "RL008" in ids_for(
            "def f():\n    try:\n        g()\n    except ValueError:\n        pass\n"
        )

    def test_handled_exception_ok(self):
        assert ids_for(
            "def f(log):\n    try:\n        g()\n"
            "    except ValueError as exc:\n        log.append(exc)\n"
        ) == []

    def test_reraise_ok(self):
        assert ids_for(
            "def f():\n    try:\n        g()\n    except ValueError:\n        raise\n"
        ) == []

    def test_outside_scoped_packages_ok(self):
        assert ids_for(
            "def f():\n    try:\n        g()\n    except ValueError:\n        pass\n",
            path=ANALYTICS_PATH,
        ) == []


class TestRL009RawParallelism:
    def test_flags_multiprocessing_import(self):
        assert "RL009" in ids_for("import multiprocessing\n", path=ANALYTICS_PATH)

    def test_flags_concurrent_futures_import(self):
        assert "RL009" in ids_for("import concurrent.futures\n", path=ANALYTICS_PATH)

    def test_flags_executor_from_import(self):
        assert "RL009" in ids_for(
            "from concurrent.futures import ProcessPoolExecutor\n",
            path=ANALYTICS_PATH,
        )

    def test_flags_executor_construction(self):
        assert "RL009" in ids_for(
            "def f(futures):\n    return futures.ProcessPoolExecutor(2)\n",
            path=ANALYTICS_PATH,
        )

    def test_flags_os_fork(self):
        assert "RL009" in ids_for("import os\npid = os.fork()\n", path=SIM_PATH)

    def test_parallel_module_itself_exempt(self):
        src = "from concurrent.futures import ProcessPoolExecutor\n"
        assert lint_source(src, "src/repro/parallel.py", LintConfig()) == []

    def test_run_trials_ok(self):
        assert ids_for(
            "from repro.parallel import run_trials\n"
            "def f(work):\n    return run_trials(work, [1, 2], jobs=2)\n",
            path=ANALYTICS_PATH,
        ) == []

    def test_non_library_code_ok(self):
        assert ids_for("import multiprocessing\n", path=TEST_PATH) == []


class TestRL010OutputWriter:
    def test_flags_print_in_library(self):
        assert "RL010" in ids_for("def f():\n    print('hi')\n")

    def test_flags_print_in_tests(self):
        assert "RL010" in ids_for("print('dbg')\n", path=TEST_PATH)

    def test_flags_print_in_scripts(self):
        assert "RL010" in ids_for("print('scratch')\n", path="benchmarks/scratch.py")

    def test_output_module_itself_exempt(self):
        src = "def emit(text):\n    print(text)\n"
        assert lint_source(src, "src/repro/output.py", LintConfig()) == []

    def test_allowed_file_suffix(self):
        config = LintConfig(output_allowed=("repro/output.py", "tools/report.py"))
        assert lint_source("print('x')\n", "src/tools/report.py", config) == []

    def test_allowed_directory_prefix(self):
        config = LintConfig(output_allowed=("repro/output.py", "examples/"))
        assert lint_source("print('x')\n", "examples/quickstart.py", config) == []
        assert "RL010" in [
            f.rule_id for f in lint_source("print('x')\n", "src/repro/x.py", config)
        ]

    def test_output_writer_ok(self):
        assert ids_for(
            "from repro.output import OutputWriter\n"
            "def f():\n    OutputWriter().line('hi')\n"
        ) == []


@pytest.mark.parametrize("rule_id", [f"RL{i:03d}" for i in range(1, 11)])
def test_every_rule_registered(rule_id):
    from repro.lint import RULE_REGISTRY

    assert rule_id in RULE_REGISTRY
    cls = RULE_REGISTRY[rule_id]
    assert cls.name and cls.description and cls.__doc__
