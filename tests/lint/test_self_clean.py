"""The determinism contract holds on the tree itself.

This is the CI gate in test form: the committed source (and the tests,
which the workflow also lints) must produce zero findings under the
committed ``[tool.repro-lint]`` configuration.
"""

from pathlib import Path

from repro.lint import LintEngine, load_config

REPO_ROOT = Path(__file__).resolve().parents[2]


def _lint(path: Path):
    engine = LintEngine(load_config(REPO_ROOT))
    return engine.lint_paths([path])


def test_src_tree_is_clean():
    findings = _lint(REPO_ROOT / "src")
    assert findings == [], "\n".join(f.format_text() for f in findings)


def test_test_tree_is_clean():
    findings = _lint(REPO_ROOT / "tests")
    assert findings == [], "\n".join(f.format_text() for f in findings)
