"""Planted-bug tests: every flow rule flips clean → failing on its bug.

Each rule gets a pair of fixtures sharing the same skeleton; the *clean*
variant follows the convention, the *bug* variant plants exactly the
defect the rule exists to catch.  Fixture trees live in a temp dir
shaped ``<tmp>/repro/<pkg>/...`` so package-scoped sinks match.
"""

from __future__ import annotations

from repro.lint.config import LintConfig
from repro.lint.flow import analyze_paths  # noqa: F401  (registration)
from repro.lint.flow.base import run_flow_rules
from repro.lint.flow.index import ProjectIndex


def findings_for(project_factory, files, rule_id, config=None):
    project = project_factory(files)
    findings = run_flow_rules(project, config or LintConfig())
    return [f for f in findings if f.rule_id == rule_id]


# -- RL011: rng provenance ----------------------------------------------------

_RNG_SKELETON = {
    "repro/__init__.py": "",
    "repro/sim/__init__.py": "",
    "repro/sim/rng.py": """
        def make_rng(seed=0):
            return ("rng", seed)
    """,
    "repro/sim/engine.py": """
        def advance(rng, steps):
            return (rng, steps)
    """,
}


class TestRL011RngProvenance:
    def test_clean_blessed_factory(self, project_factory):
        files = dict(_RNG_SKELETON)
        files["repro/driver.py"] = """
            from repro.sim.rng import make_rng
            from repro.sim.engine import advance

            def run():
                rng = make_rng(7)
                return advance(rng, 3)
        """
        assert findings_for(project_factory, files, "RL011") == []

    def test_bug_raw_rng_into_sim(self, project_factory):
        files = dict(_RNG_SKELETON)
        files["repro/driver.py"] = """
            import numpy as np
            from repro.sim.engine import advance

            def run():
                rng = np.random.default_rng()
                return advance(rng, 3)
        """
        found = findings_for(project_factory, files, "RL011")
        assert len(found) == 1
        assert found[0].path.endswith("repro/driver.py")
        assert found[0].severity.value == "error"
        assert "advance" in found[0].message

    def test_bug_raw_rng_through_helper_return(self, project_factory):
        # The generator is built two calls away; returns_taint closes it.
        files = dict(_RNG_SKELETON)
        files["repro/util.py"] = """
            import numpy as np

            def fresh():
                return np.random.default_rng()
        """
        files["repro/driver.py"] = """
            from repro.util import fresh
            from repro.sim.engine import advance

            def run():
                rng = fresh()
                return advance(rng, 3)
        """
        found = findings_for(project_factory, files, "RL011")
        assert len(found) == 1
        assert found[0].path.endswith("repro/driver.py")

    def test_bug_raw_rng_through_parameter_chain(self, project_factory):
        # launch() forwards its parameter into the sink; the finding
        # lands where the raw generator enters the chain.
        files = dict(_RNG_SKELETON)
        files["repro/driver.py"] = """
            import numpy as np
            from repro.sim.engine import advance

            def launch(g):
                return advance(g, 1)

            def run():
                return launch(np.random.default_rng())
        """
        found = findings_for(project_factory, files, "RL011")
        assert len(found) == 1
        assert "launch" in found[0].message

    def test_clean_helper_returning_blessed_rng(self, project_factory):
        files = dict(_RNG_SKELETON)
        files["repro/driver.py"] = """
            from repro.sim.rng import make_rng
            from repro.sim.engine import advance

            def seeded():
                return make_rng(1)

            def run():
                return advance(seeded(), 3)
        """
        assert findings_for(project_factory, files, "RL011") == []

    def test_suppression_comment_silences(self, project_factory):
        files = dict(_RNG_SKELETON)
        files["repro/driver.py"] = """
            import numpy as np
            from repro.sim.engine import advance

            def run():
                rng = np.random.default_rng()
                return advance(rng, 3)  # repro-lint: disable=RL011
        """
        assert findings_for(project_factory, files, "RL011") == []


# -- RL012: wall-clock provenance ---------------------------------------------

_TIME_SKELETON = {
    "repro/__init__.py": "",
    "repro/sim/__init__.py": "",
    "repro/sim/engine.py": """
        def schedule(at):
            return at
    """,
}


class TestRL012WallClockProvenance:
    def test_clean_constant_time(self, project_factory):
        files = dict(_TIME_SKELETON)
        files["repro/bench.py"] = """
            from repro.sim.engine import schedule

            def run():
                return schedule(0.0)
        """
        assert findings_for(project_factory, files, "RL012") == []

    def test_bug_perf_counter_into_sim(self, project_factory):
        files = dict(_TIME_SKELETON)
        files["repro/bench.py"] = """
            import time

            from repro.sim.engine import schedule

            def run():
                t = time.perf_counter()
                return schedule(t)
        """
        found = findings_for(project_factory, files, "RL012")
        assert len(found) == 1
        assert found[0].path.endswith("repro/bench.py")
        assert "schedule" in found[0].message

    def test_bug_wallclock_into_hashlib_fingerprint(self, project_factory):
        files = dict(_TIME_SKELETON)
        files["repro/manifest.py"] = """
            import hashlib
            import time

            def fingerprint():
                t = time.time()
                return hashlib.sha256(t)
        """
        found = findings_for(project_factory, files, "RL012")
        assert len(found) == 1
        assert "sha256" in found[0].message


# -- RL013: memo impurity -----------------------------------------------------

_MEMO_CONFIG = LintConfig(
    flow_memo_functions=("Solver.solve",),
    flow_memo_state_allowed=("memo",),
)

_MEMO_CLEAN = {
    "repro/__init__.py": "",
    "repro/network/__init__.py": "",
    "repro/network/solver.py": """
        class Solver:
            def __init__(self):
                self.memo = {}
                self.scale = 1.0

            def solve(self, demands):
                key = tuple(demands)
                if key in self.memo:
                    return self.memo[key]
                result = self._compute(demands)
                self.memo[key] = result
                return result

            def _compute(self, demands):
                return [d * self.scale for d in demands]
    """,
}


class TestRL013MemoImpurity:
    def test_clean_state_never_mutated(self, project_factory):
        assert (
            findings_for(project_factory, _MEMO_CLEAN, "RL013", _MEMO_CONFIG) == []
        )

    def test_bug_mutable_state_outside_key(self, project_factory):
        files = dict(_MEMO_CLEAN)
        # set_scale() makes `scale` runtime-mutable; solve's key is only
        # the demands, so a memo hit can return a stale result.
        files["repro/network/solver.py"] = """
            class Solver:
                def __init__(self):
                    self.memo = {}
                    self.scale = 1.0

                def solve(self, demands):
                    key = tuple(demands)
                    if key in self.memo:
                        return self.memo[key]
                    result = self._compute(demands)
                    self.memo[key] = result
                    return result

                def _compute(self, demands):
                    return [d * self.scale for d in demands]

                def set_scale(self, s):
                    self.scale = s
        """
        found = findings_for(project_factory, files, "RL013", _MEMO_CONFIG)
        assert len(found) == 1
        assert "self.scale" in found[0].message
        assert "_compute" in found[0].message

    def test_clean_when_key_captures_the_state(self, project_factory):
        files = dict(_MEMO_CLEAN)
        files["repro/network/solver.py"] = """
            class Solver:
                def __init__(self):
                    self.memo = {}
                    self.scale = 1.0

                def solve(self, demands):
                    key = (tuple(demands), self.scale)
                    if key in self.memo:
                        return self.memo[key]
                    result = self._compute(demands)
                    self.memo[key] = result
                    return result

                def _compute(self, demands):
                    return [d * self.scale for d in demands]

                def set_scale(self, s):
                    self.scale = s
        """
        assert findings_for(project_factory, files, "RL013", _MEMO_CONFIG) == []

    def test_clean_array_fingerprint_key_via_locals(self, project_factory):
        """State reaching the key bytes through locals is key-covered.

        The array-backend idiom: the key expression fingerprints a local
        (``demands.tobytes()``) that was *derived* from mutable instance
        arrays, and aliases another (``seg = self.seg_tokens``).  The
        local-provenance closure must credit both attributes to the key.
        """
        files = dict(_MEMO_CLEAN)
        files["repro/network/solver.py"] = """
            class Solver:
                def __init__(self):
                    self.memo = {}
                    self.rates = [1.0]
                    self.seg_tokens = [0]

                def solve(self, rows):
                    seg = self.seg_tokens
                    demands = [self.rates[r] for r in rows]
                    key = (tuple(demands), tuple(seg[r] for r in rows))
                    if key in self.memo:
                        return self.memo[key]
                    result = self._compute(demands)
                    self.memo[key] = result
                    return result

                def _compute(self, demands):
                    return [d * 2.0 for d in demands]

                def refresh(self, r, rate, token):
                    self.rates[r] = rate
                    self.seg_tokens[r] = token
        """
        assert findings_for(project_factory, files, "RL013", _MEMO_CONFIG) == []

    def test_clean_declared_derived_state(self, project_factory):
        """flow_memo_derived_state vouches for token-paired attributes."""
        files = dict(_MEMO_CLEAN)
        files["repro/network/solver.py"] = """
            class Solver:
                def __init__(self):
                    self.memo = {}
                    self.token = 0
                    self.footprints = [1.0]

                def solve(self, rows):
                    key = (self.token, tuple(rows))
                    if key in self.memo:
                        return self.memo[key]
                    result = self._compute(rows)
                    self.memo[key] = result
                    return result

                def _compute(self, rows):
                    return [self.footprints[r] for r in rows]

                def refresh(self, r, fp):
                    # footprints and the interned token move together
                    self.footprints[r] = fp
                    self.token = self.token + 1
        """
        config = LintConfig(
            flow_memo_functions=("Solver.solve",),
            flow_memo_state_allowed=("memo",),
            flow_memo_derived_state=("footprints",),
        )
        assert findings_for(project_factory, files, "RL013", config) == []
        # Without the declaration the same read is still a finding.
        found = findings_for(project_factory, files, "RL013", _MEMO_CONFIG)
        assert len(found) == 1
        assert "self.footprints" in found[0].message


# -- RL014: spawn shared state ------------------------------------------------

_SPAWN_SKELETON = {
    "repro/__init__.py": "",
    "repro/parallel.py": """
        def run_trials(fn, payloads, jobs=1):
            return [fn(p) for p in payloads]
    """,
    "repro/experiments/__init__.py": "",
}


class TestRL014SpawnSharedState:
    def test_clean_pure_worker(self, project_factory):
        files = dict(_SPAWN_SKELETON)
        files["repro/experiments/sweep.py"] = """
            from repro.parallel import run_trials

            def trial(seed):
                return seed * 2

            def sweep():
                return run_trials(trial, [1, 2, 3], jobs=2)
        """
        assert findings_for(project_factory, files, "RL014") == []

    def test_bug_worker_mutates_module_global(self, project_factory):
        files = dict(_SPAWN_SKELETON)
        files["repro/experiments/sweep.py"] = """
            from repro.parallel import run_trials

            RESULTS = []

            def trial(seed):
                RESULTS.append(seed)
                return seed * 2

            def sweep():
                return run_trials(trial, [1, 2, 3], jobs=2)
        """
        found = findings_for(project_factory, files, "RL014")
        assert len(found) == 1
        assert "RESULTS" in found[0].message
        assert found[0].severity.value == "error"

    def test_bug_reached_through_helper(self, project_factory):
        # The write is one call below the worker root.
        files = dict(_SPAWN_SKELETON)
        files["repro/experiments/sweep.py"] = """
            from repro.parallel import run_trials

            SEEN = {}

            def record(seed):
                SEEN[seed] = True

            def trial(seed):
                record(seed)
                return seed * 2

            def sweep():
                return run_trials(trial, [1, 2, 3], jobs=2)
        """
        found = findings_for(project_factory, files, "RL014")
        assert len(found) == 1
        assert "record" in found[0].message

    def test_bug_global_rebinding(self, project_factory):
        files = dict(_SPAWN_SKELETON)
        files["repro/experiments/sweep.py"] = """
            from repro.parallel import run_trials

            COUNTER = 0

            def trial(seed):
                global COUNTER
                COUNTER = COUNTER + 1
                return seed

            def sweep():
                return run_trials(trial, [1, 2], jobs=2)
        """
        found = findings_for(project_factory, files, "RL014")
        assert len(found) == 1
        assert "COUNTER" in found[0].message

    def test_clean_worker_local_accumulator(self, project_factory):
        # A list local to the worker is fine — only module/class state is.
        files = dict(_SPAWN_SKELETON)
        files["repro/experiments/sweep.py"] = """
            from repro.parallel import run_trials

            def trial(seed):
                acc = []
                acc.append(seed)
                return acc

            def sweep():
                return run_trials(trial, [1, 2], jobs=2)
        """
        assert findings_for(project_factory, files, "RL014") == []


# -- RL015: guard coverage ----------------------------------------------------


class TestRL015GuardCoverage:
    def _files(self, body):
        return {
            "repro/__init__.py": "",
            "repro/sim/__init__.py": "",
            "repro/sim/engine.py": body,
        }

    def test_clean_if_guard(self, project_factory):
        files = self._files(
            """
            class Engine:
                def __init__(self, obs=None):
                    self.obs = obs

                def step(self, t):
                    if self.obs is not None:
                        self.obs.on_step(t)
                    return t
            """
        )
        assert findings_for(project_factory, files, "RL015") == []

    def test_clean_early_return_guard(self, project_factory):
        files = self._files(
            """
            class Engine:
                def __init__(self, obs=None):
                    self.obs = obs

                def step(self, t):
                    if self.obs is None:
                        return t
                    self.obs.on_step(t)
                    return t
            """
        )
        assert findings_for(project_factory, files, "RL015") == []

    def test_bug_unguarded_hook_call(self, project_factory):
        files = self._files(
            """
            class Engine:
                def __init__(self, obs=None):
                    self.obs = obs

                def step(self, t):
                    self.obs.on_step(t)
                    return t
            """
        )
        found = findings_for(project_factory, files, "RL015")
        assert len(found) == 1
        assert "self.obs" in found[0].message
        assert found[0].severity.value == "error"

    def test_outside_guard_packages_not_flagged(self, project_factory):
        files = {
            "repro/__init__.py": "",
            "repro/tools/__init__.py": "",
            "repro/tools/report.py": """
                class Reporter:
                    def __init__(self, obs=None):
                        self.obs = obs

                    def emit(self, t):
                        self.obs.on_step(t)
                        return t
            """,
        }
        assert findings_for(project_factory, files, "RL015") == []


# -- RL016: unit flow ---------------------------------------------------------

_UNITS_SKELETON = {
    "repro/__init__.py": "",
    "repro/units.py": """
        MINUTE = 60.0
        HOUR = 3600.0

        def mib(n):
            return n * 1048576.0
    """,
    "repro/apps/__init__.py": "",
}


class TestRL016UnitFlow:
    def test_clean_same_dimension(self, project_factory):
        files = dict(_UNITS_SKELETON)
        files["repro/apps/plan.py"] = """
            from repro.units import HOUR, mib

            def window(extra):
                return HOUR + extra

            def run():
                return window(HOUR)
        """
        assert findings_for(project_factory, files, "RL016") == []

    def test_bug_direct_mix(self, project_factory):
        files = dict(_UNITS_SKELETON)
        files["repro/apps/plan.py"] = """
            from repro.units import HOUR, mib

            def run():
                return mib(4) + HOUR
        """
        found = findings_for(project_factory, files, "RL016")
        assert len(found) == 1
        assert "bytes" in found[0].message and "seconds" in found[0].message

    def test_bug_mix_through_parameter(self, project_factory):
        # The byte count crosses a function boundary before mixing.
        files = dict(_UNITS_SKELETON)
        files["repro/apps/plan.py"] = """
            from repro.units import HOUR, mib

            def window(extra):
                return HOUR + extra

            def run():
                return window(mib(4))
        """
        found = findings_for(project_factory, files, "RL016")
        assert len(found) == 1
        assert "window" in found[0].message

    def test_bug_mix_through_return(self, project_factory):
        files = dict(_UNITS_SKELETON)
        files["repro/apps/plan.py"] = """
            from repro.units import HOUR, mib

            def budget():
                return mib(8)

            def run():
                return budget() + HOUR
        """
        found = findings_for(project_factory, files, "RL016")
        assert len(found) == 1

    def test_clean_dimensionless_offset(self, project_factory):
        files = dict(_UNITS_SKELETON)
        files["repro/apps/plan.py"] = """
            from repro.units import HOUR

            def run():
                return HOUR + 1.0
        """
        assert findings_for(project_factory, files, "RL016") == []

    def test_clean_rate_algebra(self, project_factory):
        # bytes / seconds → rate; rate * seconds → bytes; bytes + bytes ok.
        files = dict(_UNITS_SKELETON)
        files["repro/apps/plan.py"] = """
            from repro.units import HOUR, mib

            def run():
                rate = mib(64) / HOUR
                moved = rate * HOUR
                return moved + mib(1)
        """
        assert findings_for(project_factory, files, "RL016") == []

    def test_conflicting_call_sites_withdraw_inference(self, project_factory):
        # Two call sites disagree about `extra`; the inference must be
        # withdrawn rather than guessing (no finding either way).
        files = dict(_UNITS_SKELETON)
        files["repro/apps/plan.py"] = """
            from repro.units import HOUR, mib

            def passthrough(extra):
                return extra

            def a():
                return passthrough(HOUR)

            def b():
                return passthrough(mib(1))
        """
        assert findings_for(project_factory, files, "RL016") == []


def test_all_six_rules_registered():
    from repro.lint.flow.base import FLOW_RULE_REGISTRY

    assert set(FLOW_RULE_REGISTRY) == {
        "RL011", "RL012", "RL013", "RL014", "RL015", "RL016",
    }


def test_disabled_rule_skipped(project_factory):
    files = dict(_RNG_SKELETON)
    files["repro/driver.py"] = """
        import numpy as np
        from repro.sim.engine import advance

        def run():
            return advance(np.random.default_rng(), 3)
    """
    project = project_factory(files)
    config = LintConfig(disable=("RL011",))
    findings = run_flow_rules(project, config)
    assert [f for f in findings if f.rule_id == "RL011"] == []
