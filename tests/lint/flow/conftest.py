"""Shared fixtures for the whole-program (flow) analysis tests.

Flow rules never import the code they analyze, and package scoping is
path-based (``/repro/<pkg>/``), so a temp tree shaped like
``<tmp>/repro/sim/engine.py`` indexes and scopes exactly like the real
source tree.  ``project_factory`` writes such a tree and returns the
built :class:`ProjectIndex`; ``tree_factory`` returns just the root for
tests that drive :func:`analyze_paths` themselves.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint.flow.index import ProjectIndex


def write_tree(root: Path, files: dict[str, str]) -> Path:
    root.mkdir(parents=True, exist_ok=True)
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


@pytest.fixture
def tree_factory(tmp_path):
    """Write a fixture tree and return its root directory."""

    counter = {"n": 0}

    def factory(files: dict[str, str]) -> Path:
        counter["n"] += 1
        return write_tree(tmp_path / f"proj{counter['n']}", files)

    return factory


@pytest.fixture
def project_factory(tree_factory):
    """Write a fixture tree and return the built ProjectIndex."""

    def factory(files: dict[str, str]) -> ProjectIndex:
        return ProjectIndex.build([tree_factory(files)])

    return factory
