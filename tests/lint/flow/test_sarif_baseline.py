"""SARIF 2.1.0 export and baseline filtering."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.lint.findings import Finding, Severity
from repro.lint.baseline import apply_baseline, load_baseline, save_baseline
from repro.lint.sarif import render_sarif, to_sarif


def make_finding(path="src/repro/a.py", line=3, col=4, rule="RL011", msg="boom"):
    return Finding(
        path=path,
        line=line,
        col=col,
        rule_id=rule,
        rule_name="rng-provenance",
        severity=Severity.ERROR,
        message=msg,
    )


class TestSarif:
    def test_log_shape(self):
        log = to_sarif([make_finding()])
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert len(run["results"]) == 1
        result = run["results"][0]
        assert result["ruleId"] == "RL011"
        assert result["level"] == "error"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/repro/a.py"
        assert loc["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
        # SARIF columns are 1-based; Finding cols are 0-based.
        assert loc["region"] == {"startLine": 3, "startColumn": 5}

    def test_rule_metadata_included(self):
        log = to_sarif([make_finding(rule="RL011"), make_finding(rule="RL014")])
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == ["RL011", "RL014"]
        assert all("shortDescription" in r for r in rules)
        # ruleIndex points into the sorted rules array
        for result in log["runs"][0]["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_results_sorted_and_render_deterministic(self):
        findings = [
            make_finding(path="src/z.py", line=9),
            make_finding(path="src/a.py", line=1),
        ]
        log = to_sarif(findings)
        uris = [
            r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
            for r in log["runs"][0]["results"]
        ]
        assert uris == sorted(uris)
        assert render_sarif(findings) == render_sarif(list(reversed(findings)))
        # canonical text: valid JSON, newline-terminated, no timestamps
        text = render_sarif(findings)
        assert text.endswith("\n")
        assert "time" not in json.dumps(json.loads(text))

    def test_empty_findings_valid_log(self):
        log = to_sarif([])
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["tool"]["driver"]["rules"] == []


class TestBaseline:
    def test_roundtrip_filters_known_findings(self, tmp_path):
        path = tmp_path / "baseline.json"
        old = make_finding(msg="known issue")
        save_baseline([old], path)
        baseline = load_baseline(path)
        new = make_finding(msg="fresh issue")
        assert apply_baseline([old, new], baseline) == [new]

    def test_line_numbers_do_not_matter(self, tmp_path):
        # Shifting a finding up or down must not resurrect it.
        path = tmp_path / "baseline.json"
        save_baseline([make_finding(line=10)], path)
        moved = make_finding(line=200)
        assert apply_baseline([moved], load_baseline(path)) == []

    def test_multiplicity_respected(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline([make_finding(line=1)], path)
        dup_a, dup_b = make_finding(line=1), make_finding(line=2)
        # Two findings with the same key, baseline count 1 → one survives.
        survivors = apply_baseline([dup_a, dup_b], load_baseline(path))
        assert len(survivors) == 1

    def test_different_rule_not_matched(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline([make_finding(rule="RL011")], path)
        other = make_finding(rule="RL012")
        assert apply_baseline([other], load_baseline(path)) == [other]

    def test_missing_baseline_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError):
            load_baseline(tmp_path / "absent.json")

    def test_invalid_json_is_config_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{broken", encoding="utf-8")
        with pytest.raises(ConfigError):
            load_baseline(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}), encoding="utf-8")
        with pytest.raises(ConfigError):
            load_baseline(path)

    def test_baseline_file_deterministic(self, tmp_path):
        findings = [make_finding(line=1), make_finding(rule="RL014", line=2)]
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_baseline(findings, a)
        save_baseline(list(reversed(findings)), b)
        assert a.read_bytes() == b.read_bytes()
