"""Call graph resolution: imports, methods, aliasing, typed receivers."""

from __future__ import annotations

from repro.lint.flow.callgraph import CallGraph


def graph_for(project_factory, files):
    project = project_factory(files)
    return project, CallGraph.build(project)


def targets(graph, caller):
    return {s.callee for s in graph.sites.get(caller, []) if s.callee}


def externals(graph, caller):
    return {s.external for s in graph.sites.get(caller, []) if s.external}


class TestNameResolution:
    def test_direct_call_same_module(self, project_factory):
        project, graph = graph_for(
            project_factory,
            {
                "repro/__init__.py": "",
                "repro/a.py": """
                    def helper():
                        return 1

                    def run():
                        return helper()
                """,
            },
        )
        assert targets(graph, "repro.a.run") == {"repro.a.helper"}

    def test_from_import_call(self, project_factory):
        project, graph = graph_for(
            project_factory,
            {
                "repro/__init__.py": "",
                "repro/util.py": "def helper():\n    return 1\n",
                "repro/a.py": """
                    from repro.util import helper

                    def run():
                        return helper()
                """,
            },
        )
        assert targets(graph, "repro.a.run") == {"repro.util.helper"}

    def test_module_attribute_call_through_alias(self, project_factory):
        project, graph = graph_for(
            project_factory,
            {
                "repro/__init__.py": "",
                "repro/util.py": "def helper():\n    return 1\n",
                "repro/a.py": """
                    import repro.util as u

                    def run():
                        return u.helper()
                """,
            },
        )
        assert targets(graph, "repro.a.run") == {"repro.util.helper"}

    def test_function_alias_variable(self, project_factory):
        project, graph = graph_for(
            project_factory,
            {
                "repro/__init__.py": "",
                "repro/util.py": "def helper():\n    return 1\n",
                "repro/a.py": """
                    from repro.util import helper

                    def run():
                        fn = helper
                        return fn()
                """,
            },
        )
        assert targets(graph, "repro.a.run") == {"repro.util.helper"}

    def test_unresolved_call_kept_as_external(self, project_factory):
        project, graph = graph_for(
            project_factory,
            {
                "repro/__init__.py": "",
                "repro/a.py": """
                    import numpy as np

                    def run():
                        return np.random.default_rng()
                """,
            },
        )
        assert externals(graph, "repro.a.run") == {"numpy.random.default_rng"}


class TestMethodResolution:
    def test_self_method_through_mro(self, project_factory):
        project, graph = graph_for(
            project_factory,
            {
                "repro/__init__.py": "",
                "repro/a.py": """
                    class Base:
                        def shared(self):
                            return 0

                    class Solver(Base):
                        def solve(self):
                            return self.shared()
                """,
            },
        )
        assert targets(graph, "repro.a.Solver.solve") == {"repro.a.Base.shared"}

    def test_constructor_typed_local(self, project_factory):
        project, graph = graph_for(
            project_factory,
            {
                "repro/__init__.py": "",
                "repro/a.py": """
                    class Solver:
                        def solve(self):
                            return 1

                    def run():
                        s = Solver()
                        return s.solve()
                """,
            },
        )
        assert "repro.a.Solver.solve" in targets(graph, "repro.a.run")
        # constructing also resolves to __init__ when present; the solve
        # edge is what matters here

    def test_annotated_parameter(self, project_factory):
        project, graph = graph_for(
            project_factory,
            {
                "repro/__init__.py": "",
                "repro/a.py": """
                    class Solver:
                        def solve(self):
                            return 1

                    def run(s: Solver):
                        return s.solve()
                """,
            },
        )
        assert targets(graph, "repro.a.run") == {"repro.a.Solver.solve"}

    def test_instance_attribute_type(self, project_factory):
        project, graph = graph_for(
            project_factory,
            {
                "repro/__init__.py": "",
                "repro/a.py": """
                    class Solver:
                        def solve(self):
                            return 1

                    class Engine:
                        def __init__(self):
                            self.solver = Solver()

                        def step(self):
                            return self.solver.solve()
                """,
            },
        )
        assert targets(graph, "repro.a.Engine.step") == {"repro.a.Solver.solve"}

    def test_cross_module_typed_receiver(self, project_factory):
        project, graph = graph_for(
            project_factory,
            {
                "repro/__init__.py": "",
                "repro/solver.py": """
                    class Solver:
                        def solve(self):
                            return 1
                """,
                "repro/a.py": """
                    from repro.solver import Solver

                    def run():
                        s = Solver()
                        return s.solve()
                """,
            },
        )
        assert "repro.solver.Solver.solve" in targets(graph, "repro.a.run")


class TestFunctionRefs:
    def test_resolve_function_ref_bare_name(self, project_factory):
        project, graph = graph_for(
            project_factory,
            {
                "repro/__init__.py": "",
                "repro/a.py": """
                    def worker(x):
                        return x

                    def run(pool):
                        return pool(worker)
                """,
            },
        )
        scope = graph.scope("repro.a.run")
        site = graph.sites["repro.a.run"][0]
        ref = scope.resolve_function_ref(site.node.args[0])
        assert ref == "repro.a.worker"

    def test_resolve_function_ref_module_attribute(self, project_factory):
        project, graph = graph_for(
            project_factory,
            {
                "repro/__init__.py": "",
                "repro/util.py": "def worker(x):\n    return x\n",
                "repro/a.py": """
                    import repro.util as u

                    def run(pool):
                        return pool(u.worker)
                """,
            },
        )
        scope = graph.scope("repro.a.run")
        site = graph.sites["repro.a.run"][0]
        assert scope.resolve_function_ref(site.node.args[0]) == "repro.util.worker"


class TestReachability:
    def test_reachable_follows_chains(self, project_factory):
        project, graph = graph_for(
            project_factory,
            {
                "repro/__init__.py": "",
                "repro/a.py": """
                    def leaf():
                        return 1

                    def mid():
                        return leaf()

                    def root():
                        return mid()

                    def unrelated():
                        return 2
                """,
            },
        )
        reached = graph.reachable(["repro.a.root"])
        assert reached == {"repro.a.root", "repro.a.mid", "repro.a.leaf"}

    def test_callers_callees_adjacency(self, project_factory):
        project, graph = graph_for(
            project_factory,
            {
                "repro/__init__.py": "",
                "repro/a.py": """
                    def leaf():
                        return 1

                    def root():
                        return leaf()
                """,
            },
        )
        assert graph.callees("repro.a.root") == {"repro.a.leaf"}
        assert graph.callers("repro.a.leaf") == {"repro.a.root"}
