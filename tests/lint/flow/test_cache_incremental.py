"""Incremental analysis: dirty sets, dependent invalidation, identity.

The contract under test: a warm run re-analyzes only changed files plus
their reverse dependencies, and its findings are **identical** to a cold
(no-cache) run of the same tree — incrementality must never change the
answer.
"""

from __future__ import annotations

import json
import textwrap

from repro.lint.config import LintConfig
from repro.lint.flow.analyzer import analyze_paths
from repro.lint.flow.cache import AnalysisCache, config_key

FILES = {
    "repro/__init__.py": "",
    "repro/sim/__init__.py": "",
    "repro/sim/rng.py": """
        def make_rng(seed=0):
            return ("rng", seed)
    """,
    "repro/sim/engine.py": """
        def advance(rng, steps):
            return (rng, steps)
    """,
    "repro/util.py": """
        from repro.sim.rng import make_rng

        def fresh():
            return make_rng(3)
    """,
    "repro/driver.py": """
        from repro.sim.engine import advance
        from repro.util import fresh

        def run():
            return advance(fresh(), 2)
    """,
    "repro/other.py": """
        def nothing():
            return 1
    """,
}

UTIL_WITH_BUG = """
    import numpy as np

    def fresh():
        return np.random.default_rng()
"""


def rel(report_paths, root):
    prefix = str(root).replace("\\", "/") + "/"
    return {p.replace(prefix, "") for p in report_paths}


class TestIncrementalRuns:
    def test_cold_run_analyzes_everything(self, tree_factory, tmp_path):
        root = tree_factory(FILES)
        cache = tmp_path / "cache.json"
        report = analyze_paths([root], LintConfig(), cache_path=cache)
        assert report.findings == []
        assert set(report.analyzed) == set(report.files)
        assert report.cached == []
        assert cache.is_file()

    def test_warm_run_analyzes_nothing(self, tree_factory, tmp_path):
        root = tree_factory(FILES)
        cache = tmp_path / "cache.json"
        cold = analyze_paths([root], LintConfig(), cache_path=cache)
        warm = analyze_paths([root], LintConfig(), cache_path=cache)
        assert warm.analyzed == []
        assert set(warm.cached) == set(warm.files)
        assert warm.cache_hit_rate == 1.0
        assert warm.findings == cold.findings

    def test_rewriting_identical_content_stays_clean(self, tree_factory, tmp_path):
        root = tree_factory(FILES)
        cache = tmp_path / "cache.json"
        analyze_paths([root], LintConfig(), cache_path=cache)
        # Touch a file without changing its bytes: the sha256 key must
        # keep it out of the dirty set (mtime is irrelevant).
        target = root / "repro/other.py"
        target.write_text(target.read_text(encoding="utf-8"), encoding="utf-8")
        report = analyze_paths([root], LintConfig(), cache_path=cache)
        assert report.analyzed == []

    def test_edit_invalidates_file_and_dependents(self, tree_factory, tmp_path):
        root = tree_factory(FILES)
        cache = tmp_path / "cache.json"
        analyze_paths([root], LintConfig(), cache_path=cache)
        (root / "repro/util.py").write_text(
            textwrap.dedent(UTIL_WITH_BUG), encoding="utf-8"
        )
        report = analyze_paths([root], LintConfig(), cache_path=cache)
        analyzed = rel(report.analyzed, root)
        # Changed file and its importer re-ran …
        assert "repro/util.py" in analyzed
        assert "repro/driver.py" in analyzed
        # … but files nothing imports from util stayed cached.
        assert "repro/other.py" not in analyzed
        assert "repro/sim/rng.py" not in analyzed

    def test_dependent_reanalysis_surfaces_new_finding(self, tree_factory, tmp_path):
        # The planted bug lives in util.py, but the *finding* lands in
        # driver.py (where the tainted value enters the sink).  If the
        # dependent were not re-analyzed, the warm run would miss it.
        root = tree_factory(FILES)
        cache = tmp_path / "cache.json"
        clean = analyze_paths([root], LintConfig(), cache_path=cache)
        assert [f for f in clean.findings if f.rule_id == "RL011"] == []
        (root / "repro/util.py").write_text(
            textwrap.dedent(UTIL_WITH_BUG), encoding="utf-8"
        )
        report = analyze_paths([root], LintConfig(), cache_path=cache)
        rl011 = [f for f in report.findings if f.rule_id == "RL011"]
        assert len(rl011) == 1
        assert rl011[0].path.endswith("repro/driver.py")

    def test_incremental_equals_full_reanalysis(self, tree_factory, tmp_path):
        root = tree_factory(FILES)
        cache = tmp_path / "cache.json"
        analyze_paths([root], LintConfig(), cache_path=cache)
        (root / "repro/util.py").write_text(
            textwrap.dedent(UTIL_WITH_BUG), encoding="utf-8"
        )
        incremental = analyze_paths([root], LintConfig(), cache_path=cache)
        full = analyze_paths([root], LintConfig(), cache_path=None)
        assert [f.to_dict() for f in incremental.findings] == [
            f.to_dict() for f in full.findings
        ]

    def test_findings_served_from_cache_verbatim(self, tree_factory, tmp_path):
        # A tree with a stable finding: the warm run reports it from the
        # cache with identical location and message.
        files = dict(FILES)
        files["repro/bad.py"] = """
            import numpy as np
            from repro.sim.engine import advance

            def run():
                return advance(np.random.default_rng(), 1)
        """
        root = tree_factory(files)
        cache = tmp_path / "cache.json"
        cold = analyze_paths([root], LintConfig(), cache_path=cache)
        warm = analyze_paths([root], LintConfig(), cache_path=cache)
        assert warm.analyzed == []
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]
        assert any(f.rule_id == "RL011" for f in warm.findings)

    def test_deleted_file_pruned_from_cache(self, tree_factory, tmp_path):
        root = tree_factory(FILES)
        cache = tmp_path / "cache.json"
        analyze_paths([root], LintConfig(), cache_path=cache)
        (root / "repro/other.py").unlink()
        analyze_paths([root], LintConfig(), cache_path=cache)
        data = json.loads(cache.read_text(encoding="utf-8"))
        assert not any(p.endswith("repro/other.py") for p in data["files"])


class TestCacheInvalidation:
    def test_config_change_invalidates_wholesale(self, tree_factory, tmp_path):
        root = tree_factory(FILES)
        cache = tmp_path / "cache.json"
        analyze_paths([root], LintConfig(), cache_path=cache)
        report = analyze_paths(
            [root], LintConfig(disable=("RL016",)), cache_path=cache
        )
        assert set(report.analyzed) == set(report.files)

    def test_config_key_sensitive_to_fields_and_rules(self):
        base = config_key(LintConfig(), ("RL011",))
        assert base == config_key(LintConfig(), ("RL011",))
        assert base != config_key(LintConfig(disable=("RL001",)), ("RL011",))
        assert base != config_key(LintConfig(), ("RL011", "RL012"))

    def test_corrupt_cache_file_ignored(self, tree_factory, tmp_path):
        root = tree_factory(FILES)
        cache = tmp_path / "cache.json"
        cache.write_text("{not json", encoding="utf-8")
        report = analyze_paths([root], LintConfig(), cache_path=cache)
        assert set(report.analyzed) == set(report.files)
        # and the run leaves a valid cache behind
        json.loads(cache.read_text(encoding="utf-8"))

    def test_cache_file_is_deterministic(self, tree_factory, tmp_path):
        root = tree_factory(FILES)
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        analyze_paths([root], LintConfig(), cache_path=a)
        analyze_paths([root], LintConfig(), cache_path=b)
        assert a.read_bytes() == b.read_bytes()

    def test_version_mismatch_rejected(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        cache_file.write_text(
            json.dumps({"version": 999, "config_key": "k", "files": {}}),
            encoding="utf-8",
        )
        cache = AnalysisCache(cache_file, "k")
        assert not cache.valid
        assert cache.entries == {}


class TestParseErrorHandling:
    def test_unparsable_file_reported_not_cached(self, tree_factory, tmp_path):
        files = dict(FILES)
        files["repro/broken.py"] = "def oops(:\n"
        root = tree_factory(files)
        cache = tmp_path / "cache.json"
        cold = analyze_paths([root], LintConfig(), cache_path=cache)
        assert len(cold.parse_errors) == 1
        assert any(f.rule_id == "RL000" for f in cold.findings)
        # Warm run: the broken file is outside the index, so it is
        # re-reported every run rather than served stale from the cache.
        warm = analyze_paths([root], LintConfig(), cache_path=cache)
        assert any(f.rule_id == "RL000" for f in warm.findings)
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]
