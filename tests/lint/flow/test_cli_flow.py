"""CLI surface of the flow analyzer: --flow, --stats, --quiet, --sarif,
--baseline/--write-baseline, cache flags, and cold/warm byte-identity."""

from __future__ import annotations

import json

import pytest

from repro.lint.cli import main

CLEAN_FILES = {
    "repro/__init__.py": "",
    "repro/sim/__init__.py": "",
    "repro/sim/rng.py": """
        def make_rng(seed=0):
            return ("rng", seed)
    """,
    "repro/sim/engine.py": """
        def advance(rng, steps):
            return (rng, steps)
    """,
    "repro/driver.py": """
        from repro.sim.rng import make_rng
        from repro.sim.engine import advance

        def run():
            return advance(make_rng(7), 3)
    """,
}

BUGGY_FILES = dict(CLEAN_FILES)
BUGGY_FILES["repro/driver.py"] = """
    import numpy as np

    from repro.sim.engine import advance

    def run():
        return advance(np.random.default_rng(), 3)
"""


@pytest.fixture
def clean_root(tree_factory):
    return tree_factory(CLEAN_FILES)


@pytest.fixture
def buggy_root(tree_factory):
    return tree_factory(BUGGY_FILES)


def run_cli(capsys, *argv):
    code = main([str(a) for a in argv])
    return code, capsys.readouterr().out


class TestExitCodesAndText:
    def test_clean_tree_exits_zero(self, clean_root, capsys):
        code, out = run_cli(capsys, clean_root, "--flow", "--no-cache", "--no-config")
        assert code == 0
        assert "clean: 0 findings" in out

    def test_findings_exit_one(self, buggy_root, capsys):
        code, out = run_cli(capsys, buggy_root, "--flow", "--no-cache", "--no-config")
        assert code == 1
        assert "RL011" in out

    def test_missing_baseline_exits_two(self, clean_root, capsys):
        code, _ = run_cli(
            capsys, clean_root, "--flow", "--no-cache", "--no-config",
            "--baseline", clean_root / "absent.json",
        )
        assert code == 2

    def test_quiet_clean_prints_nothing(self, clean_root, capsys):
        code, out = run_cli(
            capsys, clean_root, "--flow", "--no-cache", "--no-config", "--quiet"
        )
        assert code == 0
        assert out == ""

    def test_quiet_still_prints_findings(self, buggy_root, capsys):
        _, out = run_cli(
            capsys, buggy_root, "--flow", "--no-cache", "--no-config", "--quiet"
        )
        assert "RL011" in out
        assert "finding(s) in" not in out  # summary suppressed

    def test_quiet_suppresses_stats(self, buggy_root, capsys):
        _, out = run_cli(
            capsys, buggy_root, "--flow", "--no-cache", "--no-config",
            "--quiet", "--stats",
        )
        assert "-- lint stats --" not in out


class TestStats:
    def test_text_stats_block(self, buggy_root, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        _, out = run_cli(
            capsys, buggy_root, "--flow", "--no-config",
            "--cache", cache, "--stats",
        )
        assert "-- lint stats --" in out
        assert "files analyzed:" in out
        assert "cache hits:" in out
        assert "RL011:" in out

    def test_stats_reflect_warm_cache(self, clean_root, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        run_cli(capsys, clean_root, "--flow", "--no-config", "--cache", cache)
        _, out = run_cli(
            capsys, clean_root, "--flow", "--no-config",
            "--cache", cache, "--stats",
        )
        assert "files analyzed:  0 of 5" in out
        assert "(100%)" in out

    def test_json_stats_payload(self, clean_root, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        _, out = run_cli(
            capsys, clean_root, "--flow", "--no-config",
            "--cache", cache, "--format", "json", "--stats",
        )
        payload = json.loads(out)
        assert payload["version"] == 2
        assert payload["stats"]["files"] == 5
        assert payload["stats"]["analyzed"] == 5
        assert payload["stats"]["cache_hit_rate"] == 0.0

    def test_json_without_stats_flag_has_no_stats_key(self, clean_root, capsys):
        _, out = run_cli(
            capsys, clean_root, "--flow", "--no-cache", "--no-config",
            "--format", "json",
        )
        assert "stats" not in json.loads(out)


class TestBaselineWorkflow:
    def test_write_then_apply(self, buggy_root, tmp_path, capsys):
        baseline = tmp_path / "LINT_baseline.json"
        code, out = run_cli(
            capsys, buggy_root, "--flow", "--no-cache", "--no-config",
            "--write-baseline", baseline,
        )
        assert code == 0
        assert "baseline written" in out
        assert baseline.is_file()
        # Every current finding is baselined → the gate passes.
        code, out = run_cli(
            capsys, buggy_root, "--flow", "--no-cache", "--no-config",
            "--baseline", baseline,
        )
        assert code == 0
        assert "clean: 0 findings" in out

    def test_new_finding_not_covered_by_baseline(
        self, buggy_root, tmp_path, capsys
    ):
        baseline = tmp_path / "LINT_baseline.json"
        run_cli(
            capsys, buggy_root, "--flow", "--no-cache", "--no-config",
            "--write-baseline", baseline,
        )
        (buggy_root / "repro/late.py").write_text(
            "import time\n\nfrom repro.sim.engine import advance\n\n"
            "def run():\n    return advance(time.time(), 1)\n",
            encoding="utf-8",
        )
        code, out = run_cli(
            capsys, buggy_root, "--flow", "--no-cache", "--no-config",
            "--baseline", baseline,
        )
        assert code == 1
        assert "RL012" in out
        assert "RL011" not in out  # the baselined finding stays silent


class TestSarifOutput:
    def test_sarif_file_written(self, buggy_root, tmp_path, capsys):
        sarif = tmp_path / "lint.sarif"
        run_cli(
            capsys, buggy_root, "--flow", "--no-cache", "--no-config",
            "--sarif", sarif,
        )
        log = json.loads(sarif.read_text(encoding="utf-8"))
        assert log["version"] == "2.1.0"
        assert any(
            r["ruleId"] == "RL011" for r in log["runs"][0]["results"]
        )

    def test_cold_and_warm_sarif_byte_identical(
        self, buggy_root, tmp_path, capsys
    ):
        cache = tmp_path / "cache.json"
        cold, warm = tmp_path / "cold.sarif", tmp_path / "warm.sarif"
        run_cli(
            capsys, buggy_root, "--flow", "--no-config",
            "--cache", cache, "--sarif", cold,
        )
        run_cli(
            capsys, buggy_root, "--flow", "--no-config",
            "--cache", cache, "--sarif", warm,
        )
        assert cold.read_bytes() == warm.read_bytes()

    def test_sarif_respects_baseline(self, buggy_root, tmp_path, capsys):
        baseline = tmp_path / "LINT_baseline.json"
        sarif = tmp_path / "lint.sarif"
        run_cli(
            capsys, buggy_root, "--flow", "--no-cache", "--no-config",
            "--write-baseline", baseline,
        )
        run_cli(
            capsys, buggy_root, "--flow", "--no-cache", "--no-config",
            "--baseline", baseline, "--sarif", sarif,
        )
        log = json.loads(sarif.read_text(encoding="utf-8"))
        assert log["runs"][0]["results"] == []


class TestCacheFlags:
    def test_no_cache_leaves_no_file(self, clean_root, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        run_cli(capsys, clean_root, "--flow", "--no-cache", "--no-config")
        assert not (tmp_path / ".repro_lint_cache.json").exists()

    def test_default_cache_location(self, clean_root, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        run_cli(capsys, clean_root, "--flow", "--no-config")
        assert (tmp_path / ".repro_lint_cache.json").is_file()


class TestListRules:
    def test_flow_rules_listed_with_scope(self, capsys):
        code, out = run_cli(capsys, "--list-rules")
        assert code == 0
        for rule_id in ("RL011", "RL012", "RL013", "RL014", "RL015", "RL016"):
            assert rule_id in out
        assert "[flow]" in out
        assert "[file]" in out
