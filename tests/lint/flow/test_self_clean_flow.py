"""The whole-program rules hold on the tree itself.

Mirror of ``tests/lint/test_self_clean.py`` for the flow analyzer: under
the committed configuration and the committed ``LINT_baseline.json``,
``repro lint --flow`` over src/ and tests/ must report nothing new.
"""

from pathlib import Path

from repro.lint import apply_baseline, load_baseline, load_config
from repro.lint.flow.analyzer import analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[3]


def test_flow_analysis_is_clean_against_baseline():
    config = load_config(REPO_ROOT)
    report = analyze_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests"], config, cache_path=None
    )
    baseline_path = REPO_ROOT / "LINT_baseline.json"
    baseline = load_baseline(baseline_path) if baseline_path.is_file() else {}
    fresh = apply_baseline(report.findings, baseline)
    assert fresh == [], "\n".join(f.format_text() for f in fresh)
