"""Project index: module naming, imports, symbols, dependency closure."""

from __future__ import annotations

from pathlib import Path

from repro.lint.flow.index import ProjectIndex, module_name_for


class TestModuleNaming:
    def test_src_prefix_dropped(self):
        name = module_name_for(Path("src/repro/sim/rng.py"), [Path("src")])
        assert name == "repro.sim.rng"

    def test_plain_root(self, tmp_path):
        name = module_name_for(tmp_path / "repro/net/flows.py", [tmp_path])
        assert name == "repro.net.flows"

    def test_init_trimmed(self):
        name = module_name_for(Path("src/repro/sim/__init__.py"), [Path("src")])
        assert name == "repro.sim"

    def test_closest_root_wins(self, tmp_path):
        inner = tmp_path / "src"
        name = module_name_for(inner / "repro/units.py", [tmp_path, inner])
        assert name == "repro.units"


class TestImports:
    def test_import_alias(self, project_factory):
        project = project_factory(
            {"repro/__init__.py": "", "repro/a.py": "import numpy as np\n"}
        )
        info = project.modules["repro.a"]
        assert info.imports["np"] == "numpy"

    def test_from_import_with_alias(self, project_factory):
        project = project_factory(
            {
                "repro/__init__.py": "",
                "repro/sim/__init__.py": "",
                "repro/sim/rng.py": "def make_rng(seed=0):\n    return seed\n",
                "repro/a.py": "from repro.sim.rng import make_rng as mk\n",
            }
        )
        info = project.modules["repro.a"]
        assert info.imports["mk"] == "repro.sim.rng.make_rng"
        assert info.deps == {"repro.sim.rng"}

    def test_relative_import(self, project_factory):
        project = project_factory(
            {
                "repro/__init__.py": "",
                "repro/sim/__init__.py": "",
                "repro/sim/rng.py": "def make_rng(seed=0):\n    return seed\n",
                "repro/sim/engine.py": "from .rng import make_rng\n",
            }
        )
        info = project.modules["repro.sim.engine"]
        assert info.imports["make_rng"] == "repro.sim.rng.make_rng"
        assert info.deps == {"repro.sim.rng"}

    def test_deps_trimmed_to_indexed_modules(self, project_factory):
        project = project_factory(
            {
                "repro/__init__.py": "",
                "repro/b.py": "X = 1\n",
                "repro/a.py": "import os\nfrom repro.b import X\n",
            }
        )
        # `os` is external and must not survive as a dependency.
        assert project.modules["repro.a"].deps == {"repro.b"}


class TestSymbols:
    FILES = {
        "repro/__init__.py": "",
        "repro/solver.py": """
            REGISTRY = {}
            LIMIT = 8

            class Base:
                def shared(self):
                    return 0

            class Solver(Base):
                def __init__(self):
                    self.memo = {}
                    self.engine = Helper()

                def solve(self, x):
                    self.last = x
                    return x

            class Helper:
                def ping(self):
                    return 1
        """,
    }

    def test_functions_and_classes_indexed(self, project_factory):
        project = project_factory(self.FILES)
        assert "repro.solver.Solver.solve" in project.functions
        assert "repro.solver.Solver" in project.classes
        fn = project.functions["repro.solver.Solver.solve"]
        assert fn.param_names == ["x"]  # self stripped

    def test_class_bases_and_mro_lookup(self, project_factory):
        project = project_factory(self.FILES)
        assert project.classes["repro.solver.Solver"].bases == ["Base"]
        inherited = project.lookup_method("repro.solver.Solver", "shared")
        assert inherited is not None
        assert inherited.qualname == "repro.solver.Base.shared"

    def test_attr_types_and_mutated_attrs(self, project_factory):
        project = project_factory(self.FILES)
        cinfo = project.classes["repro.solver.Solver"]
        assert cinfo.attr_types["engine"] == "Helper"
        # `self.last = x` happens in solve(), outside __init__.
        assert "last" in cinfo.mutated_attrs
        assert "memo" not in cinfo.mutated_attrs

    def test_module_globals(self, project_factory):
        project = project_factory(self.FILES)
        info = project.modules["repro.solver"]
        assert "REGISTRY" in info.globals
        assert "REGISTRY" in info.mutable_globals
        assert "LIMIT" not in info.mutable_globals


class TestResolve:
    def test_resolve_through_import_alias(self, project_factory):
        project = project_factory(
            {"repro/__init__.py": "", "repro/a.py": "import numpy as np\n"}
        )
        info = project.modules["repro.a"]
        assert project.resolve(info, "np.random.default_rng") == (
            "numpy.random.default_rng"
        )

    def test_resolve_local_symbol(self, project_factory):
        project = project_factory(
            {"repro/__init__.py": "", "repro/a.py": "def helper():\n    return 1\n"}
        )
        info = project.modules["repro.a"]
        assert project.resolve(info, "helper") == "repro.a.helper"

    def test_unknown_bare_name_is_none(self, project_factory):
        project = project_factory({"repro/__init__.py": "", "repro/a.py": "X = 1\n"})
        info = project.modules["repro.a"]
        assert project.resolve(info, "len") is None


class TestReverseClosure:
    def test_transitive_importers_included(self, project_factory):
        project = project_factory(
            {
                "repro/__init__.py": "",
                "repro/a.py": "X = 1\n",
                "repro/b.py": "from repro.a import X\n",
                "repro/c.py": "from repro.b import X\n",
                "repro/d.py": "Y = 2\n",
            }
        )
        closure = project.reverse_closure({"repro.a"})
        assert closure == {"repro.a", "repro.b", "repro.c"}

    def test_unrelated_module_excluded(self, project_factory):
        project = project_factory(
            {
                "repro/__init__.py": "",
                "repro/a.py": "X = 1\n",
                "repro/d.py": "Y = 2\n",
            }
        )
        assert project.reverse_closure({"repro.d"}) == {"repro.d"}


class TestParseErrors:
    def test_broken_file_recorded_others_indexed(self, project_factory):
        project = project_factory(
            {
                "repro/__init__.py": "",
                "repro/ok.py": "X = 1\n",
                "repro/broken.py": "def oops(:\n",
            }
        )
        assert "repro.ok" in project.modules
        assert "repro.broken" not in project.modules
        assert len(project.parse_errors) == 1
        assert project.parse_errors[0][0].endswith("broken.py")


class TestSuppressions:
    def test_line_and_file_suppressions_parsed(self, project_factory):
        project = project_factory(
            {
                "repro/__init__.py": "",
                "repro/a.py": (
                    "# repro-lint: disable=RL014\n"
                    "X = 1\n"
                    "Y = 2  # repro-lint: disable=RL013\n"
                ),
            }
        )
        info = project.modules["repro.a"]
        assert info.is_suppressed("RL014", 2)  # file-wide
        assert info.is_suppressed("RL013", 3)  # that line only
        assert not info.is_suppressed("RL013", 2)

    def test_in_packages_matches_path_components(self, project_factory):
        project = project_factory(
            {
                "repro/__init__.py": "",
                "repro/sim/__init__.py": "",
                "repro/sim/engine.py": "X = 1\n",
                "repro/tools.py": "Y = 2\n",
            }
        )
        assert project.modules["repro.sim.engine"].in_packages(["sim"])
        assert not project.modules["repro.tools"].in_packages(["sim"])
