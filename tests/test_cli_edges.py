"""CLI error paths and option forwarding."""

import pytest

from repro.cli import main
from repro.errors import AnomalyError, ConfigError


def test_unknown_anomaly_knob_raises():
    with pytest.raises(AnomalyError):
        main(["cpuoccupy", "--frequency", "3", "--horizon", "5"])


def test_unknown_app_raises():
    with pytest.raises(ConfigError):
        main(["cpuoccupy", "-u", "10", "--with-app", "hpl", "--horizon", "5"])


def test_netoccupy_without_peer_is_reported():
    # netoccupy launched via the CLI has no peer configured -> the body
    # raises at start; the CLI does not swallow it.
    with pytest.raises(AnomalyError):
        main(["netoccupy", "--horizon", "5"])


def test_custom_cluster_size(capsys):
    rc = main(["cpuoccupy", "-u", "10", "--nodes", "2", "--horizon", "5"])
    assert rc == 0
    assert "ran cpuoccupy" in capsys.readouterr().out


def test_io_anomaly_needs_filesystem():
    # the default Voltrino cluster has no 'nfs' filesystem attached
    with pytest.raises(ConfigError):
        main(["iobandwidth", "--horizon", "5"])
