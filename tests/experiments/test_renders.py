"""Rendering of experiment result objects (no simulation needed)."""

import numpy as np

from repro.experiments.ext_dragonfly import DragonflyResult
from repro.experiments.ext_jitter import JitterResult
from repro.experiments.ext_jobstream import JobStreamResult
from repro.experiments.ext_variability import VariabilityResult
from repro.experiments.fig2_cpuoccupy import Fig2Result
from repro.experiments.fig4_membw import Fig4Result
from repro.experiments.fig6_netoccupy import Fig6Result
from repro.experiments.fig8_matrix import ANOMALIES, Fig8Result
from repro.experiments.fig10_confusion import Fig10Result
from repro.experiments.fig11_12_allocation import Fig11_12Result
from repro.varbench import VariabilityReport


def test_fig2_render():
    r = Fig2Result(intensities=[10, 50], utilizations=[10.4, 50.4])
    out = r.render()
    assert "10.400" in out and "Fig 2" in out


def test_fig4_render():
    r = Fig4Result(labels=["none", "membw 1x"], best_rate_gbps=[12.5, 9.5])
    assert "membw 1x" in r.render()


def test_fig6_render():
    r = Fig6Result(
        message_sizes_kb=[64, 128],
        anomaly_nodes=[0, 2],
        bandwidth_gbps={0: [4.0, 6.0], 2: [3.5, 5.5]},
    )
    out = r.render()
    assert "0 anomaly nodes" in out and "2 anomaly nodes" in out


def test_fig8_render_and_slowdown():
    runtimes = {
        "CoMD": {a: 100.0 for a in ANOMALIES},
    }
    runtimes["CoMD"]["cachecopy"] = 250.0
    r = Fig8Result(runtimes=runtimes)
    assert r.slowdown("CoMD", "cachecopy") == 2.5
    assert "CoMD" in r.render()


def test_fig10_render_and_diagonal():
    matrix = np.eye(3)
    r = Fig10Result(labels=["a", "b", "c"], matrix=matrix)
    assert r.diagonal_mean == 1.0
    assert "true \\ predicted" in r.render()


def test_fig11_12_render_and_improvement():
    r = Fig11_12Result(
        allocations={"WBAS": ["node1"], "RoundRobin": ["node0"]},
        runtimes={"WBAS": [300.0], "RoundRobin": [400.0]},
    )
    assert r.improvement() == 0.25
    assert "WBAS" in r.render()


def test_jitter_render_and_slowdowns():
    r = JitterResult(node_counts=[1, 4], clean=[10.0, 10.0], jittered=[11.0, 12.0])
    assert r.slowdowns == [1.1, 1.2]
    assert "slowdown" in r.render()


def test_dragonfly_render():
    r = DragonflyResult(rows=[("within group", 9.8, 7.0, 0.71)])
    assert "within group" in r.render()


def test_jobstream_render():
    r = JobStreamResult(
        runtimes={"WBAS": [10.0]},
        makespans={"WBAS": 20.0},
        anomalous_hits={"WBAS": 0},
    )
    assert "makespan" in r.render()


def test_variability_render():
    report = VariabilityReport(app="x", anomaly="none", runtimes=(10.0, 11.0))
    r = VariabilityResult(reports={"none": report})
    out = r.render()
    assert "CoV" in out and "none" in out
