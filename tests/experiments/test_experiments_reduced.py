"""Reduced-scale runs of every experiment module (shape checks).

The full-scale runs live in ``benchmarks/``; these tests exercise the same
code paths at a fraction of the cost so the experiment harness itself is
covered by ``pytest tests/``.
"""

import numpy as np
import pytest

from repro.experiments import (
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig11_12,
    run_fig13,
    run_table1,
    run_table2,
)


def test_table1_lists_all_anomalies():
    result = run_table1()
    assert len(result.rows) == 8
    assert "utilization" in dict((r[1], r[3]) for r in result.rows)["cpuoccupy"]
    assert result.render().startswith("Table 1")


def test_fig2_reduced():
    result = run_fig2(intensities=(25, 75), duration=10)
    assert result.utilizations[0] == pytest.approx(25, abs=1)
    assert result.utilizations[1] == pytest.approx(75, abs=1)


def test_fig3_reduced():
    result = run_fig3(iterations=6)
    for machine in result.machines:
        m = result.mpki[machine]
        assert m["none"] < m["L1"] < m["L2"] < m["L3"]
    assert result.mpki["chameleon"]["L3"] > result.mpki["voltrino"]["L3"]


def test_fig4_reduced():
    result = run_fig4(counts=(0, 3, 15))
    rates = dict(zip(result.labels, result.best_rate_gbps))
    assert rates["none"] > rates["membw 3x"] > rates["membw 15x"]
    assert rates["cachecopy 15x"] > 0.9 * rates["none"]


def test_fig5_reduced():
    result = run_fig5(duration=80, horizon=100)
    leak = result.usage_gb["memleak"]
    eater = result.usage_gb["memeater"]
    assert leak[70] > leak[20]
    assert eater[70] == pytest.approx(eater[30], abs=0.1)
    assert result.render()


def test_fig6_reduced():
    result = run_fig6(message_sizes_kb=(64, 4096), pair_counts=(0, 3))
    for i in range(2):
        assert result.bandwidth_gbps[6][i] < result.bandwidth_gbps[0][i]


def test_fig7_reduced():
    result = run_fig7(anomaly_nodes=3, instances_per_node=48, horizon=20_000)
    assert result.rows["iobandwidth"]["write"] < 0.5 * result.rows["none"]["write"]
    assert result.rows["iometadata"]["access"] < 0.7 * result.rows["none"]["access"]


def test_table2_reduced():
    result = run_table2(iterations=6, ranks_per_node=4)
    mismatches = [r.app for r in result.rows if not r.matches_paper]
    assert mismatches == []


def test_fig8_reduced():
    result = run_fig8(
        iterations=10,
        apps=("CoMD", "cloverleaf"),
        anomalies=("cachecopy", "membw", "none"),
    )
    assert result.slowdown("CoMD", "cachecopy") > 1.5
    assert result.slowdown("cloverleaf", "membw") > 1.2
    assert result.slowdown("CoMD", "membw") < 1.1


def test_fig11_12_reduced():
    result = run_fig11_12(iterations=15, repeats=1)
    assert result.allocations["RoundRobin"] == ["node0", "node1", "node2", "node3"]
    assert "node0" not in result.allocations["WBAS"]
    assert result.improvement() > 0.05


def test_fig13_reduced():
    result = run_fig13(utilizations=(0, 400, 3200), n_objects=48, iterations=6)
    lb = dict(zip(result.utilizations, result.time_per_iter["LBObjOnly"]))
    greedy = dict(zip(result.utilizations, result.time_per_iter["GreedyRefineLB"]))
    assert greedy[400] < lb[400]
    assert abs(greedy[0] - lb[0]) < 0.01 * max(lb[0], 1e-9)
