"""Diagnosis data generation helpers."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.experiments.diagnosis_data import (
    MonitoredRun,
    _place,
    build_dataset,
    generate_runs,
)
from repro.sim.rng import make_rng


def test_place_rejects_unknown_label():
    with pytest.raises(ValueError):
        _place(Cluster.voltrino(num_nodes=8), "gremlin")


def test_place_none_is_noop():
    cluster = Cluster.voltrino(num_nodes=8)
    _place(cluster, "none")
    assert len(cluster.sim.processes) == 0


def test_generate_runs_single_pair():
    runs = generate_runs(
        apps=("CoMD",), labels=("none", "cpuoccupy"), iterations=10, trim=2
    )
    assert [r.label for r in runs] == ["none", "cpuoccupy"]
    assert runs[0].app == "CoMD"
    # trimmed series still long enough to window
    assert runs[0].series.shape[0] > 5
    assert runs[0].series.shape[1] == len(runs[0].metrics)


def test_trim_shortens_series():
    kwargs = dict(apps=("CoMD",), labels=("none",), iterations=10)
    untrimmed = generate_runs(trim=0, **kwargs)[0].series.shape[0]
    trimmed = generate_runs(trim=3, **kwargs)[0].series.shape[0]
    assert trimmed == untrimmed - 6


def test_build_dataset_from_monitored_runs():
    rng = make_rng(0)
    runs = [
        MonitoredRun(
            app="a",
            label="none",
            series=rng.random((40, 3)),
            metrics=["m1", "m2", "m3"],
        ),
        MonitoredRun(
            app="a",
            label="cpuoccupy",
            series=rng.random((40, 3)) + 5,
            metrics=["m1", "m2", "m3"],
        ),
    ]
    ds = build_dataset(runs, window=20)
    assert ds.n_samples == 4
    assert set(ds.y) == {"none", "cpuoccupy"}
    assert ds.groups.tolist() == [0, 0, 1, 1]


def test_runs_are_deterministic_per_seed():
    kwargs = dict(apps=("miniMD",), labels=("membw",), iterations=8)
    a = generate_runs(seed=5, **kwargs)[0].series
    b = generate_runs(seed=5, **kwargs)[0].series
    assert np.array_equal(a, b)
