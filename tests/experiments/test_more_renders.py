"""Rendering of the remaining experiment result types."""

import numpy as np

from repro.analytics.diagnosis import ModelReport
from repro.analytics.online import OnlineReport, TimelinePrediction
from repro.experiments.ext_importance import ImportanceResult
from repro.experiments.ext_lustre import LustreResult
from repro.experiments.ext_online import OnlineResult
from repro.experiments.fig3_cachecopy import Fig3Result
from repro.experiments.fig5_memory import Fig5Result
from repro.experiments.fig7_io import Fig7Result
from repro.experiments.fig13_loadbalance import Fig13Result


def test_fig3_render():
    r = Fig3Result(
        machines=["voltrino"],
        mpki={"voltrino": {"none": 0.6, "L1": 1.3, "L2": 2.3, "L3": 5.6}},
    )
    out = r.render()
    assert "voltrino" in out and "L3" in out


def test_fig5_render():
    times = np.arange(500.0)
    usage = {"memleak": np.linspace(7.5, 10.5, 500)}
    r = Fig5Result(times=times, usage_gb=usage)
    out = r.render()
    assert "memleak" in out and "t=300s" in out


def test_fig7_render():
    r = Fig7Result(
        rows={"none": {"write": 320.0, "access": 78.0, "read": 320.0}}
    )
    assert "write MB/s" in r.render()


def test_fig13_render():
    r = Fig13Result(
        utilizations=[0, 100],
        time_per_iter={"LBObjOnly": [0.1, 0.2], "GreedyRefineLB": [0.1, 0.13]},
    )
    out = r.render()
    assert "GreedyRefineLB" in out


def test_lustre_result_retained():
    r = LustreResult(
        rows={
            "nfs": {
                "none": {"write": 320.0, "access": 78.0, "read": 320.0},
                "iometadata": {"write": 160.0, "access": 29.0, "read": 160.0},
            }
        }
    )
    assert r.streaming_retained("nfs") == 0.5
    assert "filesystem" in r.render()


def test_importance_render():
    r = ImportanceResult(
        top_features=[("user::procstat__mean", 0.2)],
        family_importance={"procstat": 0.6, "meminfo": 0.4},
    )
    out = r.render()
    assert "user::procstat__mean" in out and "sampler family" in out


def test_online_result_render():
    report = OnlineReport(
        predictions=[
            TimelinePrediction(time=10.0, label="none"),
            TimelinePrediction(time=15.0, label="cachecopy"),
        ],
        accuracy=0.9,
        detection_latency=5.0,
    )
    r = OnlineResult(report=report, anomaly_window=(12.0, 40.0))
    out = r.render()
    assert "detection latency: 5s" in out
    assert report.labels_between(12.0, 20.0) == ["cachecopy"]


def test_online_result_render_not_detected():
    report = OnlineReport(
        predictions=[TimelinePrediction(time=10.0, label="none")],
        accuracy=0.5,
        detection_latency=None,
    )
    r = OnlineResult(report=report, anomaly_window=(5.0, 9.0))
    assert "not detected" in r.render()


def test_model_report_holds_confusion():
    report = ModelReport(
        name="RandomForest",
        f1_per_class={"none": 1.0},
        macro_f1=1.0,
        confusion=np.eye(1),
        labels=["none"],
    )
    assert report.confusion.shape == (1, 1)
