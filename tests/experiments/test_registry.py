"""The experiment registry and its normalized run/persist interface."""

import json

import pytest

from repro.errors import ConfigError
from repro.experiments.registry import (
    EXPERIMENT_REGISTRY,
    ExperimentSpec,
    get_experiment,
    persist_result,
    run,
)
from repro.parallel import run_trials


class FakeResult:
    def __init__(self, text, seed=None, config=None):
        self._text = text
        if seed is not None:
            self.seed = seed
        if config is not None:
            self.config = config

    def render(self):
        return self._text


def fake_spec(runner, name="fake"):
    return ExperimentSpec(name, "a test double", runner, "FakeResult")


class TestRegistry:
    def test_every_figure_and_table_registered(self):
        expected = {
            "table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6",
            "fig7", "fig8", "fig9", "fig10", "fig11_12", "fig13",
            "ext_dragonfly", "ext_faults", "ext_importance", "ext_jitter",
            "ext_jobstream", "ext_lustre", "ext_online", "ext_variability",
            "trace_replay",
        }
        assert set(EXPERIMENT_REGISTRY) == expected

    def test_keys_match_spec_names(self):
        for key, spec in EXPERIMENT_REGISTRY.items():
            assert key == spec.name

    def test_lookup_case_insensitive(self):
        assert get_experiment("FIG8") is EXPERIMENT_REGISTRY["fig8"]

    def test_unknown_experiment(self):
        with pytest.raises(ConfigError, match="unknown experiment"):
            get_experiment("fig99")

    def test_default_seed_only_on_seeded_runners(self):
        for spec in EXPERIMENT_REGISTRY.values():
            if spec.seed is not None:
                assert spec.takes_seed

    def test_result_paths(self):
        spec = EXPERIMENT_REGISTRY["fig8"]
        assert spec.result_path("results").name == "Fig8Result.txt"
        assert spec.manifest_path("results").name == "Fig8Result.manifest.json"


class TestNormalizedRun:
    def test_seed_forwarded_when_accepted(self):
        spec = fake_spec(lambda seed=0: FakeResult(f"seed={seed}"))
        assert spec.run(seed=9).render() == "seed=9"

    def test_seed_rejected_by_seedless_runner(self):
        spec = fake_spec(lambda: FakeResult("x"))
        with pytest.raises(ConfigError, match="does not take a seed"):
            spec.run(seed=9)

    def test_obs_forwarded_only_when_accepted(self):
        sentinel = object()
        seen = {}

        def with_obs(obs=None):
            seen["obs"] = obs
            return FakeResult("x")

        fake_spec(with_obs).run(obs=sentinel)
        assert seen["obs"] is sentinel
        # a runner without an obs parameter is driven without error
        assert fake_spec(lambda: FakeResult("y")).run(obs=sentinel).render() == "y"

    def test_overrides_pass_through(self):
        spec = fake_spec(lambda n_jobs=6: FakeResult(str(n_jobs)))
        assert spec.run(n_jobs=2).render() == "2"

    def test_module_level_run_drives_run_trials(self):
        specs = [
            fake_spec(lambda: FakeResult("a"), name="a"),
            fake_spec(lambda: FakeResult("b"), name="b"),
        ]
        results = run_trials(run, specs, jobs=1)
        assert [r.render() for r in results] == ["a", "b"]


class TestPersistResult:
    def test_writes_table_and_manifest(self, tmp_path):
        path = persist_result(FakeResult("hello"), tmp_path)
        assert path == tmp_path / "FakeResult.txt"
        assert path.read_text() == "hello\n"
        manifest = json.loads(
            (tmp_path / "FakeResult.manifest.json").read_text()
        )
        assert manifest["name"] == "FakeResult"
        assert manifest["seed"] is None

    def test_provenance_recorded_when_result_carries_it(self, tmp_path):
        result = FakeResult("hello", seed=3, config={"rates": [8.0]})
        persist_result(result, tmp_path)
        manifest = json.loads(
            (tmp_path / "FakeResult.manifest.json").read_text()
        )
        assert manifest["seed"] == 3
        assert manifest["config"] == {"rates": [8.0]}

    def test_private_class_prefix_stripped(self, tmp_path):
        result = FakeResult("x")
        result.__class__ = type("_Hidden", (FakeResult,), {})
        path = persist_result(result, tmp_path)
        assert path.name == "Hidden.txt"

    def test_byte_identical_across_reruns(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        for directory in (a, b):
            persist_result(FakeResult("table", seed=1), directory)
        assert (
            (a / "FakeResult.manifest.json").read_bytes()
            == (b / "FakeResult.manifest.json").read_bytes()
        )
