"""Experiment table rendering."""

from repro.experiments.common import format_table


def test_alignment_and_headers():
    out = format_table(["name", "value"], [("a", 1.5), ("long-name", 2.0)])
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert "----" in lines[1]
    assert "1.500" in lines[2]


def test_title_prepended():
    out = format_table(["x"], [(1,)], title="My Table")
    assert out.splitlines()[0] == "My Table"


def test_mixed_types():
    out = format_table(["a", "b"], [(1, "two"), (3.14159, None)])
    assert "3.142" in out
    assert "None" in out
