"""HPAS-style command-line front end."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_anomalies_accepted(self):
        parser = build_parser()
        args, extra = parser.parse_known_args(["cpuoccupy", "-u", "50"])
        assert args.anomaly == "cpuoccupy"
        assert extra == ["-u", "50"]

    def test_unknown_anomaly_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fanspin"])


class TestMain:
    def test_basic_run(self, capsys):
        rc = main(["cpuoccupy", "-u", "80", "--horizon", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ran cpuoccupy on node0:c0" in out

    def test_report_prints_metrics(self, capsys):
        rc = main(["membw", "--horizon", "10", "--report"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "user::procstat" in out
        assert "LLC_MISSES::spapiHASW" in out

    def test_with_app(self, capsys):
        rc = main(
            ["cachecopy", "-c", "L2", "--horizon", "30", "--with-app", "CoMD"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "co-ran CoMD" in out

    def test_anomaly_knobs_forwarded(self, capsys):
        rc = main(["cpuoccupy", "-u", "25", "-d", "5", "--horizon", "10"])
        assert rc == 0
        assert "state: killed" in capsys.readouterr().out

    def test_custom_placement(self, capsys):
        rc = main(["memleak", "--node", "node1", "--core", "3", "--horizon", "5"])
        assert rc == 0
        assert "node1:c3" in capsys.readouterr().out

    def test_profile_prints_engine_counters(self, capsys):
        rc = main(["cpuoccupy", "-u", "80", "--horizon", "10", "--profile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        assert "events_dispatched" in out
        assert "resolves" in out


class TestVarbenchSubcommand:
    def test_varbench_runs_and_reports(self, capsys):
        rc = main(
            [
                "varbench", "miniMD",
                "--anomaly", "membw",
                "--reps", "3",
                "--iterations", "6",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "miniMD" in out
        assert "membw" in out

    def test_varbench_jobs_flag_matches_serial(self, capsys):
        argv = ["varbench", "miniMD", "--reps", "3", "--iterations", "6"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "3"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_varbench_rejects_unknown_anomaly(self):
        with pytest.raises(SystemExit):
            main(["varbench", "miniMD", "--anomaly", "fanspin"])


class _StubResult:
    def render(self):
        return "stub table"


def _register_stub(monkeypatch, runner):
    from repro.experiments.registry import EXPERIMENT_REGISTRY, ExperimentSpec

    spec = ExperimentSpec("stub_exp", "a test stub", runner, "StubResult")
    monkeypatch.setitem(EXPERIMENT_REGISTRY, "stub_exp", spec)
    return spec


class TestExperimentSubcommand:
    def test_list_enumerates_registry(self, capsys):
        from repro.experiments.registry import EXPERIMENT_REGISTRY

        rc = main(["experiment", "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in EXPERIMENT_REGISTRY:
            assert name in out

    def test_run_renders_and_archives(self, capsys, tmp_path, monkeypatch):
        _register_stub(monkeypatch, lambda: _StubResult())
        rc = main(["experiment", "stub_exp", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stub table" in out
        assert (tmp_path / "StubResult.txt").read_text() == "stub table\n"
        assert (tmp_path / "StubResult.manifest.json").exists()

    def test_no_persist_skips_archiving(self, capsys, tmp_path, monkeypatch):
        _register_stub(monkeypatch, lambda: _StubResult())
        rc = main(
            ["experiment", "stub_exp", "--out", str(tmp_path), "--no-persist"]
        )
        assert rc == 0
        assert not (tmp_path / "StubResult.txt").exists()

    def test_seed_rejected_for_seedless_experiment(self, monkeypatch):
        from repro.errors import ConfigError

        _register_stub(monkeypatch, lambda: _StubResult())
        with pytest.raises(ConfigError, match="does not take a seed"):
            main(["experiment", "stub_exp", "--seed", "3", "--no-persist"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_deprecated_alias_warns_on_stderr(self, capsys, monkeypatch):
        _register_stub(monkeypatch, lambda: _StubResult())
        rc = main(["stub_exp", "--no-persist"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert "repro experiment stub_exp" in captured.err
        assert "stub table" in captured.out
        assert "deprecated" not in captured.out

    def test_deprecated_alias_silent_under_quiet(self, capsys, monkeypatch):
        _register_stub(monkeypatch, lambda: _StubResult())
        rc = main(["stub_exp", "--no-persist", "--quiet"])
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        assert "stub table" in captured.out

    def test_deprecated_alias_silent_under_short_quiet(self, capsys, monkeypatch):
        _register_stub(monkeypatch, lambda: _StubResult())
        rc = main(["stub_exp", "--no-persist", "-q"])
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        assert "stub table" in captured.out

    def test_quiet_suppresses_archive_line(self, capsys, tmp_path, monkeypatch):
        _register_stub(monkeypatch, lambda: _StubResult())
        rc = main(
            ["experiment", "stub_exp", "--out", str(tmp_path), "--quiet"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "stub table" in out
        assert "archived" not in out
        # quiet silences the narration, not the archiving itself
        assert (tmp_path / "StubResult.txt").exists()


class TestTrace:
    def test_list_enumerates_scenarios(self, capsys):
        rc = main(["trace", "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("faults", "loadbalance", "mixed"):
            assert name in out
        assert "GreedyRefineLB" in out  # descriptions, not just names

    def test_bare_trace_lists_too(self, capsys):
        rc = main(["trace"])
        assert rc == 0
        assert "mixed" in capsys.readouterr().out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "nope"])

    def test_stream_writes_run_directory(self, capsys, tmp_path):
        run_dir = tmp_path / "run"
        rc = main(
            [
                "trace",
                "loadbalance",
                "--horizon",
                "30",
                "--stream",
                str(run_dir),
                "--out",
                str(tmp_path / "trace.json"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "streamed scenario 'loadbalance'" in out
        assert (run_dir / "trace.jsonl").is_file()
        assert (run_dir / "trace.json").is_file()
        assert (run_dir / "counters.json").is_file()
        assert (run_dir / "metrics" / "node0.jsonl").is_file()


class TestDiff:
    def test_identical_directories_exit_zero(self, capsys, tmp_path):
        import shutil

        run_dir = tmp_path / "a"
        main(
            [
                "trace",
                "loadbalance",
                "--horizon",
                "30",
                "--stream",
                str(run_dir),
                "--out",
                str(tmp_path / "trace.json"),
            ]
        )
        shutil.copytree(run_dir, tmp_path / "b")
        capsys.readouterr()
        rc = main(["diff", str(run_dir), str(tmp_path / "b")])
        assert rc == 0
        assert "0 differences" in capsys.readouterr().out

        # Any byte drift must flip the exit status.
        counters = tmp_path / "b" / "counters.jsonl"
        counters.write_text(counters.read_text().replace("0", "1", 1))
        rc = main(["diff", str(run_dir), str(tmp_path / "b")])
        assert rc == 1
        assert "differs: counters.jsonl" in capsys.readouterr().out

    def test_missing_directory_raises(self, tmp_path):
        from repro.errors import ObservabilityError

        (tmp_path / "a").mkdir()
        with pytest.raises(ObservabilityError, match="not a directory"):
            main(["diff", str(tmp_path / "a"), str(tmp_path / "nope")])


class TestReport:
    def test_scenario_report_renders(self, capsys):
        rc = main(
            ["report", "loadbalance", "--horizon", "30", "--no-wallclock"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "run report: scenario 'loadbalance'" in out
        assert "wall-clock" not in out

    def test_markdown_output(self, capsys, tmp_path):
        md = tmp_path / "report.md"
        rc = main(
            [
                "report",
                "loadbalance",
                "--horizon",
                "30",
                "--no-wallclock",
                "--md",
                str(md),
            ]
        )
        assert rc == 0
        assert "# Run report:" in md.read_text()

    def test_scenario_and_run_dir_are_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["report", "mixed", "--run-dir", str(tmp_path)])

    def test_one_source_required(self):
        with pytest.raises(SystemExit):
            main(["report"])
