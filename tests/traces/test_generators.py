"""Seeded generator properties and the pinned corpus."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import TraceError
from repro.traces import TRACE_GENERATORS, dumps, generate_trace, load_trace

CORPUS = Path(__file__).parent / "corpus"
ALL = sorted(TRACE_GENERATORS)


@pytest.mark.parametrize("name", ALL)
def test_generated_traces_are_schema_valid(name):
    trace = generate_trace(name, seed=1, ranks=3, steps=2)
    trace.validate()  # full meta + record + dependency-graph validation
    assert trace.meta.origin == "generated"
    assert trace.meta.ran_until == 0.0


@pytest.mark.parametrize("name", ALL)
def test_dependency_graph_is_acyclic_by_construction(name):
    trace = generate_trace(name, seed=2, ranks=4, steps=3)
    for record in trace.records:
        for dep in record.deps:
            assert dep < record.id  # positive deps name earlier records


@pytest.mark.parametrize("name", ALL)
def test_same_seed_is_byte_identical(name):
    a = dumps(generate_trace(name, seed=7, ranks=4, steps=3))
    b = dumps(generate_trace(name, seed=7, ranks=4, steps=3))
    assert a == b


@pytest.mark.parametrize("name", ALL)
def test_different_seed_differs(name):
    a = dumps(generate_trace(name, seed=7, ranks=4, steps=3))
    b = dumps(generate_trace(name, seed=8, ranks=4, steps=3))
    assert a != b


@pytest.mark.parametrize("name", ALL)
def test_per_rank_program_order(name):
    trace = generate_trace(name, seed=1, ranks=3, steps=2)
    for rank_records in trace.per_rank():
        ids = [r.id for r in rank_records]
        assert ids == sorted(ids)


def test_unknown_generator_is_typed_error():
    with pytest.raises(TraceError, match="unknown trace generator"):
        generate_trace("quantum_annealing")


def test_degenerate_shapes_are_typed_errors():
    with pytest.raises(TraceError, match="ranks"):
        generate_trace("ai_training", ranks=1)
    with pytest.raises(TraceError, match="step"):
        generate_trace("ai_training", steps=0)


@pytest.mark.parametrize("name", ALL)
def test_pinned_corpus_matches_generator_output(name):
    """The committed corpus is exactly what the generators produce today.

    Regenerating with the corpus parameters (seed 0, 4 ranks, 3 steps —
    see the CI traces job) must reproduce the committed bytes; any
    intentional generator change must re-pin the corpus alongside it.
    """
    pinned = load_trace(CORPUS / f"{name}.jsonl")
    assert dumps(generate_trace(name, seed=0, ranks=4, steps=3)) == dumps(pinned)
