"""Replay engine: backend equivalence, dependency honoring, typed errors."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.errors import TraceError
from repro.traces import (
    TRACE_GENERATORS,
    TraceReplayApp,
    build_replay_cluster,
    generate_trace,
    replay_fingerprint,
    replay_trace,
)


@pytest.mark.parametrize("name", sorted(TRACE_GENERATORS))
def test_replay_is_backend_identical(name):
    trace = generate_trace(name, seed=4, ranks=3, steps=2)
    assert replay_fingerprint(trace, backend="object") == replay_fingerprint(
        trace, backend="array"
    )


def test_replay_completes_every_rank():
    trace = generate_trace("ai_training", seed=0, ranks=3, steps=2)
    cluster = build_replay_cluster(trace)
    app = TraceReplayApp(trace, cluster).run()
    assert app.finished
    assert len(app.procs) == trace.meta.ranks
    for proc in app.procs:
        assert proc.counters["trace_steps"] == 2.0


def test_collective_dependencies_gate_progress():
    # Every allreduce of step s depends on *all* sends of step s, so no
    # rank can be a full step ahead: all ranks finish at one instant.
    trace = generate_trace("ai_training", seed=9, ranks=4, steps=3)
    cluster = build_replay_cluster(trace)
    app = TraceReplayApp(trace, cluster).run()
    ends = {proc.end_time for proc in app.procs}
    assert len(ends) == 1


def test_build_replay_cluster_matches_header():
    trace = generate_trace("checkpoint_burst", seed=0, ranks=3, steps=1)
    cluster = build_replay_cluster(trace)
    assert len(cluster.nodes) == trace.meta.nodes
    assert "nfs" in cluster.filesystems


def test_replay_rejects_missing_node():
    trace = generate_trace("ai_training", seed=0, ranks=4, steps=1)
    small = Cluster.chameleon(num_nodes=2, with_nfs=False)
    with pytest.raises(TraceError, match="no such node"):
        TraceReplayApp(trace, small)


def test_replay_rejects_missing_filesystem():
    trace = generate_trace("metadata_storm", seed=0, ranks=2, steps=1)
    bare = Cluster.chameleon(num_nodes=2, with_nfs=False)
    with pytest.raises(TraceError, match="filesystem"):
        TraceReplayApp(trace, bare)


def test_double_launch_is_typed_error():
    trace = generate_trace("ai_training", seed=0, ranks=2, steps=1)
    app = TraceReplayApp(trace, build_replay_cluster(trace))
    app.launch()
    with pytest.raises(TraceError, match="already launched"):
        app.launch()


def test_replay_trace_returns_finished_cluster():
    trace = generate_trace("parameter_server", seed=1, ranks=3, steps=2)
    cluster = replay_trace(trace)
    assert cluster.sim.now > 0.0


def test_anomaly_composes_with_replay():
    # An injected cpuoccupy window must slow the replayed workload down —
    # replayed traces contend for resources like native applications.
    from repro.core import CpuOccupy

    trace = generate_trace("ai_training", seed=2, ranks=3, steps=3)
    clean = replay_trace(trace)
    squatted = build_replay_cluster(trace)
    CpuOccupy(utilization=100.0, duration=60.0).launch(
        squatted, "node0", core=0, start=0.0
    )
    app = TraceReplayApp(trace, squatted).run(timeout=1e6)
    assert app.finished
    assert max(p.end_time for p in app.procs) > clean.sim.now
