"""Trace recorder: transparency, taints, record-then-replay identity."""

from __future__ import annotations

import pytest

from repro.apps import AppJob, get_app
from repro.check.harness import fingerprint_cluster
from repro.cluster import Cluster
from repro.errors import TraceError
from repro.traces import (
    TraceRecorder,
    dumps,
    loads,
    record_experiment,
    recording_session,
    replay_fingerprint,
)


def _mini_job(cluster: Cluster) -> AppJob:
    app = get_app("miniMD").scaled(iterations=3)
    return AppJob(app, cluster, nodes=[0, 1], ranks_per_node=2, seed=11)


def test_recording_is_transparent():
    plain = Cluster.voltrino(num_nodes=2)
    _mini_job(plain).run()

    taped = Cluster.voltrino(num_nodes=2)
    recorder = TraceRecorder(taped)
    _mini_job(taped).run()
    recording = recorder.finalize()

    assert recording.clean, recording.taints
    assert fingerprint_cluster(plain) == fingerprint_cluster(taped)
    assert recording.fingerprint == fingerprint_cluster(taped)


@pytest.mark.parametrize("backend", ["object", "array"])
def test_record_then_replay_is_byte_identical(backend):
    cluster = Cluster.voltrino(num_nodes=2)
    recorder = TraceRecorder(cluster)
    _mini_job(cluster).run()
    recording = recorder.finalize()
    assert recording.clean, recording.taints
    assert replay_fingerprint(recording.trace, backend=backend) == recording.fingerprint


def test_recorded_trace_round_trips():
    cluster = Cluster.voltrino(num_nodes=2)
    recorder = TraceRecorder(cluster)
    _mini_job(cluster).run()
    trace = recorder.finalize().trace
    assert loads(dumps(trace)) == trace


def test_second_recorder_is_typed_error():
    cluster = Cluster.voltrino(num_nodes=2)
    TraceRecorder(cluster)
    with pytest.raises(TraceError, match="record"):
        TraceRecorder(cluster)


def test_unbounded_anomaly_taints_the_recording():
    from repro.core import CpuOccupy

    cluster = Cluster.voltrino(num_nodes=2)
    recorder = TraceRecorder(cluster)
    CpuOccupy(utilization=80.0).launch(cluster, "node0", core=0, start=0.0)
    cluster.sim.run(until=5.0)
    recording = recorder.finalize()
    assert not recording.clean
    assert any("unbounded" in taint for taint in recording.taints)


def test_fault_injector_taints_the_recording():
    from repro.faults import FaultInjector

    cluster = Cluster.voltrino(num_nodes=2)
    recorder = TraceRecorder(cluster)
    faults = FaultInjector(cluster)
    faults.add(1.0, "node1", "slowdown", duration=2.0, factor=0.5)
    faults.deploy()
    _mini_job(cluster).run()
    recording = recorder.finalize()
    assert not recording.clean
    assert any("fault injector" in taint for taint in recording.taints)


def test_recording_session_captures_inner_clusters():
    with recording_session("inner") as session:
        cluster = Cluster.voltrino(num_nodes=2)
        _mini_job(cluster).run()
    assert len(session.traces) == 1
    recording = session.traces[0]
    assert recording.clean, recording.taints
    assert recording.trace.meta.origin == "recorded"
    assert recording.trace.meta.ran_until == pytest.approx(cluster.sim.now)


def test_record_experiment_yields_clean_replayable_traces():
    recorded = record_experiment(
        "table2", overrides={"iterations": 2, "ranks_per_node": 2}
    )
    clean = recorded.clean_traces()
    assert clean, [rec.taints for rec in recorded.recordings]
    first = clean[0]
    assert replay_fingerprint(first.trace) == first.fingerprint
