"""Canonical trace serialization: round trips, torn tails, tampering."""

from __future__ import annotations

import pytest

from repro.errors import TraceFormatError
from repro.traces import (
    TRACE_VERSION,
    Trace,
    TraceMeta,
    TraceRecord,
    dump_trace,
    dumps,
    generate_trace,
    load_trace,
    loads,
)
from repro.traces.schema import with_records


def _tiny_trace() -> Trace:
    meta = TraceMeta(
        name="tiny",
        machine="chameleon",
        nodes=2,
        ranks=2,
        placement=(("node0", 0), ("node1", 0)),
        rank_names=("tiny.r0", "tiny.r1"),
        starts=(0.0, 0.0),
    )
    records = (
        TraceRecord(id=1, kind="compute", rank=0, deps=(-1,), work=1.0),
        TraceRecord(id=2, kind="compute", rank=1, deps=(-2,), work=0.5),
        TraceRecord(id=3, kind="collective", rank=0, deps=(1, 2)),
    )
    return Trace(meta=meta, records=records).validate()


def test_round_trip_is_lossless():
    trace = _tiny_trace()
    assert loads(dumps(trace)) == trace


def test_round_trip_is_byte_stable():
    text = dumps(_tiny_trace())
    assert dumps(loads(text)) == text


def test_file_round_trip(tmp_path):
    trace = generate_trace("ai_training", seed=3, ranks=3, steps=2)
    path = dump_trace(trace, tmp_path / "t.jsonl")
    assert load_trace(path) == trace
    assert load_trace(path).sha256 == trace.sha256


def test_numeric_types_canonicalize():
    # ints and floats must serialize identically: a recorder handing in
    # `2097152` and a parser reading back `2097152.0` must agree on bytes.
    int_rec = TraceRecord(id=1, kind="compute", rank=0, work=1, cache=(("L2", 2097152),))
    float_rec = TraceRecord(
        id=1, kind="compute", rank=0, work=1.0, cache=(("L2", 2097152.0),)
    )
    assert int_rec == float_rec
    assert int_rec.to_json() == float_rec.to_json()


def test_torn_tail_is_typed_error():
    text = dumps(_tiny_trace())
    torn = text[: text.rindex('{"records"')]
    with pytest.raises(TraceFormatError, match="torn|trailer"):
        loads(torn)


def test_half_written_line_is_typed_error():
    text = dumps(_tiny_trace())
    with pytest.raises(TraceFormatError):
        loads(text[:-20])


def test_tampered_record_fails_sha():
    text = dumps(_tiny_trace())
    tampered = text.replace('"work":1.0', '"work":2.0', 1)
    assert tampered != text
    with pytest.raises(TraceFormatError, match="sha256 mismatch"):
        loads(tampered)


def test_missing_trace_file_is_typed_error(tmp_path):
    with pytest.raises(TraceFormatError, match="cannot read"):
        load_trace(tmp_path / "nope.jsonl")


def test_validation_rejects_forward_dep():
    trace = _tiny_trace()
    bad = with_records(
        trace,
        [*trace.records, TraceRecord(id=4, kind="compute", rank=0, deps=(9,))],
    )
    with pytest.raises(TraceFormatError, match="dep 9"):
        bad.validate()


def test_validation_rejects_duplicate_ids():
    trace = _tiny_trace()
    bad = with_records(
        trace, [*trace.records, TraceRecord(id=3, kind="compute", rank=1)]
    )
    with pytest.raises(TraceFormatError, match="duplicate"):
        bad.validate()


def test_validation_rejects_unknown_kind_and_rank():
    with pytest.raises(TraceFormatError, match="kind"):
        TraceRecord(id=1, kind="teleport", rank=0).validate(2)
    with pytest.raises(TraceFormatError, match="rank"):
        TraceRecord(id=1, kind="compute", rank=5).validate(2)


def test_validation_rejects_nonfinite_work():
    with pytest.raises(TraceFormatError, match="finite"):
        TraceRecord(id=1, kind="compute", rank=0, work=float("inf")).validate(2)


def test_record_order_is_canonical():
    trace = _tiny_trace()
    shuffled = with_records(trace, tuple(reversed(trace.records)))
    assert dumps(shuffled) == dumps(trace)
    assert shuffled.sha256 == trace.sha256


def test_version_is_pinned_in_meta():
    trace = _tiny_trace()
    assert trace.meta.version == TRACE_VERSION
    assert f'"version":{TRACE_VERSION}' in dumps(trace)
