"""Trace replay through the service cache: content-addressed fingerprints."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.experiments.registry import EXPERIMENT_REGISTRY, ExperimentSpec
from repro.traces import dump_trace, generate_trace


@pytest.fixture
def trace_file(tmp_path):
    trace = generate_trace("ai_training", seed=6, ranks=3, steps=2)
    path = tmp_path / "a" / "trace.jsonl"
    path.parent.mkdir()
    dump_trace(trace, path)
    return trace, path


def _spec() -> ExperimentSpec:
    return EXPERIMENT_REGISTRY["trace_replay"]


def test_normalize_moves_path_out_of_fingerprint(trace_file):
    trace, path = trace_file
    request = _spec().normalize(overrides={"trace": str(path)})
    assert dict(request.overrides) == {"trace_sha256": trace.sha256}
    assert dict(request.extras) == {"trace": str(path)}


def test_same_bytes_different_paths_fingerprint_equal(trace_file, tmp_path):
    trace, path = trace_file
    other = tmp_path / "b" / "trace.jsonl"
    other.parent.mkdir()
    dump_trace(trace, other)
    first = _spec().normalize(overrides={"trace": str(path)})
    second = _spec().normalize(overrides={"trace": str(other)})
    assert first.overrides == second.overrides
    assert first.extras != second.extras


def test_different_bytes_fingerprint_differently(trace_file, tmp_path):
    _trace, path = trace_file
    other = tmp_path / "c" / "trace.jsonl"
    other.parent.mkdir()
    dump_trace(generate_trace("ai_training", seed=7, ranks=3, steps=2), other)
    first = _spec().normalize(overrides={"trace": str(path)})
    second = _spec().normalize(overrides={"trace": str(other)})
    assert first.overrides != second.overrides


def test_stale_sha_pin_is_typed_error(trace_file):
    _trace, path = trace_file
    with pytest.raises(TraceError, match="does not match"):
        _spec().normalize(
            overrides={"trace": str(path), "trace_sha256": "0" * 64}
        )


def test_runner_verifies_generated_sha_pin():
    from repro.experiments import run_trace_replay

    trace = generate_trace("ai_training", seed=0, ranks=3, steps=2)
    result = run_trace_replay(
        seed=0, ranks=3, steps=2, trace_sha256=trace.sha256
    )
    assert result.sha256 == trace.sha256
    with pytest.raises(TraceError, match="does not match"):
        run_trace_replay(seed=1, ranks=3, steps=2, trace_sha256=trace.sha256)


def test_two_submits_of_same_trace_simulate_once(trace_file, tmp_path):
    """The satellite claim: same trace bytes -> one simulation, one cache
    entry, even when submitted from two different file paths."""
    from repro.api import Client
    from repro.experiments.ext_trace_replay import (
        _canonicalize_trace,
        run_trace_replay,
    )

    trace, path = trace_file
    other = tmp_path / "copy" / "trace.jsonl"
    other.parent.mkdir()
    dump_trace(trace, other)

    calls: list[str] = []

    def counting_runner(seed=0, trace=None, trace_sha256=None):
        calls.append(trace)
        return run_trace_replay(seed=seed, trace=trace, trace_sha256=trace_sha256)

    name = "trace_cache_probe"
    EXPERIMENT_REGISTRY[name] = ExperimentSpec(
        name,
        "test probe: counting trace replay runner",
        counting_runner,
        "TraceReplayResult",
        seed=0,
        canonicalize=_canonicalize_trace,
    )
    try:
        with Client(state_dir=tmp_path / "state") as client:
            first = client.submit(name, overrides={"trace": str(path)})
            second = client.submit(name, overrides={"trace": str(other)})
            client.wait()
            s1 = client.status(first.job_id)
            s2 = client.status(second.job_id)
    finally:
        EXPERIMENT_REGISTRY.pop(name, None)
    assert (s1.state, s2.state) == ("done", "done"), (s1.reason, s2.reason)
    assert len(calls) == 1
    assert not s1.cached and s2.cached
