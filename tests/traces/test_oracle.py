"""Planted-bug tests: the replay oracle must catch broken traces.

Each test takes a clean recording (replay fingerprint == native
fingerprint, proven in test_recorder), plants one bug of the kind the
``trace_replay`` oracle exists to catch, and asserts the fingerprint
comparison flags it.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.apps import AppJob, get_app
from repro.cluster import Cluster
from repro.traces import TraceRecorder, dump_trace, replay_fingerprint
from repro.traces.schema import Trace, with_records


@pytest.fixture(scope="module")
def recording():
    cluster = Cluster.voltrino(num_nodes=2)
    recorder = TraceRecorder(cluster)
    app = get_app("miniMD").scaled(iterations=3)
    AppJob(app, cluster, nodes=[0, 1], ranks_per_node=2, seed=11).run()
    recorded = recorder.finalize()
    assert recorded.clean, recorded.taints
    assert replay_fingerprint(recorded.trace) == recorded.fingerprint
    return recorded


def test_dropped_dependency_edge_diverges(recording):
    trace = recording.trace
    # Drop every cross-rank edge from the last dependent record: that
    # rank stops waiting for its peers, finishes early, and the replay
    # fingerprint must move away from the native one.
    victim = max((r for r in trace.records if r.deps), key=lambda r: r.id)
    buggy = with_records(
        trace,
        [
            dataclasses.replace(r, deps=()) if r.id == victim.id else r
            for r in trace.records
        ],
    ).validate()
    assert replay_fingerprint(buggy) != recording.fingerprint


def test_reordered_same_timestamp_records_diverge(recording):
    trace = recording.trace
    # A barrier wait and the segment right after it execute at the same
    # simulated instant in program order.  Swapping their ids replays
    # them in the wrong order — compute before the barrier instead of
    # after — which shifts every later arrival time.
    swapped = None
    per_rank = trace.per_rank()
    for records in per_rank:
        for earlier, later in zip(records, records[1:]):
            if earlier.kind == "collective" and later.kind == "compute":
                swapped = (earlier.id, later.id)
                break
        if swapped:
            break
    assert swapped is not None, "recording has no barrier-then-compute pair"
    a, b = swapped

    def renumber(record):
        if record.id == a:
            return dataclasses.replace(record, id=b)
        if record.id == b:
            return dataclasses.replace(record, id=a)
        return record

    buggy = with_records(trace, [renumber(r) for r in trace.records]).validate()
    assert replay_fingerprint(buggy) != recording.fingerprint


def test_perturbed_work_diverges(recording):
    trace = recording.trace
    victim = max(
        (r for r in trace.records if r.kind == "compute"), key=lambda r: r.work
    )
    buggy = with_records(
        trace,
        [
            dataclasses.replace(r, work=r.work * 1.01) if r.id == victim.id else r
            for r in trace.records
        ],
    ).validate()
    assert replay_fingerprint(buggy) != recording.fingerprint


def test_trace_corpus_harness_flags_tampered_trace(tmp_path, recording):
    from repro.check.harness import replay_trace_corpus

    dump_trace(recording.trace, tmp_path / "good.jsonl")
    text = (tmp_path / "good.jsonl").read_text()
    (tmp_path / "bad.jsonl").write_text(text[:-40])
    verdicts = {v.name: v for v in replay_trace_corpus(tmp_path)}
    assert verdicts["trace corpus good"].ok
    assert not verdicts["trace corpus bad"].ok
    assert "torn" in verdicts["trace corpus bad"].detail or "sha256" in verdicts[
        "trace corpus bad"
    ].detail


def test_empty_trace_corpus_is_typed_error(tmp_path):
    from repro.check.harness import replay_trace_corpus
    from repro.errors import CheckError

    with pytest.raises(CheckError, match="no .jsonl traces"):
        replay_trace_corpus(tmp_path)
