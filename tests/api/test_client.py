"""Client façade: submit/status/wait/result/cancel over every experiment."""

from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.api import (
    JOB_RECORD_SCHEMA,
    JOB_REQUEST_SCHEMA,
    Client,
    JobResult,
    JobStatus,
)
from repro.errors import ConfigError, QuotaError, ServiceError
from repro.experiments.registry import (
    EXPERIMENT_REGISTRY,
    ExperimentSpec,
    JobRequest,
    ResultArtifacts,
    persist_result,
)


def stub_factory(request: JobRequest) -> ResultArtifacts:
    return ResultArtifacts(request.result_name, f"{request.name} table\n", "{}\n")


@dataclass(frozen=True)
class _TinyResult:
    seed: int

    def render(self) -> str:
        return f"tiny result for seed {self.seed}"


def _run_tiny(seed: int = 0) -> _TinyResult:
    return _TinyResult(seed)


@pytest.fixture
def tiny_experiment(monkeypatch):
    spec = ExperimentSpec(
        "tiny", "client-test probe", _run_tiny, "TinyResult", seed=0
    )
    monkeypatch.setitem(EXPERIMENT_REGISTRY, "tiny", spec)
    return spec


class TestRoundTrip:
    def test_every_registry_experiment_round_trips(self, tmp_path):
        # Submit every registered name through the façade (execution
        # stubbed): normalization, fingerprinting, queueing, result and
        # persistence must work for the whole namespace.
        with Client(state_dir=tmp_path / "state") as client:
            client.pool.factory = stub_factory
            handles = {name: client.submit(name) for name in EXPERIMENT_REGISTRY}
            client.wait()
            fingerprints = set()
            for name, handle in handles.items():
                status = client.status(handle.job_id)
                assert status.state == "done", (name, status.reason)
                result = client.result(handle.job_id)
                assert result.name == name
                assert result.text == f"{name} table\n"
                assert result.render() == f"{name} table"
                fingerprints.add(handle.fingerprint)
            # distinct experiments must never share a cache entry
            assert len(fingerprints) == len(handles)

    def test_real_cache_hit_is_byte_identical(self, tmp_path, tiny_experiment):
        with Client(state_dir=tmp_path / "state") as client:
            first = client.submit("tiny", seed=7)
            second = client.submit("tiny", seed=7)
            client.wait()
            assert client.status(first.job_id).cached is False
            assert client.status(second.job_id).cached is True
            fresh = client.persist(first.job_id, tmp_path / "fresh")
            hit = client.persist(second.job_id, tmp_path / "hit")
        direct = persist_result(_run_tiny(7), tmp_path / "direct")
        assert fresh.read_bytes() == direct.read_bytes()
        assert hit.read_bytes() == direct.read_bytes()
        fresh_manifest = fresh.with_name("TinyResult.manifest.json")
        direct_manifest = direct.with_name("TinyResult.manifest.json")
        assert fresh_manifest.read_bytes() == direct_manifest.read_bytes()

    def test_cache_survives_client_restart(self, tmp_path, tiny_experiment):
        with Client(state_dir=tmp_path / "state") as client:
            handle = client.submit("tiny")
            client.wait(handle.job_id)
        with Client(state_dir=tmp_path / "state") as client:
            handle = client.submit("tiny")
            status = client.wait(handle.job_id)
            assert status.cached is True


class TestValidation:
    def test_unknown_experiment_rejected_at_submit(self, tmp_path):
        with Client(state_dir=tmp_path) as client:
            with pytest.raises(ConfigError, match="unknown job"):
                client.submit("not_an_experiment")

    def test_unknown_knob_rejected_at_submit(self, tmp_path):
        with Client(state_dir=tmp_path) as client:
            with pytest.raises(ConfigError, match="no knob"):
                client.submit("fig8", overrides={"bogus": 1})

    def test_seed_for_seedless_experiment_rejected(self, tmp_path):
        with Client(state_dir=tmp_path) as client:
            with pytest.raises(ConfigError, match="does not take a seed"):
                client.submit("table1", seed=3)

    def test_quota_enforced_through_facade(self, tmp_path):
        with Client(state_dir=tmp_path, quota=1) as client:
            client.submit("fig8", client="alice")
            with pytest.raises(QuotaError):
                client.submit("fig8", client="alice")


class TestLifecycle:
    def test_status_and_cancel(self, tmp_path, tiny_experiment):
        with Client(state_dir=tmp_path) as client:
            handle = client.submit("tiny")
            status = handle.status()
            assert isinstance(status, JobStatus)
            assert status.state == "queued" and not status.terminal
            cancelled = handle.cancel()
            assert cancelled.state == "cancelled" and cancelled.terminal
            assert client.wait() is None

    def test_result_of_failed_job_raises_with_reason(self, tmp_path):
        def broken(request):
            raise RuntimeError("injected defect")

        with Client(state_dir=tmp_path) as client:
            client.pool.factory = broken
            handle = client.submit("fig8")
            status = client.wait(handle.job_id)
            assert status.state == "failed"
            with pytest.raises(ServiceError, match="injected defect"):
                client.result(handle.job_id)

    def test_handle_conveniences(self, tmp_path, tiny_experiment):
        with Client(state_dir=tmp_path) as client:
            handle = client.submit("tiny")
            assert handle.wait().state == "done"
            result = handle.result()
            assert isinstance(result, JobResult)
            assert result.render() == "tiny result for seed 0"

    def test_jobs_lists_submission_order(self, tmp_path, tiny_experiment):
        with Client(state_dir=tmp_path) as client:
            a = client.submit("tiny")
            b = client.submit("tiny", seed=1)
            assert [s.job_id for s in client.jobs()] == [a.job_id, b.job_id]

    def test_ephemeral_state_is_cleaned_up(self, tiny_experiment):
        client = Client()
        state_dir = client.state_dir
        handle = client.submit("tiny")
        client.wait(handle.job_id)
        assert state_dir.exists()
        client.close()
        assert not state_dir.exists()

    def test_telemetry_stream(self, tmp_path, tiny_experiment):
        with Client(state_dir=tmp_path / "state") as client:
            client.stream_to(tmp_path / "obs")
            handle = client.submit("tiny")
            client.wait(handle.job_id)
        assert (tmp_path / "obs" / "trace.jsonl").exists()
        assert (tmp_path / "obs" / "metrics" / "service.jsonl").exists()


class TestSchemas:
    def test_job_record_schema_matches_reality(self, tmp_path, tiny_experiment):
        with Client(state_dir=tmp_path) as client:
            handle = client.submit("tiny")
            record = client.queue.job(handle.job_id).to_json()
        required = JOB_RECORD_SCHEMA["required"]
        assert set(required) <= set(record)
        request_required = JOB_REQUEST_SCHEMA["required"]
        assert set(request_required) <= set(record["request"])
        assert record["state"] in JOB_RECORD_SCHEMA["properties"]["state"]["enum"]
