"""The paper's design constraint: anomalies stay out of non-target subsystems.

Sec. 3: "each anomaly is designed to minimize its interference in the
subsystems that it is not targeting."  This module measures every
anomaly's footprint on each subsystem (CPU time, memory bandwidth, memory
capacity, network traffic, filesystem traffic) and asserts the
interference matrix is near-diagonal.
"""

import pytest

from repro.cluster import Cluster
from repro.core import make_anomaly
from repro.units import GB, GB10, MB

RUN_SECONDS = 20.0


def footprint(anomaly_name, **knobs):
    """Run one instance alone for RUN_SECONDS; return per-second usage."""
    cluster = Cluster.chameleon(num_nodes=2)  # has the NFS share + network
    anomaly = make_anomaly(anomaly_name, **knobs)
    if anomaly_name == "netoccupy":
        anomaly.peer = "node1"
    proc = anomaly.launch(cluster, "node0", core=0)
    cluster.sim.run(until=RUN_SECONDS)
    held = cluster.node(0).memory.held_by(proc.pid)
    c = proc.counters
    return {
        "cpu": c.get("cpu_user_seconds", 0.0) / RUN_SECONDS,
        "membw": c.get("mem_bytes", 0.0) / RUN_SECONDS,
        "memcap": held,
        "net": c.get("nic_tx_bytes", 0.0) / RUN_SECONDS,
        "io": (c.get("io_write_bytes", 0.0) + c.get("io_read_bytes", 0.0))
        / RUN_SECONDS,
        "meta": c.get("io_meta_ops", 0.0) / RUN_SECONDS,
    }


class TestCpuOccupy:
    def test_targets_cpu_only(self):
        f = footprint("cpuoccupy", utilization=100)
        assert f["cpu"] == pytest.approx(1.0, rel=0.01)
        assert f["membw"] < 0.05 * GB10
        assert f["memcap"] == 0.0
        assert f["net"] == 0.0 and f["io"] == 0.0


class TestCacheCopy:
    def test_stays_inside_the_cache(self):
        f = footprint("cachecopy", cache="L2")
        # busy core, tiny memory traffic, working-set-sized allocation only
        assert f["cpu"] == pytest.approx(1.0, rel=0.01)
        assert f["membw"] < 0.5 * GB10
        assert f["memcap"] < 1 * MB
        assert f["net"] == 0.0 and f["io"] == 0.0


class TestMemBw:
    def test_targets_bandwidth_not_capacity(self):
        f = footprint("membw")
        assert f["membw"] > 5 * GB10  # the point of the anomaly
        assert f["memcap"] < 100 * MB  # two matrices only
        assert f["net"] == 0.0 and f["io"] == 0.0


class TestMemEater:
    def test_targets_capacity(self):
        f = footprint("memeater", total_size=1 * GB, rate=100)
        assert f["memcap"] == pytest.approx(1 * GB, rel=1e-6)
        assert f["net"] == 0.0 and f["io"] == 0.0
        # steady-state bandwidth stays modest (it is not membw)
        assert f["membw"] < 3 * GB10


class TestMemLeak:
    def test_targets_capacity_gradually(self):
        f = footprint("memleak")
        assert 0 < f["memcap"] < 1 * GB  # still growing at default rate
        assert f["cpu"] < 0.1  # mostly asleep between allocations
        assert f["net"] == 0.0 and f["io"] == 0.0


class TestNetOccupy:
    def test_targets_network_only(self):
        f = footprint("netoccupy")
        assert f["net"] > 0.5 * GB10
        assert f["cpu"] < 0.1  # SHMEM puts barely use the CPU
        assert f["membw"] == 0.0
        assert f["io"] == 0.0


class TestIOAnomaliesFootprint:
    def test_iometadata_is_ops_not_bytes(self):
        f = footprint("iometadata")
        assert f["meta"] > 50.0
        assert f["io"] < 1e6  # one character per file
        assert f["net"] == 0.0
        assert f["memcap"] == 0.0

    def test_iobandwidth_is_bytes(self):
        f = footprint("iobandwidth")
        assert f["io"] > 10e6
        assert f["meta"] < 10.0  # only file-rotation chatter
        assert f["memcap"] == 0.0


def test_interference_matrix_is_diagonal():
    """Summary check: each anomaly's dominant axis is its target."""
    dominant = {
        "cpuoccupy": "cpu",
        "membw": "membw",
        "memeater": "memcap",
        "netoccupy": "net",
        "iobandwidth": "io",
    }
    scales = {
        "cpu": 1.0,
        "membw": 10 * GB10,
        "memcap": 4 * GB,
        "net": 10 * GB10,
        "io": 50e6,
        "meta": 120.0,
    }
    for name, target in dominant.items():
        f = footprint(name)
        normalised = {k: v / scales[k] for k, v in f.items()}
        top = max(normalised, key=normalised.get)
        assert top == target or normalised[target] > 0.5 * normalised[top], (
            name,
            normalised,
        )
