"""cpuoccupy and cachecopy behaviour on the substrate."""

import math

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import CacheCopy, CpuOccupy
from repro.errors import AnomalyError
from repro.monitoring import MetricService
from repro.sim.process import Segment
from repro.units import MB


class TestCpuOccupy:
    @pytest.mark.parametrize("intensity", [10, 50, 100])
    def test_utilization_matches_intensity(self, intensity):
        cluster = Cluster(num_nodes=1)
        svc = MetricService(cluster)
        svc.attach(end=20)
        for core in range(cluster.spec.logical_cores):
            CpuOccupy(utilization=intensity).launch(cluster, "node0", core=core)
        cluster.sim.run(until=20)
        user = svc.series("node0", "user::procstat")
        assert np.mean(user[2:]) == pytest.approx(intensity, abs=0.5)

    def test_negligible_memory_and_cache(self):
        cluster = Cluster(num_nodes=1)
        proc = CpuOccupy(utilization=100).launch(cluster, "node0", core=0)
        cluster.sim.run(until=10)
        assert proc.counters.get("mem_bytes", 0.0) == 0.0
        assert cluster.node(0).memory.held_by(proc.pid) == 0.0

    def test_timeshares_with_colocated_app(self):
        cluster = Cluster(num_nodes=1)

        def app(proc):
            yield Segment(work=10.0)

        p = cluster.spawn("app", app, node=0, core=0)
        CpuOccupy(utilization=100).launch(cluster, "node0", core=0)
        cluster.sim.run(until=100)
        assert p.runtime == pytest.approx(20.0)

    def test_invalid_utilization(self):
        for bad in (0, -5, 101):
            with pytest.raises(AnomalyError):
                CpuOccupy(utilization=bad)


class TestCacheCopy:
    def test_allocates_and_frees_working_set(self):
        cluster = Cluster(num_nodes=1)
        anomaly = CacheCopy(cache="L3", duration=5.0)
        proc = anomaly.launch(cluster, "node0", core=0)
        ledger = cluster.node(0).memory
        cluster.sim.run(until=2.0)
        assert ledger.held_by(proc.pid) == pytest.approx(40 * MB)
        cluster.sim.run(until=10.0)
        assert ledger.held_by(proc.pid) == 0.0

    def test_multiplier_scales_working_set(self):
        cluster = Cluster(num_nodes=1)
        proc = CacheCopy(cache="L2", multiplier=2.0).launch(cluster, "node0", core=0)
        cluster.sim.run(until=1.0)
        assert cluster.node(0).memory.held_by(proc.pid) == pytest.approx(
            2 * 256 * 1024
        )

    def test_rate_knob_reduces_pressure(self):
        def victim_runtime(rate):
            cluster = Cluster(num_nodes=1)

            def victim(proc):
                yield Segment(
                    work=10.0,
                    cache_footprint={"L3": 20 * MB},
                    cache_intensity=1.0,
                    miss_cpi_penalty=0.8,
                    ips=1e9,
                    mpki_base=1.0,
                    mpki_extra=10.0,
                )

            p = cluster.spawn("v", victim, node=0, core=0)
            sibling = cluster.spec.sibling_of(0)
            CacheCopy(cache="L3", rate=rate).launch(cluster, "node0", core=sibling)
            cluster.sim.run(until=200)
            return p.runtime

        assert victim_runtime(0.2) < victim_runtime(1.0)

    def test_invalid_knobs(self):
        with pytest.raises(AnomalyError):
            CacheCopy(cache="L9")
        with pytest.raises(AnomalyError):
            CacheCopy(multiplier=0)
        with pytest.raises(AnomalyError):
            CacheCopy(rate=0)

    def test_self_eviction_with_multiplier_generates_memory_traffic(self):
        cluster = Cluster(num_nodes=1)
        proc = CacheCopy(cache="L3", multiplier=2.0).launch(cluster, "node0", core=0)
        cluster.sim.run(until=10)
        # working set 2x L3 -> ~50% self-eviction -> refetch traffic
        assert proc.counters["mem_bytes"] > 1e9

    def test_contained_l2_copy_stays_quiet(self):
        cluster = Cluster(num_nodes=1)
        proc = CacheCopy(cache="L2").launch(cluster, "node0", core=0)
        cluster.sim.run(until=10)
        # fits in its private L2: only the baseline trickle
        assert proc.counters["mem_bytes"] < 2e9
