"""membw, memeater and memleak behaviour."""

import math

import pytest

from repro.cluster import Cluster
from repro.core import MemBw, MemEater, MemLeak
from repro.errors import AnomalyError
from repro.sim.process import ProcessState, Segment
from repro.units import GB, MB


class TestMemBw:
    def test_consumes_bandwidth_without_cache(self):
        cluster = Cluster(num_nodes=1)
        proc = MemBw().launch(cluster, "node0", core=0)
        cluster.sim.run(until=10)
        assert proc.counters["mem_bytes"] > 50e9  # ~10 GB/s for 10 s
        # tiny L1-only footprint: no L3 presence at all
        assert proc.current.cache_footprint.get("L3") is None

    def test_rate_scales_demand(self):
        def bytes_at(rate):
            cluster = Cluster(num_nodes=1)
            proc = MemBw(rate=rate).launch(cluster, "node0", core=0)
            cluster.sim.run(until=10)
            return proc.counters["mem_bytes"]

        assert bytes_at(0.5) == pytest.approx(bytes_at(1.0) / 2, rel=0.05)

    def test_buffer_registered_in_ledger(self):
        cluster = Cluster(num_nodes=1)
        proc = MemBw(buffer_size=64 * MB).launch(cluster, "node0", core=0)
        cluster.sim.run(until=1)
        assert cluster.node(0).memory.held_by(proc.pid) == pytest.approx(64 * MB)

    def test_validation(self):
        with pytest.raises(AnomalyError):
            MemBw(buffer_size=0)
        with pytest.raises(AnomalyError):
            MemBw(rate=1.5)


class TestMemEater:
    def test_ramps_to_total_size_then_flat(self):
        cluster = Cluster(num_nodes=1)
        anomaly = MemEater(total_size=1 * GB, rate=100.0)
        proc = anomaly.launch(cluster, "node0", core=0)
        ledger = cluster.node(0).memory
        cluster.sim.run(until=60)
        assert ledger.held_by(proc.pid) == pytest.approx(1 * GB, rel=1e-6)
        held_at_60 = ledger.held_by(proc.pid)
        cluster.sim.run(until=120)
        assert ledger.held_by(proc.pid) == held_at_60  # stable footprint

    def test_releases_on_duration_end(self):
        cluster = Cluster(num_nodes=1)
        anomaly = MemEater(total_size=1 * GB, rate=100.0, duration=30.0)
        proc = anomaly.launch(cluster, "node0", core=0)
        cluster.sim.run(until=60)
        assert proc.state is ProcessState.KILLED
        assert cluster.node(0).memory.held_by(proc.pid) == 0.0

    def test_validation(self):
        with pytest.raises(AnomalyError):
            MemEater(buffer_size=0)
        with pytest.raises(AnomalyError):
            MemEater(buffer_size=2 * MB, total_size=1 * MB)
        with pytest.raises(AnomalyError):
            MemEater(rate=0)


class TestMemLeak:
    def test_footprint_grows_monotonically(self):
        cluster = Cluster(num_nodes=1)
        proc = MemLeak(buffer_size=20 * MB, rate=2.0).launch(cluster, "node0", core=0)
        ledger = cluster.node(0).memory
        samples = []
        for t in (10, 20, 40, 80):
            cluster.sim.run(until=t)
            samples.append(ledger.held_by(proc.pid))
        assert all(a < b for a, b in zip(samples, samples[1:]))
        # rate 2/s x 20 MB = 40 MB/s
        assert samples[-1] == pytest.approx(80 * 2 * 20 * MB, rel=0.05)

    def test_limit_stops_growth(self):
        cluster = Cluster(num_nodes=1)
        proc = MemLeak(buffer_size=20 * MB, rate=10.0, limit=100 * MB).launch(
            cluster, "node0", core=0
        )
        cluster.sim.run(until=30)
        assert cluster.node(0).memory.held_by(proc.pid) == pytest.approx(100 * MB)
        assert proc.state is ProcessState.RUNNING  # holds the dead memory

    def test_oversized_leak_triggers_oom_kill_of_big_app(self):
        """The paper: oversized memory anomalies crash the application."""
        cluster = Cluster(num_nodes=1)
        ledger = cluster.node(0).memory

        def app(proc):
            ledger.alloc(proc.pid, 80 * GB)
            yield Segment(work=math.inf)

        app_proc = cluster.spawn("app", app, node=0, core=0)
        MemLeak(buffer_size=1 * GB, rate=10.0).launch(cluster, "node0", core=1)
        cluster.sim.run(until=120)
        # the app is the largest consumer when memory runs out
        assert app_proc.state is ProcessState.KILLED
        assert app_proc.exit_reason == "oom-killed"

    def test_validation(self):
        with pytest.raises(AnomalyError):
            MemLeak(buffer_size=0)
        with pytest.raises(AnomalyError):
            MemLeak(rate=0)
        with pytest.raises(AnomalyError):
            MemLeak(limit=0)
