"""AnomalyInjector campaigns."""

import math

import pytest

from repro.cluster import Cluster
from repro.core import AnomalyInjector, Injection, make_anomaly
from repro.errors import AnomalyError
from repro.sim.process import ProcessState


class TestInjection:
    def test_validation(self):
        a = make_anomaly("cpuoccupy")
        with pytest.raises(AnomalyError):
            Injection(anomaly=a, node=0, start=-1.0)
        with pytest.raises(AnomalyError):
            Injection(anomaly=a, node=0, duration=0.0)


class TestInjector:
    def test_deploy_schedules_all(self):
        cluster = Cluster(num_nodes=2)
        injector = AnomalyInjector(cluster)
        injector.add(
            Injection(make_anomaly("cpuoccupy"), node=0, core=0, start=1.0, duration=4.0)
        )
        injector.add(
            Injection(make_anomaly("memleak"), node=1, core=0, start=2.0, duration=6.0)
        )
        procs = injector.deploy()
        assert len(procs) == 2
        cluster.sim.run(until=20)
        assert all(p.state is ProcessState.KILLED for p in procs)
        assert procs[0].end_time == pytest.approx(5.0)
        assert procs[1].end_time == pytest.approx(8.0)

    def test_deploy_is_idempotent(self):
        cluster = Cluster(num_nodes=1)
        injector = AnomalyInjector(cluster)
        injector.add(Injection(make_anomaly("cpuoccupy"), node=0, duration=2.0))
        first = injector.deploy()
        second = injector.deploy()
        assert len(first) == 1 and second == []

    def test_inject_immediate(self):
        cluster = Cluster(num_nodes=1)
        injector = AnomalyInjector(cluster)
        injection = injector.inject(make_anomaly("membw"), node=0, core=1, duration=3.0)
        assert injection.process is not None
        cluster.sim.run(until=10)
        assert injection.process.state is ProcessState.KILLED

    def test_active_labels(self):
        cluster = Cluster(num_nodes=1)
        injector = AnomalyInjector(cluster)
        injector.add(
            Injection(make_anomaly("cpuoccupy"), node=0, start=0.0, duration=5.0)
        )
        injector.add(
            Injection(make_anomaly("memleak"), node=0, core=1, start=3.0, duration=5.0)
        )
        assert injector.active_labels(1.0) == ["cpuoccupy"]
        assert sorted(injector.active_labels(4.0)) == ["cpuoccupy", "memleak"]
        assert injector.active_labels(7.0) == ["memleak"]
        assert injector.active_labels(10.0) == []

    def test_overlapping_composition_runs(self):
        """Composing multiple anomalies (paper Sec. 3) works end to end."""
        cluster = Cluster(num_nodes=1)
        injector = AnomalyInjector(cluster)
        for i, name in enumerate(("cpuoccupy", "membw", "cachecopy")):
            injector.inject(
                make_anomaly(name), node=0, core=i, start=float(i), duration=10.0
            )
        cluster.sim.run(until=30)
        assert all(
            inj.process.state is ProcessState.KILLED for inj in injector.injections
        )
