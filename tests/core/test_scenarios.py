"""Predefined injection campaigns."""

import pytest

from repro.cluster import Cluster
from repro.core.scenarios import (
    CAMPAIGN_ANOMALIES,
    paper_fig8,
    periodic,
    random_campaign,
    total_injected_time,
)
from repro.errors import AnomalyError
from repro.sim.process import ProcessState


class TestPaperFig8:
    @pytest.mark.parametrize("anomaly", ["cachecopy", "cpuoccupy", "membw", "memleak"])
    def test_placements_deploy(self, anomaly):
        cluster = Cluster(num_nodes=2)
        injector = paper_fig8(cluster, anomaly)
        assert all(inj.process is not None for inj in injector.injections)
        cluster.sim.run(until=5)
        # still alive (RUNNING or sleeping between iterations)
        assert all(
            not inj.process.state.terminal for inj in injector.injections
        )

    def test_none_is_empty(self):
        cluster = Cluster(num_nodes=1)
        assert paper_fig8(cluster, "none").injections == []

    def test_membw_uses_three_instances(self):
        cluster = Cluster(num_nodes=1)
        injector = paper_fig8(cluster, "membw")
        assert len(injector.injections) == 3

    def test_unknown_rejected(self):
        with pytest.raises(AnomalyError):
            paper_fig8(Cluster(num_nodes=1), "netstorm")


class TestRandomCampaign:
    def test_deterministic_per_seed(self):
        def plan(seed):
            cluster = Cluster(num_nodes=4)
            injector = random_campaign(cluster, duration=100, events=8, seed=seed)
            return [
                (i.anomaly.name, i.node, i.core, i.start, i.duration)
                for i in injector.injections
            ]

        assert plan(7) == plan(7)
        assert plan(7) != plan(8)

    def test_windows_inside_horizon(self):
        cluster = Cluster(num_nodes=4)
        injector = random_campaign(cluster, duration=100, events=12, seed=1)
        for injection in injector.injections:
            assert 0 <= injection.start <= 80
            assert injection.anomaly.name in CAMPAIGN_ANOMALIES

    def test_runs_to_completion(self):
        cluster = Cluster(num_nodes=2)
        injector = random_campaign(cluster, duration=50, events=5, seed=2)
        cluster.sim.run(until=150)
        assert all(
            inj.process.state is ProcessState.KILLED for inj in injector.injections
        )

    def test_validation(self):
        cluster = Cluster(num_nodes=1)
        with pytest.raises(AnomalyError):
            random_campaign(cluster, duration=0)
        with pytest.raises(AnomalyError):
            random_campaign(cluster, duration=10, anomalies=("fanspin",))


class TestPeriodic:
    def test_pulses_on_and_off(self):
        cluster = Cluster(num_nodes=1)
        injector = periodic(
            cluster, "cpuoccupy", node=0, core=0, period=10.0, duty=0.5, cycles=3
        )
        assert len(injector.injections) == 3
        assert injector.active_labels(2.0) == ["cpuoccupy"]
        assert injector.active_labels(7.0) == []
        assert injector.active_labels(12.0) == ["cpuoccupy"]

    def test_total_injected_time(self):
        cluster = Cluster(num_nodes=1)
        injector = periodic(
            cluster, "cpuoccupy", node=0, core=0, period=10.0, duty=0.3, cycles=4
        )
        assert total_injected_time(injector) == pytest.approx(12.0)

    def test_knobs_forwarded(self):
        cluster = Cluster(num_nodes=1)
        injector = periodic(
            cluster,
            "cachecopy",
            node=0,
            core=0,
            period=5.0,
            duty=0.5,
            cycles=2,
            cache="L1",
        )
        assert injector.injections[0].anomaly.cache == "L1"

    def test_validation(self):
        cluster = Cluster(num_nodes=1)
        with pytest.raises(AnomalyError):
            periodic(cluster, "cpuoccupy", node=0, core=0, period=0, duty=0.5)
        with pytest.raises(AnomalyError):
            periodic(cluster, "cpuoccupy", node=0, core=0, period=5, duty=1.5)
