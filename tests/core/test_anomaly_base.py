"""Anomaly base class, registry, and CLI parsing."""

import math

import pytest

from repro.cluster import Cluster
from repro.core import ANOMALY_REGISTRY, make_anomaly, parse_cli
from repro.core.anomaly import Anomaly, register
from repro.errors import AnomalyError
from repro.sim.process import ProcessState, Segment


class TestRegistry:
    def test_all_eight_anomalies_registered(self):
        assert set(ANOMALY_REGISTRY) == {
            "cpuoccupy",
            "cachecopy",
            "membw",
            "memeater",
            "memleak",
            "netoccupy",
            "iometadata",
            "iobandwidth",
        }

    def test_make_anomaly(self):
        a = make_anomaly("cpuoccupy", utilization=50)
        assert a.name == "cpuoccupy"
        assert a.utilization == 50

    def test_unknown_name(self):
        with pytest.raises(AnomalyError):
            make_anomaly("fanspin")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(AnomalyError):

            @register
            class Duplicate(Anomaly):
                name = "cpuoccupy"

                def body(self, proc):
                    yield Segment(work=1.0)

    def test_describe_includes_knobs(self):
        info = make_anomaly("cachecopy", cache="L2", multiplier=2.0).describe()
        assert info["name"] == "cachecopy"
        assert info["cache"] == "L2"
        assert info["multiplier"] == 2.0


class TestCli:
    def test_basic_parse(self):
        a = parse_cli(["cpuoccupy", "-u", "75"])
        assert a.utilization == 75.0
        assert math.isinf(a.duration)

    def test_duration_option_common(self):
        a = parse_cli(["memleak", "-d", "120"])
        assert a.duration == 120.0

    def test_long_options(self):
        a = parse_cli(["cachecopy", "--cache", "L1", "--multiplier", "2"])
        assert a.cache == "L1" and a.multiplier == 2.0

    def test_errors(self):
        with pytest.raises(AnomalyError):
            parse_cli([])
        with pytest.raises(AnomalyError):
            parse_cli(["nope"])
        with pytest.raises(AnomalyError):
            parse_cli(["cpuoccupy", "--frequency", "2"])
        with pytest.raises(AnomalyError):
            parse_cli(["cpuoccupy", "-u"])
        with pytest.raises(AnomalyError):
            parse_cli(["cpuoccupy", "-u", "lots"])


class TestLaunchLifecycle:
    def test_launch_start_and_duration(self):
        cluster = Cluster(num_nodes=1)
        a = make_anomaly("cpuoccupy", utilization=100, duration=5.0)
        proc = a.launch(cluster, node=0, core=0, start=2.0)
        cluster.sim.run(until=20.0)
        assert proc.state is ProcessState.KILLED
        assert proc.start_time == pytest.approx(2.0)
        assert proc.end_time == pytest.approx(7.0)

    def test_infinite_duration_runs_forever(self):
        cluster = Cluster(num_nodes=1)
        proc = make_anomaly("cpuoccupy").launch(cluster, node=0, core=0)
        cluster.sim.run(until=100.0)
        assert proc.state is ProcessState.RUNNING

    def test_invalid_duration(self):
        with pytest.raises(AnomalyError):
            make_anomaly("cpuoccupy", duration=0)
