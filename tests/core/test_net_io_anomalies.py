"""netoccupy, iometadata and iobandwidth behaviour."""

import pytest

from repro.apps import IORBenchmark, OSUBandwidth
from repro.cluster import Cluster
from repro.core import IOBandwidth, IOMetadata, NetOccupy
from repro.core.netoccupy import message_peak_bw
from repro.errors import AnomalyError
from repro.units import KB, MB, MB10


class TestMessagePeakBw:
    def test_saturating_curve(self):
        nic = 10e9
        small = message_peak_bw(16 * KB, nic)
        large = message_peak_bw(100 * MB, nic)
        assert small < 0.3 * nic
        assert large > 0.99 * nic

    def test_monotone_in_size(self):
        nic = 10e9
        sizes = [2**k * KB for k in range(0, 14)]
        peaks = [message_peak_bw(s, nic) for s in sizes]
        assert peaks == sorted(peaks)


class TestNetOccupy:
    def test_needs_peer(self):
        cluster = Cluster.voltrino(num_nodes=8)
        proc = NetOccupy().launch(cluster, "node0", core=0)
        with pytest.raises(AnomalyError):
            cluster.sim.run(until=1)

    def test_launch_pair_spawns_ranks(self):
        cluster = Cluster.voltrino(num_nodes=8)
        procs = NetOccupy.launch_pair(cluster, "node0", "node4", ranks=4)
        assert len(procs) == 4
        cluster.sim.run(until=5)
        assert cluster.node(0).counters["nic_tx_bytes"] > 0
        assert cluster.node(4).counters["nic_rx_bytes"] > 0

    def test_reduces_osu_bandwidth(self):
        def osu_bw(with_anomaly):
            cluster = Cluster.voltrino(num_nodes=8)
            osu = OSUBandwidth(message_size=4 * MB, messages=16)
            osu.launch(cluster, src="node0", dst="node4")
            if with_anomaly:
                NetOccupy.launch_pair(cluster, "node1", "node5", ranks=4)
            cluster.sim.run(until=500)
            return osu.bandwidth()

        assert osu_bw(True) < osu_bw(False)

    def test_validation(self):
        with pytest.raises(AnomalyError):
            NetOccupy(message_size=0)
        with pytest.raises(AnomalyError):
            NetOccupy(rate=0)


class TestIOAnomalies:
    def _ior_with(self, anomaly_cls, instances=48):
        cluster = Cluster.chameleon(num_nodes=5)
        ior = IORBenchmark()
        # start IOR once the anomalies reach steady state
        ior.launch(cluster, node="node4", start=60.0)
        if anomaly_cls is not None:
            for n in (1, 2, 3):
                for core in range(instances):
                    anomaly_cls().launch(cluster, f"node{n}", core=core)
        cluster.sim.run(until=20_000)
        return ior.phase_bandwidth()

    def test_iobandwidth_crushes_streaming(self):
        clean = self._ior_with(None)
        noisy = self._ior_with(IOBandwidth)
        assert noisy["write"] < 0.4 * clean["write"]
        assert noisy["read"] < 0.4 * clean["read"]

    def test_iometadata_hits_access_hardest(self):
        clean = self._ior_with(None)
        noisy = self._ior_with(IOMetadata)
        assert noisy["access"] < 0.6 * clean["access"]
        # streaming is dragged down through the shared server CPU, but a
        # substantial fraction survives (the disk itself is not busy)
        assert noisy["write"] / clean["write"] > 0.2

    def test_validation(self):
        with pytest.raises(AnomalyError):
            IOMetadata(rate=0)
        with pytest.raises(AnomalyError):
            IOBandwidth(file_size=0)
        with pytest.raises(AnomalyError):
            IOBandwidth(demand_bw=0)

    def test_iobandwidth_accounts_read_and_write(self):
        cluster = Cluster.chameleon(num_nodes=2)
        proc = IOBandwidth(demand_bw=10 * MB10).launch(cluster, "node1", core=0)
        cluster.sim.run(until=300)
        assert proc.counters["io_write_bytes"] > 0
        assert proc.counters["io_read_bytes"] > 0  # copy chains read back
