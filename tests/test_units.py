"""Unit-helper tests."""

import pytest

from repro import units


def test_binary_prefixes():
    assert units.KB == 1024
    assert units.MB == 1024**2
    assert units.GB == 1024**3


def test_decimal_prefixes():
    assert units.GB10 == 10**9
    assert units.MB10 == 10**6


def test_mib_gib_kib():
    assert units.mib(1) == units.MB
    assert units.gib(2) == 2 * units.GB
    assert units.kib(3) == 3 * units.KB


@pytest.mark.parametrize(
    "value,expected",
    [
        (512, "512 B"),
        (2048, "2 KiB"),
        (3 * units.MB, "3 MiB"),
        (1.5 * units.GB, "1.5 GiB"),
    ],
)
def test_fmt_bytes(value, expected):
    assert units.fmt_bytes(value) == expected


def test_fmt_rate():
    assert units.fmt_rate(2048).endswith("/s")
    assert "KiB" in units.fmt_rate(2048)
