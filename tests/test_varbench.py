"""Varbench-style variability measurement."""

import pytest

from repro.core import make_anomaly
from repro.errors import ConfigError
from repro.varbench import VariabilityReport


class TestReportArithmetic:
    REPORT = VariabilityReport(
        app="x", anomaly="none", runtimes=(10.0, 12.0, 11.0, 13.0)
    )

    def test_mean_std(self):
        assert self.REPORT.mean == pytest.approx(11.5)
        assert self.REPORT.std > 0

    def test_cov(self):
        assert self.REPORT.coefficient_of_variation == pytest.approx(
            self.REPORT.std / 11.5
        )

    def test_spread(self):
        assert self.REPORT.spread == pytest.approx(0.3)

    def test_percentile(self):
        assert self.REPORT.percentile(50) == pytest.approx(11.5)


class TestMeasurement:
    def test_clean_runs_have_low_variability(self):
        report = VariabilityReport.measure(
            "miniMD", repetitions=3, iterations=6, seed=1
        )
        assert report.anomaly == "none"
        assert len(report.runtimes) == 3
        assert report.coefficient_of_variation < 0.05

    def test_anomaly_with_random_phase_induces_variability(self):
        clean = VariabilityReport.measure(
            "miniMD", repetitions=4, iterations=8, seed=2
        )
        noisy = VariabilityReport.measure(
            "miniMD",
            anomaly_factory=lambda: make_anomaly("cpuoccupy"),
            repetitions=4,
            iterations=8,
            seed=2,
        )
        assert noisy.anomaly == "cpuoccupy"
        assert noisy.mean > clean.mean
        assert noisy.coefficient_of_variation > clean.coefficient_of_variation

    def test_needs_two_repetitions(self):
        with pytest.raises(ConfigError):
            VariabilityReport.measure("miniMD", repetitions=1)
