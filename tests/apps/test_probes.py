"""Measurement probes: STREAM, OSU, IOR."""

import pytest

from repro.apps import IORBenchmark, OSUBandwidth, StreamBenchmark
from repro.cluster import Cluster
from repro.errors import ConfigError
from repro.units import KB, MB


class TestStream:
    def test_uncontended_best_rate_is_core_limit(self):
        cluster = Cluster(num_nodes=1)
        stream = StreamBenchmark()
        stream.launch(cluster, "node0", core=0)
        cluster.sim.run(until=100)
        assert stream.best_rate() == pytest.approx(cluster.spec.core_mem_bw, rel=0.01)

    def test_unfinished_rejected(self):
        cluster = Cluster(num_nodes=1)
        stream = StreamBenchmark()
        stream.launch(cluster, "node0", core=0)
        with pytest.raises(ConfigError):
            stream.best_rate()

    def test_validation(self):
        with pytest.raises(ConfigError):
            StreamBenchmark(array_bytes=0)
        with pytest.raises(ConfigError):
            StreamBenchmark(iterations=0)


class TestOSU:
    def test_large_messages_reach_near_nic_peak(self):
        cluster = Cluster.voltrino(num_nodes=8)
        osu = OSUBandwidth(message_size=8 * 1024 * KB, messages=16)
        osu.launch(cluster, src="node0", dst="node4")
        cluster.sim.run(until=500)
        assert osu.bandwidth() > 0.9 * cluster.spec.nic_bw

    def test_small_messages_latency_bound(self):
        cluster = Cluster.voltrino(num_nodes=8)
        osu = OSUBandwidth(message_size=16 * KB, messages=16)
        osu.launch(cluster, src="node0", dst="node4")
        cluster.sim.run(until=500)
        assert osu.bandwidth() < 0.3 * cluster.spec.nic_bw

    def test_validation(self):
        with pytest.raises(ConfigError):
            OSUBandwidth(message_size=0)
        cluster = Cluster.voltrino(num_nodes=8)
        osu = OSUBandwidth(message_size=1 * MB)
        with pytest.raises(ConfigError):
            osu.bandwidth()


class TestIOR:
    def test_three_phases_reported(self):
        cluster = Cluster.chameleon(num_nodes=2)
        ior = IORBenchmark()
        ior.launch(cluster, node="node1")
        cluster.sim.run(until=10_000)
        phases = ior.phase_bandwidth()
        assert set(phases) == {"write", "access", "read"}
        assert all(v > 0 for v in phases.values())

    def test_streaming_capped_by_disk(self):
        cluster = Cluster.chameleon(num_nodes=2)
        ior = IORBenchmark()
        ior.launch(cluster, node="node1")
        cluster.sim.run(until=10_000)
        phases = ior.phase_bandwidth()
        disk_mbps = cluster.filesystem("nfs").disk_bw / 1e6
        assert phases["write"] <= disk_mbps * 1.01

    def test_unfinished_rejected(self):
        ior = IORBenchmark()
        with pytest.raises(ConfigError):
            ior.phase_bandwidth()

    def test_validation(self):
        with pytest.raises(ConfigError):
            IORBenchmark(file_bytes=0)
