"""Application profiles, rank bodies and the job launcher."""

import pytest

from repro.apps import AppJob, get_app
from repro.apps.base import AppProfile, Application
from repro.apps.registry import APP_REGISTRY
from repro.cluster import Cluster
from repro.errors import ConfigError


class TestRegistry:
    def test_eight_apps(self):
        assert len(APP_REGISTRY) == 8

    def test_lookup_case_insensitive(self):
        assert get_app("comd").name == "CoMD"
        assert get_app("MINIGHOST").name == "miniGhost"

    def test_unknown_app(self):
        with pytest.raises(ConfigError):
            get_app("hpl")

    def test_table2_flags(self):
        flags = {
            name: (p.cpu_intensive, p.mem_intensive, p.net_intensive)
            for name, p in APP_REGISTRY.items()
        }
        assert flags["cloverleaf"] == (False, True, False)
        assert flags["CoMD"] == (True, False, False)
        assert flags["kripke"] == (True, True, False)
        assert flags["milc"] == (True, True, False)
        assert flags["miniAMR"] == (False, True, True)
        assert flags["miniGhost"] == (False, True, True)
        assert flags["miniMD"] == (True, False, False)
        assert flags["sw4lite"] == (True, False, False)


class TestProfileValidation:
    def test_bad_iterations(self):
        with pytest.raises(ConfigError):
            AppProfile(
                name="x", iterations=0, iter_seconds=1.0, ips=1, working_set=1,
                cache_intensity=1, mpki_base=1, mpki_extra=1, miss_cpi_penalty=1,
                mem_bw=1, mem_bw_extra=1, comm_bytes=1, mem_alloc=1,
            )

    def test_scaled_override(self):
        app = get_app("CoMD").scaled(iterations=5, mem_bw=123.0)
        assert app.profile.iterations == 5
        assert app.profile.mem_bw == 123.0
        # original registry profile untouched
        assert APP_REGISTRY["CoMD"].iterations != 5

    def test_nominal_runtime(self):
        app = get_app("CoMD").scaled(iterations=10)
        assert app.profile.nominal_runtime == pytest.approx(
            10 * app.profile.iter_seconds
        )


class TestAppJob:
    def test_placement_round_robin(self):
        cluster = Cluster.voltrino(num_nodes=4)
        job = AppJob(get_app("CoMD"), cluster, nodes=[0, 1], ranks_per_node=2)
        assert job.placement() == [
            ("node0", 0),
            ("node1", 0),
            ("node0", 1),
            ("node1", 1),
        ]
        assert job.n_ranks == 4

    def test_single_node_run_completes_near_nominal(self):
        cluster = Cluster(num_nodes=1)
        app = get_app("CoMD").scaled(iterations=10)
        job = AppJob(app, cluster, nodes=[0], ranks_per_node=1, seed=1)
        runtime = job.run(timeout=1000)
        assert runtime == pytest.approx(app.profile.nominal_runtime, rel=0.1)

    def test_barrier_couples_ranks(self):
        """An anomaly on one rank's core slows the whole BSP job."""
        cluster = Cluster(num_nodes=1)
        app = get_app("CoMD").scaled(iterations=10)
        job = AppJob(app, cluster, nodes=[0], ranks_per_node=4, seed=1)
        job.launch()
        from repro.core import CpuOccupy

        CpuOccupy(utilization=100).launch(cluster, "node0", core=0)
        runtime = job.run(timeout=1000)
        assert runtime > 1.8 * app.profile.nominal_runtime

    def test_memory_allocated_and_released(self):
        cluster = Cluster(num_nodes=1)
        app = get_app("cloverleaf").scaled(iterations=3)
        job = AppJob(app, cluster, nodes=[0], ranks_per_node=2, seed=1)
        job.launch()
        cluster.sim.run(until=2.0, stop_when=lambda: False)
        used_during = cluster.node(0).memory.used
        job.run(timeout=1000)
        assert used_during >= 2 * app.profile.mem_alloc
        assert cluster.node(0).memory.used == cluster.node(0).memory.baseline

    def test_runtime_requires_finish(self):
        cluster = Cluster(num_nodes=1)
        job = AppJob(get_app("CoMD").scaled(iterations=5), cluster, nodes=[0])
        job.launch()
        with pytest.raises(ConfigError):
            job.runtime()

    def test_double_launch_rejected(self):
        cluster = Cluster(num_nodes=1)
        job = AppJob(get_app("CoMD").scaled(iterations=2), cluster, nodes=[0])
        job.launch()
        with pytest.raises(ConfigError):
            job.launch()

    def test_invalid_construction(self):
        cluster = Cluster(num_nodes=1)
        with pytest.raises(ConfigError):
            AppJob(get_app("CoMD"), cluster, nodes=[])
        with pytest.raises(ConfigError):
            AppJob(get_app("CoMD"), cluster, nodes=[0], ranks_per_node=0)

    def test_multi_node_halo_traffic_visible(self):
        cluster = Cluster.voltrino(num_nodes=4)
        app = get_app("miniGhost").scaled(iterations=5)
        job = AppJob(app, cluster, nodes=[0, 1, 2, 3], ranks_per_node=2, seed=1)
        job.run(timeout=1000)
        assert cluster.node(0).counters["nic_tx_bytes"] > 0
