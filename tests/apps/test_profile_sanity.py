"""Physical-sanity checks on the calibrated application profiles."""

import pytest

from repro.apps.registry import APP_REGISTRY
from repro.cluster import MachineSpec
from repro.units import GB10

SPEC = MachineSpec.voltrino()


@pytest.mark.parametrize("name", sorted(APP_REGISTRY))
def test_profile_within_hardware_envelope(name):
    p = APP_REGISTRY[name]
    # demands must be achievable on the reference core/socket
    assert p.mem_bw <= SPEC.core_mem_bw
    assert p.ips <= 4e9  # < ~1.6 IPC x 2.3 GHz superscalar headroom
    assert 0 < p.working_set <= 2 * SPEC.cache.l3
    assert p.mem_alloc < SPEC.mem_bytes / 8  # 8+ ranks must fit a node


@pytest.mark.parametrize("name", sorted(APP_REGISTRY))
def test_flags_match_demand_magnitudes(name):
    """Table 2 flags must be consistent with the numeric profile."""
    p = APP_REGISTRY[name]
    if p.cpu_intensive and not p.mem_intensive:
        assert p.ips >= 2.0e9
        assert p.mem_bw <= 2 * GB10
    if p.mem_intensive:
        assert p.mem_bw >= 6 * GB10
    if p.net_intensive:
        assert p.comm_bytes >= 8 * (1 << 20)
    else:
        assert p.comm_bytes <= 4 * (1 << 20)


def test_cpu_apps_more_cache_sensitive_than_memory_apps():
    cpu_penalties = [
        p.miss_cpi_penalty for p in APP_REGISTRY.values()
        if p.cpu_intensive and not p.mem_intensive
    ]
    mem_penalties = [
        p.miss_cpi_penalty for p in APP_REGISTRY.values()
        if p.mem_intensive and not p.cpu_intensive
    ]
    assert min(cpu_penalties) > max(mem_penalties)


def test_baseline_runtimes_in_paper_range():
    """Fig 8's 'none' bars sit between ~90 and ~330 s."""
    for p in APP_REGISTRY.values():
        assert 80.0 <= p.nominal_runtime <= 350.0, p.name
