"""Feature importances of the tree and forest."""

import numpy as np
import pytest

from repro.analytics.forest import RandomForestClassifier
from repro.analytics.tree import DecisionTreeClassifier
from repro.errors import ConfigError
from repro.sim.rng import make_rng


def informative_data(n=120, seed=0):
    """Feature 0 carries the label; features 1-3 are noise."""
    rng = make_rng(seed)
    y = rng.integers(0, 2, n)
    X = rng.normal(size=(n, 4))
    X[:, 0] += 5.0 * y
    return X, y


def test_tree_importances_sum_to_one():
    X, y = informative_data()
    tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
    assert tree.feature_importances_.sum() == pytest.approx(1.0)


def test_informative_feature_dominates_tree():
    X, y = informative_data()
    tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
    assert np.argmax(tree.feature_importances_) == 0
    assert tree.feature_importances_[0] > 0.8


def test_forest_importances_average_trees():
    X, y = informative_data()
    forest = RandomForestClassifier(n_estimators=15, seed=1).fit(X, y)
    imps = forest.feature_importances_
    assert imps.shape == (4,)
    assert np.argmax(imps) == 0


def test_unsplit_tree_has_zero_importances():
    X = np.ones((10, 3))
    y = np.zeros(10)
    tree = DecisionTreeClassifier().fit(X, y)
    assert tree.feature_importances_.sum() == 0.0


def test_unfitted_forest_rejected():
    with pytest.raises(ConfigError):
        _ = RandomForestClassifier().feature_importances_
