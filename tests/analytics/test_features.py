"""Feature extraction and windowing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.features import (
    STAT_NAMES,
    extract_features,
    feature_names,
    windows,
)
from repro.errors import ConfigError
from repro.sim.rng import make_rng


class TestExtractFeatures:
    def test_feature_count(self):
        window = make_rng(0).random((30, 4))
        feats = extract_features(window)
        assert feats.shape == (4 * len(STAT_NAMES),)

    def test_constant_column_is_safe(self):
        window = np.ones((20, 2))
        feats = extract_features(window)
        assert np.all(np.isfinite(feats))
        # mean = min = max = 1, std = skew = kurtosis = 0
        assert feats[0] == 1.0 and feats[1] == 0.0
        assert feats[4] == 0.0 and feats[5] == 0.0

    def test_known_statistics(self):
        col = np.arange(1.0, 11.0).reshape(-1, 1)
        feats = extract_features(col)
        named = dict(zip(feature_names(["m"]), feats))
        assert named["m__mean"] == pytest.approx(5.5)
        assert named["m__min"] == 1.0
        assert named["m__max"] == 10.0
        assert named["m__p50"] == pytest.approx(5.5)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigError):
            extract_features(np.ones(5))
        with pytest.raises(ConfigError):
            extract_features(np.empty((0, 3)))


class TestFeatureNames:
    def test_order_matches_extraction(self):
        names = feature_names(["a", "b"])
        assert names[0] == "a__mean"
        assert names[len(STAT_NAMES)] == "b__mean"
        assert len(names) == 2 * len(STAT_NAMES)


class TestWindows:
    def test_non_overlapping(self):
        series = np.arange(100).reshape(-1, 1)
        wins = windows(series, width=30)
        assert len(wins) == 3  # trailing partial dropped
        assert wins[0][0, 0] == 0 and wins[1][0, 0] == 30

    def test_overlapping_stride(self):
        series = np.arange(50).reshape(-1, 1)
        wins = windows(series, width=20, stride=10)
        assert len(wins) == 4
        assert wins[1][0, 0] == 10

    def test_too_short_series(self):
        assert windows(np.ones((5, 2)), width=10) == []

    def test_validation(self):
        with pytest.raises(ConfigError):
            windows(np.ones((5, 1)), width=0)
        with pytest.raises(ConfigError):
            windows(np.ones((5, 1)), width=2, stride=0)


@settings(max_examples=50, deadline=None)
@given(
    t=st.integers(min_value=1, max_value=60),
    m=st.integers(min_value=1, max_value=6),
)
def test_features_always_finite(t, m):
    rng = make_rng(t * 100 + m)
    feats = extract_features(rng.normal(size=(t, m)) * 1e9)
    assert feats.shape == (m * 11,)
    assert np.all(np.isfinite(feats))
