"""Diagnosis dataset assembly and pipeline (small synthetic + tiny real)."""

import numpy as np
import pytest

from repro.analytics.diagnosis import (
    DIAGNOSIS_CLASSES,
    DiagnosisDataset,
    DiagnosisPipeline,
    default_models,
)
from repro.errors import ConfigError
from repro.sim.rng import make_rng


def synthetic_runs(n_per_class=4, t=60, m=3, seed=0):
    """Runs whose first metric encodes the class (plus noise)."""
    rng = make_rng(seed)
    runs = []
    for ci, label in enumerate(("none", "memleak", "cpuoccupy")):
        for r in range(n_per_class):
            base = np.full((t, m), float(ci * 10))
            series = base + rng.normal(0, 0.5, size=(t, m))
            runs.append((series, label))
    return runs


class TestDatasetAssembly:
    def test_windows_become_samples_with_groups(self):
        runs = synthetic_runs()
        ds = DiagnosisDataset.from_runs(runs, ["a", "b", "c"], window=20)
        assert ds.n_samples == len(runs) * 3  # 60/20 windows per run
        assert ds.groups is not None
        assert len(np.unique(ds.groups)) == len(runs)
        assert ds.X.shape[1] == 3 * 11

    def test_class_counts(self):
        ds = DiagnosisDataset.from_runs(synthetic_runs(), ["a", "b", "c"], window=30)
        counts = ds.class_counts()
        assert counts["none"] == counts["memleak"] == counts["cpuoccupy"]

    def test_too_short_runs_rejected(self):
        with pytest.raises(ConfigError):
            DiagnosisDataset.from_runs(
                [(np.ones((5, 2)), "none")], ["a", "b"], window=50
            )


class TestPipeline:
    def test_three_default_models(self):
        assert set(default_models()) == {"DecisionTree", "AdaBoost", "RandomForest"}

    def test_easy_dataset_scores_high(self):
        ds = DiagnosisDataset.from_runs(
            synthetic_runs(n_per_class=6), ["a", "b", "c"], window=20
        )
        reports = DiagnosisPipeline(folds=3, seed=0).evaluate(ds)
        for report in reports.values():
            assert report.macro_f1 > 0.9
            assert np.allclose(report.confusion.sum(axis=1), 1.0)

    def test_labels_follow_paper_order(self):
        ds = DiagnosisDataset.from_runs(
            synthetic_runs(n_per_class=6), ["a", "b", "c"], window=20
        )
        reports = DiagnosisPipeline(folds=3, seed=0).evaluate(ds)
        labels = reports["RandomForest"].labels
        expected = [c for c in DIAGNOSIS_CLASSES if c in ("none", "memleak", "cpuoccupy")]
        assert labels == expected

    def test_fold_validation(self):
        with pytest.raises(ConfigError):
            DiagnosisPipeline(folds=1)
