"""Classification metrics and cross-validation splitting."""

import numpy as np
import pytest

from repro.analytics.crossval import cross_val_predict, stratified_kfold
from repro.analytics.metrics import (
    confusion_matrix,
    f1_scores,
    macro_f1,
    normalized_confusion,
)
from repro.errors import ConfigError
from repro.sim.rng import make_rng


class TestConfusionMatrix:
    def test_perfect_prediction_is_diagonal(self):
        y = np.array(["a", "b", "a", "b"])
        matrix, labels = confusion_matrix(y, y)
        assert labels == ["a", "b"]
        assert matrix.tolist() == [[2, 0], [0, 2]]

    def test_off_diagonal_counts(self):
        y_true = np.array(["a", "a", "b"])
        y_pred = np.array(["b", "a", "b"])
        matrix, labels = confusion_matrix(y_true, y_pred)
        assert matrix[labels.index("a"), labels.index("b")] == 1

    def test_explicit_label_order(self):
        y = np.array(["x"])
        matrix, labels = confusion_matrix(y, y, labels=["z", "x"])
        assert labels == ["z", "x"]
        assert matrix[1, 1] == 1

    def test_shape_mismatch(self):
        with pytest.raises(ConfigError):
            confusion_matrix(np.ones(3), np.ones(2))

    def test_normalised_rows(self):
        matrix = np.array([[2, 2], [0, 0]])
        norm = normalized_confusion(matrix)
        assert norm[0].tolist() == [0.5, 0.5]
        assert norm[1].tolist() == [0.0, 0.0]  # empty row stays zero


class TestF1:
    def test_perfect(self):
        y = np.array([0, 1, 1])
        assert f1_scores(y, y) == {0: 1.0, 1: 1.0}
        assert macro_f1(y, y) == 1.0

    def test_never_predicted_class_gets_zero(self):
        y_true = np.array([0, 1])
        y_pred = np.array([0, 0])
        scores = f1_scores(y_true, y_pred)
        assert scores[1] == 0.0

    def test_known_value(self):
        y_true = np.array([1, 1, 1, 0])
        y_pred = np.array([1, 1, 0, 0])
        # class 1: precision 1.0, recall 2/3 -> F1 = 0.8
        assert f1_scores(y_true, y_pred)[1] == pytest.approx(0.8)


class TestStratifiedKFold:
    def test_folds_partition_everything(self):
        y = np.array([0, 0, 0, 1, 1, 1, 2, 2, 2])
        folds = stratified_kfold(y, k=3, seed=0)
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(9))
        for train, test in folds:
            assert set(train) | set(test) == set(range(9))
            assert set(train) & set(test) == set()

    def test_stratification(self):
        y = np.array([0] * 6 + [1] * 6)
        for _, test in stratified_kfold(y, k=3, seed=1):
            labels = y[test]
            assert (labels == 0).sum() == 2
            assert (labels == 1).sum() == 2

    def test_groups_never_split(self):
        y = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        groups = np.array([10, 10, 11, 11, 20, 20, 21, 21])
        for train, test in stratified_kfold(y, k=2, seed=2, groups=groups):
            for g in np.unique(groups):
                members = set(np.nonzero(groups == g)[0].tolist())
                assert members <= set(train.tolist()) or members <= set(
                    test.tolist()
                )

    def test_mixed_label_group_rejected(self):
        y = np.array([0, 1])
        groups = np.array([5, 5])
        with pytest.raises(ConfigError):
            stratified_kfold(y, k=2, groups=groups)

    def test_validation(self):
        with pytest.raises(ConfigError):
            stratified_kfold(np.array([0, 1]), k=1)
        with pytest.raises(ConfigError):
            stratified_kfold(np.array([0]), k=2)


class TestCrossValPredict:
    def test_every_sample_predicted(self):
        rng = make_rng(0)
        X = np.vstack(
            [rng.normal(0, 0.3, (15, 2)), rng.normal(4, 0.3, (15, 2))]
        )
        y = np.array(["lo"] * 15 + ["hi"] * 15)
        from repro.analytics.tree import DecisionTreeClassifier

        pred = cross_val_predict(lambda: DecisionTreeClassifier(), X, y, k=3, seed=0)
        assert pred.shape == y.shape
        assert (pred == y).mean() > 0.9
