"""Decision-tree classifier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.tree import DecisionTreeClassifier
from repro.errors import ConfigError
from repro.sim.rng import make_rng


def blobs(n=60, seed=0):
    """Two well-separated Gaussian blobs."""
    rng = make_rng(seed)
    x0 = rng.normal(loc=0.0, scale=0.5, size=(n // 2, 3))
    x1 = rng.normal(loc=5.0, scale=0.5, size=(n // 2, 3))
    X = np.vstack([x0, x1])
    y = np.array(["a"] * (n // 2) + ["b"] * (n // 2))
    return X, y


class TestFitPredict:
    def test_separable_data_perfect_fit(self):
        X, y = blobs()
        tree = DecisionTreeClassifier().fit(X, y)
        assert np.all(tree.predict(X) == y)

    def test_three_classes(self):
        rng = make_rng(1)
        X = np.vstack(
            [rng.normal(loc=c * 4, scale=0.3, size=(20, 2)) for c in range(3)]
        )
        y = np.repeat([0, 1, 2], 20)
        tree = DecisionTreeClassifier().fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.95

    def test_single_class(self):
        X = np.ones((10, 2))
        y = np.zeros(10)
        tree = DecisionTreeClassifier().fit(X, y)
        assert np.all(tree.predict(X) == 0)

    def test_max_depth_limits_tree(self):
        X, y = blobs(n=100)
        tree = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert tree.depth <= 1

    def test_min_samples_leaf_respected(self):
        X, y = blobs(n=40)
        deep = DecisionTreeClassifier().fit(X, y)
        stumpy = DecisionTreeClassifier(min_samples_leaf=20).fit(X, y)
        assert stumpy.depth <= deep.depth

    def test_predict_proba_rows_sum_to_one(self):
        X, y = blobs()
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        proba = tree.predict_proba(X)
        assert proba.shape == (len(y), 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_sample_weights_steer_the_fit(self):
        # weight one class to dominance; an unsplittable stump predicts it
        X = np.zeros((10, 1))
        y = np.array([0] * 5 + [1] * 5)
        w = np.array([10.0] * 5 + [0.1] * 5)
        tree = DecisionTreeClassifier(max_depth=1).fit(X, y, sample_weight=w)
        assert np.all(tree.predict(X) == 0)


class TestValidation:
    def test_unfitted_predict(self):
        with pytest.raises(ConfigError):
            DecisionTreeClassifier().predict(np.ones((2, 2)))

    def test_shape_mismatch(self):
        with pytest.raises(ConfigError):
            DecisionTreeClassifier().fit(np.ones((3, 2)), np.ones(4))

    def test_empty_dataset(self):
        with pytest.raises(ConfigError):
            DecisionTreeClassifier().fit(np.empty((0, 2)), np.empty(0))

    def test_bad_params(self):
        with pytest.raises(ConfigError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ConfigError):
            DecisionTreeClassifier(min_samples_leaf=0)

    def test_bad_weights(self):
        with pytest.raises(ConfigError):
            DecisionTreeClassifier().fit(
                np.ones((3, 1)), np.arange(3), sample_weight=np.array([-1.0, 1, 1])
            )


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_training_accuracy_beats_majority_on_separable_data(seed):
    X, y = blobs(n=40, seed=seed)
    tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
    assert (tree.predict(X) == y).mean() >= 0.9


def test_max_features_sqrt_is_deterministic_per_seed():
    X, y = blobs(n=80)
    a = DecisionTreeClassifier(max_features="sqrt", seed=7).fit(X, y).predict(X)
    b = DecisionTreeClassifier(max_features="sqrt", seed=7).fit(X, y).predict(X)
    assert np.array_equal(a, b)
