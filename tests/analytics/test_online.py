"""Online diagnoser on synthetic timelines."""

import numpy as np
import pytest

from repro.analytics.online import OnlineDiagnoser
from repro.analytics.tree import DecisionTreeClassifier
from repro.errors import ConfigError
from repro.sim.rng import make_rng


class StepModel:
    """Fake classifier: label by the window's first-feature mean."""

    def predict(self, X):
        return np.where(X[:, 0] > 5.0, "anomaly", "none")


def step_series(t=100, onset=40):
    times = np.arange(t, dtype=float)
    series = np.zeros((t, 2))
    series[onset:, 0] = 10.0
    return times, series, onset


class TestPredictTimeline:
    def test_window_and_stride(self):
        times, series, _ = step_series()
        diag = OnlineDiagnoser(StepModel(), window=10, stride=10)
        preds = diag.predict_timeline(times, series)
        assert [p.time for p in preds] == [9.0, 19.0, 29.0, 39.0, 49.0, 59.0,
                                           69.0, 79.0, 89.0, 99.0]

    def test_labels_flip_after_onset(self):
        times, series, onset = step_series()
        diag = OnlineDiagnoser(StepModel(), window=10, stride=1)
        preds = diag.predict_timeline(times, series)
        by_time = {p.time: p.label for p in preds}
        assert by_time[30.0] == "none"
        assert by_time[60.0] == "anomaly"

    def test_short_series_empty(self):
        diag = OnlineDiagnoser(StepModel(), window=50)
        assert diag.predict_timeline(np.arange(10.0), np.zeros((10, 2))) == []

    def test_validation(self):
        with pytest.raises(ConfigError):
            OnlineDiagnoser(StepModel(), window=1)
        diag = OnlineDiagnoser(StepModel(), window=5)
        with pytest.raises(ConfigError):
            diag.predict_timeline(np.arange(5.0), np.zeros(5))


class TestEvaluate:
    def test_accuracy_and_latency(self):
        times, series, onset = step_series()
        diag = OnlineDiagnoser(StepModel(), window=10, stride=1)

        def truth(t):
            return "anomaly" if t >= onset else "none"

        report = diag.evaluate(times, series, truth)
        # mis-labelled only while the window straddles the onset
        assert report.accuracy > 0.85
        # the step model flips once the window majority is anomalous:
        # latency ~ window/2
        assert report.detection_latency == pytest.approx(5.0, abs=2.0)

    def test_never_detected(self):
        times = np.arange(50.0)
        series = np.zeros((50, 2))  # model always says none
        diag = OnlineDiagnoser(StepModel(), window=10, stride=5)

        def truth(t):
            return "anomaly" if t >= 20 else "none"

        report = diag.evaluate(times, series, truth)
        assert report.detection_latency is None

    def test_with_real_tree(self):
        rng = make_rng(0)
        X = np.vstack([rng.normal(0, 0.2, (30, 22)), rng.normal(8, 0.2, (30, 22))])
        y = np.array(["none"] * 30 + ["hot"] * 30)
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        # streaming series whose stats jump at t=30 (2 metrics x 11 stats = 22)
        times = np.arange(60.0)
        series = np.zeros((60, 2))
        series[30:] = 8.0
        diag = OnlineDiagnoser(tree, window=10, stride=2)
        preds = diag.predict_timeline(times, series)
        assert preds[-1].label == "hot"
        assert preds[0].label == "none"

    def test_too_short_evaluate(self):
        diag = OnlineDiagnoser(StepModel(), window=30)
        with pytest.raises(ConfigError):
            diag.evaluate(np.arange(5.0), np.zeros((5, 2)), lambda t: "none")
