"""Random forest and AdaBoost."""

import numpy as np
import pytest

from repro.analytics.adaboost import AdaBoostClassifier
from repro.analytics.forest import RandomForestClassifier
from repro.analytics.tree import DecisionTreeClassifier
from repro.errors import ConfigError
from repro.sim.rng import make_rng


def noisy_blobs(n=120, noise=1.2, seed=0):
    rng = make_rng(seed)
    X = np.vstack(
        [rng.normal(loc=c * 2.0, scale=noise, size=(n // 3, 4)) for c in range(3)]
    )
    y = np.repeat(["a", "b", "c"], n // 3)
    return X, y


class TestRandomForest:
    def test_fits_and_predicts(self):
        X, y = noisy_blobs()
        rf = RandomForestClassifier(n_estimators=15, seed=1).fit(X, y)
        assert (rf.predict(X) == y).mean() > 0.9

    def test_deterministic_per_seed(self):
        X, y = noisy_blobs()
        a = RandomForestClassifier(n_estimators=10, seed=5).fit(X, y).predict(X)
        b = RandomForestClassifier(n_estimators=10, seed=5).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_proba_shape_and_normalisation(self):
        X, y = noisy_blobs()
        rf = RandomForestClassifier(n_estimators=8, seed=2).fit(X, y)
        proba = rf.predict_proba(X[:10])
        assert proba.shape == (10, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_more_trees_not_worse_on_noisy_data(self):
        X, y = noisy_blobs(noise=2.0, seed=3)
        few = RandomForestClassifier(n_estimators=2, seed=4).fit(X, y)
        many = RandomForestClassifier(n_estimators=40, seed=4).fit(X, y)
        assert (many.predict(X) == y).mean() >= (few.predict(X) == y).mean() - 0.05

    def test_unfitted_rejected(self):
        with pytest.raises(ConfigError):
            RandomForestClassifier().predict(np.ones((2, 2)))
        with pytest.raises(ConfigError):
            RandomForestClassifier(n_estimators=0)


class TestAdaBoost:
    def test_boosting_beats_single_stump(self):
        X, y = noisy_blobs(noise=1.5, seed=7)
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        boosted = AdaBoostClassifier(n_estimators=30, max_depth=1).fit(X, y)
        assert (boosted.predict(X) == y).mean() >= (stump.predict(X) == y).mean()

    def test_early_stop_on_perfect_learner(self):
        X, y = noisy_blobs(noise=0.1, seed=8)  # trivially separable
        boosted = AdaBoostClassifier(n_estimators=50, max_depth=3).fit(X, y)
        assert len(boosted.learners_) < 50

    def test_single_class_degenerate(self):
        X = make_rng(0).random((10, 2))
        y = np.zeros(10)
        boosted = AdaBoostClassifier(n_estimators=5).fit(X, y)
        assert np.all(boosted.predict(X) == 0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            AdaBoostClassifier(n_estimators=0)
        with pytest.raises(ConfigError):
            AdaBoostClassifier(learning_rate=0)
        with pytest.raises(ConfigError):
            AdaBoostClassifier().predict(np.ones((1, 1)))
