"""Property-based invariants of the network flow solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.flows import FlowRequest, FlowSolver
from repro.network.topology import aries_like

TOPO = aries_like(num_nodes=16)
NODES = TOPO.compute_nodes

flow_strategy = st.tuples(
    st.integers(min_value=0, max_value=15),  # src index
    st.integers(min_value=0, max_value=15),  # dst index
    st.floats(min_value=0.0, max_value=20e9),  # demand
)


@settings(max_examples=80, deadline=None)
@given(flows=st.lists(flow_strategy, min_size=1, max_size=10),
       alpha=st.sampled_from([0.0, 0.6]))
def test_flow_solver_invariants(flows, alpha):
    solver = FlowSolver(TOPO, latency_alpha=alpha)
    requests = [
        FlowRequest(key=i, src=NODES[s], dst=NODES[d if d != s else (d + 1) % 16], demand=dem)
        for i, (s, d, dem) in enumerate(flows)
    ]
    result = solver.solve(requests)
    for req in requests:
        grant = result.grants[req.key]
        assert 0.0 <= grant <= req.demand * (1 + 1e-9) + 1e-6
    for edge, load in result.edge_load.items():
        assert load <= TOPO.capacity(*edge) * (1 + 1e-6) + 1e-3


@settings(max_examples=40, deadline=None)
@given(demand=st.floats(min_value=1e6, max_value=20e9))
def test_single_flow_latency_free(demand):
    """A lone flow suffers no latency degradation whatever its size."""
    solver = FlowSolver(TOPO, latency_alpha=0.6)
    result = solver.solve(
        [FlowRequest(key=1, src=NODES[0], dst=NODES[5], demand=demand)]
    )
    nic = TOPO.capacity(NODES[0], TOPO.switch_of(NODES[0]))
    assert result.grants[1] == pytest.approx(min(demand, nic), rel=1e-6)


@settings(max_examples=30, deadline=None)
@given(
    demand=st.floats(min_value=1e9, max_value=10e9),
    rivals=st.integers(min_value=1, max_value=4),
)
def test_more_rivals_never_help(demand, rivals):
    """Adding rival flows can only shrink an existing flow's grant."""
    solver = FlowSolver(TOPO, latency_alpha=0.6)
    probe = FlowRequest(key=0, src=NODES[0], dst=NODES[4], demand=demand)

    def grant_with(n):
        flows = [probe] + [
            FlowRequest(
                key=1 + i, src=NODES[1 + i % 3], dst=NODES[5 + i % 3], demand=9e9
            )
            for i in range(n)
        ]
        return solver.solve(flows).grants[0]

    assert grant_with(rivals) <= grant_with(0) * (1 + 1e-9) + 1e-3
