"""Exact-equivalence tests for the vectorized water filling.

PR 7 batched ``FlowSolver._max_min``'s per-round membership scans into an
incidence-matrix reduction.  The allocation must stay bit-identical to
the scalar loop (kept as ``_max_min_reference``): the array backend's
differential oracle fingerprints cluster state down to the float bit, so
"approximately the same grants" is not good enough.
"""

import numpy as np
import pytest

from repro.network.flows import FlowRequest, FlowSolver
from repro.network.topology import aries_like, dragonfly, star
from repro.sim.rng import spawn_rng

TOPOLOGIES = [
    lambda: star(num_nodes=6, link_bw=10e9),
    lambda: aries_like(num_nodes=8),
    lambda: dragonfly(groups=3, switches_per_group=2, nodes_per_switch=2),
]


def _random_flows(rng, nodes, n_flows):
    flows = []
    for key in range(n_flows):
        src, dst = rng.choice(len(nodes), size=2, replace=False)
        demand = float(rng.uniform(0.0, 12.0)) * 1e9
        if rng.random() < 0.15:
            demand = 0.0
        flows.append(
            FlowRequest(key=key, src=nodes[int(src)], dst=nodes[int(dst)], demand=demand)
        )
    return flows


def _compute_nodes(topo):
    return sorted(topo.compute_nodes)


class TestVectorizedMatchesScalarReference:
    @pytest.mark.parametrize("make_topo", TOPOLOGIES)
    def test_full_solve_bitwise_equal(self, make_topo):
        """Whole-solver differential: swap only the water filling."""
        rng = spawn_rng(700, "flows:vectorized")
        for trial in range(25):
            topo = make_topo()
            nodes = _compute_nodes(topo)
            flows = _random_flows(rng, nodes, n_flows=int(rng.integers(1, 9)))
            fast = FlowSolver(topo, memoize=False)
            slow = FlowSolver(topo, memoize=False)
            slow._max_min = slow._max_min_reference
            got = fast.solve(list(flows))
            want = slow.solve(list(flows))
            # Exact float equality — the two paths must be byte-for-byte
            # interchangeable inside the rate model.
            assert got.grants == want.grants, f"trial {trial}"
            assert got.edge_load == want.edge_load, f"trial {trial}"

    def test_rates_equal_under_contention_ties(self):
        # Equal demands over one shared hub link: the bottleneck tie-break
        # (lowest share, then lexicographically smallest edge) must pick
        # the same link in both implementations.
        topo = star(num_nodes=5, link_bw=1e9)
        flows = [
            FlowRequest(key=k, src="node0", dst=f"node{k + 1}", demand=1e9)
            for k in range(4)
        ]
        fast = FlowSolver(topo, memoize=False)
        slow = FlowSolver(topo, memoize=False)
        slow._max_min = slow._max_min_reference
        assert fast.solve(list(flows)).grants == slow.solve(list(flows)).grants

    def test_vectorized_solve_counter(self):
        s = FlowSolver(star(num_nodes=4, link_bw=10e9), memoize=False)
        s.solve([FlowRequest(key=1, src="node0", dst="node1", demand=5e9)])
        # One count per water-filling pass; latency_alpha > 0 re-shares.
        assert s.stats.counters["vectorized_waterfills"] == 2


class TestExternalSignature:
    FLOWS = [
        FlowRequest(key=1, src="node0", dst="node1", demand=5e9),
        FlowRequest(key=2, src="node0", dst="node2", demand=3e9),
    ]

    def test_precomputed_signature_keys_the_memo(self):
        s = FlowSolver(star(num_nodes=4, link_bw=10e9))
        demands = np.array([f.demand for f in self.FLOWS])
        sig = (("node0", "node1", "node0", "node2", 1, 2), demands.tobytes())
        first = s.solve(list(self.FLOWS), signature=sig)
        second = s.solve(list(self.FLOWS), signature=sig)
        assert s.stats.counters["flow_solves"] == 1
        assert s.stats.counters["flow_memo_hits"] == 1
        assert second.grants == first.grants

    def test_distinct_signatures_do_not_collide(self):
        s = FlowSolver(star(num_nodes=4, link_bw=10e9))
        demands = np.array([f.demand for f in self.FLOWS])
        s.solve(list(self.FLOWS), signature=("k", demands.tobytes()))
        bumped = [
            FlowRequest(key=1, src="node0", dst="node1", demand=6e9),
            FlowRequest(key=2, src="node0", dst="node2", demand=3e9),
        ]
        new_demands = np.array([f.demand for f in bumped])
        res = s.solve(bumped, signature=("k", new_demands.tobytes()))
        assert s.stats.counters["flow_solves"] == 2
        assert res.grants[1] != pytest.approx(5e9)
