"""Dragonfly topology structure and routing behaviour."""

import pytest

from repro.errors import ConfigError
from repro.network.flows import FlowRequest, FlowSolver
from repro.network.topology import dragonfly


@pytest.fixture(scope="module")
def topo():
    return dragonfly(groups=4, switches_per_group=4, nodes_per_switch=4)


class TestStructure:
    def test_counts(self, topo):
        assert len(topo.compute_nodes) == 64
        assert len(topo.switches) == 16

    def test_intra_group_all_to_all(self, topo):
        for a in range(4):
            for b in range(a + 1, 4):
                assert topo.graph.has_edge(f"g0sw{a}", f"g0sw{b}")

    def test_every_group_pair_connected(self, topo):
        import networkx as nx

        for ga in range(4):
            for gb in range(ga + 1, 4):
                # some switch of ga links to some switch of gb
                found = any(
                    topo.graph.has_edge(f"g{ga}sw{sa}", f"g{gb}sw{sb}")
                    for sa in range(4)
                    for sb in range(4)
                )
                assert found

    def test_global_links_thinner_than_local_bundles(self, topo):
        local = topo.capacity("g0sw0", "g0sw1")
        # find a global edge
        global_caps = [
            data["capacity"]
            for u, v, data in topo.graph.edges(data=True)
            if str(u).startswith("g0") and str(v).startswith("g1")
        ]
        assert global_caps and max(global_caps) < local

    def test_validation(self):
        with pytest.raises(ConfigError):
            dragonfly(groups=1)


class TestRouting:
    def test_intra_group_path_shorter_than_inter_group(self, topo):
        intra = topo.k_shortest_paths("node0", "node4", k=1)[0]
        inter = topo.k_shortest_paths("node0", "node16", k=1)[0]
        assert len(intra) <= len(inter)

    def test_inter_group_flow_capped_by_global_link(self, topo):
        solver = FlowSolver(topo, k_paths=2, latency_alpha=0.0)
        res = solver.solve(
            [FlowRequest(key=1, src="node0", dst="node16", demand=9e9)]
        )
        # a single 4.7 GB/s global link per group pair (plus an indirect
        # route) bounds the flow well below the NIC rate
        assert res.grants[1] < 9e9
