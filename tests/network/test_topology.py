"""Topology builders and path queries."""

import networkx as nx
import pytest

from repro.errors import ConfigError
from repro.network.topology import NetworkTopology, aries_like, star


class TestAriesLike:
    def test_node_and_switch_counts(self):
        topo = aries_like(num_nodes=12, nodes_per_switch=4)
        assert len(topo.compute_nodes) == 12
        assert len(topo.switches) == 3

    def test_switches_fully_connected(self):
        topo = aries_like(num_nodes=16, nodes_per_switch=4)
        switches = topo.switches
        for i, a in enumerate(switches):
            for b in switches[i + 1 :]:
                assert topo.graph.has_edge(a, b)

    def test_inter_switch_capacity_is_bundled(self):
        topo = aries_like(num_nodes=8, link_bw=5e9, inter_switch_redundancy=3)
        assert topo.capacity("sw0", "sw1") == pytest.approx(15e9)

    def test_switch_of(self):
        topo = aries_like(num_nodes=12, nodes_per_switch=4)
        assert topo.switch_of("node0") == "sw0"
        assert topo.switch_of("node4") == "sw1"
        assert topo.switch_of("node11") == "sw2"

    def test_partial_last_switch(self):
        topo = aries_like(num_nodes=10, nodes_per_switch=4)
        assert len(topo.switches) == 3

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigError):
            aries_like(num_nodes=0)


class TestStar:
    def test_single_router(self):
        topo = star(num_nodes=6)
        assert topo.switches == ["router"]
        assert len(topo.compute_nodes) == 6

    def test_no_redundant_paths(self):
        topo = star(num_nodes=4)
        paths = topo.k_shortest_paths("node0", "node1", k=4)
        assert len(paths) == 1  # only via the router


class TestPaths:
    def test_k_shortest_returns_increasing_lengths(self):
        topo = aries_like(num_nodes=48)
        paths = topo.k_shortest_paths("node0", "node4", k=4)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)
        assert lengths[0] == 4  # node0 -> sw0 -> sw1 -> node4

    def test_same_node_path(self):
        topo = star(num_nodes=2)
        assert topo.k_shortest_paths("node0", "node0") == [["node0"]]

    def test_capacity_validation(self):
        g = nx.Graph()
        g.add_edge("node0", "sw0", capacity=0)
        with pytest.raises(ConfigError):
            NetworkTopology(g)

    def test_switch_of_requires_single_uplink(self):
        g = nx.Graph()
        g.add_edge("node0", "sw0", capacity=1e9)
        g.add_edge("node0", "sw1", capacity=1e9)
        topo = NetworkTopology(g)
        with pytest.raises(ConfigError):
            topo.switch_of("node0")
