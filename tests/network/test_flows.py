"""Flow solver: max-min sharing, adaptive routing, latency degradation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ResourceError
from repro.network.flows import FlowRequest, FlowSolver
from repro.network.topology import aries_like, star


def solver(topo=None, **kwargs):
    return FlowSolver(topo if topo is not None else star(num_nodes=4, link_bw=10e9), **kwargs)


class TestMemoisation:
    FLOWS = [
        FlowRequest(key=1, src="node0", dst="node1", demand=5e9),
        FlowRequest(key=2, src="node0", dst="node2", demand=3e9),
    ]

    def test_identical_signature_hits_the_memo(self):
        s = solver()
        first = s.solve(list(self.FLOWS))
        second = s.solve(list(self.FLOWS))
        assert s.stats.counters["flow_solves"] == 1
        assert s.stats.counters["flow_memo_hits"] == 1
        assert second.grants == first.grants
        assert second.edge_load == first.edge_load

    def test_changed_demand_misses(self):
        s = solver()
        s.solve(list(self.FLOWS))
        changed = [
            FlowRequest(key=1, src="node0", dst="node1", demand=6e9),
            FlowRequest(key=2, src="node0", dst="node2", demand=3e9),
        ]
        s.solve(changed)
        assert s.stats.counters["flow_solves"] == 2
        assert s.stats.counters.get("flow_memo_hits", 0) == 0

    def test_hit_returns_a_copy(self):
        s = solver()
        s.solve(list(self.FLOWS))
        tampered = s.solve(list(self.FLOWS))
        tampered.grants[1] = -1.0
        clean = s.solve(list(self.FLOWS))
        assert clean.grants[1] > 0

    def test_memo_evicts_oldest_at_capacity(self):
        s = solver()
        s.MEMO_SIZE = 2
        for demand in (1e9, 2e9, 3e9):
            s.solve([FlowRequest(key=1, src="node0", dst="node1", demand=demand)])
        # The first signature was evicted; re-solving it is a miss.
        s.solve([FlowRequest(key=1, src="node0", dst="node1", demand=1e9)])
        assert s.stats.counters["flow_solves"] == 4


class TestWarmStart:
    FLOWS = [
        FlowRequest(key=1, src="node0", dst="node2", demand=8e9),
        FlowRequest(key=2, src="node1", dst="node2", demand=8e9),
    ]

    def _contended(self, **kwargs):
        return FlowSolver(aries_like(num_nodes=8, nic_bw=10e9), **kwargs)

    def test_warm_start_off_by_default(self):
        s = self._contended()
        s.solve(list(self.FLOWS))
        assert s._warm_splits == {}

    def test_warm_start_records_converged_splits(self):
        s = self._contended(warm_start=True)
        s.solve(list(self.FLOWS))
        splits = s._warm_splits[("node0", "node2")]
        assert len(splits) >= 1
        assert sum(splits) == pytest.approx(1.0)

    def test_warm_grants_close_to_cold(self):
        cold = self._contended().solve(list(self.FLOWS))
        warm_solver = self._contended(warm_start=True)
        warm_solver.solve(list(self.FLOWS))
        warm = warm_solver.solve(
            [
                FlowRequest(key=1, src="node0", dst="node2", demand=8.1e9),
                FlowRequest(key=2, src="node1", dst="node2", demand=8e9),
            ]
        )
        # Warm starts change the path the re-balancer takes, not the
        # physics: grants stay within a few percent of the cold solve.
        for key in (1, 2):
            assert warm.grants[key] == pytest.approx(cold.grants[key], rel=0.1)


class TestBasics:
    def test_single_flow_gets_demand(self):
        s = solver(latency_alpha=0.0)
        res = s.solve([FlowRequest(key=1, src="node0", dst="node1", demand=5e9)])
        assert res.grants[1] == pytest.approx(5e9)

    def test_empty_solve(self):
        assert solver().solve([]).grants == {}

    def test_duplicate_keys_rejected(self):
        s = solver()
        flows = [
            FlowRequest(key=1, src="node0", dst="node1", demand=1e9),
            FlowRequest(key=1, src="node1", dst="node2", demand=1e9),
        ]
        with pytest.raises(ResourceError):
            s.solve(flows)

    def test_negative_demand_rejected(self):
        with pytest.raises(ResourceError):
            FlowRequest(key=1, src="a", dst="b", demand=-1)

    def test_shared_uplink_is_split_fairly(self):
        s = solver(latency_alpha=0.0)
        flows = [
            FlowRequest(key=1, src="node0", dst="node1", demand=10e9),
            FlowRequest(key=2, src="node0", dst="node2", demand=10e9),
        ]
        res = s.solve(flows)
        # both cross node0's 10 GB/s uplink
        assert res.grants[1] == pytest.approx(5e9, rel=1e-6)
        assert res.grants[2] == pytest.approx(5e9, rel=1e-6)

    def test_small_demand_protected_under_maxmin(self):
        s = solver(latency_alpha=0.0)
        flows = [
            FlowRequest(key=1, src="node0", dst="node1", demand=1e9),
            FlowRequest(key=2, src="node0", dst="node2", demand=50e9),
        ]
        res = s.solve(flows)
        assert res.grants[1] == pytest.approx(1e9, rel=1e-6)


class TestAdaptiveRouting:
    def test_multipath_exceeds_single_link(self):
        # Aries fabric: sw0-sw1 direct plus 2-hop alternatives.
        topo = aries_like(num_nodes=48, link_bw=2e9, inter_switch_redundancy=1)
        adaptive = FlowSolver(topo, k_paths=4, latency_alpha=0.0)
        static = FlowSolver(topo, k_paths=1, latency_alpha=0.0)
        flow = [FlowRequest(key=1, src="node0", dst="node4", demand=8e9)]
        multi = adaptive.solve(flow).grants[1]
        single = static.solve(flow).grants[1]
        assert single == pytest.approx(2e9, rel=1e-6)  # one 2 GB/s bundle
        assert multi > 1.9 * single  # spread over near-minimal paths

    def test_latency_alpha_degrades_contended_flow(self):
        topo = aries_like(num_nodes=48)
        flows = [
            FlowRequest(key=1, src="node0", dst="node4", demand=9e9),
            FlowRequest(key=2, src="node1", dst="node5", demand=9e9),
        ]
        clean = FlowSolver(topo, latency_alpha=0.0).solve(flows).grants[1]
        degraded = FlowSolver(topo, latency_alpha=0.6).solve(flows).grants[1]
        assert degraded < clean

    def test_bad_params_rejected(self):
        topo = star(num_nodes=2)
        with pytest.raises(ResourceError):
            FlowSolver(topo, k_paths=0)
        with pytest.raises(ResourceError):
            FlowSolver(topo, latency_alpha=-1)


@settings(max_examples=50, deadline=None)
@given(
    demands=st.lists(
        st.floats(min_value=0, max_value=20e9), min_size=1, max_size=6
    )
)
def test_flow_invariants_on_star(demands):
    """Grants never exceed demands nor link capacities."""
    topo = star(num_nodes=6, link_bw=10e9)
    s = FlowSolver(topo, latency_alpha=0.0)
    flows = [
        FlowRequest(key=i, src=f"node{i % 3}", dst=f"node{3 + i % 3}", demand=d)
        for i, d in enumerate(demands)
    ]
    res = s.solve(flows)
    for flow in flows:
        assert 0 <= res.grants[flow.key] <= flow.demand + 1e-3
    for edge, load in res.edge_load.items():
        assert load <= topo.capacity(*edge) * (1 + 1e-6) + 1e-3
