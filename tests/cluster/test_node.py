"""Node construction and counter bookkeeping."""

import pytest

from repro.cluster import MachineSpec
from repro.cluster.node import Node
from repro.errors import ConfigError
from repro.units import GB


def test_node_owns_memory_ledger():
    node = Node("node0", MachineSpec.voltrino())
    assert node.memory.capacity == 125 * GB
    assert node.memory.baseline == Node.OS_BASELINE_BYTES


def test_counters_initialised_including_per_core():
    spec = MachineSpec.voltrino()
    node = Node("node0", spec)
    assert node.counters["cpu_user_seconds"] == 0.0
    assert f"cpu_core{spec.logical_cores - 1}_seconds" in node.counters


def test_add_counter_accumulates_and_creates():
    node = Node("node0", MachineSpec.voltrino())
    node.add_counter("cpu_user_seconds", 2.0)
    node.add_counter("cpu_user_seconds", 3.0)
    node.add_counter("made_up", 1.0)
    assert node.counters["cpu_user_seconds"] == 5.0
    assert node.counters["made_up"] == 1.0


def test_logical_cores_property():
    node = Node("node0", MachineSpec.chameleon())
    assert node.logical_cores == 48


def test_empty_name_rejected():
    with pytest.raises(ConfigError):
        Node("", MachineSpec.voltrino())


def test_knl_node_runs_work():
    """The KNL partition spec is usable end to end."""
    from repro.cluster import Cluster
    from repro.sim.process import Segment

    cluster = Cluster(num_nodes=1, spec=MachineSpec.voltrino_knl())

    def body(proc):
        yield Segment(work=3.0, mem_bw=4e9, cache_footprint={"L3": 1 << 30})

    p = cluster.spawn("knl-work", body, node=0, core=67)
    cluster.sim.run(until=100)
    assert p.runtime == pytest.approx(3.0)
