"""Cluster rate model: CPU sharing, SMT, cache, bandwidth, roofline."""

import math

import pytest

from repro.cluster import Cluster, MachineSpec
from repro.sim.process import Flow, IODemand, ProcessState, Segment
from repro.storage.filesystem import SharedFilesystem
from repro.units import GB10, MB, MB10


def compute(work=10.0, **kwargs):
    def body(proc):
        yield Segment(work=work, **kwargs)

    return body


def hog(cpu=1.0, **kwargs):
    def body(proc):
        yield Segment(work=math.inf, cpu=cpu, **kwargs)

    return body


class TestCpuSharing:
    def test_uncontended_full_speed(self):
        cluster = Cluster(num_nodes=1)
        p = cluster.spawn("p", compute(10.0), node=0, core=0)
        cluster.sim.run(until=100)
        assert p.runtime == pytest.approx(10.0)

    def test_core_sharing_halves_speed(self):
        cluster = Cluster(num_nodes=1)
        p = cluster.spawn("p", compute(10.0), node=0, core=0)
        cluster.spawn("hog", hog(), node=0, core=0)
        cluster.sim.run(until=100)
        assert p.runtime == pytest.approx(20.0)

    def test_duty_cycle_share(self):
        cluster = Cluster(num_nodes=1)
        p = cluster.spawn("p", compute(10.0), node=0, core=0)
        cluster.spawn("hog", hog(cpu=0.5), node=0, core=0)
        cluster.sim.run(until=100)
        # proportional sharing: p gets 1/1.5 of the core
        assert p.runtime == pytest.approx(15.0, rel=1e-6)

    def test_smt_sibling_penalty(self):
        spec = MachineSpec.voltrino()
        cluster = Cluster(num_nodes=1, spec=spec)
        p = cluster.spawn("p", compute(10.0), node=0, core=0)
        cluster.spawn("hog", hog(), node=0, core=spec.sibling_of(0))
        cluster.sim.run(until=100)
        # each hyperthread delivers smt_throughput/2 = 0.65
        assert p.runtime == pytest.approx(10.0 / 0.65, rel=1e-6)

    def test_different_cores_no_interference(self):
        cluster = Cluster(num_nodes=1)
        p = cluster.spawn("p", compute(10.0), node=0, core=0)
        cluster.spawn("hog", hog(), node=0, core=1)
        cluster.sim.run(until=100)
        assert p.runtime == pytest.approx(10.0)

    def test_cpu_time_accounting_is_occupancy(self):
        """/proc/stat-style accounting: a busy thread is 100% utilised."""
        spec = MachineSpec.voltrino()
        cluster = Cluster(num_nodes=1, spec=spec)
        cluster.spawn("a", hog(), node=0, core=0)
        cluster.spawn("b", hog(), node=0, core=spec.sibling_of(0))
        cluster.sim.run(until=10.0)
        assert cluster.node(0).counters["cpu_user_seconds"] == pytest.approx(
            20.0, rel=1e-6
        )


class TestCacheEffects:
    def test_eviction_slows_sensitive_segment(self):
        spec = MachineSpec.voltrino()

        def victim(work):
            return compute(
                work,
                cache_footprint={"L3": 20 * MB},
                cache_intensity=1.0,
                miss_cpi_penalty=1.0,
                mpki_base=1.0,
                mpki_extra=10.0,
                ips=1e9,
            )

        cluster = Cluster(num_nodes=1, spec=spec)
        clean = cluster.spawn("v", victim(10.0), node=0, core=0)
        cluster.sim.run(until=100)

        cluster2 = Cluster(num_nodes=1, spec=spec)
        victim_proc = cluster2.spawn("v", victim(10.0), node=0, core=0)
        cluster2.spawn(
            "evictor",
            hog(
                cache_footprint={"L3": 40 * MB},
                cache_intensity=4.0,
            ),
            node=0,
            core=1,  # same socket, different physical core
        )
        cluster2.sim.run(until=100)
        assert victim_proc.runtime > clean.runtime * 1.3

    def test_mpki_counter_reflects_eviction(self):
        spec = MachineSpec.voltrino()
        cluster = Cluster(num_nodes=1, spec=spec)
        victim = cluster.spawn(
            "v",
            compute(
                5.0,
                cache_footprint={"L3": 20 * MB},
                cache_intensity=1.0,
                mpki_base=1.0,
                mpki_extra=10.0,
                ips=1e9,
            ),
            node=0,
            core=0,
        )
        cluster.spawn(
            "evictor",
            hog(cache_footprint={"L3": 40 * MB}, cache_intensity=4.0),
            node=0,
            core=1,
        )
        cluster.sim.run(until=100)
        mpki = victim.counters["l3_misses"] / victim.counters["instructions"] * 1000
        assert mpki > 3.0  # well above the base 1.0


class TestMemoryBandwidth:
    def test_memory_bound_segment_ignores_cpu_loss(self):
        spec = MachineSpec.voltrino()
        cluster = Cluster(num_nodes=1, spec=spec)
        stream = cluster.spawn(
            "s", compute(10.0, mem_bw=spec.core_mem_bw), node=0, core=0
        )
        cluster.spawn("hog", hog(), node=0, core=0)  # same logical core
        cluster.sim.run(until=200)
        # phi = 1: fully memory-bound, CPU share loss is hidden
        assert stream.runtime == pytest.approx(10.0, rel=0.01)

    def test_bandwidth_contention_slows_stream(self):
        spec = MachineSpec.voltrino()
        cluster = Cluster(num_nodes=1, spec=spec)
        stream = cluster.spawn(
            "s", compute(10.0, mem_bw=spec.core_mem_bw), node=0, core=0
        )
        for i in range(7):
            cluster.spawn(f"bw{i}", hog(mem_bw=10 * GB10), node=0, core=1 + i)
        cluster.sim.run(until=500)
        assert stream.runtime > 20.0

    def test_other_socket_does_not_contend(self):
        spec = MachineSpec.voltrino()
        cluster = Cluster(num_nodes=1, spec=spec)
        stream = cluster.spawn(
            "s", compute(10.0, mem_bw=spec.core_mem_bw), node=0, core=0
        )
        for i in range(7):
            # cores 16+ live on socket 1
            cluster.spawn(f"bw{i}", hog(mem_bw=10 * GB10), node=0, core=16 + i)
        cluster.sim.run(until=500)
        assert stream.runtime == pytest.approx(10.0, rel=0.01)


class TestNetworkStage:
    def test_flow_contention_stretches_transfer(self):
        cluster = Cluster.voltrino(num_nodes=8)

        def sender(proc):
            yield Segment(
                work=10.0, cpu=0.05, flows=[Flow(dst="node4", rate=9e9)]
            )

        p = cluster.spawn("snd", sender, node=0, core=0)
        # a competing stream out of the same node
        def rival(proc):
            yield Segment(
                work=math.inf, cpu=0.05, flows=[Flow(dst="node5", rate=9e9)]
            )

        cluster.spawn("rival", rival, node=0, core=1)
        cluster.sim.run(until=200)
        assert p.runtime > 10.5  # slowed by uplink sharing + latency factor

    def test_nic_counters_accumulate(self):
        cluster = Cluster.voltrino(num_nodes=8)

        def sender(proc):
            yield Segment(work=5.0, cpu=0.05, flows=[Flow(dst="node4", rate=1e9)])

        cluster.spawn("snd", sender, node=0, core=0)
        cluster.sim.run(until=100)
        assert cluster.node(0).counters["nic_tx_bytes"] == pytest.approx(
            5e9, rel=0.01
        )
        assert cluster.node(4).counters["nic_rx_bytes"] == pytest.approx(
            5e9, rel=0.01
        )


class TestStorageStage:
    def test_io_contention_slows_writer(self):
        fs = SharedFilesystem(name="nfs", disk_bw=100 * MB10)
        cluster = Cluster(num_nodes=2, filesystems=[fs])

        def writer(proc):
            yield Segment(
                work=10.0, cpu=0.1, io=IODemand(fs="nfs", write_bw=80 * MB10)
            )

        p = cluster.spawn("w", writer, node=0, core=0)
        cluster.spawn(
            "rival",
            hog(cpu=0.1, io=IODemand(fs="nfs", write_bw=80 * MB10)),
            node=1,
            core=0,
        )
        cluster.sim.run(until=200)
        # two 80 MB/s writers on a 100 MB/s disk -> each gets 50
        assert p.runtime == pytest.approx(16.0, rel=0.02)
        assert cluster.node(0).counters["io_write_bytes"] > 0
