"""Machine spec topology arithmetic and presets."""

import pytest

from repro.cluster.specs import CacheSpec, MachineSpec
from repro.errors import ConfigError
from repro.units import GB, KB, MB


class TestCacheSpec:
    def test_defaults_are_haswell(self):
        cache = CacheSpec()
        assert cache.l1 == 32 * KB
        assert cache.l2 == 256 * KB
        assert cache.l3 == 40 * MB

    def test_size_lookup(self):
        cache = CacheSpec()
        assert cache.size("L1") == cache.l1
        assert cache.size("L3") == cache.l3
        with pytest.raises(ConfigError):
            cache.size("L4")

    def test_ordering_enforced(self):
        with pytest.raises(ConfigError):
            CacheSpec(l1=1 * MB, l2=256 * KB)


class TestVoltrinoTopology:
    SPEC = MachineSpec.voltrino()

    def test_core_counts(self):
        assert self.SPEC.physical_cores == 32
        assert self.SPEC.logical_cores == 64

    def test_socket_mapping(self):
        assert self.SPEC.socket_of(0) == 0
        assert self.SPEC.socket_of(15) == 0
        assert self.SPEC.socket_of(16) == 1
        assert self.SPEC.socket_of(31) == 1
        # hyperthreads live on the same socket as their sibling
        assert self.SPEC.socket_of(32) == 0
        assert self.SPEC.socket_of(63) == 1

    def test_sibling_mapping_is_symmetric(self):
        for core in (0, 7, 31, 40, 63):
            sib = self.SPEC.sibling_of(core)
            assert sib is not None
            assert self.SPEC.sibling_of(sib) == core
            assert self.SPEC.physical_core_of(sib) == self.SPEC.physical_core_of(core)

    def test_out_of_range_core(self):
        with pytest.raises(ConfigError):
            self.SPEC.socket_of(64)
        with pytest.raises(ConfigError):
            self.SPEC.socket_of(-1)

    def test_memory(self):
        assert self.SPEC.mem_bytes == 125 * GB


class TestPresets:
    def test_chameleon_differs(self):
        cc = MachineSpec.chameleon()
        assert cc.cores_per_socket == 12
        assert cc.cache.l3 == 30 * MB
        assert cc.miss_amplification > 1.0

    def test_knl_partition(self):
        knl = MachineSpec.voltrino_knl()
        assert knl.cores_per_socket == 68
        assert knl.sockets == 1

    def test_no_smt_spec(self):
        spec = MachineSpec(smt=1)
        assert spec.sibling_of(0) is None
        assert spec.logical_cores == spec.physical_cores

    def test_with_overrides(self):
        spec = MachineSpec.voltrino().with_overrides(mem_bw_per_socket=1.0e9)
        assert spec.mem_bw_per_socket == 1.0e9
        assert spec.cores_per_socket == 16

    def test_validation(self):
        with pytest.raises(ConfigError):
            MachineSpec(sockets=0)
        with pytest.raises(ConfigError):
            MachineSpec(smt=3)
        with pytest.raises(ConfigError):
            MachineSpec(smt_throughput=2.5)
        with pytest.raises(ConfigError):
            MachineSpec(cache_miss_cascade=(1.0, 1.0))
