"""Cluster container: construction, lookup, spawn wiring, OOM kill."""

import math

import pytest

from repro.cluster import Cluster, MachineSpec
from repro.errors import ConfigError
from repro.sim.process import ProcessState, Segment
from repro.units import GB


class TestConstruction:
    def test_nodes_are_named_sequentially(self):
        cluster = Cluster(num_nodes=3)
        assert cluster.node_names == ["node0", "node1", "node2"]

    def test_node_lookup_by_index_and_name(self):
        cluster = Cluster(num_nodes=2)
        assert cluster.node(0) is cluster.node("node0")
        with pytest.raises(ConfigError):
            cluster.node(9)

    def test_topology_must_cover_nodes(self):
        from repro.network.topology import star

        with pytest.raises(ConfigError):
            Cluster(num_nodes=10, topology=star(num_nodes=2))

    def test_voltrino_preset(self):
        cluster = Cluster.voltrino(num_nodes=8)
        assert cluster.spec.name == "voltrino"
        assert cluster.topology is not None
        assert len(cluster.topology.compute_nodes) >= 8

    def test_chameleon_preset_has_nfs(self):
        cluster = Cluster.chameleon(num_nodes=4)
        assert cluster.filesystem("nfs").name == "nfs"
        with pytest.raises(ConfigError):
            cluster.filesystem("lustre")

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigError):
            Cluster(num_nodes=0)


class TestSpawn:
    def test_spawn_validates_core(self):
        cluster = Cluster(num_nodes=1)
        with pytest.raises(ConfigError):
            cluster.spawn("p", lambda proc: iter(()), node=0, core=999)

    def test_spawned_process_runs(self):
        cluster = Cluster(num_nodes=1)

        def body(proc):
            yield Segment(work=2.0)

        p = cluster.spawn("p", body, node=0, core=0)
        cluster.sim.run()
        assert p.state is ProcessState.DONE
        assert p.runtime == pytest.approx(2.0)


class TestOOMIntegration:
    def test_oom_kills_largest_process(self):
        cluster = Cluster(num_nodes=1)
        ledger = cluster.node(0).memory

        def hog(proc):
            ledger.alloc(proc.pid, 100 * GB)
            yield Segment(work=math.inf)

        def late_alloc(proc):
            yield Segment(work=1.0)
            ledger.alloc(proc.pid, 50 * GB)
            yield Segment(work=1.0)

        big = cluster.spawn("hog", hog, node=0, core=0)
        small = cluster.spawn("late", late_alloc, node=0, core=1)
        cluster.sim.run(until=10.0)
        assert big.state is ProcessState.KILLED
        assert big.exit_reason == "oom-killed"
        assert small.state is ProcessState.DONE
        # the hog's memory was released
        assert ledger.held_by(big.pid) == 0.0

    def test_memory_released_on_normal_exit(self):
        cluster = Cluster(num_nodes=1)
        ledger = cluster.node(0).memory

        def body(proc):
            ledger.alloc(proc.pid, 10 * GB)
            yield Segment(work=1.0)

        p = cluster.spawn("p", body, node=0, core=0)
        cluster.sim.run()
        assert p.state is ProcessState.DONE
        assert ledger.held_by(p.pid) == 0.0
        assert ledger.free == ledger.capacity - ledger.baseline
