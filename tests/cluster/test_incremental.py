"""Incremental resolution must be invisible: same numbers, less work.

The scenario mixes every contended subsystem — CPU time-sharing, memory
bandwidth, network flows and a shared filesystem — and asserts that the
incremental resolver (node-solve reuse, stage-signature skips, flow-solve
memoization) produces *exactly* the results of from-scratch resolution,
while its reuse counters prove it actually avoided work.
"""

import pytest

from repro.apps import AppJob, IORBenchmark, get_app
from repro.cluster import Cluster
from repro.core import CpuOccupy, IOBandwidth, MemBw, NetOccupy
from repro.monitoring import MetricService
from repro.units import MB10


def _run_mixed_scenario(incremental: bool):
    """CPU + membw + network + storage contention on a Chameleon cluster."""
    cluster = Cluster.chameleon(num_nodes=6)
    cluster.model.incremental = incremental
    service = MetricService(cluster)
    service.attach(end=100_000)

    app = get_app("miniMD").scaled(iterations=8)
    job = AppJob(app, cluster, nodes=[0, 1], ranks_per_node=4, seed=3)
    job.launch()

    CpuOccupy(utilization=100).launch(cluster, "node0", core=0)
    MemBw().launch(cluster, "node0", core=4)
    NetOccupy.launch_pair(cluster, src="node1", dst="node3", ranks=2)
    ior = IORBenchmark(file_bytes=200 * MB10, access_files=200)
    ior.launch(cluster, node="node4", start=2.0)
    IOBandwidth().launch(cluster, "node2", core=0)

    runtime = job.run(timeout=100_000)
    cluster.sim.run(until=cluster.sim.now + 500.0)
    service.detach()

    fingerprint = {
        "app_runtime": runtime,
        "ior": ior.phase_bandwidth(),
        "end_times": tuple(p.end_time for p in cluster.sim.processes),
        "counters": tuple(
            tuple(sorted(p.counters.items())) for p in cluster.sim.processes
        ),
        "node0_series": service.matrix("node0").tobytes(),
    }
    return fingerprint, dict(cluster.sim.stats.as_dict())


@pytest.fixture(scope="module")
def runs():
    full, _ = _run_mixed_scenario(incremental=False)
    incr, stats = _run_mixed_scenario(incremental=True)
    return full, incr, stats


class TestEquivalence:
    def test_app_runtime_identical(self, runs):
        full, incr, _ = runs
        assert incr["app_runtime"] == full["app_runtime"]

    def test_ior_bandwidths_identical(self, runs):
        full, incr, _ = runs
        assert incr["ior"] == full["ior"]

    def test_process_end_times_identical(self, runs):
        full, incr, _ = runs
        assert incr["end_times"] == full["end_times"]

    def test_usage_counters_identical(self, runs):
        full, incr, _ = runs
        assert incr["counters"] == full["counters"]

    def test_monitoring_series_byte_identical(self, runs):
        full, incr, _ = runs
        assert incr["node0_series"] == full["node0_series"]


class TestWorkAvoidance:
    def test_nodes_were_reused(self, runs):
        _, _, stats = runs
        assert stats["nodes_reused"] > 0
        assert stats["nodes_solved"] > 0

    def test_flow_solves_were_memoized(self, runs):
        _, _, stats = runs
        # The object backend memoizes inside FlowSolver.solve
        # (flow_memo_hits); the array backend's network-stage memo
        # absorbs recurring signatures before the solver is reached
        # (network_memo_hits).  Either way, repeat traffic must hit.
        hits = stats.get("flow_memo_hits", 0) + stats.get("network_memo_hits", 0)
        assert hits > 0

    def test_reschedules_were_skipped(self, runs):
        _, _, stats = runs
        assert stats["reschedules_skipped"] > 0

    def test_storage_stage_was_skipped_sometimes(self, runs):
        _, _, stats = runs
        assert stats.get("storage_stage_skips", 0) > 0

    def test_network_stage_skipped_for_disjoint_changes(self):
        # A CPU-only change on node6 leaves the flow signature untouched,
        # so the network stage is replayed from cache, not re-solved.
        cluster = Cluster.voltrino(num_nodes=8)
        NetOccupy.launch_pair(cluster, src="node0", dst="node4", ranks=2)
        CpuOccupy(utilization=70, duration=50).launch(cluster, "node6", core=0)
        cluster.sim.run(until=100)
        assert cluster.sim.stats.counters["network_stage_skips"] > 0


class TestForcedFullResolve:
    def test_external_dirty_poke_forces_full_resolve(self):
        # Setting sim._dirty without naming pids (the tracing/test idiom)
        # must trigger a from-scratch resolve, not a stale cache replay.
        cluster = Cluster.chameleon(num_nodes=2)
        sim = cluster.sim
        CpuOccupy(utilization=100, duration=5.0).launch(cluster, "node0", core=0)
        sim.run(until=1.0)
        before = sim.stats.counters.get("full_resolves", 0)
        sim._dirty = True
        sim.schedule(1.5, lambda: None)  # the loop re-checks dirtiness per event
        sim.run(until=2.0)
        assert sim.stats.counters["full_resolves"] > before
