"""Load-balancer assignment logic (no simulation needed)."""

import pytest

from repro.errors import ConfigError
from repro.runtime.loadbalancers import GreedyRefineLB, LBObjOnly, WorkObject


def objects(n, load=1.0):
    return [WorkObject(oid=i, load=load) for i in range(n)]


class TestWorkObject:
    def test_positive_load_required(self):
        with pytest.raises(ConfigError):
            WorkObject(oid=0, load=0.0)


class TestLBObjOnly:
    def test_even_spread(self):
        assignment = LBObjOnly().assign(objects(8), [0, 1, 2, 3], {})
        sizes = sorted(len(v) for v in assignment.values())
        assert sizes == [2, 2, 2, 2]

    def test_every_object_placed_once(self):
        assignment = LBObjOnly().assign(objects(10), [0, 1, 2], {})
        placed = [o.oid for objs in assignment.values() for o in objs]
        assert sorted(placed) == list(range(10))

    def test_ignores_core_speeds(self):
        slow_speeds = {0: 0.1}
        a = LBObjOnly().assign(objects(8), [0, 1, 2, 3], {})
        b = LBObjOnly().assign(objects(8), [0, 1, 2, 3], slow_speeds)
        assert {c: len(v) for c, v in a.items()} == {c: len(v) for c, v in b.items()}

    def test_heterogeneous_loads_lpt(self):
        objs = [WorkObject(0, 4.0), WorkObject(1, 1.0), WorkObject(2, 1.0),
                WorkObject(3, 1.0), WorkObject(4, 1.0)]
        assignment = LBObjOnly().assign(objs, [0, 1], {})
        loads = sorted(sum(o.load for o in v) for v in assignment.values())
        assert loads == [4.0, 4.0]

    def test_empty_cores_rejected(self):
        with pytest.raises(ConfigError):
            LBObjOnly().assign(objects(2), [], {})


class TestGreedyRefine:
    def test_avoids_slow_cores_with_fine_objects(self):
        speeds = {0: 0.4, 1: 1.0, 2: 1.0, 3: 1.0}
        assignment = GreedyRefineLB().assign(objects(40, load=0.1), [0, 1, 2, 3], speeds)
        slow_count = len(assignment[0])
        fast_counts = [len(assignment[c]) for c in (1, 2, 3)]
        assert slow_count < min(fast_counts)

    def test_balances_predicted_finish_times(self):
        speeds = {0: 0.5, 1: 1.0}
        assignment = GreedyRefineLB().assign(objects(30, load=0.1), [0, 1], speeds)
        t0 = sum(o.load for o in assignment[0]) / 0.5
        t1 = sum(o.load for o in assignment[1]) / 1.0
        assert t0 == pytest.approx(t1, rel=0.25)

    def test_unmeasured_cores_assumed_nominal(self):
        assignment = GreedyRefineLB().assign(objects(8), [0, 1, 2, 3], {})
        sizes = sorted(len(v) for v in assignment.values())
        assert sizes == [2, 2, 2, 2]

    def test_min_speed_floor(self):
        # a dead-slow core still gets considered (never written off fully)
        speeds = {0: 1e-9, 1: 1.0}
        assignment = GreedyRefineLB().assign(objects(100, load=0.01), [0, 1], speeds)
        assert len(assignment[0]) >= 0  # no crash; bounded by floor
        assert len(assignment[1]) > len(assignment[0])
