"""Charm-style runtime on the simulator."""

import pytest

from repro.cluster import Cluster
from repro.core import CpuOccupy
from repro.errors import ConfigError
from repro.runtime import CharmRuntime, GreedyRefineLB, LBObjOnly, WorkObject


def make_runtime(balancer, cluster=None, cores=8, n_objects=16, iterations=4):
    cluster = cluster if cluster is not None else Cluster(num_nodes=1)
    objects = [WorkObject(oid=i, load=0.05) for i in range(n_objects)]
    return cluster, CharmRuntime(
        cluster, "node0", list(range(cores)), objects, balancer, iterations=iterations
    )


class TestExecution:
    def test_runs_all_iterations(self):
        _, runtime = make_runtime(LBObjOnly())
        stats = runtime.run(timeout=600)
        assert len(stats) == 4
        assert [s.index for s in stats] == [0, 1, 2, 3]

    def test_iteration_time_near_nominal_when_clean(self):
        _, runtime = make_runtime(LBObjOnly())
        runtime.run(timeout=600)
        # 16 objects x 0.05 s over 8 cores = 0.1 s/iter at full speed
        assert runtime.mean_iteration_time() == pytest.approx(0.1, rel=0.1)

    def test_assignment_sizes_recorded(self):
        _, runtime = make_runtime(LBObjOnly())
        stats = runtime.run(timeout=600)
        assert sum(stats[0].assignment_sizes.values()) == 16

    def test_stats_require_run(self):
        _, runtime = make_runtime(LBObjOnly())
        with pytest.raises(ConfigError):
            runtime.mean_iteration_time()

    def test_validation(self):
        cluster = Cluster(num_nodes=1)
        with pytest.raises(ConfigError):
            CharmRuntime(cluster, "node0", [], [WorkObject(0, 1.0)], LBObjOnly())
        with pytest.raises(ConfigError):
            CharmRuntime(cluster, "node0", [0], [], LBObjOnly())


class TestAnomalyResponse:
    def test_greedy_beats_objonly_under_partial_occupancy(self):
        def run(balancer):
            cluster = Cluster(num_nodes=1)
            for core in (0, 1):
                CpuOccupy(utilization=100).launch(cluster, "node0", core=core)
            _, runtime = make_runtime(
                balancer, cluster=cluster, cores=8, n_objects=24, iterations=6
            )
            runtime.run(timeout=600)
            return runtime.mean_iteration_time(skip=2)

        assert run(GreedyRefineLB()) < 0.9 * run(LBObjOnly())

    def test_speed_measurements_reflect_anomaly(self):
        cluster = Cluster(num_nodes=1)
        CpuOccupy(utilization=100).launch(cluster, "node0", core=0)
        _, runtime = make_runtime(LBObjOnly(), cluster=cluster, iterations=3)
        runtime.run(timeout=600)
        assert runtime._speeds[0] < 0.7  # the occupied core measured slow
        assert runtime._speeds[1] > 0.8
