"""Charm runtime edge cases."""

import pytest

from repro.cluster import Cluster
from repro.errors import ConfigError
from repro.runtime import CharmRuntime, GreedyRefineLB, LBObjOnly, WorkObject


def test_more_cores_than_objects_leaves_cores_idle():
    cluster = Cluster(num_nodes=1)
    objects = [WorkObject(oid=i, load=0.1) for i in range(3)]
    runtime = CharmRuntime(
        cluster, "node0", list(range(8)), objects, LBObjOnly(), iterations=2
    )
    stats = runtime.run(timeout=100)
    # only 3 cores carried work each iteration
    loaded = [n for n in stats[0].assignment_sizes.values() if n > 0]
    assert len(loaded) == 3
    assert runtime.mean_iteration_time() == pytest.approx(0.1, rel=0.05)


def test_single_core_serialises_all_objects():
    cluster = Cluster(num_nodes=1)
    objects = [WorkObject(oid=i, load=0.05) for i in range(10)]
    runtime = CharmRuntime(
        cluster, "node0", [0], objects, GreedyRefineLB(), iterations=2
    )
    runtime.run(timeout=100)
    assert runtime.mean_iteration_time() == pytest.approx(0.5, rel=0.05)


def test_mean_iteration_time_skip_larger_than_stats():
    cluster = Cluster(num_nodes=1)
    objects = [WorkObject(oid=0, load=0.1)]
    runtime = CharmRuntime(
        cluster, "node0", [0], objects, LBObjOnly(), iterations=2
    )
    runtime.run(timeout=100)
    # skip >= len(stats) falls back to all iterations instead of crashing
    assert runtime.mean_iteration_time(skip=10) > 0


def test_stats_assignment_conservation():
    cluster = Cluster(num_nodes=1)
    objects = [WorkObject(oid=i, load=0.05) for i in range(12)]
    runtime = CharmRuntime(
        cluster, "node0", list(range(4)), objects, LBObjOnly(), iterations=3
    )
    stats = runtime.run(timeout=100)
    for s in stats:
        assert sum(s.assignment_sizes.values()) == 12


def test_invalid_iterations():
    cluster = Cluster(num_nodes=1)
    with pytest.raises(ConfigError):
        CharmRuntime(
            cluster, "node0", [0], [WorkObject(0, 1.0)], LBObjOnly(), iterations=0
        )
