"""Fig. 13: 3D stencil under cpuoccupy with two Charm++ load balancers.

One node, 32 worker cores, a stencil decomposed into 96 migratable
objects.  cpuoccupy's total intensity sweeps 0..3200% of one CPU (i.e.
0..32 fully-occupied cores).  LBObjOnly ignores core capacity and pays the
slowest core's price as soon as any core is occupied; GreedyRefineLB
measures capacity and steers objects away until so many cores are occupied
that avoidance no longer pays.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import Cluster
from repro.core import CpuOccupy
from repro.experiments.common import format_table
from repro.runtime import CharmRuntime, GreedyRefineLB, LBObjOnly, WorkObject
from repro.units import HOUR


@dataclass
class Fig13Result:
    utilizations: list[int]  # percent of one CPU (0..3200)
    time_per_iter: dict[str, list[float]]  # balancer -> series

    def render(self) -> str:
        rows = []
        for i, pct in enumerate(self.utilizations):
            rows.append(
                (
                    pct,
                    self.time_per_iter["LBObjOnly"][i],
                    self.time_per_iter["GreedyRefineLB"][i],
                )
            )
        return format_table(
            ["cpuoccupy %", "LBObjOnly s/iter", "GreedyRefineLB s/iter"],
            rows,
            title="Fig 13: 3D stencil time per iteration vs cpuoccupy",
        )


def _one(balancer, occupied_pct: int, n_objects: int, iterations: int) -> float:
    cluster = Cluster(num_nodes=1)
    cores = list(range(32))  # one logical core per physical core
    load = 3.2 / n_objects  # 3.2 core-seconds of stencil work per iteration
    objects = [WorkObject(oid=i, load=load) for i in range(n_objects)]
    full, remainder = divmod(occupied_pct, 100)
    for core in range(min(full, 32)):
        CpuOccupy(utilization=100).launch(cluster, "node0", core=core)
    if remainder and full < 32:
        CpuOccupy(utilization=remainder).launch(cluster, "node0", core=full)
    runtime = CharmRuntime(
        cluster, "node0", cores, objects, balancer, iterations=iterations
    )
    runtime.run(timeout=HOUR)
    return runtime.mean_iteration_time(skip=2)


def run_fig13(
    utilizations: tuple[int, ...] = (
        0, 100, 200, 400, 600, 800, 1000, 1200, 1400, 1600,
        2000, 2400, 2800, 3200,
    ),
    n_objects: int = 96,
    iterations: int = 10,
) -> Fig13Result:
    """Mean time/iteration for both balancers across the intensity sweep."""
    series: dict[str, list[float]] = {"LBObjOnly": [], "GreedyRefineLB": []}
    for pct in utilizations:
        series["LBObjOnly"].append(_one(LBObjOnly(), pct, n_objects, iterations))
        series["GreedyRefineLB"].append(
            _one(GreedyRefineLB(), pct, n_objects, iterations)
        )
    return Fig13Result(utilizations=list(utilizations), time_per_iter=series)
