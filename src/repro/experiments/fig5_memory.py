"""Fig. 5: memory usage over time for memleak and memeater.

memeater ramps to its full footprint almost immediately and holds it flat;
memleak climbs in a staircase for its whole duration.  Both release their
memory when the configured duration elapses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import Cluster
from repro.core import MemEater, MemLeak
from repro.experiments.common import format_table
from repro.monitoring import MetricService


@dataclass
class Fig5Result:
    times: np.ndarray
    usage_gb: dict[str, np.ndarray]  # anomaly -> MemUsed series (GB)

    def render(self) -> str:
        marks = [int(t) for t in (5, 60, 150, 300, 440, 480) if t < self.times.size]
        rows = []
        for name, series in self.usage_gb.items():
            rows.append([name] + [f"{series[m]:.2f}" for m in marks])
        return format_table(
            ["anomaly"] + [f"t={m}s" for m in marks],
            rows,
            title="Fig 5: memory usage over time (GB)",
        )


def run_fig5(duration: float = 450.0, horizon: float = 520.0) -> Fig5Result:
    """Record MemUsed time series for each memory anomaly."""
    usage: dict[str, np.ndarray] = {}
    times = None
    for name, anomaly in (
        ("memleak", MemLeak(duration=duration)),
        ("memeater", MemEater(duration=duration)),
    ):
        cluster = Cluster(num_nodes=1)
        service = MetricService(cluster)
        service.attach(end=horizon)
        anomaly.launch(cluster, "node0", core=0, start=10.0)
        cluster.sim.run(until=horizon)
        usage[name] = service.series("node0", "MemUsed::meminfo") / 1e9
        times = service.timestamps()
    assert times is not None
    return Fig5Result(times=times, usage_gb=usage)
