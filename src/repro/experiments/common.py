"""Shared helpers for experiment modules."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render a fixed-width text table (the harness's printed output)."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
