"""Shared helpers for experiment modules."""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.injector import AnomalyInjector
    from repro.monitoring.service import MetricService
    from repro.sim.stats import SimStats


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render a fixed-width text table (the harness's printed output)."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def write_result_manifest(
    directory: str | Path,
    name: str,
    results_text: str,
    seed: int | None = None,
    config: Mapping[str, object] | None = None,
    stats: "SimStats | None" = None,
    injector: "AnomalyInjector | None" = None,
    service: "MetricService | None" = None,
) -> Path:
    """Write ``<directory>/<name>.manifest.json`` next to a results table.

    The manifest (see :mod:`repro.obs.manifest`) records the provenance of
    the rendered artefact — seed, config, injection labels, deterministic
    counters and a checksum of the table text — and is byte-identical
    across same-seed reruns.
    """
    from repro.obs.manifest import build_manifest, write_manifest

    manifest = build_manifest(
        name=name,
        seed=seed,
        config=config,
        stats=stats,
        injector=injector,
        service=service,
        results_text=results_text,
    )
    return write_manifest(Path(directory) / f"{name}.manifest.json", manifest)
