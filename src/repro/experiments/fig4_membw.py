"""Fig. 4: membw / cachecopy effect on STREAM memory bandwidth.

STREAM runs on core 0 while anomaly instances occupy the socket's other
cores (1x/3x/7x/15x membw, or 15x cachecopy).  membw slashes the
available bandwidth; cachecopy — despite using 15 cores — leaves it
essentially untouched, because its traffic stays inside the caches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import StreamBenchmark
from repro.cluster import Cluster
from repro.core import CacheCopy, MemBw
from repro.experiments.common import format_table


@dataclass
class Fig4Result:
    labels: list[str]
    best_rate_gbps: list[float]

    def render(self) -> str:
        return format_table(
            ["anomaly", "STREAM best rate (GB/s)"],
            zip(self.labels, self.best_rate_gbps),
            title="Fig 4: membw and cachecopy vs STREAM bandwidth (Voltrino)",
        )


def _one(n_membw: int, n_cachecopy: int) -> float:
    cluster = Cluster(num_nodes=1)
    stream = StreamBenchmark()
    stream.launch(cluster, "node0", core=0)
    # Anomalies go on the socket's other cores (cores 1..15 share
    # socket 0 with STREAM on the Voltrino spec).
    for i in range(n_membw):
        MemBw().launch(cluster, "node0", core=1 + i)
    for i in range(n_cachecopy):
        CacheCopy(cache="L2").launch(cluster, "node0", core=1 + i)
    cluster.sim.run(until=500)
    return stream.best_rate() / 1e9


def run_fig4(counts: tuple[int, ...] = (0, 1, 3, 7, 15)) -> Fig4Result:
    """STREAM best rate under each anomaly configuration."""
    labels, rates = [], []
    for n in counts:
        labels.append("none" if n == 0 else f"membw {n}x")
        rates.append(_one(n_membw=n, n_cachecopy=0))
    labels.append("cachecopy 15x")
    rates.append(_one(n_membw=0, n_cachecopy=15))
    return Fig4Result(labels=labels, best_rate_gbps=rates)
