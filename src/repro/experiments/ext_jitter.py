"""Extension: OS-jitter amplification at scale.

The paper (Sec. 3.1) notes cpuoccupy at low intensity "can emulate OS
jitter".  Classic results (Hoefler et al., cited as [19]) show jitter's
cost is amplified by bulk-synchronous applications as node counts grow:
every barrier waits for the unluckiest rank.  This extension runs a BSP
application at several scales with low-intensity, randomly-phased
cpuoccupy "daemons" on every core and reports the slowdown versus a clean
run — the amplification curve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import AppJob, get_app
from repro.cluster import Cluster
from repro.core import CpuOccupy
from repro.experiments.common import format_table
from repro.sim.rng import spawn_rng


@dataclass
class JitterResult:
    node_counts: list[int]
    clean: list[float]
    jittered: list[float]

    @property
    def slowdowns(self) -> list[float]:
        return [j / c for c, j in zip(self.clean, self.jittered)]

    def render(self) -> str:
        rows = [
            (n, c, j, j / c)
            for n, c, j in zip(self.node_counts, self.clean, self.jittered)
        ]
        return format_table(
            ["nodes", "clean (s)", "jittered (s)", "slowdown"],
            rows,
            title="Extension: OS-jitter amplification with scale",
        )


def _run(nodes: int, bursty: bool, iterations: int, seed: int) -> float:
    cluster = Cluster.voltrino(num_nodes=max(nodes, 4))
    app = get_app("CoMD").scaled(iterations=iterations, jitter=0.0)
    job = AppJob(
        app,
        cluster,
        nodes=list(range(nodes)),
        ranks_per_node=4,
        seed=seed,
    )
    job.launch()
    if bursty:
        # OS daemons: short 100% bursts at random times on random rank
        # cores.  Uncorrelated across nodes, so as the job widens, every
        # barrier is more likely to catch *some* rank mid-burst — the
        # classic jitter-amplification mechanism.
        rng = spawn_rng(seed, "jitter-daemons")
        horizon = app.profile.nominal_runtime * 1.6
        for node in range(nodes):
            for core in range(4):  # the cores the ranks occupy
                t = float(rng.uniform(0.0, 3.0))
                while t < horizon:
                    CpuOccupy(utilization=100.0, duration=0.3).launch(
                        cluster, f"node{node}", core=core, start=t
                    )
                    t += float(rng.exponential(4.0)) + 0.3
    return job.run(timeout=1e7)


def run_ext_jitter(
    node_counts: tuple[int, ...] = (1, 2, 4, 8),
    iterations: int = 15,
    seed: int = 3,
) -> JitterResult:
    """Clean vs jittered runtimes across node counts."""
    clean, jittered = [], []
    for nodes in node_counts:
        clean.append(_run(nodes, False, iterations, seed))
        jittered.append(_run(nodes, True, iterations, seed))
    return JitterResult(
        node_counts=list(node_counts), clean=clean, jittered=jittered
    )
