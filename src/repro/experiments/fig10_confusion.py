"""Fig. 10: random-forest confusion matrix for anomaly diagnosis.

Row-normalised over true labels; the paper's matrix is strongly diagonal
with the residual confusion concentrated among cpuoccupy, membw and
cachecopy (the three anomalies that look alike without a direct memory-
bandwidth metric in the monitoring data).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import format_table
from repro.experiments.fig9_f1 import Fig9Result, run_fig9


@dataclass
class Fig10Result:
    labels: list[str]
    matrix: np.ndarray  # row-normalised

    def render(self) -> str:
        rows = []
        for i, label in enumerate(self.labels):
            rows.append([label] + [f"{v:.2f}" for v in self.matrix[i]])
        return format_table(
            ["true \\ predicted"] + list(self.labels),
            rows,
            title="Fig 10: RandomForest confusion matrix (row-normalised)",
        )

    @property
    def diagonal_mean(self) -> float:
        return float(np.mean(np.diag(self.matrix)))


def run_fig10(
    fig9: Fig9Result | None = None,
    iterations: int = 45,
    window: int = 30,
    stride: int | None = 15,
    seed: int = 0,
) -> Fig10Result:
    """Extract the random-forest confusion matrix (reusing Fig 9 data)."""
    if fig9 is None:
        fig9 = run_fig9(iterations=iterations, window=window, stride=stride, seed=seed)
    report = fig9.reports["RandomForest"]
    return Fig10Result(labels=list(report.labels), matrix=report.confusion)
