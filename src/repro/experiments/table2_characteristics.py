"""Table 2: benchmark application characterisation.

Runs each application clean (no anomalies) and classifies it from the
collected metrics, exactly the way the paper does: CPU-intensiveness from
``INST_RETIRED:ANY::spapiHASW`` (IPS), memory-intensiveness from
``L2_RQSTS:MISS::spapiHASW``, network-intensiveness from the Aries NIC
request-flit counter.  The derived flags are compared against the paper's
Table 2 rows (stored on each profile).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps import AppJob, get_app
from repro.apps.registry import APP_REGISTRY
from repro.cluster import Cluster
from repro.experiments.common import format_table
from repro.monitoring import MetricService

#: classification thresholds on node-mean rates (4 ranks per node):
#: CPU apps retire ~2e9+ inst/s per rank; memory apps sustain L2 demand
#: misses proportional to their bandwidth; network apps ship MB-scale
#: halos every iteration
IPS_THRESHOLD = 3.0e9
L2_MISS_THRESHOLD = 4.0e7
FLIT_THRESHOLD = 2.5e5


@dataclass
class Table2Row:
    app: str
    ips: float
    l2_miss_rate: float
    flit_rate: float
    cpu_intensive: bool
    mem_intensive: bool
    net_intensive: bool
    expected: tuple[bool, bool, bool]

    @property
    def matches_paper(self) -> bool:
        return (
            self.cpu_intensive,
            self.mem_intensive,
            self.net_intensive,
        ) == self.expected


@dataclass
class Table2Result:
    rows: list[Table2Row]

    def render(self) -> str:
        table = [
            (
                r.app,
                f"{r.ips:.3g}",
                f"{r.l2_miss_rate:.3g}",
                f"{r.flit_rate:.3g}",
                "CPU" * r.cpu_intensive + " Mem" * r.mem_intensive + " Net" * r.net_intensive,
                "ok" if r.matches_paper else "MISMATCH",
            )
            for r in self.rows
        ]
        return format_table(
            ["app", "IPS", "L2 miss/s", "NIC flits/s", "classes", "vs paper"],
            table,
            title="Table 2: application characteristics (measured)",
        )


def run_table2(iterations: int = 15, ranks_per_node: int = 4) -> Table2Result:
    """Characterise every registered application from clean-run metrics."""
    rows = []
    for name, profile in sorted(APP_REGISTRY.items(), key=lambda kv: kv[0].lower()):
        cluster = Cluster.voltrino(num_nodes=4)
        service = MetricService(cluster)
        service.attach(end=10_000)
        app = get_app(name).scaled(iterations=iterations)
        job = AppJob(app, cluster, nodes=[0, 1, 2, 3], ranks_per_node=ranks_per_node, seed=11)
        job.launch()
        job.run(timeout=10_000)
        service.detach()
        ips = float(np.mean(service.series("node0", "INST_RETIRED:ANY::spapiHASW")))
        l2 = float(np.mean(service.series("node0", "L2_RQSTS:MISS::spapiHASW")))
        flits = float(
            np.mean(
                service.series(
                    "node0", "AR_NIC_NETMON_ORB_EVENT_CNTR_REQ_FLITS::aries_nic_mmr"
                )
            )
        )
        rows.append(
            Table2Row(
                app=name,
                ips=ips,
                l2_miss_rate=l2,
                flit_rate=flits,
                cpu_intensive=ips > IPS_THRESHOLD,
                mem_intensive=l2 > L2_MISS_THRESHOLD,
                net_intensive=flits > FLIT_THRESHOLD,
                expected=(
                    profile.cpu_intensive,
                    profile.mem_intensive,
                    profile.net_intensive,
                ),
            )
        )
    return Table2Result(rows=rows)
