"""Extension: which monitoring metrics carry the diagnosis signal.

The paper attributes the cpuoccupy/membw/cachecopy confusion to "the lack
of metrics representing memory bandwidth in the monitoring data".  With
the from-scratch random forest exposing impurity-decrease importances, we
can ask the model directly: which metrics (and statistical features) does
it lean on, aggregated per LDMS sampler family?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.forest import RandomForestClassifier
from repro.experiments.common import format_table
from repro.experiments.diagnosis_data import build_dataset, generate_runs

FAMILIES = ("procstat", "meminfo", "vmstat", "spapiHASW", "aries_nic_mmr")


@dataclass
class ImportanceResult:
    top_features: list[tuple[str, float]]
    family_importance: dict[str, float]

    def render(self) -> str:
        rows = [(name, value) for name, value in self.top_features]
        table1 = format_table(
            ["feature", "importance"],
            rows,
            title="Extension: top diagnosis features (random forest)",
        )
        table2 = format_table(
            ["sampler family", "total importance"],
            sorted(self.family_importance.items(), key=lambda kv: -kv[1]),
            title="Aggregated by LDMS sampler family",
        )
        return table1 + "\n\n" + table2


def run_ext_importance(
    iterations: int = 30,
    window: int = 20,
    stride: int | None = 10,
    top_k: int = 10,
    seed: int = 4,
) -> ImportanceResult:
    """Train a forest on the diagnosis dataset and rank its features."""
    runs = generate_runs(iterations=iterations, seed=seed)
    dataset = build_dataset(runs, window=window, stride=stride)
    forest = RandomForestClassifier(n_estimators=40, seed=seed)
    forest.fit(dataset.X, dataset.y)
    importances = forest.feature_importances_
    order = np.argsort(importances)[::-1]
    top = [
        (dataset.feature_names[i], float(importances[i])) for i in order[:top_k]
    ]
    family_importance = {f: 0.0 for f in FAMILIES}
    for name, value in zip(dataset.feature_names, importances):
        for family in FAMILIES:
            if f"::{family}__" in name:
                family_importance[family] += float(value)
                break
    return ImportanceResult(top_features=top, family_importance=family_importance)
