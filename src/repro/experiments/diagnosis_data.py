"""Synthetic training data for the diagnosis experiments (Figs. 9-10).

Mirrors the paper's Sec. 5.1 data collection: every benchmark application
runs with each anomaly class (and without) while LDMS-style monitoring
samples the anomalous node at 1 Hz; the node's time series, labelled with
the injected anomaly, feed the feature extractor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.diagnosis import DIAGNOSIS_CLASSES, DiagnosisDataset
from repro.apps import AppJob, get_app
from repro.cluster import Cluster
from repro.core import CacheCopy, CpuOccupy, MemBw, MemEater, MemLeak
from repro.experiments.fig8_matrix import APPS
from repro.monitoring import MetricService


@dataclass
class MonitoredRun:
    """One labelled monitored run."""

    app: str
    label: str
    series: np.ndarray  # (T, M) node0 matrix
    metrics: list[str]


def _place(cluster: Cluster, label: str) -> None:
    spec = cluster.spec
    if label == "cachecopy":
        sibling = spec.sibling_of(0)
        assert sibling is not None
        CacheCopy(cache="L3").launch(cluster, "node0", core=sibling)
    elif label == "cpuoccupy":
        # Orphan processes land on whatever core is free; node-level
        # monitoring sees extra utilisation and instructions.
        CpuOccupy(utilization=100).launch(cluster, "node0", core=12)
    elif label == "membw":
        for core in (4, 5, 6):
            MemBw().launch(cluster, "node0", core=core)
    elif label == "memeater":
        MemEater().launch(cluster, "node0", core=8)
    elif label == "memleak":
        MemLeak().launch(cluster, "node0", core=8)
    elif label != "none":
        raise ValueError(f"unknown diagnosis label {label!r}")


def generate_runs(
    apps: tuple[str, ...] = APPS,
    labels: tuple[str, ...] = DIAGNOSIS_CLASSES,
    iterations: int = 45,
    ranks_per_node: int = 4,
    noise: float = 0.02,
    seed: int = 0,
    trim: int = 10,
) -> list[MonitoredRun]:
    """Run every (app, anomaly) pair under monitoring; label node0 data.

    ``trim`` samples are dropped from each end of every run's series so
    the labelled windows cover steady state, not job startup/teardown
    (the convention of the diagnosis framework the paper evaluates).
    """
    runs: list[MonitoredRun] = []
    for run_idx, app_name in enumerate(apps):
        for label in labels:
            cluster = Cluster.voltrino(num_nodes=8)
            label_key = sum(ord(c) for c in label)  # stable across processes
            service = MetricService(
                cluster, noise=noise, seed=seed + 1000 * run_idx + label_key
            )
            service.attach(end=100_000)
            app = get_app(app_name).scaled(iterations=iterations)
            job = AppJob(
                app,
                cluster,
                nodes=[0, 1, 2, 3],
                ranks_per_node=ranks_per_node,
                seed=seed + run_idx,
            )
            job.launch()
            _place(cluster, label)
            job.run(timeout=100_000)
            service.detach()
            series = service.matrix("node0")
            if trim > 0 and series.shape[0] > 2 * trim + 1:
                series = series[trim:-trim]
            runs.append(
                MonitoredRun(
                    app=app_name,
                    label=label,
                    series=series,
                    metrics=service.metric_names,
                )
            )
    return runs


def build_dataset(
    runs: list[MonitoredRun], window: int = 45, stride: int | None = None
) -> DiagnosisDataset:
    """Window the monitored runs into a labelled feature dataset."""
    pairs = [(r.series, r.label) for r in runs]
    metrics = runs[0].metrics if runs else []
    return DiagnosisDataset.from_runs(pairs, metrics, window=window, stride=stride)
