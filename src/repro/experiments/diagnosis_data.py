"""Synthetic training data for the diagnosis experiments (Figs. 9-10).

Mirrors the paper's Sec. 5.1 data collection: every benchmark application
runs with each anomaly class (and without) while LDMS-style monitoring
samples the anomalous node at 1 Hz; the node's time series, labelled with
the injected anomaly, feed the feature extractor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.diagnosis import DIAGNOSIS_CLASSES, DiagnosisDataset
from repro.apps import AppJob, get_app
from repro.cluster import Cluster
from repro.core import CacheCopy, CpuOccupy, MemBw, MemEater, MemLeak
from repro.experiments.fig8_matrix import APPS
from repro.monitoring import MetricService
from repro.parallel import run_trials


@dataclass
class MonitoredRun:
    """One labelled monitored run."""

    app: str
    label: str
    series: np.ndarray  # (T, M) node0 matrix
    metrics: list[str]


@dataclass(frozen=True)
class _RunSpec:
    """One (app, label) monitored run's configuration (worker payload)."""

    run_idx: int
    app_name: str
    label: str
    iterations: int
    ranks_per_node: int
    noise: float
    seed: int
    trim: int


def _run_monitored(spec: _RunSpec) -> MonitoredRun:
    """Execute one labelled monitored run; pure in the spec."""
    cluster = Cluster.voltrino(num_nodes=8)
    label_key = sum(ord(c) for c in spec.label)  # stable across processes
    service = MetricService(
        cluster, noise=spec.noise, seed=spec.seed + 1000 * spec.run_idx + label_key
    )
    service.attach(end=100_000)
    app = get_app(spec.app_name).scaled(iterations=spec.iterations)
    job = AppJob(
        app,
        cluster,
        nodes=[0, 1, 2, 3],
        ranks_per_node=spec.ranks_per_node,
        seed=spec.seed + spec.run_idx,
    )
    job.launch()
    _place(cluster, spec.label)
    job.run(timeout=100_000)
    service.detach()
    series = service.matrix("node0")
    if spec.trim > 0 and series.shape[0] > 2 * spec.trim + 1:
        series = series[spec.trim : -spec.trim]
    return MonitoredRun(
        app=spec.app_name,
        label=spec.label,
        series=series,
        metrics=service.metric_names,
    )


def _place(cluster: Cluster, label: str) -> None:
    spec = cluster.spec
    if label == "cachecopy":
        sibling = spec.sibling_of(0)
        assert sibling is not None
        CacheCopy(cache="L3").launch(cluster, "node0", core=sibling)
    elif label == "cpuoccupy":
        # Orphan processes land on whatever core is free; node-level
        # monitoring sees extra utilisation and instructions.
        CpuOccupy(utilization=100).launch(cluster, "node0", core=12)
    elif label == "membw":
        for core in (4, 5, 6):
            MemBw().launch(cluster, "node0", core=core)
    elif label == "memeater":
        MemEater().launch(cluster, "node0", core=8)
    elif label == "memleak":
        MemLeak().launch(cluster, "node0", core=8)
    elif label != "none":
        raise ValueError(f"unknown diagnosis label {label!r}")


def generate_runs(
    apps: tuple[str, ...] = APPS,
    labels: tuple[str, ...] = DIAGNOSIS_CLASSES,
    iterations: int = 45,
    ranks_per_node: int = 4,
    noise: float = 0.02,
    seed: int = 0,
    trim: int = 10,
    jobs: int = 1,
) -> list[MonitoredRun]:
    """Run every (app, anomaly) pair under monitoring; label node0 data.

    ``trim`` samples are dropped from each end of every run's series so
    the labelled windows cover steady state, not job startup/teardown
    (the convention of the diagnosis framework the paper evaluates).

    ``jobs`` distributes the runs over worker processes; every run is a
    pure function of its spec (all seeds are derived from ``seed``, the
    app index, and the label), so the returned list — and any feature
    matrix built from it — is identical for every ``jobs`` value.
    """
    specs = [
        _RunSpec(
            run_idx=run_idx,
            app_name=app_name,
            label=label,
            iterations=iterations,
            ranks_per_node=ranks_per_node,
            noise=noise,
            seed=seed,
            trim=trim,
        )
        for run_idx, app_name in enumerate(apps)
        for label in labels
    ]
    return run_trials(_run_monitored, specs, jobs=jobs)


def build_dataset(
    runs: list[MonitoredRun], window: int = 45, stride: int | None = None
) -> DiagnosisDataset:
    """Window the monitored runs into a labelled feature dataset."""
    pairs = [(r.series, r.label) for r in runs]
    metrics = runs[0].metrics if runs else []
    return DiagnosisDataset.from_runs(pairs, metrics, window=window, stride=stride)
