"""Fig. 2: cpuoccupy intensity vs measured CPU utilisation.

One cpuoccupy instance per logical core at the requested intensity; the
``user::procstat + sys::procstat`` utilisation tracks the knob ~1:1 (plus
the OS-jitter floor), as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import Cluster, MachineSpec
from repro.core import CpuOccupy
from repro.experiments.common import format_table
from repro.monitoring import MetricService


@dataclass
class Fig2Result:
    intensities: list[float]
    utilizations: list[float]  # user + sys, percent of the node

    def render(self) -> str:
        return format_table(
            ["intensity %", "utilization %"],
            zip(self.intensities, self.utilizations),
            title="Fig 2: cpuoccupy intensity vs CPU utilization (Voltrino)",
        )


def run_fig2(
    intensities: tuple[float, ...] = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100),
    duration: float = 30.0,
    machine: str = "voltrino",
) -> Fig2Result:
    """Measure node utilisation for each cpuoccupy intensity."""
    utilizations = []
    for intensity in intensities:
        spec = (
            MachineSpec.voltrino() if machine == "voltrino" else MachineSpec.chameleon()
        )
        cluster = Cluster(num_nodes=1, spec=spec)
        service = MetricService(cluster)
        service.attach(end=duration + 5)
        for core in range(spec.logical_cores):
            CpuOccupy(utilization=intensity, duration=duration).launch(
                cluster, "node0", core=core
            )
        cluster.sim.run(until=duration + 5)
        user = service.series("node0", "user::procstat")
        sys = service.series("node0", "sys::procstat")
        window = slice(2, int(duration) - 2)
        utilizations.append(float(np.mean(user[window] + sys[window])))
    return Fig2Result(intensities=list(intensities), utilizations=utilizations)
