"""Fig. 3: cachecopy working-set size vs miniGhost L3 MPKI.

A single-rank miniGhost shares a physical core (hyperthread siblings) with
one cachecopy instance whose working set is sized to L1, L2, or L3.  As
the working set grows, miniGhost's last-level MPKI rises; Chameleon's
smaller L3 makes it suffer more than Voltrino.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import AppJob, get_app
from repro.cluster import Cluster, MachineSpec
from repro.core import CacheCopy
from repro.experiments.common import format_table

LEVELS = (None, "L1", "L2", "L3")


@dataclass
class Fig3Result:
    machines: list[str]
    mpki: dict[str, dict[str, float]]  # machine -> level-label -> L3 MPKI

    def render(self) -> str:
        rows = []
        for machine in self.machines:
            for level in ("none", "L1", "L2", "L3"):
                rows.append((machine, level, self.mpki[machine][level]))
        return format_table(
            ["machine", "cachecopy WS", "L3 MPKI"],
            rows,
            title="Fig 3: cachecopy working set vs miniGhost L3 MPKI",
        )


def run_fig3(iterations: int = 20, machines: tuple[str, ...] = ("voltrino", "chameleon")) -> Fig3Result:
    """Measure miniGhost L3 MPKI against each cachecopy working-set size."""
    results: dict[str, dict[str, float]] = {}
    for machine in machines:
        spec = (
            MachineSpec.voltrino() if machine == "voltrino" else MachineSpec.chameleon()
        )
        per_level: dict[str, float] = {}
        for level in LEVELS:
            cluster = Cluster(num_nodes=1, spec=spec)
            app = get_app("miniGhost").scaled(iterations=iterations)
            job = AppJob(app, cluster, nodes=["node0"], ranks_per_node=1, seed=7)
            job.launch()
            if level is not None:
                sibling = spec.sibling_of(0)
                assert sibling is not None
                CacheCopy(cache=level).launch(cluster, "node0", core=sibling)
            job.run(timeout=10_000)
            rank = job.procs[0]
            per_level["none" if level is None else level] = (
                rank.counters["l3_misses"] / rank.counters["instructions"] * 1000.0
            )
        results[machine] = per_level
    return Fig3Result(machines=list(machines), mpki=results)
