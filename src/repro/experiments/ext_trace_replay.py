"""Extension: trace-driven workload replay as a registry experiment.

``repro experiment trace_replay`` runs a :mod:`repro.traces` workload —
a seeded synthetic generator pattern by default, or any trace file via
``--set trace=path/to.jsonl`` — through :class:`TraceReplayApp` and
reports the replayed workload shape plus the replay fingerprint digest.

Determinism contract: the rendered table depends only on the trace bytes
(which a generator derives purely from ``(seed, ranks, steps)``), never
on the simulation backend — the ``trace_replay`` differential oracle
pins object/array fingerprint identity, so the digest column is
backend-invariant and CI can ``repro diff`` run dirs across backends.

Cache semantics: the spec's canonicalize hook folds a ``trace=`` file
into its content hash (``trace_sha256`` joins the semantic overrides,
the local path moves to the non-fingerprinted extras), so two submits of
the same trace bytes from different paths are one cached simulation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import TraceError
from repro.experiments.common import format_table
from repro.traces.generators import generate_trace
from repro.traces.replay import TraceReplayApp, build_replay_cluster
from repro.traces.schema import RECORD_KINDS, Trace, load_trace


@dataclass
class TraceReplayResult:
    trace_name: str
    machine: str
    sha256: str
    makespan: float
    fingerprint_sha256: str
    rows: list[tuple[object, ...]]  # (rank, node, *per-kind counts)
    seed: int | None = None
    config: dict = field(default_factory=dict)

    def render(self) -> str:
        table = format_table(
            ["rank", "node", *RECORD_KINDS],
            self.rows,
            title=f"Extension: trace replay — {self.trace_name} on {self.machine}",
        )
        return "\n".join(
            [
                table,
                f"trace sha256:       {self.sha256}",
                f"replay fingerprint: {self.fingerprint_sha256}",
                f"makespan:           {self.makespan:.6f} s",
            ]
        )


def _workload_rows(trace: Trace) -> list[tuple[object, ...]]:
    per_rank = trace.per_rank()
    rows: list[tuple[object, ...]] = []
    for rank in range(trace.meta.ranks):
        counts = {kind: 0 for kind in RECORD_KINDS}
        for record in per_rank[rank]:
            counts[record.kind] += 1
        node = trace.meta.placement[rank][0]
        rows.append((rank, node, *(counts[kind] for kind in RECORD_KINDS)))
    return rows


def _canonicalize_trace(semantic: dict) -> tuple[dict, dict]:
    """Spec canonicalize hook: content-address a ``trace=`` file override.

    The file's sha256 joins the semantic (fingerprinted) overrides and
    the path itself moves to extras, so the cache key names the trace
    *bytes*, not where they happen to live on this machine.  A caller's
    explicit ``trace_sha256`` is verified against the file, making a
    stale pin a typed error at submit time rather than a wrong cache hit.
    """
    moved: dict[str, object] = {}
    path = semantic.pop("trace", None)
    if path is not None:
        sha = load_trace(str(path)).sha256
        claimed = semantic.get("trace_sha256")
        if claimed is not None and claimed != sha:
            raise TraceError(
                f"trace_sha256 override {claimed!r} does not match "
                f"{path!s} (sha256 {sha})"
            )
        semantic["trace_sha256"] = sha
        moved["trace"] = str(path)
    return semantic, moved


def run_trace_replay(
    seed: int = 0,
    generator: str = "ai_training",
    ranks: int = 4,
    steps: int = 4,
    trace: str | None = None,
    trace_sha256: str | None = None,
) -> TraceReplayResult:
    """Replay a generated or file-loaded trace; report shape + fingerprint.

    With ``trace`` set, the file is loaded (and ``generator``/``ranks``/
    ``steps`` are ignored); otherwise the named generator builds the
    workload from ``(seed, ranks, steps)``.  ``trace_sha256``, when
    given, pins the trace content either way — a mismatch is a
    :class:`~repro.errors.TraceError`, never a silently different run.
    """
    if trace is not None:
        loaded = load_trace(trace)
    else:
        loaded = generate_trace(generator, seed=seed, ranks=ranks, steps=steps)
    sha = loaded.sha256
    if trace_sha256 is not None and trace_sha256 != sha:
        raise TraceError(
            f"trace_sha256 {trace_sha256!r} does not match the "
            f"{'loaded' if trace is not None else 'generated'} trace (sha256 {sha})"
        )
    cluster = build_replay_cluster(loaded)
    TraceReplayApp(loaded, cluster).run()
    from repro.check.harness import fingerprint_cluster

    fingerprint = fingerprint_cluster(cluster)
    config: dict[str, object] = {"trace_sha256": sha}
    if trace is None:
        config.update({"generator": generator, "ranks": ranks, "steps": steps})
    return TraceReplayResult(
        trace_name=loaded.meta.name,
        machine=loaded.meta.machine,
        sha256=sha,
        makespan=float(cluster.sim.now),
        fingerprint_sha256=hashlib.sha256(fingerprint.encode()).hexdigest(),
        rows=_workload_rows(loaded),
        seed=seed if trace is None else None,
        config=config,
    )
