"""Extension: Varbench-style variability characterisation per anomaly.

The paper's introduction motivates HPAS with run-to-run performance
variation ("more than 100% variation" on production systems).  This
extension closes the loop: it measures, Varbench-style, the run-time
variability each HPAS anomaly *induces* on an application when the
anomaly arrives at a random phase of the run — the coefficient of
variation and max/min spread across repetitions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import make_anomaly
from repro.experiments.common import format_table
from repro.varbench import VariabilityReport


@dataclass
class VariabilityResult:
    reports: dict[str, VariabilityReport]  # anomaly label -> report

    def render(self) -> str:
        rows = [
            (
                label,
                report.mean,
                report.std,
                report.coefficient_of_variation,
                report.spread,
            )
            for label, report in self.reports.items()
        ]
        return format_table(
            ["anomaly", "mean (s)", "std (s)", "CoV", "spread"],
            rows,
            title="Extension: induced run-to-run variability (Varbench-style)",
        )


def run_ext_variability(
    app_name: str = "miniMD",
    repetitions: int = 6,
    iterations: int = 15,
    anomalies: tuple[str, ...] = ("none", "cpuoccupy", "membw", "memleak"),
    seed: int = 5,
    jobs: int = 1,
) -> VariabilityResult:
    """Measure induced variability for a set of anomalies.

    ``jobs`` parallelises each anomaly's repetitions (see
    :meth:`VariabilityReport.measure`); the reports are unchanged.
    """
    reports: dict[str, VariabilityReport] = {}
    for label in anomalies:
        factory = None if label == "none" else (lambda l=label: make_anomaly(l))
        reports[label] = VariabilityReport.measure(
            app_name=app_name,
            anomaly_factory=factory,
            repetitions=repetitions,
            iterations=iterations,
            seed=seed,
            jobs=jobs,
        )
    return VariabilityResult(reports=reports)
