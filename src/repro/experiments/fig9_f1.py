"""Fig. 9: per-anomaly F1 scores for the three diagnosis classifiers.

3-fold cross-validation over the labelled windows produced by
:mod:`repro.experiments.diagnosis_data`.  The paper reports an overall
random-forest F1 of 0.94, near-perfect detection of none/memleak/memeater,
and weaker separation among cpuoccupy/membw/cachecopy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.diagnosis import (
    DIAGNOSIS_CLASSES,
    DiagnosisDataset,
    DiagnosisPipeline,
    ModelReport,
)
from repro.experiments.common import format_table
from repro.experiments.diagnosis_data import build_dataset, generate_runs


@dataclass
class Fig9Result:
    reports: dict[str, ModelReport]
    dataset: DiagnosisDataset

    def render(self) -> str:
        rows = []
        for name, report in self.reports.items():
            for cls in DIAGNOSIS_CLASSES:
                if cls in report.f1_per_class:
                    rows.append((name, cls, report.f1_per_class[cls]))
            rows.append((name, "OVERALL (macro)", report.macro_f1))
        return format_table(
            ["model", "anomaly", "F1"],
            rows,
            title="Fig 9: anomaly classification F1 (3-fold CV)",
        )


def run_fig9(
    iterations: int = 45,
    window: int = 30,
    stride: int | None = 15,
    seed: int = 0,
) -> Fig9Result:
    """Generate data, train the three classifiers, report per-class F1."""
    runs = generate_runs(iterations=iterations, seed=seed)
    dataset = build_dataset(runs, window=window, stride=stride)
    pipeline = DiagnosisPipeline(folds=3, seed=seed)
    reports = pipeline.evaluate(dataset)
    return Fig9Result(reports=reports, dataset=dataset)
