"""Fig. 6: OSU bandwidth vs message size under netoccupy.

The OSU pair spans two Aries switches of the full Voltrino fabric; 1-3
netoccupy pairs stream between the switches' remaining nodes.  Bandwidth
falls with anomaly count but the damage is bounded — redundant links and
adaptive routing absorb most of it, exactly the paper's observation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import OSUBandwidth
from repro.cluster import Cluster
from repro.core import NetOccupy
from repro.experiments.common import format_table
from repro.network.topology import aries_like
from repro.units import KB


@dataclass
class Fig6Result:
    message_sizes_kb: list[int]
    anomaly_nodes: list[int]
    bandwidth_gbps: dict[int, list[float]]  # anomaly-node count -> series

    def render(self) -> str:
        headers = ["msg size (KB)"] + [f"{n} anomaly nodes" for n in self.anomaly_nodes]
        rows = []
        for i, msg in enumerate(self.message_sizes_kb):
            rows.append(
                [msg] + [self.bandwidth_gbps[n][i] for n in self.anomaly_nodes]
            )
        return format_table(
            headers, rows, title="Fig 6: OSU bandwidth vs netoccupy (GB/s)"
        )


def run_fig6(
    message_sizes_kb: tuple[int, ...] = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192),
    pair_counts: tuple[int, ...] = (0, 1, 2, 3),
    fabric_nodes: int = 48,
) -> Fig6Result:
    """OSU bandwidth for every (message size, anomaly pair count)."""
    bandwidth: dict[int, list[float]] = {2 * p: [] for p in pair_counts}
    for msg_kb in message_sizes_kb:
        for pairs in pair_counts:
            topo = aries_like(num_nodes=fabric_nodes)
            cluster = Cluster(num_nodes=fabric_nodes, topology=topo)
            osu = OSUBandwidth(message_size=msg_kb * KB, messages=32)
            # node0 sits on switch 0, node4 on switch 1.
            osu.launch(cluster, src="node0", dst="node4")
            for p in range(pairs):
                NetOccupy.launch_pair(
                    cluster, src=f"node{1 + p}", dst=f"node{5 + p}", ranks=4
                )
            cluster.sim.run(until=4000)
            bandwidth[2 * pairs].append(osu.bandwidth() / 1e9)
    return Fig6Result(
        message_sizes_kb=list(message_sizes_kb),
        anomaly_nodes=[2 * p for p in pair_counts],
        bandwidth_gbps=bandwidth,
    )
