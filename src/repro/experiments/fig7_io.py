"""Fig. 7: IOR bandwidth under the I/O anomalies (Chameleon + NFS).

Four client nodes run 48 anomaly instances each while IOR measures the
NFS share from a fifth node.  iobandwidth clogs the single disk and
crushes the streaming phases; iometadata starves the (shared) metadata
service and server CPU, hitting the access phase hardest but dragging
streaming down too — the NFS appliance has no separate metadata server.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import IORBenchmark
from repro.cluster import Cluster
from repro.core import IOBandwidth, IOMetadata
from repro.experiments.common import format_table


@dataclass
class Fig7Result:
    rows: dict[str, dict[str, float]]  # anomaly -> phase -> MB/s

    def render(self) -> str:
        table = [
            (name, vals["write"], vals["access"], vals["read"])
            for name, vals in self.rows.items()
        ]
        return format_table(
            ["anomaly", "write MB/s", "access MB/s", "read MB/s"],
            table,
            title="Fig 7: I/O anomalies vs IOR (Chameleon Cloud, NFS)",
        )


def run_fig7(
    anomaly_nodes: int = 4,
    instances_per_node: int = 48,
    horizon: float = 30_000.0,
) -> Fig7Result:
    """IOR phase bandwidths under none / iobandwidth / iometadata."""
    rows: dict[str, dict[str, float]] = {}
    for label, factory in (
        ("none", None),
        ("iobandwidth", IOBandwidth),
        ("iometadata", IOMetadata),
    ):
        cluster = Cluster.chameleon(num_nodes=anomaly_nodes + 2)
        # Anomalies start first; IOR measures once they reach steady state
        # (iobandwidth's first round only writes its seed file).
        ior = IORBenchmark()
        ior.launch(cluster, node=f"node{anomaly_nodes + 1}", start=60.0)
        if factory is not None:
            for n in range(1, anomaly_nodes + 1):
                for core in range(instances_per_node):
                    factory().launch(cluster, f"node{n}", core=core)
        cluster.sim.run(until=horizon)
        rows[label] = ior.phase_bandwidth()
    return Fig7Result(rows=rows)
