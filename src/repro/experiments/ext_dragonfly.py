"""Extension: netoccupy on a full dragonfly — global-link contention.

Voltrino's single electrical group bounds netoccupy's damage (Fig. 6).
On a full dragonfly, traffic between *groups* crosses a handful of thin
optical global links — the congestion hotspot Bhatele et al. identify.
This extension runs the Fig. 6 scenario twice: within one group (Fig. 6's
setting) and across two groups, where the same anomaly bites much harder.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import OSUBandwidth
from repro.cluster import Cluster
from repro.core import NetOccupy
from repro.experiments.common import format_table
from repro.network.topology import dragonfly
from repro.units import MB


@dataclass
class DragonflyResult:
    rows: list[tuple[str, float, float, float]]  # scope, clean, contended, retained

    def render(self) -> str:
        return format_table(
            ["traffic scope", "clean GB/s", "3 pairs GB/s", "retained"],
            self.rows,
            title="Extension: netoccupy within vs across dragonfly groups",
        )


def _osu(cluster_factory, src, dst, pairs, anomaly_endpoints) -> float:
    cluster = cluster_factory()
    osu = OSUBandwidth(message_size=4 * MB, messages=32)
    osu.launch(cluster, src=src, dst=dst)
    for p in range(pairs):
        a, b = anomaly_endpoints(p)
        NetOccupy.launch_pair(cluster, src=a, dst=b, ranks=4)
    cluster.sim.run(until=4000)
    return osu.bandwidth() / 1e9


def run_ext_dragonfly(pairs: int = 3) -> DragonflyResult:
    """OSU bandwidth retention, intra-group vs inter-group."""

    def factory():
        topo = dragonfly(groups=4, switches_per_group=4, nodes_per_switch=4)
        return Cluster(num_nodes=len(topo.compute_nodes), topology=topo)

    # Intra-group: node0 (g0sw0) -> node4 (g0sw1); anomalies beside them.
    intra_clean = _osu(factory, "node0", "node4", 0, None)
    intra_noisy = _osu(
        factory, "node0", "node4", pairs, lambda p: (f"node{1 + p}", f"node{5 + p}")
    )
    # Inter-group: node0 (group 0) -> node16 (group 1); anomaly pairs also
    # cross the same pair of groups, hammering the one global link.
    inter_clean = _osu(factory, "node0", "node16", 0, None)
    inter_noisy = _osu(
        factory, "node0", "node16", pairs, lambda p: (f"node{1 + p}", f"node{17 + p}")
    )
    return DragonflyResult(
        rows=[
            ("within group", intra_clean, intra_noisy, intra_noisy / intra_clean),
            ("across groups", inter_clean, inter_noisy, inter_noisy / inter_clean),
        ]
    )
