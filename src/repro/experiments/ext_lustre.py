"""Extension: metadata isolation — NFS appliance vs Lustre-like deployment.

Fig. 7 shows iometadata hurting IOR's streaming phases on the Chameleon
NFS appliance *because* the metadata service shares the server (and disk)
with the data path.  The paper's architecture discussion (Sec. 3.5)
implies a dedicated metadata server would decouple them — this extension
verifies that: the same iometadata storm barely touches streaming
bandwidth on a Lustre-like filesystem with a separate MDS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import IORBenchmark
from repro.cluster import Cluster, MachineSpec
from repro.core import IOMetadata
from repro.experiments.common import format_table
from repro.network.topology import star
from repro.storage.filesystem import SharedFilesystem


@dataclass
class LustreResult:
    rows: dict[str, dict[str, dict[str, float]]]  # fs -> anomaly -> phase -> MB/s

    def render(self) -> str:
        table = []
        for fs_name, by_anomaly in self.rows.items():
            for label, phases in by_anomaly.items():
                table.append(
                    (fs_name, label, phases["write"], phases["access"], phases["read"])
                )
        return format_table(
            ["filesystem", "anomaly", "write MB/s", "access MB/s", "read MB/s"],
            table,
            title="Extension: iometadata vs NFS (shared MDS) and Lustre (own MDS)",
        )

    def streaming_retained(self, fs_name: str) -> float:
        """Fraction of write bandwidth surviving the metadata storm."""
        clean = self.rows[fs_name]["none"]["write"]
        noisy = self.rows[fs_name]["iometadata"]["write"]
        return noisy / clean


def run_ext_lustre(
    anomaly_nodes: int = 4,
    instances_per_node: int = 48,
    horizon: float = 30_000.0,
) -> LustreResult:
    """IOR under iometadata on both filesystem architectures."""
    # Scale Lustre's pools down to the testbed's size so the comparison
    # isolates the *architecture* (separate MDS), not raw capacity.
    filesystems = {
        "nfs": lambda: SharedFilesystem.nfs_appliance(),
        "lustre": lambda: SharedFilesystem(
            name="lustre",
            disk_bw=SharedFilesystem.nfs_appliance().disk_bw,
            meta_capacity=SharedFilesystem.nfs_appliance().meta_capacity,
            server_cpu=SharedFilesystem.nfs_appliance().server_cpu,
            separate_metadata=True,
        ),
    }
    rows: dict[str, dict[str, dict[str, float]]] = {}
    for fs_name, factory in filesystems.items():
        rows[fs_name] = {}
        for label in ("none", "iometadata"):
            spec = MachineSpec.chameleon()
            cluster = Cluster(
                num_nodes=anomaly_nodes + 2,
                spec=spec,
                topology=star(num_nodes=anomaly_nodes + 2, link_bw=spec.nic_bw),
                filesystems=[factory()],
            )
            ior = IORBenchmark(fs=fs_name)
            ior.launch(cluster, node=f"node{anomaly_nodes + 1}", start=60.0)
            if label == "iometadata":
                for n in range(1, anomaly_nodes + 1):
                    for core in range(instances_per_node):
                        IOMetadata(fs=fs_name).launch(cluster, f"node{n}", core=core)
            cluster.sim.run(until=horizon)
            rows[fs_name][label] = ior.phase_bandwidth()
    return LustreResult(rows=rows)
