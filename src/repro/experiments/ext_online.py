"""Extension: online diagnosis with detection latency.

The paper's framework "predicts the root cause ... occurring at certain
times" at runtime.  This extension trains the random forest offline (on
the Figs. 9-10 data), then streams a fresh monitored run — an application
with a cachecopy window injected mid-run — through the online diagnoser
and reports the prediction timeline, its accuracy, and the detection
latency after anomaly onset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.forest import RandomForestClassifier
from repro.analytics.online import OnlineDiagnoser, OnlineReport
from repro.apps import AppJob, get_app
from repro.cluster import Cluster
from repro.core import AnomalyInjector, make_anomaly
from repro.experiments.common import format_table
from repro.experiments.diagnosis_data import build_dataset, generate_runs
from repro.monitoring import MetricService


@dataclass
class OnlineResult:
    report: OnlineReport
    anomaly_window: tuple[float, float]

    def render(self) -> str:
        rows = [
            (p.time, p.label)
            for p in self.report.predictions
        ]
        header = format_table(
            ["window end (s)", "predicted"],
            rows,
            title=(
                "Extension: online diagnosis timeline "
                f"(cachecopy active {self.anomaly_window[0]:.0f}-"
                f"{self.anomaly_window[1]:.0f}s)"
            ),
        )
        footer = (
            f"\ntimeline accuracy: {self.report.accuracy:.2f}   "
            f"detection latency: "
            + (
                f"{self.report.detection_latency:.0f}s"
                if self.report.detection_latency is not None
                else "not detected"
            )
        )
        return header + footer


def run_ext_online(
    train_iterations: int = 30,
    window: int = 20,
    seed: int = 6,
) -> OnlineResult:
    """Train offline, then diagnose a live run with a mid-run anomaly."""
    # -- offline phase ------------------------------------------------------
    runs = generate_runs(iterations=train_iterations, seed=seed)
    dataset = build_dataset(runs, window=window, stride=10)
    model = RandomForestClassifier(n_estimators=40, seed=seed)
    model.fit(dataset.X, dataset.y)

    # -- runtime phase ---------------------------------------------------------
    cluster = Cluster.voltrino(num_nodes=8)
    service = MetricService(cluster, noise=0.02, seed=seed + 1)
    service.attach(end=1_000_000)
    app = get_app("miniGhost").scaled(iterations=80)
    job = AppJob(app, cluster, nodes=[0, 1, 2, 3], ranks_per_node=4, seed=seed)
    job.launch()
    injector = AnomalyInjector(cluster)
    nominal = app.profile.nominal_runtime
    start, duration = nominal * 0.4, nominal * 0.45
    sibling = cluster.spec.sibling_of(0)
    injector.inject(
        make_anomaly("cachecopy", cache="L3"),
        node="node0",
        core=sibling,
        start=start,
        duration=duration,
    )
    job.run(timeout=1e7)
    service.detach()

    def truth(t: float) -> str:
        labels = injector.active_labels(t)
        return labels[0] if labels else "none"

    diagnoser = OnlineDiagnoser(model, window=window, stride=5)
    report = diagnoser.evaluate(
        service.timestamps(), service.matrix("node0"), truth
    )
    return OnlineResult(report=report, anomaly_window=(start, start + duration))
