"""Paper experiments: one module per table/figure of the evaluation.

Every module exposes a ``run(...)`` function returning a structured result
(rows/series matching what the paper plots) and accepts scale parameters so
tests can run reduced versions while the benchmark harness runs the full
configuration.
"""

from repro.experiments.table1_anomalies import run_table1
from repro.experiments.fig2_cpuoccupy import run_fig2
from repro.experiments.fig3_cachecopy import run_fig3
from repro.experiments.fig4_membw import run_fig4
from repro.experiments.fig5_memory import run_fig5
from repro.experiments.fig6_netoccupy import run_fig6
from repro.experiments.fig7_io import run_fig7
from repro.experiments.table2_characteristics import run_table2
from repro.experiments.fig8_matrix import run_fig8
from repro.experiments.fig9_f1 import run_fig9
from repro.experiments.fig10_confusion import run_fig10
from repro.experiments.fig11_12_allocation import run_fig11_12
from repro.experiments.fig13_loadbalance import run_fig13
from repro.experiments.ext_dragonfly import run_ext_dragonfly
from repro.experiments.ext_faults import run_ext_faults
from repro.experiments.ext_importance import run_ext_importance
from repro.experiments.ext_jitter import run_ext_jitter
from repro.experiments.ext_jobstream import run_ext_jobstream
from repro.experiments.ext_lustre import run_ext_lustre
from repro.experiments.ext_online import run_ext_online
from repro.experiments.ext_trace_replay import run_trace_replay
from repro.experiments.ext_variability import run_ext_variability

__all__ = [
    "run_ext_dragonfly",
    "run_ext_faults",
    "run_ext_importance",
    "run_ext_jitter",
    "run_ext_jobstream",
    "run_ext_lustre",
    "run_ext_online",
    "run_ext_variability",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11_12",
    "run_fig13",
    "run_table1",
    "run_table2",
    "run_trace_replay",
]
