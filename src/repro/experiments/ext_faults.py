"""Extension: fault injection & resilience sweep.

The paper's anomalies degrade performance but never kill anything; real
variability studies (and the FINJ tool the suite's injection design
follows) must also cope with *faults* — node crashes, hangs, link
outages.  This extension drives the same job-stream workload through a
seeded :class:`~repro.faults.FaultSchedule` at increasing fault rates and
compares two operating modes at the *same* fault schedule:

``no-ckpt``
    Fail-stop batch semantics: a job whose rank dies (or whose allocation
    finds no free healthy node) fails permanently — no requeue, no
    checkpoint.  This is the baseline an unmanaged submission experiences.
``ckpt``
    Resilient semantics: jobs checkpoint every few iterations and a
    :class:`~repro.faults.RetryPolicy` requeues them with exponential
    backoff, restarting from the last committed iteration.

The table reports job success rate, goodput (globally-committed
application iterations per hour of stream makespan), and makespan
inflation relative to the fault-free stream of the same mode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.apps import get_app
from repro.cluster import Cluster
from repro.experiments.common import format_table
from repro.faults import FaultInjector, FaultSchedule, RetryPolicy
from repro.monitoring import MetricService
from repro.scheduling import JobScheduler, RoundRobin
from repro.units import HOUR

#: fault kinds the sweep injects; ``node_crash`` (the only lethal kind)
#: appears twice to double its draw weight, so moderate rates already
#: exercise the kill/requeue path rather than only hangs and slowdowns
SWEEP_KINDS = ("node_crash", "node_crash", "node_hang", "slowdown")


@dataclass(frozen=True)
class FaultsRow:
    """One (fault rate, mode) cell of the sweep."""

    rate_per_ks: float  # injected faults per 1000 simulated seconds
    mode: str  # "no-ckpt" or "ckpt"
    n_faults: int
    succeeded: int
    n_jobs: int
    requeues: int
    goodput: float  # committed iterations per hour of makespan
    makespan: float
    inflation: float  # makespan / same-mode fault-free makespan

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.n_jobs


@dataclass
class FaultsResult:
    """Rendered by ``repro faults`` / the ``ext_faults`` experiment."""

    seed: int
    rows: list[FaultsRow]
    config: dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        table_rows = []
        for r in self.rows:
            table_rows.append(
                (
                    r.rate_per_ks,
                    r.mode,
                    r.n_faults,
                    f"{r.succeeded}/{r.n_jobs}",
                    r.success_rate,
                    r.requeues,
                    r.goodput,
                    r.makespan,
                    r.inflation,
                )
            )
        return format_table(
            [
                "faults/1000s",
                "mode",
                "injected",
                "jobs ok",
                "success",
                "requeues",
                "goodput (it/h)",
                "makespan (s)",
                "inflation",
            ],
            table_rows,
            title=f"Extension: resilience under fault injection (seed {self.seed})",
        )

    def success_rates(self, mode: str) -> list[float]:
        """Per-rate success rates of one mode, in rate order."""
        return [r.success_rate for r in self.rows if r.mode == mode]


def _run_stream(
    seed: int,
    rate_per_ks: float,
    checkpointing: bool,
    n_jobs: int,
    iterations: int,
    horizon: float,
) -> tuple[int, int, float, float, int]:
    """One job stream under one fault schedule; returns the cell metrics.

    Both modes of a rate share the fault schedule (the scope key excludes
    the mode), so the comparison is paired: identical faults, different
    resilience machinery.
    """
    cluster = Cluster.voltrino(num_nodes=8)
    injector = FaultInjector(cluster)
    schedule = FaultSchedule.generate(
        seed,
        horizon=horizon,
        nodes=cluster.node_names,
        rate=rate_per_ks / 1000.0,
        kinds=SWEEP_KINDS,
        scope=f"ext-faults:rate{rate_per_ks:g}",
    )
    injector.extend(schedule)
    injector.deploy()
    service = MetricService(cluster)
    service.attach(end=10_000_000)
    cluster.sim.run(until=60)  # monitoring warm-up before the first allocation

    scheduler = JobScheduler(cluster, service)
    policy = RoundRobin()
    retry = (
        RetryPolicy(base_delay=5.0, factor=2.0, jitter=0.25, max_retries=8)
        if checkpointing
        else None
    )
    t0 = cluster.sim.now
    jobs = []
    for j in range(n_jobs):
        app = get_app("sw4lite").scaled(iterations=iterations)
        jobs.append(
            scheduler.submit_managed(
                app,
                policy,
                n_nodes=2,
                ranks_per_node=4,
                seed=seed * 1000 + j,
                retry=retry,
                checkpoint_interval=5 if checkpointing else None,
                checkpoint_cost=0.5 if checkpointing else 0.0,
                index=j,
            )
        )
        # Two 2-node jobs fit side by side on 8 nodes with headroom for
        # requeues around crashed nodes; run the stream as pairs.
        if j % 2 == 1:
            cluster.sim.run(
                until=cluster.sim.now + 10_000_000,
                stop_when=lambda: all(m.settled for m in jobs),
            )
    cluster.sim.run(
        until=cluster.sim.now + 10_000_000,
        stop_when=lambda: all(m.settled for m in jobs),
    )
    service.detach()
    succeeded = sum(1 for m in jobs if m.done)
    requeues = sum(m.requeues for m in jobs)
    iterations_done = sum(m.iterations_done for m in jobs)
    makespan = max(m.finished_at for m in jobs if m.finished_at is not None) - t0
    return succeeded, requeues, iterations_done, makespan, len(schedule)


def run_ext_faults(
    seed: int = 1,
    rates: tuple[float, ...] = (8.0, 15.0),
    n_jobs: int = 6,
    iterations: int = 40,
    horizon: float = 600.0,
) -> FaultsResult:
    """Sweep fault rates; run each schedule with and without checkpointing.

    ``rates`` are in faults per 1000 simulated seconds across the whole
    8-node system.  Rate 0 provides the fault-free makespan baseline that
    the inflation column is computed against (per mode, since
    checkpointing itself costs a little time).
    """
    rates = (0.0,) + tuple(r for r in rates if r > 0.0)
    rows: list[FaultsRow] = []
    baseline: dict[str, float] = {}
    for rate in rates:
        for mode, checkpointing in (("no-ckpt", False), ("ckpt", True)):
            succeeded, requeues, iters, makespan, n_faults = _run_stream(
                seed, rate, checkpointing, n_jobs, iterations, horizon
            )
            if rate <= 0.0:
                baseline[mode] = makespan
            inflation = makespan / baseline[mode] if baseline.get(mode) else math.nan
            rows.append(
                FaultsRow(
                    rate_per_ks=rate,
                    mode=mode,
                    n_faults=n_faults,
                    succeeded=succeeded,
                    n_jobs=n_jobs,
                    requeues=requeues,
                    goodput=iters * HOUR / makespan if makespan > 0 else 0.0,
                    makespan=makespan,
                    inflation=inflation,
                )
            )
    return FaultsResult(
        seed=seed,
        rows=rows,
        config={
            "rates_per_ks": list(rates),
            "n_jobs": n_jobs,
            "iterations": iterations,
            "horizon": horizon,
            "kinds": list(SWEEP_KINDS),
        },
    )
