"""Table 1: the anomaly suite inventory and its runtime knobs.

Regenerates the paper's Table 1 rows from the live registry: every anomaly
is instantiated through its HPAS-style CLI surface and its knob set is
reported, proving the configuration options exist and parse.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import ANOMALY_REGISTRY, parse_cli
from repro.experiments.common import format_table

#: paper Table 1: anomaly -> (type description, behaviour, example CLI)
TABLE1_ROWS = {
    "cpuoccupy": (
        "CPU intensive process",
        "Arithmetic operations",
        ["cpuoccupy", "-u", "80"],
    ),
    "cachecopy": (
        "Cache contention",
        "Cache read & write",
        ["cachecopy", "-c", "L2", "-m", "1.0", "-r", "0.8"],
    ),
    "membw": (
        "Memory bandwidth contention",
        "Not-cached memory write",
        ["membw", "-s", "67108864", "-r", "1.0"],
    ),
    "memeater": (
        "Memory intensive process",
        "Allocate, fill, & release memory",
        ["memeater", "-s", "36700160", "-r", "20"],
    ),
    "memleak": (
        "Memory leak",
        "Increasingly allocate & fill memory",
        ["memleak", "-s", "20971520", "-r", "0.5"],
    ),
    "netoccupy": (
        "Network contention",
        "Send messages between two nodes",
        ["netoccupy", "-m", "104857600", "-r", "1.0"],
    ),
    "iometadata": (
        "I/O metadata server contention",
        "File creation & deletion",
        ["iometadata", "-r", "150"],
    ),
    "iobandwidth": (
        "I/O bandwidth contention",
        "File read & write",
        ["iobandwidth", "-s", "1073741824"],
    ),
}


@dataclass
class Table1Result:
    rows: list[tuple[str, str, str, str]]  # type, name, behaviour, knobs

    def render(self) -> str:
        return format_table(
            ["Anomaly type", "Name", "Behaviour", "Runtime options"],
            self.rows,
            title="Table 1: HPAS anomalies",
        )


def run_table1() -> Table1Result:
    """Instantiate every anomaly via its CLI and list its knobs."""
    rows = []
    for name in sorted(ANOMALY_REGISTRY):
        kind, behaviour, argv = TABLE1_ROWS[name]
        anomaly = parse_cli(argv + ["-d", "60"])
        knobs = ", ".join(
            k for k in sorted(anomaly.describe()) if k not in ("name",)
        )
        rows.append((kind, name, behaviour, knobs))
    return Table1Result(rows=rows)
