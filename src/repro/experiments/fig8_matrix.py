"""Fig. 8: execution time of each application under each anomaly.

Each run places one application across four Voltrino nodes (one rank per
core used) and one anomaly configuration on node0, mirroring the paper's
placements:

* ``cachecopy`` — L3-sized instance on rank 0's hyperthread sibling,
* ``cpuoccupy`` — 100% instance time-sharing rank 0's core,
* ``membw`` — three instances on the socket's free cores,
* ``memeater`` / ``memleak`` — one instance on a free core,
* ``netoccupy`` — a 4-rank pair streaming out of node0's switch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import AppJob, get_app
from repro.cluster import Cluster
from repro.core import (
    CacheCopy,
    CpuOccupy,
    MemBw,
    MemEater,
    MemLeak,
    NetOccupy,
)
from repro.experiments.common import format_table
from repro.parallel import run_trials

ANOMALIES = (
    "cachecopy",
    "cpuoccupy",
    "membw",
    "memeater",
    "memleak",
    "netoccupy",
    "none",
)

APPS = (
    "cloverleaf",
    "CoMD",
    "kripke",
    "milc",
    "miniAMR",
    "miniGhost",
    "miniMD",
    "sw4lite",
)


@dataclass
class Fig8Result:
    runtimes: dict[str, dict[str, float]]  # app -> anomaly -> seconds

    def render(self) -> str:
        rows = []
        for app, per_anomaly in self.runtimes.items():
            rows.append([app] + [per_anomaly[a] for a in ANOMALIES])
        return format_table(
            ["app"] + list(ANOMALIES),
            rows,
            title="Fig 8: application execution time (s) per anomaly",
        )

    def slowdown(self, app: str, anomaly: str) -> float:
        return self.runtimes[app][anomaly] / self.runtimes[app]["none"]


def _place_anomaly(cluster: Cluster, anomaly: str) -> None:
    spec = cluster.spec
    if anomaly == "cachecopy":
        sibling = spec.sibling_of(0)
        assert sibling is not None
        CacheCopy(cache="L3").launch(cluster, "node0", core=sibling)
    elif anomaly == "cpuoccupy":
        CpuOccupy(utilization=100).launch(cluster, "node0", core=0)
    elif anomaly == "membw":
        for core in (4, 5, 6):
            MemBw().launch(cluster, "node0", core=core)
    elif anomaly == "memeater":
        MemEater().launch(cluster, "node0", core=8)
    elif anomaly == "memleak":
        MemLeak().launch(cluster, "node0", core=8)
    elif anomaly == "netoccupy":
        NetOccupy.launch_pair(cluster, src="node0", dst="node4", ranks=4)
    elif anomaly != "none":
        raise ValueError(f"unknown anomaly {anomaly!r}")


def _run_cell(cell: tuple[str, str, int, int]) -> float:
    """One (app, anomaly) matrix cell; pure in its arguments."""
    app_name, anomaly, iterations, ranks_per_node = cell
    cluster = Cluster.voltrino(num_nodes=8)
    app = get_app(app_name).scaled(iterations=iterations)
    job = AppJob(
        app, cluster, nodes=[0, 1, 2, 3], ranks_per_node=ranks_per_node, seed=5
    )
    job.launch()
    _place_anomaly(cluster, anomaly)
    return job.run(timeout=50_000)


def run_fig8(
    iterations: int = 60,
    ranks_per_node: int = 4,
    apps: tuple[str, ...] = APPS,
    anomalies: tuple[str, ...] = ANOMALIES,
    jobs: int = 1,
) -> Fig8Result:
    """Runtime matrix: every app against every anomaly configuration.

    Cells are independent simulations, so ``jobs`` distributes them over
    worker processes without changing any runtime in the matrix.
    """
    cells = [
        (app_name, anomaly, iterations, ranks_per_node)
        for app_name in apps
        for anomaly in anomalies
    ]
    results = run_trials(_run_cell, cells, jobs=jobs)
    runtimes: dict[str, dict[str, float]] = {}
    for (app_name, anomaly, _, _), runtime in zip(cells, results):
        runtimes.setdefault(app_name, {})[anomaly] = runtime
    return Fig8Result(runtimes=runtimes)
