"""Figs. 11-12: allocation policies under anomalies.

Eight nodes; cpuoccupy occupies a core on node0 and memleak pins node2's
free memory down to ~1 GB.  SW4lite asks for 4 of the 8 nodes:

* RR allocates [node0..node3] by label order — straight into both
  anomalies (Fig. 11 top),
* WBAS ranks nodes by ``CP = (1 - Load%) x MemFree`` and picks
  [node1, node3, node4, node5], avoiding both (Fig. 11 bottom).

Fig. 12 then compares the job execution times (3 runs each).

Placement note: the paper's ranks are unpinned, so a 100% cpuoccupy on a
32-core node costs the co-located job ~35%.  Our ranks are pinned; to
preserve the measured effect size the anomaly lands on rank 0's
hyperthread sibling (SMT contention, ~1.5x on that rank) rather than
time-sharing the identical logical core (which would cost 2x).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps import get_app
from repro.cluster import Cluster
from repro.core import CpuOccupy, MemLeak
from repro.experiments.common import format_table
from repro.monitoring import MetricService
from repro.scheduling import JobScheduler, RoundRobin, WellBalancedAllocation
from repro.units import GB, MB


@dataclass
class Fig11_12Result:
    allocations: dict[str, list[str]]  # policy -> chosen nodes
    runtimes: dict[str, list[float]]  # policy -> per-run execution times

    def render(self) -> str:
        rows = []
        for policy, nodes in self.allocations.items():
            times = self.runtimes[policy]
            rows.append(
                (
                    policy,
                    " ".join(nodes),
                    float(np.mean(times)),
                    " ".join(f"{t:.0f}" for t in times),
                )
            )
        return format_table(
            ["policy", "allocated nodes", "mean time (s)", "runs"],
            rows,
            title="Figs 11-12: allocation policies under anomalies",
        )

    def improvement(self) -> float:
        """WBAS runtime reduction relative to RR (the paper reports 26%)."""
        rr = float(np.mean(self.runtimes["RoundRobin"]))
        wbas = float(np.mean(self.runtimes["WBAS"]))
        return (rr - wbas) / rr


def _one_run(policy, iterations: int, seed: int) -> tuple[list[str], float]:
    cluster = Cluster.voltrino(num_nodes=8)
    service = MetricService(cluster)
    service.attach(end=1_000_000)
    # Anomalies: CPU load on node0, dead memory on node2.
    sibling = cluster.spec.sibling_of(0)
    assert sibling is not None
    CpuOccupy(utilization=100).launch(cluster, "node0", core=sibling)
    leak_target = cluster.node(2).memory.free - 1 * GB
    MemLeak(buffer_size=512 * MB, rate=50, limit=leak_target).launch(
        cluster, "node2", core=0
    )
    cluster.sim.run(until=60)  # let monitoring observe the anomalies
    scheduler = JobScheduler(cluster, service)
    app = get_app("sw4lite").scaled(iterations=iterations)
    allocation, job = scheduler.submit(
        app, policy, n_nodes=4, ranks_per_node=4, seed=seed
    )
    runtime = job.run(timeout=900_000)
    service.detach()
    return allocation.nodes, runtime


def run_fig11_12(iterations: int = 145, repeats: int = 3) -> Fig11_12Result:
    """Both policies, ``repeats`` runs each (paper: 3 runs)."""
    allocations: dict[str, list[str]] = {}
    runtimes: dict[str, list[float]] = {}
    for policy_cls in (WellBalancedAllocation, RoundRobin):
        policy = policy_cls()
        times = []
        for r in range(repeats):
            nodes, runtime = _one_run(policy, iterations, seed=17 + r)
            allocations[policy.name] = nodes
            times.append(runtime)
        runtimes[policy.name] = times
    return Fig11_12Result(allocations=allocations, runtimes=runtimes)
