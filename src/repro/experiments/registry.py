"""Experiment registry: one :class:`ExperimentSpec` per table/figure.

Mirrors :mod:`repro.apps.registry`: every ``fig*``/``table*``/``ext_*``
module registers here under a short name (``fig8``, ``table1``,
``ext_faults``), and all front ends — the ``repro experiment`` CLI, the
pytest benchmark harness, and :func:`repro.parallel.run_trials` sweeps —
drive experiments through the same normalized interface::

    spec = get_experiment("fig8")
    result = run(spec)            # or run(spec, obs=...) / spec(seed=...)
    persist_result(result, "results/")

:func:`run` is a plain importable function of ``(spec, obs)``, so a list
of specs can be handed straight to ``run_trials(run, specs, jobs=N)``.
Runners keep their historical keyword signatures; the spec layer adapts:
``seed``/``obs`` are forwarded only to runners that accept them, and
results persist byte-identically to what the benchmark harness has always
written (text table + deterministic manifest).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Mapping

from repro._atomic import atomic_write_text
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.observability import Observability

#: override names that never change a result (proven by the parallel
#: differential oracle) and therefore stay out of the cache fingerprint
NONSEMANTIC_OVERRIDES = frozenset({"jobs"})


@dataclass(frozen=True)
class JobRequest:
    """A normalized, picklable experiment invocation.

    The single request shape shared by every front end — the ``repro
    experiment`` / ``repro faults`` / ``repro varbench`` CLIs, the
    :class:`repro.api.Client`, and the job service — produced only by
    :meth:`ExperimentSpec.normalize` (or its :meth:`ExperimentSpec.from_args`
    convenience), so validation and canonicalization happen in exactly one
    place.

    ``overrides`` are the runner keyword arguments that select *what* is
    computed (canonical JSON values, sorted by name); ``extras`` are
    arguments that only affect *how* (``jobs=...`` fan-out) and are
    excluded from the cache fingerprint (see docs/SERVICE.md).
    """

    name: str
    result_name: str
    seed: int | None = None
    overrides: tuple[tuple[str, object], ...] = ()
    extras: tuple[tuple[str, object], ...] = field(default=(), compare=False)

    def kwargs(self) -> dict[str, object]:
        """The runner keyword arguments this request resolves to."""
        kwargs: dict[str, object] = dict(self.overrides)
        kwargs.update(dict(self.extras))
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return kwargs

    def to_json(self) -> dict[str, object]:
        """Stable JSON form (see the job-record schema in docs/SERVICE.md)."""
        return {
            "name": self.name,
            "result_name": self.result_name,
            "seed": self.seed,
            "overrides": dict(self.overrides),
            "extras": dict(self.extras),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "JobRequest":
        """Rebuild a request journalled by :meth:`to_json` verbatim.

        No re-validation happens here: the journal only ever holds
        requests that went through :meth:`ExperimentSpec.normalize`.
        """
        return cls(
            name=str(data["name"]),
            result_name=str(data["result_name"]),
            seed=None if data.get("seed") is None else int(data["seed"]),  # type: ignore[arg-type]
            overrides=tuple(sorted(dict(data.get("overrides") or {}).items())),
            extras=tuple(sorted(dict(data.get("extras") or {}).items())),
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment.

    Attributes
    ----------
    name:
        Registry key (``fig8``, ``ext_faults``, ...).
    description:
        One-line summary shown by ``repro experiment --list``.
    runner:
        The module's ``run_*`` function; returns a result object with a
        ``render()`` method.
    result_name:
        Basename of the persisted artefacts: ``results/<result_name>.txt``
        and ``results/<result_name>.manifest.json``.
    seed:
        The runner's default seed, or None for seedless experiments.
    canonicalize:
        Optional hook ``semantic -> (semantic, moved_extras)`` applied by
        :meth:`normalize` after override validation.  Lets a spec rewrite
        fingerprint-relevant overrides into content-addressed form — the
        ``trace_replay`` spec folds a ``trace=`` file path into its
        sha256 so the cache keys on trace *bytes*, not filenames.
    """

    name: str
    description: str
    runner: Callable[..., object]
    result_name: str
    seed: int | None = None
    canonicalize: Callable[[dict], tuple[dict, dict]] | None = None

    def result_path(self, directory: str | Path) -> Path:
        return Path(directory) / f"{self.result_name}.txt"

    def manifest_path(self, directory: str | Path) -> Path:
        return Path(directory) / f"{self.result_name}.manifest.json"

    @property
    def takes_seed(self) -> bool:
        return "seed" in inspect.signature(self.runner).parameters

    def run(
        self,
        seed: int | None = None,
        obs: "Observability | None" = None,
        **overrides: object,
    ) -> object:
        """Run with normalized arguments.

        ``seed`` and ``obs`` are forwarded only when the runner accepts a
        parameter of that name (passing a seed to a seedless experiment is
        an error, not a silent no-op); ``overrides`` go through verbatim.
        """
        params = inspect.signature(self.runner).parameters
        kwargs = dict(overrides)
        if seed is not None:
            if "seed" not in params:
                raise ConfigError(
                    f"experiment {self.name!r} does not take a seed"
                )
            kwargs["seed"] = seed
        if obs is not None and "obs" in params:
            kwargs["obs"] = obs
        return self.runner(**kwargs)

    # -- normalized requests -------------------------------------------------

    def normalize(
        self,
        seed: int | None = None,
        overrides: Mapping[str, object] | None = None,
    ) -> JobRequest:
        """Fold an invocation into the one canonical :class:`JobRequest`.

        This is the single spec-construction path shared by the CLI
        subcommands, the registry and :class:`repro.api.Client`:

        * ``seed`` is validated against the runner signature and resolved
          to its effective value (the spec default when not given);
        * every override name is validated against the runner signature
          (an unknown knob is a :class:`~repro.errors.ConfigError`, not a
          ``TypeError`` deep inside a worker process);
        * override values are canonicalized to JSON types (tuples become
          lists) so equal requests fingerprint equally regardless of how
          the caller spelled them;
        * non-semantic knobs (:data:`NONSEMANTIC_OVERRIDES`) are split
          out of the fingerprint-relevant set.
        """
        from repro.obs.export import _json_safe

        params = inspect.signature(self.runner).parameters
        if seed is not None and "seed" not in params:
            raise ConfigError(f"experiment {self.name!r} does not take a seed")
        resolved_seed = self.seed if seed is None else int(seed)
        semantic: dict[str, object] = {}
        extras: dict[str, object] = {}
        for key, value in dict(overrides or {}).items():
            if key in ("seed", "obs"):
                raise ConfigError(
                    f"pass {key!r} as its own argument, not as an override"
                )
            if key not in params:
                known = ", ".join(k for k in params if k not in ("obs",))
                raise ConfigError(
                    f"experiment {self.name!r} has no knob {key!r} "
                    f"(known: {known})"
                )
            target = extras if key in NONSEMANTIC_OVERRIDES else semantic
            target[key] = _json_safe(value)
        if self.canonicalize is not None:
            semantic, moved = self.canonicalize(semantic)
            extras.update(moved)
        return JobRequest(
            name=self.name,
            result_name=self.result_name,
            seed=resolved_seed,
            overrides=tuple(sorted(semantic.items())),
            extras=tuple(sorted(extras.items())),
        )

    @staticmethod
    def from_args(
        name: str,
        seed: int | None = None,
        overrides: Mapping[str, object] | None = None,
    ) -> JobRequest:
        """Resolve ``name`` in the job registry and normalize in one step.

        The convenience the CLI front ends use: ``repro experiment``,
        ``repro faults``, ``repro varbench`` and ``repro submit`` all
        build their requests through this path (there is no per-subcommand
        parsing of experiment knobs any more).
        """
        return resolve_job_spec(name).normalize(seed=seed, overrides=overrides)

    def run_request(self, request: JobRequest) -> object:
        """Execute a normalized request exactly as :meth:`run` would."""
        if request.name != self.name:
            raise ConfigError(
                f"request for {request.name!r} handed to spec {self.name!r}"
            )
        return self.runner(**request.kwargs())


def run(spec: ExperimentSpec, obs: "Observability | None" = None) -> object:
    """Normalized entry point: run ``spec`` with its default arguments.

    A module-level pure function so ``run_trials(run, specs, jobs=N)``
    can fan a list of specs out over worker processes.
    """
    return spec.run(obs=obs)


@dataclass(frozen=True)
class ResultArtifacts:
    """The two byte-exact artefacts a finished experiment persists.

    Rendering is separated from writing so the job service can store the
    artefacts content-addressed and later serve a cache hit that is
    byte-identical to a fresh run — both paths call
    :func:`persist_artifacts` on the same strings.
    """

    result_name: str
    text: str
    manifest_text: str

    def to_json(self) -> dict[str, object]:
        return {
            "result_name": self.result_name,
            "text": self.text,
            "manifest_text": self.manifest_text,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "ResultArtifacts":
        return cls(
            result_name=str(data["result_name"]),
            text=str(data["text"]),
            manifest_text=str(data["manifest_text"]),
        )


def render_artifacts(result: object) -> ResultArtifacts:
    """Render a result object into its persistable artefact bytes.

    Seed and config provenance are taken from the result object when it
    carries them (``result.seed`` / ``result.config``), which keeps
    manifests of provenance-free results byte-identical to those the
    harness has always produced.
    """
    from repro.obs.manifest import build_manifest, manifest_text

    text = result.render() + "\n"
    name = type(result).__name__.lstrip("_")
    manifest = build_manifest(
        name=name,
        seed=getattr(result, "seed", None),
        config=getattr(result, "config", None),
        results_text=text,
    )
    return ResultArtifacts(name, text, manifest_text(manifest))


def persist_artifacts(artifacts: ResultArtifacts, directory: str | Path) -> Path:
    """Write rendered artefacts into ``directory`` (atomic per file).

    Each file goes through a temp-file + ``os.replace`` rename
    (:mod:`repro._atomic`), so a killed worker can never leave a
    truncated results file for a later reader to mistake for a complete
    one.
    """
    directory = Path(directory)
    directory.mkdir(exist_ok=True)
    path = directory / f"{artifacts.result_name}.txt"
    atomic_write_text(path, artifacts.text)
    atomic_write_text(
        directory / f"{artifacts.result_name}.manifest.json",
        artifacts.manifest_text,
    )
    return path


def persist_result(result: object, directory: str | Path) -> Path:
    """Archive a result exactly as the benchmark harness does.

    Writes ``<directory>/<Type>.txt`` (rendered table + newline) and the
    paired deterministic manifest, both via atomic renames.
    """
    return persist_artifacts(render_artifacts(result), directory)


def _build_registry() -> dict[str, ExperimentSpec]:
    from repro import experiments as exp
    from repro.experiments.ext_faults import run_ext_faults
    from repro.experiments.ext_trace_replay import (
        _canonicalize_trace as _canonicalize_trace_override,
    )

    specs = [
        ExperimentSpec(
            "table1",
            "anomaly inventory with induced per-metric deviations",
            exp.run_table1,
            "Table1Result",
        ),
        ExperimentSpec(
            "table2",
            "proxy-app resource characterisation (Table 2)",
            exp.run_table2,
            "Table2Result",
        ),
        ExperimentSpec(
            "fig2",
            "cpuoccupy utilisation sweep vs application slowdown",
            exp.run_fig2,
            "Fig2Result",
        ),
        ExperimentSpec(
            "fig3",
            "cachecopy slowdown on both machine flavours",
            exp.run_fig3,
            "Fig3Result",
        ),
        ExperimentSpec(
            "fig4",
            "membw instance-count sweep vs memory bandwidth",
            exp.run_fig4,
            "Fig4Result",
        ),
        ExperimentSpec(
            "fig5",
            "memleak/memeater footprint growth and OOM behaviour",
            exp.run_fig5,
            "Fig5Result",
        ),
        ExperimentSpec(
            "fig6",
            "netoccupy impact under static vs adaptive routing",
            exp.run_fig6,
            "Fig6Result",
        ),
        ExperimentSpec(
            "fig7",
            "iobandwidth/iometadata impact on shared-filesystem clients",
            exp.run_fig7,
            "Fig7Result",
        ),
        ExperimentSpec(
            "fig8",
            "runtime matrix: every app against every anomaly",
            exp.run_fig8,
            "Fig8Result",
        ),
        ExperimentSpec(
            "fig9",
            "anomaly diagnosis F1 vs training-set size",
            exp.run_fig9,
            "Fig9Result",
            seed=0,
        ),
        ExperimentSpec(
            "fig10",
            "anomaly diagnosis confusion matrix",
            exp.run_fig10,
            "Fig10Result",
            seed=0,
        ),
        ExperimentSpec(
            "fig11_12",
            "RR vs WBAS allocation under anomalies",
            exp.run_fig11_12,
            "Fig11_12Result",
        ),
        ExperimentSpec(
            "fig13",
            "load balancing away from a cpuoccupy-squatted core",
            exp.run_fig13,
            "Fig13Result",
        ),
        ExperimentSpec(
            "ext_dragonfly",
            "netoccupy on a dragonfly topology (extension)",
            exp.run_ext_dragonfly,
            "DragonflyResult",
        ),
        ExperimentSpec(
            "ext_faults",
            "fault-injection sweep: success rate, goodput, makespan "
            "with/without checkpointing (extension)",
            run_ext_faults,
            "FaultsResult",
            seed=1,
        ),
        ExperimentSpec(
            "ext_importance",
            "diagnosis feature-importance ranking (extension)",
            exp.run_ext_importance,
            "ImportanceResult",
            seed=4,
        ),
        ExperimentSpec(
            "ext_jitter",
            "OS jitter scaling with node count (extension)",
            exp.run_ext_jitter,
            "JitterResult",
            seed=3,
        ),
        ExperimentSpec(
            "ext_jobstream",
            "job-stream scheduling under anomalies (extension)",
            exp.run_ext_jobstream,
            "JobStreamResult",
        ),
        ExperimentSpec(
            "ext_lustre",
            "NFS vs Lustre-like metadata isolation (extension)",
            exp.run_ext_lustre,
            "LustreResult",
        ),
        ExperimentSpec(
            "ext_online",
            "online anomaly detection latency (extension)",
            exp.run_ext_online,
            "OnlineResult",
            seed=6,
        ),
        ExperimentSpec(
            "ext_variability",
            "induced run-to-run variability report (extension)",
            exp.run_ext_variability,
            "VariabilityResult",
            seed=5,
        ),
        ExperimentSpec(
            "trace_replay",
            "replay a generated or recorded workload trace (extension)",
            exp.run_trace_replay,
            "TraceReplayResult",
            seed=0,
            canonicalize=_canonicalize_trace_override,
        ),
    ]
    return {spec.name: spec for spec in specs}


EXPERIMENT_REGISTRY: dict[str, ExperimentSpec] = _build_registry()


def get_experiment(name: str) -> ExperimentSpec:
    """Look up an experiment by name (case-insensitive)."""
    for key, spec in EXPERIMENT_REGISTRY.items():
        if key.lower() == name.lower():
            return spec
    known = ", ".join(sorted(EXPERIMENT_REGISTRY))
    raise ConfigError(f"unknown experiment {name!r} (known: {known})")


def _build_service_jobs() -> dict[str, ExperimentSpec]:
    """Job specs the service accepts beyond the figure/table registry.

    ``repro experiment --list`` deliberately keeps showing only the
    paper's figures and tables; these extra specs are reachable through
    :func:`resolve_job_spec` (the Client / ``repro submit`` namespace).
    """
    from repro.varbench import run_varbench

    specs = [
        ExperimentSpec(
            "varbench",
            "Varbench-style induced run-to-run variability measurement",
            run_varbench,
            "VarbenchResult",
            seed=0,
        ),
    ]
    return {spec.name: spec for spec in specs}


#: extra service-only job specs (lazy: built on first resolve)
_SERVICE_JOBS: dict[str, ExperimentSpec] = {}


def job_registry() -> dict[str, ExperimentSpec]:
    """Every spec the job service accepts, keyed by name."""
    if not _SERVICE_JOBS:
        _SERVICE_JOBS.update(_build_service_jobs())
    return {**EXPERIMENT_REGISTRY, **_SERVICE_JOBS}


def resolve_job_spec(name: str) -> ExperimentSpec:
    """Look up a job spec by name across the full service namespace."""
    registry = job_registry()
    for key, spec in registry.items():
        if key.lower() == name.lower():
            return spec
    known = ", ".join(sorted(registry))
    raise ConfigError(f"unknown job {name!r} (known: {known})")
