"""Experiment registry: one :class:`ExperimentSpec` per table/figure.

Mirrors :mod:`repro.apps.registry`: every ``fig*``/``table*``/``ext_*``
module registers here under a short name (``fig8``, ``table1``,
``ext_faults``), and all front ends — the ``repro experiment`` CLI, the
pytest benchmark harness, and :func:`repro.parallel.run_trials` sweeps —
drive experiments through the same normalized interface::

    spec = get_experiment("fig8")
    result = run(spec)            # or run(spec, obs=...) / spec(seed=...)
    persist_result(result, "results/")

:func:`run` is a plain importable function of ``(spec, obs)``, so a list
of specs can be handed straight to ``run_trials(run, specs, jobs=N)``.
Runners keep their historical keyword signatures; the spec layer adapts:
``seed``/``obs`` are forwarded only to runners that accept them, and
results persist byte-identically to what the benchmark harness has always
written (text table + deterministic manifest).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigError
from repro.experiments.common import write_result_manifest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.observability import Observability


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment.

    Attributes
    ----------
    name:
        Registry key (``fig8``, ``ext_faults``, ...).
    description:
        One-line summary shown by ``repro experiment --list``.
    runner:
        The module's ``run_*`` function; returns a result object with a
        ``render()`` method.
    result_name:
        Basename of the persisted artefacts: ``results/<result_name>.txt``
        and ``results/<result_name>.manifest.json``.
    seed:
        The runner's default seed, or None for seedless experiments.
    """

    name: str
    description: str
    runner: Callable[..., object]
    result_name: str
    seed: int | None = None

    def result_path(self, directory: str | Path) -> Path:
        return Path(directory) / f"{self.result_name}.txt"

    def manifest_path(self, directory: str | Path) -> Path:
        return Path(directory) / f"{self.result_name}.manifest.json"

    @property
    def takes_seed(self) -> bool:
        return "seed" in inspect.signature(self.runner).parameters

    def run(
        self,
        seed: int | None = None,
        obs: "Observability | None" = None,
        **overrides: object,
    ) -> object:
        """Run with normalized arguments.

        ``seed`` and ``obs`` are forwarded only when the runner accepts a
        parameter of that name (passing a seed to a seedless experiment is
        an error, not a silent no-op); ``overrides`` go through verbatim.
        """
        params = inspect.signature(self.runner).parameters
        kwargs = dict(overrides)
        if seed is not None:
            if "seed" not in params:
                raise ConfigError(
                    f"experiment {self.name!r} does not take a seed"
                )
            kwargs["seed"] = seed
        if obs is not None and "obs" in params:
            kwargs["obs"] = obs
        return self.runner(**kwargs)


def run(spec: ExperimentSpec, obs: "Observability | None" = None) -> object:
    """Normalized entry point: run ``spec`` with its default arguments.

    A module-level pure function so ``run_trials(run, specs, jobs=N)``
    can fan a list of specs out over worker processes.
    """
    return spec.run(obs=obs)


def persist_result(result: object, directory: str | Path) -> Path:
    """Archive a result exactly as the benchmark harness does.

    Writes ``<directory>/<Type>.txt`` (rendered table + newline) and the
    paired deterministic manifest.  Seed and config provenance are taken
    from the result object when it carries them (``result.seed`` /
    ``result.config``), which keeps manifests of provenance-free results
    byte-identical to those the harness has always produced.
    """
    directory = Path(directory)
    directory.mkdir(exist_ok=True)
    text = result.render() + "\n"
    name = type(result).__name__.lstrip("_")
    path = directory / f"{name}.txt"
    path.write_text(text)
    write_result_manifest(
        directory,
        name,
        text,
        seed=getattr(result, "seed", None),
        config=getattr(result, "config", None),
    )
    return path


def _build_registry() -> dict[str, ExperimentSpec]:
    from repro import experiments as exp
    from repro.experiments.ext_faults import run_ext_faults

    specs = [
        ExperimentSpec(
            "table1",
            "anomaly inventory with induced per-metric deviations",
            exp.run_table1,
            "Table1Result",
        ),
        ExperimentSpec(
            "table2",
            "proxy-app resource characterisation (Table 2)",
            exp.run_table2,
            "Table2Result",
        ),
        ExperimentSpec(
            "fig2",
            "cpuoccupy utilisation sweep vs application slowdown",
            exp.run_fig2,
            "Fig2Result",
        ),
        ExperimentSpec(
            "fig3",
            "cachecopy slowdown on both machine flavours",
            exp.run_fig3,
            "Fig3Result",
        ),
        ExperimentSpec(
            "fig4",
            "membw instance-count sweep vs memory bandwidth",
            exp.run_fig4,
            "Fig4Result",
        ),
        ExperimentSpec(
            "fig5",
            "memleak/memeater footprint growth and OOM behaviour",
            exp.run_fig5,
            "Fig5Result",
        ),
        ExperimentSpec(
            "fig6",
            "netoccupy impact under static vs adaptive routing",
            exp.run_fig6,
            "Fig6Result",
        ),
        ExperimentSpec(
            "fig7",
            "iobandwidth/iometadata impact on shared-filesystem clients",
            exp.run_fig7,
            "Fig7Result",
        ),
        ExperimentSpec(
            "fig8",
            "runtime matrix: every app against every anomaly",
            exp.run_fig8,
            "Fig8Result",
        ),
        ExperimentSpec(
            "fig9",
            "anomaly diagnosis F1 vs training-set size",
            exp.run_fig9,
            "Fig9Result",
            seed=0,
        ),
        ExperimentSpec(
            "fig10",
            "anomaly diagnosis confusion matrix",
            exp.run_fig10,
            "Fig10Result",
            seed=0,
        ),
        ExperimentSpec(
            "fig11_12",
            "RR vs WBAS allocation under anomalies",
            exp.run_fig11_12,
            "Fig11_12Result",
        ),
        ExperimentSpec(
            "fig13",
            "load balancing away from a cpuoccupy-squatted core",
            exp.run_fig13,
            "Fig13Result",
        ),
        ExperimentSpec(
            "ext_dragonfly",
            "netoccupy on a dragonfly topology (extension)",
            exp.run_ext_dragonfly,
            "DragonflyResult",
        ),
        ExperimentSpec(
            "ext_faults",
            "fault-injection sweep: success rate, goodput, makespan "
            "with/without checkpointing (extension)",
            run_ext_faults,
            "FaultsResult",
            seed=1,
        ),
        ExperimentSpec(
            "ext_importance",
            "diagnosis feature-importance ranking (extension)",
            exp.run_ext_importance,
            "ImportanceResult",
            seed=4,
        ),
        ExperimentSpec(
            "ext_jitter",
            "OS jitter scaling with node count (extension)",
            exp.run_ext_jitter,
            "JitterResult",
            seed=3,
        ),
        ExperimentSpec(
            "ext_jobstream",
            "job-stream scheduling under anomalies (extension)",
            exp.run_ext_jobstream,
            "JobStreamResult",
        ),
        ExperimentSpec(
            "ext_lustre",
            "NFS vs Lustre-like metadata isolation (extension)",
            exp.run_ext_lustre,
            "LustreResult",
        ),
        ExperimentSpec(
            "ext_online",
            "online anomaly detection latency (extension)",
            exp.run_ext_online,
            "OnlineResult",
            seed=6,
        ),
        ExperimentSpec(
            "ext_variability",
            "induced run-to-run variability report (extension)",
            exp.run_ext_variability,
            "VariabilityResult",
            seed=5,
        ),
    ]
    return {spec.name: spec for spec in specs}


EXPERIMENT_REGISTRY: dict[str, ExperimentSpec] = _build_registry()


def get_experiment(name: str) -> ExperimentSpec:
    """Look up an experiment by name (case-insensitive)."""
    for key, spec in EXPERIMENT_REGISTRY.items():
        if key.lower() == name.lower():
            return spec
    known = ", ".join(sorted(EXPERIMENT_REGISTRY))
    raise ConfigError(f"unknown experiment {name!r} (known: {known})")
