"""Extension: allocation policies over a job stream.

Figs. 11-12 compare RR and WBAS on a single job.  Production schedulers
face a *stream* of jobs; an anomaly-blind policy keeps walking into the
same bad nodes.  This extension submits a sequence of jobs (node-exclusive
space sharing) to an 8-node system with cpuoccupy and memleak anomalies
present and compares the per-job runtimes and the makespan under both
policies — the systematic policy-evaluation workflow the paper advocates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps import get_app
from repro.cluster import Cluster
from repro.core import CpuOccupy, MemLeak
from repro.experiments.common import format_table
from repro.monitoring import MetricService
from repro.scheduling import JobScheduler, RoundRobin, WellBalancedAllocation
from repro.units import GB, MB


@dataclass
class JobStreamResult:
    runtimes: dict[str, list[float]]  # policy -> per-job runtimes
    makespans: dict[str, float]
    anomalous_hits: dict[str, int]  # jobs allocated onto an anomalous node

    def render(self) -> str:
        rows = []
        for policy in self.runtimes:
            rows.append(
                (
                    policy,
                    float(np.mean(self.runtimes[policy])),
                    self.makespans[policy],
                    self.anomalous_hits[policy],
                )
            )
        return format_table(
            ["policy", "mean job time (s)", "makespan (s)", "anomalous allocations"],
            rows,
            title="Extension: job stream under anomalies (RR vs WBAS)",
        )


def _run_stream(policy_cls, n_jobs: int, iterations: int) -> tuple[list[float], float, int]:
    cluster = Cluster.voltrino(num_nodes=8)
    service = MetricService(cluster)
    service.attach(end=10_000_000)
    sibling = cluster.spec.sibling_of(0)
    CpuOccupy(utilization=100).launch(cluster, "node0", core=sibling)
    leak_target = cluster.node(2).memory.free - 1 * GB
    MemLeak(buffer_size=512 * MB, rate=50, limit=leak_target).launch(
        cluster, "node2", core=0
    )
    cluster.sim.run(until=60)

    scheduler = JobScheduler(cluster, service)
    policy = policy_cls()
    jobs = []
    t0 = cluster.sim.now
    for j in range(n_jobs):
        app = get_app("sw4lite").scaled(iterations=iterations)
        _, job = scheduler.submit(app, policy, n_nodes=2, ranks_per_node=4, seed=j)
        jobs.append(job)
        # two jobs fit side by side on the 6 anomaly-free nodes; run the
        # stream as pairs: submit two, wait for both
        if j % 2 == 1:
            cluster.sim.run(
                until=cluster.sim.now + 10_000_000,
                stop_when=lambda: all(jb.finished for jb in jobs),
            )
    cluster.sim.run(until=cluster.sim.now + 10_000_000,
                    stop_when=lambda: all(jb.finished for jb in jobs))
    service.detach()
    runtimes = [job.runtime() for job in jobs]
    makespan = max(
        p.end_time for job in jobs for p in job.procs if p.end_time is not None
    ) - t0
    hits = sum(
        1
        for allocation in scheduler.history
        if {"node0", "node2"} & set(allocation.nodes)
    )
    return runtimes, makespan, hits


def run_ext_jobstream(n_jobs: int = 6, iterations: int = 20) -> JobStreamResult:
    """Run the same job stream under both allocation policies."""
    runtimes, makespans, hits = {}, {}, {}
    for policy_cls in (WellBalancedAllocation, RoundRobin):
        r, m, h = _run_stream(policy_cls, n_jobs, iterations)
        runtimes[policy_cls.name] = r
        makespans[policy_cls.name] = m
        hits[policy_cls.name] = h
    return JobStreamResult(
        runtimes=runtimes, makespans=makespans, anomalous_hits=hits
    )
