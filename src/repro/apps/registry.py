"""Application registry keyed by the paper's app names."""

from __future__ import annotations

from repro.apps.base import Application, AppProfile
from repro.apps.proxies import ALL_PROXIES
from repro.errors import ConfigError

APP_REGISTRY: dict[str, AppProfile] = {p.name: p for p in ALL_PROXIES}


def get_app(name: str) -> Application:
    """Look up an application by name (case-insensitive)."""
    for key, profile in APP_REGISTRY.items():
        if key.lower() == name.lower():
            return Application(profile)
    known = ", ".join(sorted(APP_REGISTRY))
    raise ConfigError(f"unknown application {name!r} (known: {known})")
