"""miniMD: molecular dynamics proxy (Mantevo).

Table 2: CPU-intensive.  Lennard-Jones force loops with neighbour lists —
compute-dense, cache-friendly, tiny bandwidth demand.
"""

from repro.apps.base import AppProfile
from repro.units import GB, GB10, KB, MB

MINIMD = AppProfile(
    name="miniMD",
    iterations=150,
    iter_seconds=1.2,
    ips=2.4e9,
    working_set=2.0 * MB,
    cache_intensity=1.5,
    mpki_base=0.25,
    mpki_extra=5.0,
    miss_cpi_penalty=0.9,
    mem_bw=1.0 * GB10,
    mem_bw_extra=1.8 * GB10,
    comm_bytes=256 * KB,
    mem_alloc=0.6 * GB,
    cpu_intensive=True,
)
