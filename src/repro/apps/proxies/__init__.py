"""The eight benchmark applications of the paper's Table 2.

Each module defines one application's :class:`~repro.apps.base.AppProfile`
calibrated to its Table 2 characterisation (CPU-, memory-, and/or
network-intensive) and the paper's baseline runtimes in Fig. 8.
"""

from repro.apps.proxies.cloverleaf import CLOVERLEAF
from repro.apps.proxies.comd import COMD
from repro.apps.proxies.kripke import KRIPKE
from repro.apps.proxies.milc import MILC
from repro.apps.proxies.miniamr import MINIAMR
from repro.apps.proxies.minighost import MINIGHOST
from repro.apps.proxies.minimd import MINIMD
from repro.apps.proxies.sw4lite import SW4LITE

ALL_PROXIES = [
    CLOVERLEAF,
    COMD,
    KRIPKE,
    MILC,
    MINIAMR,
    MINIGHOST,
    MINIMD,
    SW4LITE,
]

__all__ = [
    "ALL_PROXIES",
    "CLOVERLEAF",
    "COMD",
    "KRIPKE",
    "MILC",
    "MINIAMR",
    "MINIGHOST",
    "MINIMD",
    "SW4LITE",
]
