"""SW4lite: seismic-wave propagation kernels (LLNL SW4 proxy).

Table 2: CPU-intensive.  Fourth-order stencils with heavy per-point
arithmetic; the app used in the allocation-policy case study (Figs. 11-12),
where its 4-node runtime is ~322 s without anomalies.
"""

from repro.apps.base import AppProfile
from repro.units import GB, GB10, MB

SW4LITE = AppProfile(
    name="sw4lite",
    iterations=145,
    iter_seconds=2.2,
    ips=2.1e9,
    working_set=4.0 * MB,
    cache_intensity=1.3,
    mpki_base=0.5,
    mpki_extra=6.5,
    miss_cpi_penalty=0.85,
    mem_bw=1.8 * GB10,
    mem_bw_extra=2.2 * GB10,
    comm_bytes=1 * MB,
    mem_alloc=1.2 * GB,
    cpu_intensive=True,
)
