"""Cloverleaf: hydrodynamics proxy (Mantevo).

Table 2: memory-intensive.  Structured-grid Eulerian hydro sweeps stream
large state arrays, so the profile demands high memory bandwidth with a
working set well beyond the L3 share of one core.
"""

from repro.apps.base import AppProfile
from repro.units import GB, GB10, MB

CLOVERLEAF = AppProfile(
    name="cloverleaf",
    iterations=120,
    iter_seconds=2.0,
    ips=1.1e9,
    working_set=30 * MB,
    cache_intensity=1.0,
    mpki_base=12.0,
    mpki_extra=15.0,
    miss_cpi_penalty=0.3,
    mem_bw=9.5 * GB10,
    mem_bw_extra=3.0 * GB10,
    comm_bytes=2 * MB,
    mem_alloc=1.5 * GB,
    mem_intensive=True,
)
