"""miniAMR: adaptive mesh refinement proxy (Mantevo).

Table 2: memory- and network-intensive.  Refinement churn streams blocks
through memory and ships large ghost regions every cycle.
"""

from repro.apps.base import AppProfile
from repro.units import GB, GB10, MB

MINIAMR = AppProfile(
    name="miniAMR",
    iterations=130,
    iter_seconds=1.8,
    ips=1.2e9,
    working_set=24 * MB,
    cache_intensity=1.0,
    mpki_base=10.0,
    mpki_extra=14.0,
    miss_cpi_penalty=0.35,
    mem_bw=8.5 * GB10,
    mem_bw_extra=3.0 * GB10,
    comm_bytes=24 * MB,
    mem_alloc=2.0 * GB,
    mem_intensive=True,
    net_intensive=True,
)
