"""MILC: lattice quantum chromodynamics (MIMD Lattice Computation).

Table 2: CPU- and memory-intensive.  Conjugate-gradient solves on lattice
fields stream large vectors with moderate compute density.
"""

from repro.apps.base import AppProfile
from repro.units import GB, GB10, MB

MILC = AppProfile(
    name="milc",
    iterations=120,
    iter_seconds=2.0,
    ips=1.8e9,
    working_set=20 * MB,
    cache_intensity=1.0,
    mpki_base=8.0,
    mpki_extra=12.0,
    miss_cpi_penalty=0.5,
    mem_bw=7.5 * GB10,
    mem_bw_extra=2.5 * GB10,
    comm_bytes=4 * MB,
    mem_alloc=2.0 * GB,
    cpu_intensive=True,
    mem_intensive=True,
)
