"""miniGhost: finite-difference stencil proxy with halo exchange (Mantevo).

Table 2: memory- and network-intensive.  This is the victim application of
Fig. 3 (cachecopy vs L3 MPKI): its working set (34 MB) fits Voltrino's
40 MiB L3 but slightly overflows Chameleon's 30 MiB L3, so its baseline
and contended MPKI are higher on Chameleon — the contrast the paper shows.
"""

from repro.apps.base import AppProfile
from repro.units import GB, GB10, MB

MINIGHOST = AppProfile(
    name="miniGhost",
    iterations=150,
    iter_seconds=1.6,
    ips=1.3e9,
    working_set=34 * MB,
    cache_intensity=1.0,
    mpki_base=0.6,
    mpki_extra=5.5,
    miss_cpi_penalty=0.4,
    mem_bw=8.0 * GB10,
    mem_bw_extra=3.5 * GB10,
    comm_bytes=16 * MB,
    mem_alloc=1.6 * GB,
    mem_intensive=True,
    net_intensive=True,
)
