"""CoMD: classical molecular dynamics proxy (Mantevo).

Table 2: CPU-intensive.  Force kernels run hot out of small caches — low
memory-bandwidth demand, high instruction throughput, strongly sensitive
to cache eviction and lost CPU cycles (Fig. 8's cachecopy/cpuoccupy rows).
"""

from repro.apps.base import AppProfile
from repro.units import GB, GB10, KB, MB

COMD = AppProfile(
    name="CoMD",
    iterations=100,
    iter_seconds=1.5,
    ips=2.3e9,
    working_set=2.5 * MB,
    cache_intensity=1.4,
    mpki_base=0.3,
    mpki_extra=6.0,
    miss_cpi_penalty=1.0,
    mem_bw=1.2 * GB10,
    mem_bw_extra=2.0 * GB10,
    comm_bytes=512 * KB,
    mem_alloc=0.8 * GB,
    cpu_intensive=True,
)
