"""Kripke: deterministic particle transport proxy (LLNL).

Table 2: CPU- and memory-intensive.  Sweep kernels mix dense compute with
large angular-flux arrays, so the profile sits between the pure-CPU and
pure-memory families.
"""

from repro.apps.base import AppProfile
from repro.units import GB, GB10, MB

KRIPKE = AppProfile(
    name="kripke",
    iterations=130,
    iter_seconds=1.7,
    ips=1.9e9,
    working_set=16 * MB,
    cache_intensity=1.1,
    mpki_base=6.0,
    mpki_extra=10.0,
    miss_cpi_penalty=0.6,
    mem_bw=6.0 * GB10,
    mem_bw_extra=2.5 * GB10,
    comm_bytes=1 * MB,
    mem_alloc=1.8 * GB,
    cpu_intensive=True,
    mem_intensive=True,
)
