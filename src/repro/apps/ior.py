"""The IOR parallel filesystem benchmark (LLNL).

Fig. 7 runs IOR on one Chameleon node while the I/O anomalies hammer the
NFS appliance from four other nodes, and reports three phases:

* **write** — streaming writes of the test file,
* **access** — metadata-heavy open/stat/close sweeps over many small
  files (reported as an effective MB/s of the small-block traffic),
* **read** — streaming reads back.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.errors import ConfigError
from repro.sim.process import Body, IODemand, Segment, SimProcess
from repro.units import KB, MB10


class IORBenchmark:
    """Three-phase IOR run against a shared filesystem.

    Parameters
    ----------
    fs:
        Filesystem name.
    file_bytes:
        Bytes written (and read back) in the streaming phases.
    access_files:
        Files touched by the access phase (one open+stat+close plus one
        4 KiB block each).
    demand_bw:
        Client-side streaming rate when the filesystem is idle.
    """

    PHASES = ("write", "access", "read")
    #: bytes re-read per file in the access sweep (random small reads)
    ACCESS_BLOCK = 256 * KB
    ACCESS_OPS_PER_FILE = 3.0  # open + stat + close
    ACCESS_OP_RATE = 900.0  # ops/s an uncontended client achieves

    def __init__(
        self,
        fs: str = "nfs",
        file_bytes: float = 4_000 * MB10,
        access_files: int = 2_000,
        demand_bw: float = 400 * MB10,
    ) -> None:
        if file_bytes <= 0 or access_files < 1 or demand_bw <= 0:
            raise ConfigError("invalid IOR parameters")
        self.fs = fs
        self.file_bytes = file_bytes
        self.access_files = access_files
        self.demand_bw = demand_bw
        self.proc: SimProcess | None = None
        self._phase_marks: dict[str, tuple[float, float]] = {}

    def body(self, proc: SimProcess) -> Body:
        t0 = proc.now
        yield Segment(
            work=self.file_bytes / self.demand_bw,
            cpu=0.3,
            ips=0.3e9,
            io=IODemand(fs=self.fs, write_bw=self.demand_bw, meta_ops=2.0),
            label="ior write",
        )
        t1 = proc.now
        ops = self.access_files * self.ACCESS_OPS_PER_FILE
        yield Segment(
            work=ops / self.ACCESS_OP_RATE,
            cpu=0.3,
            ips=0.2e9,
            io=IODemand(
                fs=self.fs,
                meta_ops=self.ACCESS_OP_RATE,
                read_bw=self.ACCESS_OP_RATE / self.ACCESS_OPS_PER_FILE * self.ACCESS_BLOCK,
            ),
            label="ior access",
        )
        t2 = proc.now
        yield Segment(
            work=self.file_bytes / self.demand_bw,
            cpu=0.3,
            ips=0.3e9,
            io=IODemand(fs=self.fs, read_bw=self.demand_bw, meta_ops=2.0),
            label="ior read",
        )
        t3 = proc.now
        self._phase_marks = {
            "write": (t0, t1),
            "access": (t1, t2),
            "read": (t2, t3),
        }

    def launch(
        self, cluster: Cluster, node: str | int, core: int = 0, start: float = 0.0
    ) -> SimProcess:
        self.proc = cluster.spawn(
            name=f"ior@{cluster.node(node).name}",
            body=self.body,
            node=cluster.node(node).name,
            core=core,
            at=start,
        )
        return self.proc

    def phase_bandwidth(self) -> dict[str, float]:
        """MB/s per phase (requires a finished run).

        The access phase reports the effective rate of its small-block
        traffic, so metadata starvation shows up on the same axis as the
        streaming phases — matching how Fig. 7 plots all three bars.
        """
        if self.proc is None or not self._phase_marks:
            raise ConfigError("IOR has not finished")
        out: dict[str, float] = {}
        for phase, (a, b) in self._phase_marks.items():
            elapsed = max(b - a, 1e-12)
            if phase == "access":
                nbytes = self.access_files * self.ACCESS_BLOCK
            else:
                nbytes = self.file_bytes
            out[phase] = nbytes / elapsed / MB10
        return out
