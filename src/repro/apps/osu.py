"""OSU point-to-point bandwidth micro-benchmark.

Fig. 6 measures bandwidth between two nodes on different switches while
netoccupy streams between other node pairs.  The benchmark sends a train
of messages of a given size and reports ``bytes / elapsed``; the
achievable uncontended bandwidth follows the classic half-bandwidth-point
curve (small messages are latency-bound).
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.core.netoccupy import message_peak_bw
from repro.errors import ConfigError
from repro.mpi.comm import p2p_transfer
from repro.sim.process import Body, SimProcess


class OSUBandwidth:
    """Measure p2p bandwidth for one message size between two nodes.

    Parameters
    ----------
    message_size:
        Bytes per message.
    messages:
        Messages in the train (the real benchmark uses a 64-deep window;
        in the fluid model a train of blocking sends measures the same
        steady-state rate).
    """

    def __init__(self, message_size: float, messages: int = 64) -> None:
        if message_size <= 0 or messages < 1:
            raise ConfigError("message_size > 0 and messages >= 1 required")
        self.message_size = message_size
        self.messages = messages
        self.proc: SimProcess | None = None
        self._dst: str | None = None

    def body(self, proc: SimProcess) -> Body:
        cluster: Cluster = proc.sim.model.cluster  # type: ignore[attr-defined]
        nic_bw = cluster.node(proc.node).spec.nic_bw
        peak = message_peak_bw(self.message_size, nic_bw)
        assert self._dst is not None
        for i in range(self.messages):
            yield p2p_transfer(
                dst=self._dst,
                nbytes=self.message_size,
                peak_bw=peak,
                label=f"osu msg {i}",
            )

    def launch(
        self,
        cluster: Cluster,
        src: str | int,
        dst: str | int,
        core: int = 0,
        start: float = 0.0,
    ) -> SimProcess:
        self._dst = cluster.node(dst).name
        self.proc = cluster.spawn(
            name=f"osu@{cluster.node(src).name}",
            body=self.body,
            node=cluster.node(src).name,
            core=core,
            at=start,
        )
        return self.proc

    def bandwidth(self) -> float:
        """Measured bandwidth in bytes/s (requires a finished run)."""
        if self.proc is None or not self.proc.state.terminal:
            raise ConfigError("osu benchmark has not finished")
        return self.message_size * self.messages / self.proc.runtime
