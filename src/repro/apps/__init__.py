"""Benchmark applications: Mantevo-style proxies and measurement probes."""

from repro.apps.base import AppJob, AppProfile, Application
from repro.apps.registry import APP_REGISTRY, get_app
from repro.apps.stream import StreamBenchmark
from repro.apps.osu import OSUBandwidth
from repro.apps.ior import IORBenchmark

__all__ = [
    "APP_REGISTRY",
    "AppJob",
    "AppProfile",
    "Application",
    "IORBenchmark",
    "OSUBandwidth",
    "StreamBenchmark",
    "get_app",
]
