"""The STREAM memory-bandwidth benchmark (McCalpin).

Used by Fig. 4: STREAM runs on core 0 while membw/cachecopy instances
occupy the socket's other cores.  The benchmark repeatedly executes triad
sweeps at the single-core bandwidth limit; the "best rate" it reports is
the highest per-iteration bandwidth observed.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.errors import ConfigError
from repro.sim.process import Body, Segment, SimProcess
from repro.units import KB


class StreamBenchmark:
    """Single-rank STREAM: triad sweeps at the core's bandwidth limit.

    Parameters
    ----------
    array_bytes:
        Bytes moved per triad iteration (3 arrays x N elements).
    iterations:
        Triad repetitions; STREAM reports the best (here: measured mean,
        which equals the best in the deterministic fluid model).
    """

    def __init__(self, array_bytes: float = 2.4e9, iterations: int = 10) -> None:
        if array_bytes <= 0 or iterations < 1:
            raise ConfigError("array_bytes > 0 and iterations >= 1 required")
        self.array_bytes = array_bytes
        self.iterations = iterations
        self.proc: SimProcess | None = None

    def body(self, proc: SimProcess) -> Body:
        cluster: Cluster = proc.sim.model.cluster  # type: ignore[attr-defined]
        spec = cluster.node(proc.node).spec
        peak = spec.core_mem_bw
        for it in range(self.iterations):
            yield Segment(
                work=self.array_bytes / peak,
                cpu=1.0,
                ips=0.8e9,
                # Non-cache-resident streaming: tiny footprint, every
                # access misses.
                cache_footprint={"L1": 32 * KB},
                cache_intensity=0.3,
                mpki_base=30.0,
                mem_bw=peak,
                label=f"triad {it}",
            )

    def launch(self, cluster: Cluster, node: str | int, core: int = 0, start: float = 0.0) -> SimProcess:
        self.proc = cluster.spawn(
            name=f"stream@{cluster.node(node).name}:c{core}",
            body=self.body,
            node=node if isinstance(node, str) else f"node{node}",
            core=core,
            at=start,
        )
        return self.proc

    def best_rate(self) -> float:
        """Measured bandwidth in bytes/s (requires a finished run)."""
        if self.proc is None or not self.proc.state.terminal:
            raise ConfigError("stream has not finished")
        return self.proc.counters.get("mem_bytes", 0.0) / self.proc.runtime
