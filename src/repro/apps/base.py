"""Application modelling: profiles, rank bodies, and the job launcher.

Every proxy application in the paper's Table 2 is bulk-synchronous: ranks
compute, exchange halos, and synchronise each iteration.  An
:class:`AppProfile` captures the per-rank, per-iteration resource demands
(calibrated to the Table 2 characterisation), :class:`Application` turns it
into rank bodies, and :class:`AppJob` launches one rank per core across a
set of nodes and reports the job's execution time — the quantity Fig. 8
plots under each anomaly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.cluster.cluster import Cluster
from repro.errors import ConfigError
from repro.mpi.comm import Barrier, p2p_transfer
from repro.sim.process import Body, ProcessState, Segment, SimProcess
from repro.sim.rng import spawn_rng


class CheckpointStore:
    """Completed-iteration marker shared by all ranks of one job.

    A commit at iteration ``k`` means every rank finished iterations
    ``< k`` (ranks commit right after the barrier, so the whole BSP step
    is globally complete).  A restarted job resumes from ``committed``
    instead of iteration 0 — the work a fault destroyed is bounded by the
    checkpoint interval.
    """

    def __init__(self) -> None:
        #: highest globally-complete iteration count saved so far
        self.committed = 0
        #: rank-level commit operations performed (accounting)
        self.commits = 0

    def commit(self, iteration: int) -> None:
        self.committed = max(self.committed, iteration)
        self.commits += 1


@dataclass(frozen=True)
class AppProfile:
    """Per-rank, per-iteration resource demands of one application.

    The three ``*_intensive`` flags are the paper's Table 2
    characterisation; the numeric fields are what produce it (see
    ``experiments/table2_characteristics.py`` for the measured
    verification).
    """

    name: str
    iterations: int
    iter_seconds: float  # nominal compute time per iteration at full speed
    ips: float  # instructions/s while computing
    working_set: float  # bytes of cache-resident data per rank
    cache_intensity: float
    mpki_base: float
    mpki_extra: float
    miss_cpi_penalty: float
    mem_bw: float  # bytes/s demanded from the socket pool
    mem_bw_extra: float  # extra demand at full cache eviction
    comm_bytes: float  # halo bytes sent per rank per iteration
    mem_alloc: float  # resident set per rank (bytes)
    cpu_intensive: bool = False
    mem_intensive: bool = False
    net_intensive: bool = False
    jitter: float = 0.01  # relative per-iteration compute-time jitter

    def __post_init__(self) -> None:
        if self.iterations < 1 or self.iter_seconds <= 0:
            raise ConfigError("iterations >= 1 and iter_seconds > 0 required")
        for fieldname in (
            "ips",
            "working_set",
            "cache_intensity",
            "mpki_base",
            "mpki_extra",
            "miss_cpi_penalty",
            "mem_bw",
            "mem_bw_extra",
            "comm_bytes",
            "mem_alloc",
        ):
            if getattr(self, fieldname) < 0:
                raise ConfigError(f"{fieldname} must be >= 0")

    @property
    def nominal_runtime(self) -> float:
        """Uncontended single-rank runtime (compute only)."""
        return self.iterations * self.iter_seconds


class Application:
    """Turns an :class:`AppProfile` into runnable rank bodies."""

    def __init__(self, profile: AppProfile) -> None:
        self.profile = profile

    @property
    def name(self) -> str:
        return self.profile.name

    def scaled(self, iterations: int | None = None, **overrides) -> "Application":
        """A copy with some profile fields replaced (e.g. short test runs)."""
        profile = self.profile
        if iterations is not None:
            profile = replace(profile, iterations=iterations)
        if overrides:
            profile = replace(profile, **overrides)
        return Application(profile)

    def rank_body(
        self,
        proc: SimProcess,
        rank: int,
        peers: list[tuple[str, int]],
        barrier: Barrier,
        seed: int | None,
        nic_bw: float,
        start_iteration: int = 0,
        checkpoint: "CheckpointStore | None" = None,
        checkpoint_interval: int | None = None,
        checkpoint_cost: float = 0.0,
    ) -> Body:
        """One MPI rank: alloc, iterate compute+halo+barrier, free.

        ``start_iteration`` resumes a restarted rank mid-run; the jitter
        stream is skipped forward so iteration ``i`` draws the same jitter
        whether reached directly or through a restart.  With a
        ``checkpoint`` store and interval, the rank commits after every
        interval-th barrier (optionally paying ``checkpoint_cost`` seconds
        of checkpoint traffic first).
        """
        p = self.profile
        cluster: Cluster = proc.sim.model.cluster  # type: ignore[attr-defined]
        ledger = cluster.node(proc.node).memory
        ledger.alloc(proc.pid, p.mem_alloc)
        rng = spawn_rng(seed, f"{p.name}:rank{rank}")
        for _ in range(start_iteration):
            rng.standard_normal()  # keep per-iteration jitter stable across restarts
        try:
            # Halo partner: the next rank in a ring; transfers only matter
            # when the partner lives on a different node.
            partner_node = peers[(rank + 1) % len(peers)][0] if peers else None
            for it in range(start_iteration, p.iterations):
                jitter = 1.0 + p.jitter * float(rng.standard_normal())
                yield Segment(
                    work=p.iter_seconds * max(0.2, jitter),
                    cpu=1.0,
                    ips=p.ips,
                    cache_footprint={"L3": p.working_set},
                    cache_intensity=p.cache_intensity,
                    mpki_base=p.mpki_base,
                    mpki_extra=p.mpki_extra,
                    miss_cpi_penalty=p.miss_cpi_penalty,
                    mem_bw=p.mem_bw,
                    mem_bw_extra=p.mem_bw_extra,
                    label=f"{p.name} iter {it}",
                )
                if p.comm_bytes > 0 and partner_node is not None and partner_node != proc.node:
                    yield p2p_transfer(
                        dst=partner_node,
                        nbytes=p.comm_bytes,
                        peak_bw=nic_bw * 0.5,
                        label=f"{p.name} halo {it}",
                    )
                yield from barrier.wait()
                # Past the barrier, every rank has finished iteration `it`,
                # so committing it+1 here is globally consistent.
                proc.add_counter("app_iterations", 1.0)
                if (
                    checkpoint is not None
                    and checkpoint_interval is not None
                    and (it + 1) % checkpoint_interval == 0
                    and it + 1 < p.iterations
                ):
                    if checkpoint_cost > 0:
                        yield Segment(
                            work=checkpoint_cost,
                            cpu=0.3,
                            label=f"{p.name} ckpt {it + 1}",
                        )
                    checkpoint.commit(it + 1)
        finally:
            ledger.free_all(proc.pid)


class AppJob:
    """A parallel run of an application on a cluster.

    Parameters
    ----------
    app:
        The application.
    cluster:
        Where to run.
    nodes:
        Node names/indices; ranks are placed round-robin: rank ``r`` goes
        to ``nodes[r % len(nodes)]`` on core ``r // len(nodes)``.
    ranks_per_node:
        Ranks on each node (1 rank per logical core).
    start:
        Launch time.
    seed:
        Seed for per-rank jitter streams.
    checkpoint_interval / checkpoint_cost / checkpoint:
        Enable checkpoint/restart: ranks commit to the (shared) store
        every ``checkpoint_interval`` iterations, paying
        ``checkpoint_cost`` simulated seconds per commit.  Pass the
        previous run's store plus ``start_iteration`` to restart a job
        from its last checkpoint.
    start_iteration:
        First iteration to execute (restart support); ranks skip their
        jitter streams forward so the remaining iterations behave exactly
        as they would have in the original run.
    barrier_timeout / barrier_on_timeout:
        Collective timeout knobs forwarded to the job's
        :class:`~repro.mpi.comm.Barrier`.
    """

    def __init__(
        self,
        app: Application,
        cluster: Cluster,
        nodes: list[str | int],
        ranks_per_node: int = 1,
        start: float = 0.0,
        seed: int | None = None,
        checkpoint_interval: int | None = None,
        checkpoint_cost: float = 0.0,
        checkpoint: CheckpointStore | None = None,
        start_iteration: int = 0,
        barrier_timeout: float | None = None,
        barrier_on_timeout: str = "abort",
    ) -> None:
        if not nodes or ranks_per_node < 1:
            raise ConfigError("need at least one node and one rank per node")
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ConfigError("checkpoint interval must be >= 1")
        if checkpoint_cost < 0:
            raise ConfigError("checkpoint cost must be >= 0")
        if not 0 <= start_iteration <= app.profile.iterations:
            raise ConfigError("start_iteration must be within the iteration count")
        self.app = app
        self.cluster = cluster
        self.node_names = [cluster.node(n).name for n in nodes]
        self.ranks_per_node = ranks_per_node
        self.start = start
        self.seed = seed
        self.checkpoint_interval = checkpoint_interval
        self.checkpoint_cost = checkpoint_cost
        if checkpoint is None and checkpoint_interval is not None:
            checkpoint = CheckpointStore()
        self.checkpoint = checkpoint
        self.start_iteration = start_iteration
        self.barrier_timeout = barrier_timeout
        self.barrier_on_timeout = barrier_on_timeout
        self.procs: list[SimProcess] = []
        self._launched = False

    @classmethod
    def restart_from(
        cls,
        job: "AppJob",
        cluster: Cluster | None = None,
        start: float | None = None,
    ) -> "AppJob":
        """A new job resuming ``job`` from its last committed checkpoint.

        The restarted job reuses the original checkpoint store, seed, and
        placement, so the surviving iterations replay byte-identically
        (the rank bodies skip their jitter streams forward to the resume
        point).  ``cluster`` / ``start`` default to the original job's —
        pass a fresh cluster when the old simulator is wedged or a later
        ``start`` to model restart latency.
        """
        if job.checkpoint is None:
            raise ConfigError("cannot restart a job that never checkpointed")
        return cls(
            app=job.app,
            cluster=cluster if cluster is not None else job.cluster,
            nodes=list(job.node_names),
            ranks_per_node=job.ranks_per_node,
            start=start if start is not None else job.start,
            seed=job.seed,
            checkpoint_interval=job.checkpoint_interval,
            checkpoint_cost=job.checkpoint_cost,
            checkpoint=job.checkpoint,
            start_iteration=job.checkpoint.committed,
            barrier_timeout=job.barrier_timeout,
            barrier_on_timeout=job.barrier_on_timeout,
        )

    @property
    def n_ranks(self) -> int:
        return len(self.node_names) * self.ranks_per_node

    def placement(self) -> list[tuple[str, int]]:
        """(node, core) per rank, round-robin across nodes."""
        out = []
        for r in range(self.n_ranks):
            node = self.node_names[r % len(self.node_names)]
            core = r // len(self.node_names)
            out.append((node, core))
        return out

    def launch(self) -> list[SimProcess]:
        if self._launched:
            raise ConfigError("job already launched")
        self._launched = True
        peers = self.placement()
        barrier = Barrier(
            self.cluster.sim,
            self.n_ranks,
            name=f"{self.app.name}-sync",
            timeout=self.barrier_timeout,
            on_timeout=self.barrier_on_timeout,
        )
        nic_bw = self.cluster.spec.nic_bw
        for rank, (node, core) in enumerate(peers):
            body = (
                lambda proc, _rank=rank: self.app.rank_body(
                    proc,
                    _rank,
                    peers,
                    barrier,
                    self.seed,
                    nic_bw,
                    start_iteration=self.start_iteration,
                    checkpoint=self.checkpoint,
                    checkpoint_interval=self.checkpoint_interval,
                    checkpoint_cost=self.checkpoint_cost,
                )
            )
            self.procs.append(
                self.cluster.spawn(
                    name=f"{self.app.name}.r{rank}@{node}",
                    body=body,
                    node=node,
                    core=core,
                    at=self.start,
                )
            )
        own_pids = {p.pid for p in self.procs}

        def _on_terminate(proc: SimProcess) -> None:
            # A killed rank must not deadlock its surviving siblings at the
            # barrier; DONE ranks already left the collective normally.
            if proc.state is ProcessState.KILLED and proc.pid in own_pids:
                barrier.leave(proc)

        self.cluster.sim.add_terminate_hook(_on_terminate)
        return self.procs

    @property
    def finished(self) -> bool:
        return bool(self.procs) and all(p.state.terminal for p in self.procs)

    @property
    def crashed(self) -> bool:
        return any(p.state.name == "KILLED" for p in self.procs)

    def runtime(self) -> float:
        """Job execution time: launch to last rank completion."""
        if not self.finished:
            raise ConfigError(f"job {self.app.name} has not finished")
        end = max(p.end_time for p in self.procs if p.end_time is not None)
        return end - self.start

    def run(self, timeout: float = math.inf) -> float:
        """Launch (if needed), simulate until the job completes, and
        return the runtime.

        The simulation stops as soon as every rank finishes — recurring
        background events (monitoring ticks, other anomalies) do not keep
        it running to the timeout.
        """
        if not self._launched:
            self.launch()
        sim = self.cluster.sim
        sim.run(until=self.start + timeout, stop_when=lambda: self.finished)
        return self.runtime()
