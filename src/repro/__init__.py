"""HPAS reproduction: an HPC Performance Anomaly Suite on a simulated substrate.

This package reproduces *HPAS: An HPC Performance Anomaly Suite for
Reproducing Performance Variations* (Ates et al., ICPP 2019) in pure Python.
Because the original suite creates *physical* contention on real hardware —
which a Python process cannot do precisely — the reproduction runs on a
deterministic fluid-rate simulation of an HPC cluster (CPU, cache hierarchy,
memory, Aries-like network, shared filesystem) and implements the full HPAS
anomaly suite, benchmark applications, LDMS-style monitoring, the ML
diagnosis pipeline, allocation policies and the load-balancing runtime on
top of that substrate.

Public entry points
-------------------
:class:`repro.cluster.Cluster`
    Build a simulated machine (Voltrino- or Chameleon-like).
:mod:`repro.core`
    The eight HPAS anomaly generators plus the injector.
:mod:`repro.apps`
    Benchmark applications (Mantevo proxies, STREAM, OSU, IOR, stencil).
:mod:`repro.experiments`
    One callable per paper figure/table.
"""

from repro.version import __version__

__all__ = ["__version__"]
