"""Varbench-style performance-variability measurement.

Kocoloski & Lange's *Varbench* (ICPP 2018, discussed in the paper's
related work) measures the variability an application *experiences* by
running it repeatedly and summarising the run-time distribution.  This
module reproduces that workflow on the simulated substrate so HPAS
anomalies can be characterised by the variability they induce::

    report = VariabilityReport.measure(
        app_name="miniGhost",
        anomaly_factory=lambda: make_anomaly("cachecopy"),
        repetitions=10,
    )
    report.write()              # summary via repro.output.OutputWriter
    cov = report.coefficient_of_variation

Repetitions differ through the application's per-rank jitter stream (a
fresh seed per repetition) and, when an anomaly factory is given, through
a randomised anomaly start offset — matching how real systems encounter
anomalies at arbitrary phases of a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.apps import AppJob, get_app
from repro.cluster import Cluster
from repro.core.anomaly import Anomaly
from repro.errors import ConfigError
from repro.output import OutputWriter
from repro.parallel import run_trials
from repro.sim.rng import spawn_rng


@dataclass(frozen=True)
class _Trial:
    """One repetition's full configuration (picklable worker payload)."""

    app_name: str
    iterations: int
    nodes: int
    ranks_per_node: int
    job_seed: int
    anomaly: Anomaly | None
    anomaly_start: float


def _run_trial(trial: _Trial) -> float:
    """Execute one repetition; a pure function of the trial payload."""
    cluster = Cluster.voltrino(num_nodes=max(trial.nodes, 4))
    app = get_app(trial.app_name).scaled(iterations=trial.iterations)
    job = AppJob(
        app,
        cluster,
        nodes=list(range(trial.nodes)),
        ranks_per_node=trial.ranks_per_node,
        seed=trial.job_seed,
    )
    job.launch()
    if trial.anomaly is not None:
        # Collide with rank 0's core: the random arrival phase is what
        # turns a deterministic anomaly into run-to-run variability.
        trial.anomaly.launch(cluster, node="node0", core=0, start=trial.anomaly_start)
    return job.run(timeout=1e7)


@dataclass(frozen=True)
class VariabilityReport:
    """Run-time distribution summary for repeated runs of one workload."""

    app: str
    anomaly: str
    runtimes: tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.runtimes))

    @property
    def std(self) -> float:
        return float(np.std(self.runtimes))

    @property
    def coefficient_of_variation(self) -> float:
        """CoV = std/mean — Varbench's headline number."""
        return self.std / self.mean if self.mean > 0 else 0.0

    @property
    def spread(self) -> float:
        """(max - min) / min: the "more than 100% variation" measure of
        Skinner & Kramer that motivates the paper's introduction."""
        lo = min(self.runtimes)
        return (max(self.runtimes) - lo) / lo if lo > 0 else 0.0

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.runtimes, q))

    def describe(self) -> list[str]:
        """Human-readable summary lines (Varbench's report shape)."""
        return [
            f"app={self.app} anomaly={self.anomaly} reps={len(self.runtimes)}",
            f"mean={self.mean:.3f}s std={self.std:.3f}s "
            f"CoV={self.coefficient_of_variation:.4f} spread={self.spread:.4f}",
            f"p05={self.percentile(5):.3f}s p50={self.percentile(50):.3f}s "
            f"p95={self.percentile(95):.3f}s",
        ]

    def write(self, writer: OutputWriter | None = None) -> None:
        """Emit :meth:`describe` through the sanctioned output layer."""
        (writer or OutputWriter()).lines(self.describe())

    @classmethod
    def measure(
        cls,
        app_name: str,
        anomaly_factory: Callable[[], Anomaly] | None = None,
        repetitions: int = 10,
        iterations: int = 20,
        nodes: int = 4,
        ranks_per_node: int = 4,
        seed: int = 0,
        jobs: int = 1,
    ) -> "VariabilityReport":
        """Run the workload ``repetitions`` times and summarise runtimes.

        ``jobs`` fans repetitions out over worker processes via
        :func:`repro.parallel.run_trials`.  All randomness — the anomaly
        instances and their arrival phases — is drawn *here*, in the
        parent, in repetition order, so the runtimes are byte-identical
        for every ``jobs`` value.
        """
        if repetitions < 2:
            raise ConfigError("need at least 2 repetitions to measure variability")
        rng = spawn_rng(seed, f"varbench:{app_name}")
        nominal = get_app(app_name).scaled(iterations=iterations).profile.nominal_runtime
        trials = []
        anomaly_name = "none"
        for rep in range(repetitions):
            anomaly = None
            start = 0.0
            if anomaly_factory is not None:
                anomaly = anomaly_factory()
                anomaly_name = anomaly.name
                start = float(rng.uniform(0.0, nominal / 2))
            trials.append(
                _Trial(
                    app_name=app_name,
                    iterations=iterations,
                    nodes=nodes,
                    ranks_per_node=ranks_per_node,
                    job_seed=seed * 1000 + rep,
                    anomaly=anomaly,
                    anomaly_start=start,
                )
            )
        runtimes = run_trials(_run_trial, trials, jobs=jobs)
        return cls(app=app_name, anomaly=anomaly_name, runtimes=tuple(runtimes))


@dataclass(frozen=True)
class VarbenchResult:
    """Registry-shaped wrapper: a variability report with ``render()``.

    ``render()`` returns exactly the lines ``VariabilityReport.write``
    prints, so the ``repro varbench`` CLI produces byte-identical stdout
    whether it calls the report directly (legacy) or routes through the
    job service.  ``seed``/``config`` feed the persisted manifest.
    """

    report: VariabilityReport
    seed: int

    @property
    def config(self) -> dict[str, object]:
        return {
            "app": self.report.app,
            "anomaly": self.report.anomaly,
            "repetitions": len(self.report.runtimes),
        }

    def render(self) -> str:
        return "\n".join(self.report.describe())


def run_varbench(
    app: str = "miniGhost",
    anomaly: str | None = None,
    reps: int = 10,
    iterations: int = 20,
    seed: int = 0,
    jobs: int = 1,
) -> VarbenchResult:
    """Run a variability measurement as a registry job.

    The importable runner behind the ``varbench`` entry of the job
    registry (:func:`repro.experiments.registry.resolve_job_spec`); the
    ``repro varbench`` CLI is a thin adapter over this via
    :class:`repro.api.Client`.
    """
    from repro.core import make_anomaly

    factory = None if anomaly is None else (lambda: make_anomaly(anomaly))
    report = VariabilityReport.measure(
        app_name=app,
        anomaly_factory=factory,
        repetitions=reps,
        iterations=iterations,
        seed=seed,
        jobs=jobs,
    )
    return VarbenchResult(report=report, seed=seed)
