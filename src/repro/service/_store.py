"""Content-addressed result store (internal).

Entries are keyed by the job fingerprint (:mod:`._fingerprint`) and hold
the exact artefact bytes a fresh run would persist::

    <store>/ab/abcdef.../result.txt       # rendered table + newline
    <store>/ab/abcdef.../manifest.json    # canonical run manifest
    <store>/ab/abcdef.../record.json      # fingerprint key + provenance

Every file is written with temp-file + ``os.replace`` renames, and
``record.json`` is written **last** — its presence is the commit marker.
A worker killed mid-``put`` leaves at worst an uncommitted entry that
:meth:`ResultStore.get` ignores and a later ``put`` overwrites, so the
store can never serve a truncated artefact as a cache hit (the
``result_cache`` differential oracle in :mod:`repro.check` asserts the
stronger property: a served hit is byte-identical to a fresh run).

Invalidation is by construction: the fingerprint keys on package version
and backend, so stale entries are simply never looked up again.  Delete
the store directory to reclaim space.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro._atomic import atomic_write_text
from repro.errors import ServiceError
from repro.experiments.registry import ResultArtifacts, persist_artifacts

#: filenames inside one store entry
RESULT_FILE = "result.txt"
MANIFEST_FILE = "manifest.json"
RECORD_FILE = "record.json"


@dataclass(frozen=True)
class StoredResult:
    """One committed cache entry."""

    fingerprint: str
    artifacts: ResultArtifacts
    record: Mapping[str, object]


class ResultStore:
    """Content-addressed, crash-safe store of whole-run artefacts."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: in-memory counters (this process's hits/misses/puts)
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def entry_dir(self, fingerprint: str) -> Path:
        if len(fingerprint) < 3:
            raise ServiceError(f"malformed fingerprint {fingerprint!r}")
        return self.directory / fingerprint[:2] / fingerprint

    def __contains__(self, fingerprint: str) -> bool:
        return (self.entry_dir(fingerprint) / RECORD_FILE).exists()

    def get(self, fingerprint: str) -> StoredResult | None:
        """Return the committed entry, or ``None`` (counts a miss)."""
        entry = self.entry_dir(fingerprint)
        record_path = entry / RECORD_FILE
        if not record_path.exists():
            self.misses += 1
            return None
        record = json.loads(record_path.read_text())
        artifacts = ResultArtifacts(
            result_name=str(record["result_name"]),
            text=(entry / RESULT_FILE).read_text(),
            manifest_text=(entry / MANIFEST_FILE).read_text(),
        )
        self.hits += 1
        return StoredResult(fingerprint, artifacts, record)

    def put(
        self,
        fingerprint: str,
        artifacts: ResultArtifacts,
        record: Mapping[str, object] | None = None,
    ) -> StoredResult:
        """Commit an entry (idempotent: equal fingerprints, equal bytes)."""
        entry = self.entry_dir(fingerprint)
        atomic_write_text(entry / RESULT_FILE, artifacts.text)
        atomic_write_text(entry / MANIFEST_FILE, artifacts.manifest_text)
        full_record: dict[str, object] = {
            "fingerprint": fingerprint,
            "result_name": artifacts.result_name,
            **(dict(record) if record else {}),
        }
        # The commit point: readers only trust entries with a record.
        atomic_write_text(
            entry / RECORD_FILE,
            json.dumps(full_record, sort_keys=True, indent=2) + "\n",
        )
        self.puts += 1
        return StoredResult(fingerprint, artifacts, full_record)

    def persist_to(self, fingerprint: str, directory: str | Path) -> Path:
        """Write an entry's artefacts into ``directory`` (cache-hit path).

        Byte-identical to persisting the fresh result: both go through
        :func:`repro.experiments.registry.persist_artifacts` on the same
        strings.
        """
        stored = self.get(fingerprint)
        if stored is None:
            raise ServiceError(f"no committed entry for {fingerprint!r}")
        return persist_artifacts(stored.artifacts, directory)

    def fingerprints(self) -> tuple[str, ...]:
        """Every committed fingerprint, sorted."""
        out = []
        for record_path in sorted(self.directory.glob(f"??/*/{RECORD_FILE}")):
            out.append(record_path.parent.name)
        return tuple(sorted(out))

    def clear(self) -> int:
        """Drop every committed entry; returns how many were removed."""
        removed = 0
        for fingerprint in self.fingerprints():
            entry = self.entry_dir(fingerprint)
            for name in (RECORD_FILE, RESULT_FILE, MANIFEST_FILE):
                path = entry / name
                if path.exists():
                    path.unlink()
            removed += 1
        return removed
