"""Simulation-as-a-service: async jobs over a content-addressed cache.

The service turns one-shot experiment runs into *jobs*:

* :class:`JobQueue` — a persistent on-disk queue (append-only JSONL
  journal, atomic state transitions) with priorities, per-client quotas,
  and deterministic FIFO tie-breaks; reopening a queue after a crash
  replays the journal and requeues orphaned in-flight jobs;
* :class:`WorkerPool` — sharded spawn-based workers built on
  :class:`repro.parallel.ShardWorker` (graceful shutdown, per-job
  timeout, crash-requeue), or inline in-process execution (``shards=0``);
* :class:`ResultStore` — a content-addressed store keyed on the
  canonical fingerprint of (normalized request, seed, backend, package
  version); an equal fingerprint is served from the cache with
  byte-identical artefacts instead of re-simulating;
* :class:`ServiceTelemetry` — incremental job spans / queue gauges
  streamed through the :class:`repro.obs.stream.ObsSink` protocol.

Most callers should not wire these up by hand —
:class:`repro.api.Client` composes them behind a five-verb façade, and
``repro serve`` / ``repro submit`` expose that on the command line.
Module layout follows the library convention (docs/API.md): everything
public is re-exported here; ``_``-prefixed modules are internal.
"""

from repro.service._exec import execute_request
from repro.service._fingerprint import fingerprint_key, fingerprint_request
from repro.service._journal import JOURNAL_VERSION, Journal
from repro.service._pool import WorkerPool
from repro.service._queue import JobQueue, JobRecord, JobState
from repro.service._store import ResultStore, StoredResult
from repro.service._telemetry import SERVICE_METRICS, SERVICE_NODE, ServiceTelemetry

__all__ = [
    "JOURNAL_VERSION",
    "JobQueue",
    "JobRecord",
    "JobState",
    "Journal",
    "ResultStore",
    "SERVICE_METRICS",
    "SERVICE_NODE",
    "ServiceTelemetry",
    "StoredResult",
    "WorkerPool",
    "execute_request",
    "fingerprint_key",
    "fingerprint_request",
]
