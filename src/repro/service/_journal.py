"""Append-only JSONL journal backing the persistent job queue (internal).

The queue's single source of truth is a journal of state-transition
records, one canonical JSON object per line::

    {"event": "submit", "job": {...}, "v": 1}
    {"event": "start", "attempt": 1, "job_id": "j000001", "v": 1}
    {"event": "done", "cached": false, "job_id": "j000001", "v": 1}

Writing a transition is one durable ``write`` + ``fsync`` of one line
(:func:`repro._atomic.append_line`), so a transition is either fully
journalled or not journalled at all.  Replay folds the records back into
queue state; a trailing line truncated by a crash mid-append is detected
(it fails to parse or lacks a newline) and dropped — the transition it
described simply never happened, which is exactly the atomicity contract
the worker-crash recovery path relies on.

The record schema is public and documented in docs/SERVICE.md; the
``v`` field versions it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Mapping

from repro._atomic import append_line
from repro.errors import ServiceError

#: journal record schema version (bump on incompatible change)
JOURNAL_VERSION = 1


def encode_record(record: Mapping[str, object]) -> str:
    """One canonical JSON line (sorted keys, compact separators)."""
    payload = dict(record)
    payload.setdefault("v", JOURNAL_VERSION)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class Journal:
    """One append-only JSONL file of queue transitions."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def append(self, record: Mapping[str, object]) -> None:
        """Durably append one transition record."""
        if "event" not in record:
            raise ServiceError("journal records must carry an 'event' field")
        append_line(self.path, encode_record(record))

    def replay(self) -> Iterator[dict]:
        """Yield every complete record in append order.

        A torn final line (crash mid-append) is dropped silently; a torn
        line in the *middle* of the journal means external corruption and
        raises.
        """
        if not self.path.exists():
            return
        text = self.path.read_text()
        lines = text.split("\n")
        # text ends with "\n" for every complete journal; the final split
        # element is then "" — anything else is a torn trailing write.
        complete, tail = lines[:-1], lines[-1]
        for i, line in enumerate(complete):
            try:
                yield json.loads(line)
            except json.JSONDecodeError as err:
                raise ServiceError(
                    f"journal {self.path} corrupt at line {i + 1}: {err}"
                ) from err
        if tail:
            try:
                yield json.loads(tail)
            except json.JSONDecodeError:
                # Torn trailing append — the transition never happened.
                pass
