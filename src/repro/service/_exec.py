"""Job execution: one importable function of the request (internal).

:func:`execute_request` is the worker-side body of every job — a pure,
module-level (hence picklable) function of the normalized
:class:`~repro.experiments.registry.JobRequest`, so it can be handed to
:class:`repro.parallel.ShardWorker` processes exactly like
:func:`repro.parallel.run_trials` payloads.  It resolves the spec from
the job registry *inside* the worker (spawn workers start from a fresh
interpreter; only the request crosses the process boundary) and returns
the rendered :class:`~repro.experiments.registry.ResultArtifacts` —
plain strings, byte-identical to what a front-end run would persist.
"""

from __future__ import annotations

from repro.experiments.registry import (
    JobRequest,
    ResultArtifacts,
    render_artifacts,
    resolve_job_spec,
)


def execute_request(request: JobRequest) -> ResultArtifacts:
    """Run one normalized request and render its artefacts."""
    spec = resolve_job_spec(request.name)
    return render_artifacts(spec.run_request(request))
