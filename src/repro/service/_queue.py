"""Persistent on-disk job queue (internal).

State lives in an append-only JSONL journal (:mod:`._journal`); the
in-memory index is a pure fold over it, so a queue reopened after a
crash — of the service *or* of a worker mid-job — reconstructs exactly
the journalled state.  Jobs that were ``running`` when the journal ends
belonged to a dead worker: reopening the queue requeues them (with a
``recover`` record), which is the crash-recovery path the service CI job
exercises with a SIGKILL.

Scheduling is deterministic: :meth:`JobQueue.claim_next` always returns
the highest-priority job, ties broken by submission sequence (FIFO).
Per-client quotas bound how many jobs one client may have active
(queued + running) at once.

A state directory has a single queue owner at a time (the serving
process); concurrent readers are fine, concurrent writers are not.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from repro.errors import JobNotFound, QuotaError, ServiceError
from repro.service._journal import Journal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.registry import JobRequest

#: journal filename inside a queue directory
JOURNAL_NAME = "journal.jsonl"


class JobState(enum.Enum):
    """Lifecycle of a job; see the transition table in docs/SERVICE.md."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)

    @property
    def active(self) -> bool:
        return not self.terminal


@dataclass
class JobRecord:
    """One job as tracked by the queue (journalled on every transition)."""

    job_id: str
    request: "JobRequest"
    fingerprint: str
    priority: int = 0
    client: str = "local"
    seq: int = 0
    state: JobState = JobState.QUEUED
    attempt: int = 0
    cached: bool = False
    reason: str = ""

    def to_json(self) -> dict[str, object]:
        """Stable JSON form (the public job-record schema, docs/SERVICE.md)."""
        return {
            "job_id": self.job_id,
            "request": self.request.to_json(),
            "fingerprint": self.fingerprint,
            "priority": self.priority,
            "client": self.client,
            "seq": self.seq,
            "state": self.state.value,
            "attempt": self.attempt,
            "cached": self.cached,
            "reason": self.reason,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "JobRecord":
        from repro.experiments.registry import JobRequest

        return cls(
            job_id=str(data["job_id"]),
            request=JobRequest.from_json(data["request"]),  # type: ignore[arg-type]
            fingerprint=str(data["fingerprint"]),
            priority=int(data.get("priority", 0)),  # type: ignore[arg-type]
            client=str(data.get("client", "local")),
            seq=int(data.get("seq", 0)),  # type: ignore[arg-type]
            state=JobState(str(data.get("state", "queued"))),
            attempt=int(data.get("attempt", 0)),  # type: ignore[arg-type]
            cached=bool(data.get("cached", False)),
            reason=str(data.get("reason", "")),
        )


class JobQueue:
    """Journal-backed priority queue with per-client quotas.

    Parameters
    ----------
    directory:
        Queue state directory; created if missing.  The journal lives at
        ``<directory>/journal.jsonl``.
    quota:
        Maximum *active* (queued + running) jobs per client, or ``None``
        for unlimited.
    on_transition:
        Optional callback ``(record, event, counts)`` invoked after every
        journalled transition — the telemetry hook
        (:class:`~repro.service.ServiceTelemetry.on_transition`).
    """

    def __init__(
        self,
        directory: str | Path,
        quota: int | None = None,
        on_transition: Callable[[JobRecord, str, Mapping[str, int]], None]
        | None = None,
    ) -> None:
        if quota is not None and quota < 1:
            raise ServiceError(f"quota must be >= 1, got {quota}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.quota = quota
        self.on_transition = on_transition
        self.journal = Journal(self.directory / JOURNAL_NAME)
        self._jobs: dict[str, JobRecord] = {}
        self._next_seq = 1
        self._recovered: list[str] = []
        self._replay()

    # -- recovery ------------------------------------------------------------

    def _replay(self) -> None:
        """Fold the journal back into queue state, then requeue orphans."""
        for record in self.journal.replay():
            event = record.get("event")
            if event == "submit":
                job = JobRecord.from_json(record["job"])  # type: ignore[arg-type]
                self._jobs[job.job_id] = job
                self._next_seq = max(self._next_seq, job.seq + 1)
            else:
                job = self._jobs.get(str(record.get("job_id", "")))
                if job is None:
                    raise ServiceError(
                        f"journal references unknown job in record {record!r}"
                    )
                if event == "start":
                    job.state = JobState.RUNNING
                    job.attempt = int(record.get("attempt", job.attempt + 1))
                elif event == "done":
                    job.state = JobState.DONE
                    job.cached = bool(record.get("cached", False))
                elif event == "fail":
                    job.state = JobState.FAILED
                    job.reason = str(record.get("reason", ""))
                elif event == "cancel":
                    job.state = JobState.CANCELLED
                elif event in ("requeue", "recover"):
                    job.state = JobState.QUEUED
                    job.reason = str(record.get("reason", ""))
                else:
                    raise ServiceError(f"unknown journal event {event!r}")
        # Jobs still RUNNING at the end of the journal were in flight on a
        # worker that never reported back — requeue them durably.
        for job in self._in_order():
            if job.state is JobState.RUNNING:
                job.state = JobState.QUEUED
                job.reason = "recovered: worker died mid-job"
                self._journal_event(
                    job, "recover", reason=job.reason
                )
                self._recovered.append(job.job_id)

    @property
    def recovered(self) -> tuple[str, ...]:
        """Job ids requeued by journal replay (crash recovery)."""
        return tuple(self._recovered)

    # -- journalling ---------------------------------------------------------

    def _journal_event(self, job: JobRecord, event: str, **fields: object) -> None:
        self.journal.append({"event": event, "job_id": job.job_id, **fields})
        self._notify(job, event)

    def _notify(self, job: JobRecord, event: str) -> None:
        if self.on_transition is not None:
            self.on_transition(job, event, self.counts())

    # -- queries -------------------------------------------------------------

    def _in_order(self) -> list[JobRecord]:
        return sorted(self._jobs.values(), key=lambda j: j.seq)

    def job(self, job_id: str) -> JobRecord:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise JobNotFound(f"unknown job id {job_id!r}") from None

    def jobs(self) -> tuple[JobRecord, ...]:
        """Every known job, in submission order."""
        return tuple(self._in_order())

    def counts(self) -> dict[str, int]:
        """Job counts per state (every state present, zero or not)."""
        counts = {state.value: 0 for state in JobState}
        for job in self._jobs.values():
            counts[job.state.value] += 1
        return counts

    def active_for(self, client: str) -> int:
        return sum(
            1
            for job in self._jobs.values()
            if job.client == client and job.state.active
        )

    @property
    def has_pending(self) -> bool:
        return any(j.state is JobState.QUEUED for j in self._jobs.values())

    # -- transitions ---------------------------------------------------------

    def submit(
        self,
        request: "JobRequest",
        fingerprint: str,
        priority: int = 0,
        client: str = "local",
    ) -> JobRecord:
        """Enqueue a normalized request; returns the journalled record."""
        if self.quota is not None and self.active_for(client) >= self.quota:
            raise QuotaError(
                f"client {client!r} already has {self.active_for(client)} "
                f"active jobs (quota {self.quota})"
            )
        seq = self._next_seq
        self._next_seq += 1
        job = JobRecord(
            job_id=f"j{seq:06d}",
            request=request,
            fingerprint=fingerprint,
            priority=priority,
            client=client,
            seq=seq,
        )
        self._jobs[job.job_id] = job
        self.journal.append({"event": "submit", "job": job.to_json()})
        self._notify(job, "submit")
        return job

    def claim_next(
        self, exclude_fingerprints: Iterable[str] = ()
    ) -> JobRecord | None:
        """Claim the next runnable job (highest priority, FIFO ties).

        ``exclude_fingerprints`` leaves jobs whose result is already being
        computed unclaimed, so a duplicate submission waits for its twin
        and is then served from the cache instead of simulating twice.
        """
        excluded = frozenset(exclude_fingerprints)
        candidates = [
            job
            for job in self._jobs.values()
            if job.state is JobState.QUEUED and job.fingerprint not in excluded
        ]
        if not candidates:
            return None
        job = min(candidates, key=lambda j: (-j.priority, j.seq))
        self._transition(job, JobState.QUEUED, JobState.RUNNING)
        job.attempt += 1
        self._journal_event(job, "start", attempt=job.attempt)
        return job

    def complete(self, job_id: str, cached: bool = False) -> JobRecord:
        job = self.job(job_id)
        self._transition(job, JobState.RUNNING, JobState.DONE)
        job.cached = cached
        self._journal_event(job, "done", cached=cached)
        return job

    def fail(self, job_id: str, reason: str) -> JobRecord:
        job = self.job(job_id)
        self._transition(job, JobState.RUNNING, JobState.FAILED)
        job.reason = reason
        self._journal_event(job, "fail", reason=reason)
        return job

    def requeue(self, job_id: str, reason: str) -> JobRecord:
        """Put a running job back in the queue (crashed worker path)."""
        job = self.job(job_id)
        self._transition(job, JobState.RUNNING, JobState.QUEUED)
        job.reason = reason
        self._journal_event(job, "requeue", reason=reason)
        return job

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued job (running jobs cannot be cancelled)."""
        job = self.job(job_id)
        self._transition(job, JobState.QUEUED, JobState.CANCELLED)
        self._journal_event(job, "cancel")
        return job

    def _transition(self, job: JobRecord, expect: JobState, to: JobState) -> None:
        if job.state is not expect:
            raise ServiceError(
                f"job {job.job_id} is {job.state.value}, cannot move "
                f"{expect.value} -> {to.value}"
            )
        job.state = to
