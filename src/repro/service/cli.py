"""``repro submit`` and ``repro serve`` — the service on the command line.

``submit`` enqueues one job against a state directory and (by default)
drives it to completion in-process::

    python -m repro submit fig8 --state-dir state --out results
    python -m repro submit varbench --set app=miniGhost --set reps=3
    python -m repro submit ext_faults --seed 2 --set 'rates=[8.0]'
    python -m repro submit --list

``--set`` values are parsed as JSON with a plain-string fallback, so
``--set iterations=5`` is the integer 5 and ``--set app=miniGhost`` the
string.  Resubmitting the same job against the same state directory is
a cache hit: the stored artefacts are returned byte-identically and no
simulation runs.

``serve`` drains a state directory's queue through a worker pool —
the daemon half of a ``submit --no-wait`` producer::

    python -m repro serve --state-dir state --shards 2 --timeout 300

Serving a freshly reopened queue first requeues jobs a previous worker
left in flight (journal replay), which is reported per job.
"""

from __future__ import annotations

import argparse
import json

from repro.errors import ConfigError
from repro.output import OutputWriter

#: shown after a job id for a result served from the content store
CACHED_TAG = " (cached)"


def parse_override(text: str) -> tuple[str, object]:
    """Parse one ``--set key=value`` item (JSON value, string fallback)."""
    key, sep, value = text.partition("=")
    if not sep or not key:
        raise ConfigError(f"--set expects key=value, got {text!r}")
    try:
        return key, json.loads(value)
    except ValueError:
        return key, value


def build_submit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="Submit a job to the simulation service and (by "
        "default) run it to completion, serving repeats from the "
        "content-addressed result cache.",
    )
    parser.add_argument(
        "name",
        nargs="?",
        help="job to run (any experiment name, plus service-only jobs "
        "like 'varbench'; omit with --list to enumerate)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list every submittable job"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the job's default seed"
    )
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override an experiment knob (JSON value, string fallback; "
        "repeatable)",
    )
    parser.add_argument(
        "--priority",
        type=int,
        default=0,
        help="scheduling priority (higher runs first; default 0)",
    )
    parser.add_argument(
        "--client", default="local", help="client identity for quotas (default local)"
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="persistent service state (queue journal + result cache); "
        "default is an ephemeral directory discarded on exit",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="also archive the result table + manifest into DIR",
    )
    parser.add_argument(
        "--no-wait",
        action="store_true",
        help="enqueue only (requires --state-dir); a `repro serve` worker "
        "picks the job up later",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="print only the result table",
    )
    return parser


def submit_main(argv: list[str]) -> int:
    from repro.api import Client
    from repro.experiments.registry import job_registry

    parser = build_submit_parser()
    args = parser.parse_args(argv)
    out = OutputWriter()
    if args.list or args.name is None:
        registry = job_registry()
        width = max(len(name) for name in registry)
        for name in sorted(registry):
            spec = registry[name]
            seed = "-" if spec.seed is None else str(spec.seed)
            out.line(f"{name.ljust(width)}  seed={seed:4s} {spec.description}")
        return 0
    if args.no_wait and args.state_dir is None:
        parser.error("--no-wait needs --state-dir (an ephemeral queue "
                     "would be discarded before any worker sees it)")
    overrides = dict(parse_override(item) for item in args.overrides)
    with Client(state_dir=args.state_dir) as client:
        handle = client.submit(
            args.name,
            seed=args.seed,
            overrides=overrides or None,
            priority=args.priority,
            client=args.client,
        )
        if not args.quiet:
            out.line(
                f"submitted {handle.job_id} {args.name} "
                f"fingerprint={handle.fingerprint[:12]}"
            )
        if args.no_wait:
            return 0
        status = client.wait(handle.job_id)
        if status.state != "done":
            out.line(
                f"job {status.job_id} {status.state}"
                + (f": {status.reason}" if status.reason else "")
            )
            return 1
        result = client.result(handle.job_id)
        if not args.quiet:
            out.line(
                f"job {status.job_id} done"
                + (CACHED_TAG if status.cached else "")
            )
        out.line(result.render())
        if args.out is not None:
            path = result.persist(args.out)
            if not args.quiet:
                out.line(f"archived {path}")
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Drain a service state directory's job queue through "
        "a sharded worker pool.",
    )
    parser.add_argument(
        "--state-dir",
        required=True,
        metavar="DIR",
        help="persistent service state (queue journal + result cache)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="worker processes (0 = run jobs inline; default 1)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock limit (sharded mode; default none)",
    )
    parser.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        metavar="N",
        help="stop after settling N jobs (default: drain the queue)",
    )
    parser.add_argument(
        "--quota",
        type=int,
        default=None,
        metavar="N",
        help="max active jobs per client accepted by this queue",
    )
    parser.add_argument(
        "--stream",
        default=None,
        metavar="DIR",
        help="stream job telemetry into DIR (trace.jsonl + queue gauges)",
    )
    return parser


def serve_main(argv: list[str]) -> int:
    from repro.api import Client

    args = build_serve_parser().parse_args(argv)
    out = OutputWriter()
    with Client(
        state_dir=args.state_dir,
        shards=args.shards,
        quota=args.quota,
        timeout=args.timeout,
    ) as client:
        if args.stream is not None:
            client.stream_to(args.stream)
        for job_id in client.queue.recovered:
            out.line(f"recovered {job_id} (requeued after worker death)")
        settled = client.pool.run(
            client.queue, client.store, max_jobs=args.max_jobs
        )
        failed = 0
        for job in settled:
            tag = CACHED_TAG if job.cached else ""
            line = f"{job.job_id} {job.request.name} {job.state.value}{tag}"
            if job.reason:
                line += f": {job.reason}"
            out.line(line)
            failed += job.state.value == "failed"
        counts = client.queue.counts()
        summary = "  ".join(f"{k}={v}" for k, v in sorted(counts.items()) if v)
        out.line(f"settled {len(settled)} job(s)  {summary or 'queue empty'}")
    return 1 if failed else 0


__all__ = ["parse_override", "serve_main", "submit_main"]
