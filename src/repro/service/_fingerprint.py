"""Content-addressed job fingerprints (internal).

A fingerprint is the sha256 of the canonical JSON of everything that can
change a job's artefact bytes:

* the normalized request — spec name, result name, resolved seed, and
  the semantic overrides (:meth:`ExperimentSpec.normalize` has already
  canonicalized values and dropped non-semantic knobs like ``jobs``);
* the simulation backend (``object`` / ``array``) — the differential
  oracle proves the backends byte-identical, but keying on the backend
  keeps the cache trustworthy even while that oracle is the thing under
  test;
* the package version — any code change that could move a float ships
  with a version bump, which invalidates every prior entry (the cache
  invalidation rule, see docs/SERVICE.md).

Two requests with equal fingerprints therefore have byte-identical
artefacts, which is what lets the :class:`~repro.service.ResultStore`
serve a cache hit in place of a simulation.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

from repro.sim.engine import default_backend
from repro.version import __version__

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.registry import JobRequest


def fingerprint_key(
    request: "JobRequest",
    backend: str | None = None,
    version: str | None = None,
) -> dict[str, object]:
    """The canonical key material a fingerprint digests (for inspection)."""
    return {
        "name": request.name,
        "result_name": request.result_name,
        "seed": request.seed,
        "overrides": dict(request.overrides),
        "backend": default_backend() if backend is None else backend,
        "version": __version__ if version is None else version,
    }


def fingerprint_request(
    request: "JobRequest",
    backend: str | None = None,
    version: str | None = None,
) -> str:
    """sha256 hex digest of the canonical fingerprint key."""
    key = fingerprint_key(request, backend=backend, version=version)
    text = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
