"""Incremental job telemetry over the ObsSink protocol (internal).

Subscribers see a job's life as it happens instead of reading files
after the fact: every queue transition is streamed through the exact
:class:`~repro.obs.stream.ObsSink` machinery PR 8 built for simulation
telemetry —

* one **span** per job (``cat="job"``), opened at submission and closed
  at the terminal transition, carrying the request name, fingerprint,
  priority, client, attempt count and final state;
* one **instant** per transition (``cat="service"``);
* one **metric sample** per transition on the synthetic node
  ``"service"`` with the queue gauges (``queued``, ``running``, ...,
  ``cache_hits``) — tailable with the PR 8
  :class:`~repro.obs.stream.MetricJsonlStreamWriter`.

The timeline is the queue's *logical clock*: tick ``n`` is the n-th
journalled transition.  That makes streams deterministic for a given
submission sequence — byte-identical across reruns, wall-clock-free —
exactly the property every other exporter in this codebase holds.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from repro.obs.spans import Span, SpanCollector
from repro.obs.stream import JsonlStreamWriter, MetricJsonlStreamWriter, ObsSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service._queue import JobRecord

#: gauge names streamed on every transition, in export order
SERVICE_METRICS = (
    "queued",
    "running",
    "done",
    "failed",
    "cancelled",
    "cache_hits",
)

#: the synthetic node name service gauges are sampled on
SERVICE_NODE = "service"


class ServiceTelemetry:
    """Fan queue transitions out to ObsSink subscribers, incrementally."""

    def __init__(self) -> None:
        self.collector = SpanCollector()
        self.tick = 0
        self.cache_hits = 0
        self._job_spans: dict[str, Span] = {}
        self._metric_sinks: list[ObsSink] = []
        self._owned_sinks: list[ObsSink] = []

    # -- subscriptions -------------------------------------------------------

    def subscribe(self, sink: ObsSink) -> None:
        """Stream job spans/instants and queue gauges to ``sink``."""
        self.collector.add_sink(sink)
        self._metric_sinks.append(sink)

    def unsubscribe(self, sink: ObsSink) -> None:
        self.collector.remove_sink(sink)
        self._metric_sinks.remove(sink)

    def stream_to(self, directory: str | Path) -> Path:
        """Write the telemetry streams into ``directory`` as they happen.

        Produces ``trace.jsonl`` (job spans + transition instants) and
        ``metrics/service.jsonl`` (queue gauges), the same layout
        ``repro trace --stream`` uses for simulation runs.
        """
        directory = Path(directory)
        trace = JsonlStreamWriter(directory / "trace.jsonl")
        metrics = MetricJsonlStreamWriter(
            directory / "metrics" / f"{SERVICE_NODE}.jsonl",
            SERVICE_NODE,
            SERVICE_METRICS,
        )
        for sink in (trace, metrics):
            self.subscribe(sink)
            self._owned_sinks.append(sink)
        return directory

    def close(self) -> None:
        """Seal owned file sinks (subscriber-owned sinks stay open)."""
        for sink in self._owned_sinks:
            self.unsubscribe(sink)
            sink.close()
        self._owned_sinks.clear()

    # -- the queue hook ------------------------------------------------------

    def on_transition(
        self, job: "JobRecord", event: str, counts: Mapping[str, int]
    ) -> None:
        """Record one journalled transition (wired as ``JobQueue.on_transition``)."""
        self.tick += 1
        t = float(self.tick)
        track = (SERVICE_NODE, job.job_id)
        if event == "submit":
            self._job_spans[job.job_id] = self.collector.begin(
                "job",
                job.request.name,
                track,
                start=t,
                args={
                    "job_id": job.job_id,
                    "fingerprint": job.fingerprint,
                    "priority": job.priority,
                    "client": job.client,
                },
            )
        self.collector.instant(
            "service",
            event,
            track,
            t=t,
            args={"job_id": job.job_id, "state": job.state.value},
        )
        if job.state.terminal:
            if job.state.value == "done" and job.cached:
                self.cache_hits += 1
            span = self._job_spans.pop(job.job_id, None)
            if span is not None and span.end is None:
                self.collector.end(
                    span,
                    t=t,
                    args={
                        "state": job.state.value,
                        "cached": job.cached,
                        "attempt": job.attempt,
                        "reason": job.reason,
                    },
                )
        gauges = {name: float(counts.get(name, 0)) for name in SERVICE_METRICS}
        gauges["cache_hits"] = float(self.cache_hits)
        for sink in self._metric_sinks:
            sink.on_metric_sample(t, SERVICE_NODE, gauges)
