"""Sharded worker pool driving the queue against the store (internal).

The pool owns N :class:`repro.parallel.ShardWorker` processes and drains
a :class:`~repro.service.JobQueue` deterministically:

* a job is **assigned to a shard by its fingerprint** (stable hash), so
  re-running a campaign lands every job on the same shard;
* before dispatch the :class:`~repro.service.ResultStore` is consulted —
  a committed entry completes the job as a **cache hit** without
  touching a worker, and an in-flight twin (equal fingerprint) leaves
  the duplicate queued until the first finishes, so the same (spec,
  seed) figure costs exactly one simulation per store lifetime;
* a payload that **raises** fails the job (deterministic simulations
  fail deterministically — retrying would burn a core to learn nothing);
* a **dead worker** (crash, OOM-kill, SIGKILL) requeues its job up to
  ``max_attempts`` and the shard is respawned;
* a job exceeding the **per-job timeout** hard-stops its shard (the only
  way to interrupt a busy worker), fails the job, and respawns.

``shards=0`` selects inline mode: jobs execute in-process (no spawn
cost, no timeout/crash machinery) — the mode the in-process
:class:`repro.api.Client` uses by default and the tests lean on.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

from repro.errors import ServiceError
from repro.experiments.registry import ResultArtifacts
from repro.parallel import ShardWorker
from repro.service._exec import execute_request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service._queue import JobQueue, JobRecord
    from repro.service._store import ResultStore

#: how long one poll sweep waits on a busy shard before moving on (s)
_POLL_INTERVAL = 0.05


class WorkerPool:
    """Drain a job queue over sharded spawn workers (or inline)."""

    def __init__(
        self,
        factory: Callable[..., ResultArtifacts] | None = None,
        shards: int = 0,
        timeout: float | None = None,
        max_attempts: int = 2,
    ) -> None:
        if shards < 0:
            raise ServiceError(f"shards must be >= 0, got {shards}")
        if max_attempts < 1:
            raise ServiceError(f"max_attempts must be >= 1, got {max_attempts}")
        self.factory = factory if factory is not None else execute_request
        self.n_shards = shards
        self.timeout = timeout
        self.max_attempts = max_attempts
        self._shards: list[ShardWorker | None] = [None] * shards
        #: currently running job (and dispatch deadline) per shard
        self._running: dict[int, tuple["JobRecord", float | None]] = {}
        self._closed = False

    # -- shard plumbing ------------------------------------------------------

    @property
    def inline(self) -> bool:
        return self.n_shards == 0

    def shard_for(self, fingerprint: str) -> int:
        """Deterministic fingerprint -> shard assignment."""
        if self.inline:
            return 0
        return int(fingerprint[:8], 16) % self.n_shards

    def _shard(self, index: int) -> ShardWorker:
        worker = self._shards[index]
        if worker is None or not worker.alive:
            worker = ShardWorker(self.factory, name=f"repro-shard-{index}")
            self._shards[index] = worker
        return worker

    def _respawn(self, index: int) -> None:
        worker = self._shards[index]
        if worker is not None:
            worker.kill()
        self._shards[index] = None

    def shutdown(self) -> None:
        """Gracefully stop every shard (idempotent)."""
        self._closed = True
        for index, worker in enumerate(self._shards):
            if worker is not None:
                worker.stop()
                self._shards[index] = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    # -- the drain loop ------------------------------------------------------

    def run(
        self,
        queue: "JobQueue",
        store: "ResultStore | None" = None,
        max_jobs: int | None = None,
    ) -> list["JobRecord"]:
        """Drain the queue; returns the jobs settled by this call, in order.

        Stops when the queue has no runnable work left (or after
        ``max_jobs`` settled jobs), leaving workers alive for the next
        call; :meth:`shutdown` stops them.
        """
        if self._closed:
            raise ServiceError("pool is shut down")
        settled: list["JobRecord"] = []

        def done(job: "JobRecord") -> bool:
            settled.append(job)
            return max_jobs is not None and len(settled) >= max_jobs

        while True:
            # Serve cache hits and dispatch fresh work.
            stop = False
            while not stop:
                job = queue.claim_next(
                    exclude_fingerprints=self._blocked_fingerprints(queue)
                )
                if job is None:
                    break
                hit = store.get(job.fingerprint) if store is not None else None
                if hit is not None:
                    queue.complete(job.job_id, cached=True)
                    stop = done(job)
                    continue
                if self.inline:
                    stop = self._run_inline(queue, store, job, done)
                    continue
                index = self.shard_for(job.fingerprint)
                deadline = (
                    None if self.timeout is None else time.monotonic() + self.timeout
                )
                self._shard(index).submit(job.job_id, job.request)
                self._running[index] = (job, deadline)
            if stop or not self._running:
                if self._running:
                    self._drain_running(queue, store)
                return settled
            self._poll_once(queue, store, done)
            if not queue.has_pending and not self._running:
                return settled

    def _blocked_fingerprints(self, queue: "JobQueue") -> set[str]:
        """Fingerprints :meth:`run` must not claim right now.

        A fingerprint is blocked while its twin is in flight (the
        duplicate waits and is then served from the cache — exactly one
        simulation) or while its home shard is busy (per-shard FIFO:
        the job stays queued, never claim-and-bounced).
        """
        from repro.service._queue import JobState

        blocked = {job.fingerprint for job, _ in self._running.values()}
        if not self.inline and self._running:
            for job in queue.jobs():
                if (
                    job.state is JobState.QUEUED
                    and self.shard_for(job.fingerprint) in self._running
                ):
                    blocked.add(job.fingerprint)
        return blocked

    # -- inline execution ----------------------------------------------------

    def _run_inline(
        self,
        queue: "JobQueue",
        store: "ResultStore | None",
        job: "JobRecord",
        done: Callable[["JobRecord"], bool],
    ) -> bool:
        try:
            artifacts = self.factory(job.request)
        except Exception as exc:
            queue.fail(job.job_id, f"{type(exc).__name__}: {exc}")
            return done(job)
        self._commit(queue, store, job, artifacts)
        return done(job)

    # -- worker results ------------------------------------------------------

    def _commit(
        self,
        queue: "JobQueue",
        store: "ResultStore | None",
        job: "JobRecord",
        artifacts: ResultArtifacts,
    ) -> None:
        if store is not None:
            store.put(job.fingerprint, artifacts, record=job.request.to_json())
        queue.complete(job.job_id, cached=False)

    def _poll_once(
        self,
        queue: "JobQueue",
        store: "ResultStore | None",
        done: Callable[["JobRecord"], bool],
    ) -> None:
        """One sweep over busy shards: results, crashes, timeouts."""
        for index in list(self._running):
            job, deadline = self._running[index]
            worker = self._shards[index]
            assert worker is not None
            answer = worker.poll(timeout=_POLL_INTERVAL)
            if answer is not None:
                del self._running[index]
                _, ok, value = answer
                if ok:
                    self._commit(queue, store, job, value)
                else:
                    queue.fail(job.job_id, str(value))
                done(job)
            elif not worker.alive:
                del self._running[index]
                self._respawn(index)
                if job.attempt < self.max_attempts:
                    queue.requeue(
                        job.job_id,
                        f"worker died mid-job (attempt {job.attempt})",
                    )
                else:
                    queue.fail(
                        job.job_id,
                        f"worker died {job.attempt} times; giving up",
                    )
                    done(job)
            elif deadline is not None and time.monotonic() > deadline:
                del self._running[index]
                self._respawn(index)
                queue.fail(job.job_id, f"timeout after {self.timeout:g}s")
                done(job)

    def _drain_running(
        self, queue: "JobQueue", store: "ResultStore | None"
    ) -> None:
        """Settle in-flight work after an early ``max_jobs`` stop."""
        while self._running:
            self._poll_once(queue, store, lambda job: False)
