"""Network topologies.

Two builders cover the paper's systems:

``aries_like``
    Voltrino's Aries interconnect: four nodes per switch, switches densely
    connected with *redundant* inter-switch links.  The redundancy plus
    adaptive routing is what bounds netoccupy's damage in Fig. 6.
``star``
    Chameleon Cloud's simple star: every node hangs off one router, so
    there are no alternative paths — which is why the paper cannot
    evaluate netoccupy there.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import ConfigError
from repro.units import GB10


class NetworkTopology:
    """An undirected capacity graph of compute nodes and switches.

    Nodes whose name starts with ``"node"`` are compute endpoints; other
    vertices are switches/routers.  Edge attribute ``capacity`` is in
    bytes/s (bundled parallel links appear as one edge with the summed
    capacity).
    """

    def __init__(self, graph: nx.Graph, name: str = "net") -> None:
        for u, v, data in graph.edges(data=True):
            if data.get("capacity", 0) <= 0:
                raise ConfigError(f"edge {u}-{v} must have positive capacity")
        self.graph = graph
        self.name = name

    @property
    def compute_nodes(self) -> list[str]:
        return sorted(n for n in self.graph.nodes if str(n).startswith("node"))

    @property
    def switches(self) -> list[str]:
        return sorted(
            (n for n in self.graph.nodes if not str(n).startswith("node")), key=str
        )

    def capacity(self, u: str, v: str) -> float:
        return float(self.graph.edges[u, v]["capacity"])

    def switch_of(self, node: str) -> str:
        """The switch a compute node attaches to (assumes single uplink)."""
        neighbors = list(self.graph.neighbors(node))
        if len(neighbors) != 1:
            raise ConfigError(f"{node} has {len(neighbors)} uplinks; expected 1")
        return neighbors[0]

    def k_shortest_paths(self, src: str, dst: str, k: int = 4) -> list[list[str]]:
        """Up to ``k`` loop-free shortest paths (hop-count metric)."""
        if src == dst:
            return [[src]]
        paths: list[list[str]] = []
        for path in nx.shortest_simple_paths(self.graph, src, dst):
            paths.append(list(path))
            if len(paths) >= k:
                break
        return paths


def aries_like(
    num_nodes: int = 12,
    nodes_per_switch: int = 4,
    link_bw: float = 5.25 * GB10,
    inter_switch_redundancy: int = 3,
    nic_bw: float = 10 * GB10,
) -> NetworkTopology:
    """Build a Voltrino-like Aries electrical group.

    Switches are connected all-to-all; each switch pair gets
    ``inter_switch_redundancy`` parallel links (modelled as one edge with
    the summed capacity).  Every switch hosts ``nodes_per_switch`` nodes.
    """
    if num_nodes < 1 or nodes_per_switch < 1:
        raise ConfigError("num_nodes and nodes_per_switch must be >= 1")
    num_switches = (num_nodes + nodes_per_switch - 1) // nodes_per_switch
    g = nx.Graph()
    for s in range(num_switches):
        g.add_node(f"sw{s}")
    for s in range(num_switches):
        for t in range(s + 1, num_switches):
            g.add_edge(
                f"sw{s}", f"sw{t}", capacity=link_bw * inter_switch_redundancy
            )
    for n in range(num_nodes):
        switch = n // nodes_per_switch
        g.add_edge(f"node{n}", f"sw{switch}", capacity=nic_bw)
    return NetworkTopology(g, name="aries")


def dragonfly(
    groups: int = 4,
    switches_per_group: int = 4,
    nodes_per_switch: int = 4,
    local_link_bw: float = 5.25 * GB10,
    local_redundancy: int = 3,
    global_link_bw: float = 4.7 * GB10,
    nic_bw: float = 10 * GB10,
) -> NetworkTopology:
    """Build a full dragonfly: all-to-all groups of all-to-all switches.

    Aries' real structure: electrical all-to-all links inside a group
    (chassis), optical global links between groups.  Each ordered group
    pair gets one global link, attached round-robin to the groups'
    switches.  Used by the extension study on global-link contention —
    the bottleneck Bhatele et al. identify on dragonfly systems.
    """
    if groups < 2 or switches_per_group < 1 or nodes_per_switch < 1:
        raise ConfigError("need >= 2 groups and >= 1 switch/node per level")
    g = nx.Graph()
    node_id = 0
    for grp in range(groups):
        for s in range(switches_per_group):
            g.add_node(f"g{grp}sw{s}")
        for a in range(switches_per_group):
            for b in range(a + 1, switches_per_group):
                g.add_edge(
                    f"g{grp}sw{a}",
                    f"g{grp}sw{b}",
                    capacity=local_link_bw * local_redundancy,
                )
        for s in range(switches_per_group):
            for _ in range(nodes_per_switch):
                g.add_edge(f"node{node_id}", f"g{grp}sw{s}", capacity=nic_bw)
                node_id += 1
    # one global link per group pair, spread across switches round-robin
    pair_index = 0
    for ga in range(groups):
        for gb in range(ga + 1, groups):
            sa = pair_index % switches_per_group
            sb = (pair_index + 1) % switches_per_group
            g.add_edge(f"g{ga}sw{sa}", f"g{gb}sw{sb}", capacity=global_link_bw)
            pair_index += 1
    return NetworkTopology(g, name="dragonfly")


def star(num_nodes: int = 6, link_bw: float = 1.25 * GB10) -> NetworkTopology:
    """Build a Chameleon-like star: one router, one link per node."""
    if num_nodes < 1:
        raise ConfigError("num_nodes must be >= 1")
    g = nx.Graph()
    g.add_node("router")
    for n in range(num_nodes):
        g.add_edge(f"node{n}", "router", capacity=link_bw)
    return NetworkTopology(g, name="star")
