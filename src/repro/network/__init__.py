"""Interconnect model: topology builders, adaptive routing, flow solver."""

from repro.network.topology import NetworkTopology, aries_like, dragonfly, star
from repro.network.flows import FlowRequest, FlowSolver

__all__ = [
    "FlowRequest",
    "FlowSolver",
    "NetworkTopology",
    "aries_like",
    "dragonfly",
    "star",
]
