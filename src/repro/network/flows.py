"""Fluid flow allocation with adaptive multipath routing.

The solver mirrors how Aries behaves at the granularity our monitoring
observes (1 Hz):

1. **Path selection (adaptive routing).**  Each flow considers up to ``k``
   loop-free shortest paths.  Its demand is split across them, and the
   split is iteratively re-balanced away from congested links — the fluid
   analogue of Aries' per-packet adaptive routing.
2. **Link sharing.**  Given the final sub-flows, per-link capacity is
   divided by demand-capped max-min fairness (the classic water-filling
   algorithm over links).

Static single-path routing (the ablation in
``benchmarks/bench_ablation_routing.py``) uses ``k=1``, which removes the
re-balancing and reproduces the severe congestion the paper says adaptive
routing avoids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ResourceError
from repro.network.topology import NetworkTopology
from repro.sim.stats import SimStats

Edge = tuple[str, str]


def _edge(u: str, v: str) -> Edge:
    return (u, v) if str(u) <= str(v) else (v, u)


@dataclass
class FlowRequest:
    """A point-to-point demand to be routed.

    Attributes
    ----------
    key:
        Caller's identifier (e.g. the pid of the demanding process).
    src / dst:
        Compute-node names.
    demand:
        Bytes/s wanted at full speed.
    """

    key: int
    src: str
    dst: str
    demand: float

    def __post_init__(self) -> None:
        if self.demand < 0 or math.isnan(self.demand) or math.isinf(self.demand):
            raise ResourceError("flow demand must be finite and >= 0")


@dataclass
class _SubFlow:
    flow_index: int
    edges: list[Edge]
    demand: float
    rate: float = 0.0
    fixed: bool = False


@dataclass
class FlowResult:
    """Outcome of a solve: per-flow grants and per-edge utilisation."""

    grants: dict[int, float]
    edge_load: dict[Edge, float] = field(default_factory=dict)


class FlowSolver:
    """Allocates network bandwidth for a set of concurrent flows."""

    #: memoised solves kept before the oldest entry is evicted
    MEMO_SIZE = 128

    def __init__(
        self,
        topology: NetworkTopology,
        k_paths: int = 4,
        rebalance_rounds: int = 4,
        latency_alpha: float = 0.6,
        warm_start: bool = False,
        memoize: bool = True,
    ) -> None:
        if k_paths < 1:
            raise ResourceError("k_paths must be >= 1")
        if latency_alpha < 0:
            raise ResourceError("latency_alpha must be >= 0")
        self.topology = topology
        self.k_paths = k_paths
        self.rebalance_rounds = rebalance_rounds
        #: reuse full solves for identical request signatures.  ``False``
        #: re-solves from scratch every call — the cold reference path the
        #: ``repro check`` flow-memo oracle compares against.
        self.memoize = memoize
        #: attached invariant checker (see :mod:`repro.check`), or None;
        #: hook sites are guarded so an unchecked solve pays nothing.
        self.check = None
        #: start the adaptive split from the previous solve's converged
        #: per-path fractions instead of a uniform split.  Off by default:
        #: warm starting changes the (equally valid) allocation reached
        #: after ``rebalance_rounds``, so results are no longer bit-equal
        #: to a cold solve — see docs/PERFORMANCE.md before enabling.
        self.warm_start = warm_start
        #: counter block; the cluster rate model swaps in the engine's
        self.stats = SimStats()
        #: strength of the congestion-latency degradation: traffic from
        #: *other* flows on a flow's path stretches per-packet latency,
        #: lowering the bandwidth a fixed-window sender can extract even
        #: when link capacity is not exhausted.  This is the effect that
        #: makes netoccupy hurt the OSU benchmark on an adaptively-routed
        #: fabric whose links never fully saturate (paper Fig. 6).
        self.latency_alpha = latency_alpha
        self._path_cache: dict[tuple[str, str], list[list[Edge]]] = {}
        #: per-edge capacity memo over the immutable topology; the solver
        #: reads capacities hundreds of times per solve and the networkx
        #: edge-view lookup dominates without it
        self._cap_cache: dict[Edge, float] = {}
        #: memo of full solves keyed by the canonical request signature
        self._solve_cache: dict[tuple, FlowResult] = {}
        #: per-(src, dst) converged split fractions from the last solve
        self._warm_splits: dict[tuple[str, str], tuple[float, ...]] = {}

    # -- public -----------------------------------------------------------

    def solve(
        self, flows: list[FlowRequest], signature: tuple | None = None
    ) -> FlowResult:
        """Grant bandwidth to every flow; grants are keyed by ``flow.key``.

        Keys must be unique per request: a process with several concurrent
        flows must submit them under distinct keys.  A flow's grant is the
        sum over its adaptive sub-flows (one per path), so each key maps
        to the total bandwidth granted to that request.

        Solves are memoised on the canonical signature of the request list
        — the tuple of ``(key, src, dst, demand)`` per flow — because the
        cluster rate model re-prices the network with an identical demand
        set whenever a resolve leaves flow owners untouched.  A caller
        that already holds the request set in arrays may pass a
        precomputed ``signature`` (e.g. structural key plus
        ``demands.tobytes()``, the array-backend fingerprint); it must
        determine ``(key, src, dst, demand)`` for every flow exactly as
        the default tuple does, or the memo would conflate distinct
        request sets.
        """
        if not flows:
            return FlowResult(grants={})
        keys = [f.key for f in flows]
        if len(set(keys)) != len(keys):
            raise ResourceError("flow keys must be unique per solve")

        if signature is None:
            signature = tuple((f.key, f.src, f.dst, f.demand) for f in flows)
        cached = self._solve_cache.get(signature) if self.memoize else None
        if cached is not None:
            self.stats.count("flow_memo_hits")
            # Copy so a caller mutating the result cannot poison the memo.
            return FlowResult(
                grants=dict(cached.grants), edge_load=dict(cached.edge_load)
            )
        self.stats.count("flow_solves")

        subflows: list[_SubFlow] = []
        per_flow_subflows: list[list[_SubFlow]] = []
        for idx, flow in enumerate(flows):
            paths = self._paths(flow.src, flow.dst)
            split = self._initial_split(flow, len(paths))
            flow_subs = [
                _SubFlow(flow_index=idx, edges=path, demand=d)
                for path, d in zip(paths, split)
            ]
            per_flow_subflows.append(flow_subs)
            subflows.extend(flow_subs)

        for _ in range(self.rebalance_rounds):
            loads = self._edge_loads(subflows)
            self._rebalance(flows, per_flow_subflows, loads)
        if self.check is not None:
            self.check.on_flow_split(flows, per_flow_subflows)

        if self.warm_start:
            for flow, subs in zip(flows, per_flow_subflows):
                if flow.demand > 0:
                    self._warm_splits[(flow.src, flow.dst)] = tuple(
                        sub.demand / flow.demand for sub in subs
                    )

        # Pass 1: capacity sharing with the raw demands.
        self._max_min(subflows)

        if self.latency_alpha > 0:
            # Pass 2: degrade each flow's demand by the congestion other
            # granted traffic imposes on its paths, then re-share.
            granted_loads = self._edge_loads(subflows, use_rate=True)
            for subs in per_flow_subflows:
                own = {e: 0.0 for sub in subs for e in sub.edges}
                for sub in subs:
                    for e in sub.edges:
                        own[e] += sub.rate
                worst = 0.0
                for sub in subs:
                    for e in sub.edges:
                        cap = self._capacity(e)
                        other = max(0.0, granted_loads.get(e, 0.0) - own[e])
                        worst = max(worst, other / cap)
                factor = 1.0 / (1.0 + self.latency_alpha * worst)
                for sub in subs:
                    sub.demand *= factor
            self._max_min(subflows)

        grants = {f.key: 0.0 for f in flows}
        for sub in subflows:
            grants[flows[sub.flow_index].key] += sub.rate
        result = FlowResult(
            grants=grants, edge_load=self._edge_loads(subflows, use_rate=True)
        )
        if self.check is not None:
            self.check.on_flow_solve(self, flows, result)
        if self.memoize:
            if len(self._solve_cache) >= self.MEMO_SIZE:
                self._solve_cache.pop(next(iter(self._solve_cache)))
            self._solve_cache[signature] = FlowResult(
                grants=dict(grants), edge_load=dict(result.edge_load)
            )
        return result

    # -- internals ----------------------------------------------------------

    def _initial_split(self, flow: FlowRequest, n_paths: int) -> list[float]:
        """Starting per-path demands: uniform, or the last converged split.

        Warm starts apply on *signature-adjacent* solves — a previous
        solve routed the same (src, dst) pair over the same path set — and
        give the re-balancer a head start toward its fixed point.
        """
        if self.warm_start:
            # warm_start is opt-in and documented as trading bit-equality for
            # convergence speed (docs/PERFORMANCE.md), so the split history
            # legitimately lives outside the memo key:
            fractions = self._warm_splits.get((flow.src, flow.dst))  # repro-lint: disable=RL013
            if fractions is not None and len(fractions) == n_paths:
                return [flow.demand * fraction for fraction in fractions]
        return [flow.demand / n_paths] * n_paths

    def _capacity(self, edge: Edge) -> float:
        # A pure memo over the immutable topology, like _path_cache.
        cap = self._cap_cache.get(edge)  # repro-lint: disable=RL013
        if cap is None:
            cap = self.topology.capacity(*edge)
            self._cap_cache[edge] = cap
        return cap

    def _paths(self, src: str, dst: str) -> list[list[Edge]]:
        cache_key = (src, dst)
        # _path_cache is a pure memo over the immutable topology: entries are
        # a deterministic function of (src, dst, k_paths), so reading it can
        # never make a solve-cache hit stale.
        if cache_key not in self._path_cache:  # repro-lint: disable=RL013
            node_paths = self.topology.k_shortest_paths(src, dst, self.k_paths)
            # Keep only paths no longer than shortest + 1 hop: Aries'
            # adaptive routing only considers minimal and near-minimal routes.
            min_len = len(node_paths[0])
            node_paths = [p for p in node_paths if len(p) <= min_len + 1]
            self._path_cache[cache_key] = [
                [_edge(u, v) for u, v in zip(p, p[1:])] for p in node_paths
            ]
        return self._path_cache[cache_key]

    def _edge_loads(
        self, subflows: list[_SubFlow], use_rate: bool = False
    ) -> dict[Edge, float]:
        loads: dict[Edge, float] = {}
        for sub in subflows:
            amount = sub.rate if use_rate else sub.demand
            for edge in sub.edges:
                loads[edge] = loads.get(edge, 0.0) + amount
        return loads

    def _rebalance(
        self,
        flows: list[FlowRequest],
        per_flow_subflows: list[list[_SubFlow]],
        loads: dict[Edge, float],
    ) -> None:
        """Shift each flow's split toward its less-congested paths."""
        for flow, subs in zip(flows, per_flow_subflows):
            if len(subs) <= 1 or flow.demand == 0:
                continue
            congestions = []
            for sub in subs:
                # Congestion the flow would see on this path from OTHER
                # traffic (its own contribution removed).
                worst = 0.0
                for edge in sub.edges:
                    cap = self._capacity(edge)
                    other = loads.get(edge, 0.0) - sub.demand
                    worst = max(worst, other / cap)
                congestions.append(worst)
            weights = [1.0 / (1.0 + c) ** 2 for c in congestions]
            wsum = sum(weights)
            for sub, w in zip(subs, weights):
                for edge in sub.edges:
                    loads[edge] = loads.get(edge, 0.0) - sub.demand
                sub.demand = flow.demand * w / wsum
                for edge in sub.edges:
                    loads[edge] = loads.get(edge, 0.0) + sub.demand

    def _max_min(self, subflows: list[_SubFlow]) -> None:
        """Demand-capped max-min fair rates over all links (water filling).

        Vectorized: crossing counts come from one boolean incidence matrix
        reduction per round instead of a per-edge membership scan, so a
        round costs O(subflows × edges) numpy work rather than O(subflows
        × edges) Python-loop work.  Bit-identical to
        :meth:`_max_min_reference` — every float op (link shares, the
        water level, the residual drains) is the same scalar IEEE op in
        the same order; only integer counting and candidate selection are
        batched.  The bottleneck tie-break (lowest share, then
        lexicographically smallest edge) survives because the edge columns
        are built sorted, so "first column at the minimum share" is
        exactly ``min(link_share, key=...)``.
        """
        if not subflows:
            return
        n = len(subflows)
        edge_list = sorted({e for sub in subflows for e in sub.edges})
        m = len(edge_list)
        col = {e: j for j, e in enumerate(edge_list)}
        caps = np.array(
            [self._capacity(e) for e in edge_list], dtype=float
        )
        demand = np.array([s.demand for s in subflows], dtype=float)
        inc = np.zeros((n, m), dtype=bool)
        sub_cols: list[list[int]] = []
        for i, sub in enumerate(subflows):
            cols_i = [col[e] for e in sub.edges]
            sub_cols.append(cols_i)
            inc[i, cols_i] = True

        rate = np.zeros(n)
        fixed = demand <= 0.0
        residual = caps.copy()
        self.stats.count("vectorized_waterfills")

        converged = False
        for _ in range(n + m + 1):
            unfixed = ~fixed
            if not unfixed.any():
                converged = True
                break
            # Fair share offered by each link to its unfixed subflows.
            crossing = inc[unfixed].sum(axis=0)
            has_crossing = crossing > 0
            if not has_crossing.any():
                rate[unfixed] = demand[unfixed]  # no constrained links
                fixed[:] = True
                converged = True
                break
            share = residual[has_crossing] / crossing[has_crossing]
            level = float(share.min())
            # Subflows whose demand is below the current water level are
            # satisfied outright; otherwise fix flows crossing the tightest
            # link at the fair share.
            newly = unfixed & (demand <= level + 1e-12)
            if newly.any():
                rate[newly] = demand[newly]
            else:
                candidates = np.flatnonzero(has_crossing)
                bottleneck = int(candidates[int(np.argmax(share == level))])
                newly = unfixed & inc[:, bottleneck]
                rate[newly] = level
            fixed |= newly
            for i in np.flatnonzero(newly):
                granted = float(rate[i])
                for j in sub_cols[i]:
                    residual[j] = max(0.0, float(residual[j]) - granted)
        if not converged:
            raise ResourceError("max-min water filling failed to converge")
        for sub, sub_rate, sub_fixed in zip(subflows, rate, fixed):
            sub.rate = float(sub_rate)
            sub.fixed = bool(sub_fixed)

    def _max_min_reference(self, subflows: list[_SubFlow]) -> None:
        """Scalar reference for :meth:`_max_min` (PR 1 semantics).

        Kept as the ground truth the vectorized water filling is tested
        against (``tests/network/test_flows_vectorized.py`` pins exact
        float equality); do not call it from production paths.
        """
        for sub in subflows:
            sub.rate = 0.0
            sub.fixed = sub.demand <= 0.0
        edges = {e for sub in subflows for e in sub.edges}
        residual = {e: self.topology.capacity(*e) for e in edges}

        for _ in range(len(subflows) + len(edges) + 1):
            unfixed = [s for s in subflows if not s.fixed]
            if not unfixed:
                return
            # Fair share offered by each link to its unfixed subflows.
            link_share: dict[Edge, float] = {}
            for edge in edges:
                crossing = [s for s in unfixed if edge in s.edges]
                if crossing:
                    link_share[edge] = residual[edge] / len(crossing)
            if not link_share:
                for sub in unfixed:  # no constrained links: grant demands
                    sub.rate = sub.demand
                    sub.fixed = True
                return
            bottleneck_rate = min(link_share.values())
            demand_limited = [s for s in unfixed if s.demand <= bottleneck_rate + 1e-12]
            if demand_limited:
                fixed_now = demand_limited
                for sub in fixed_now:
                    sub.rate = sub.demand
            else:
                bottleneck = min(link_share, key=lambda e: (link_share[e], e))
                fixed_now = [s for s in unfixed if bottleneck in s.edges]
                for sub in fixed_now:
                    sub.rate = bottleneck_rate
            for sub in fixed_now:
                sub.fixed = True
                for edge in sub.edges:
                    residual[edge] = max(0.0, residual[edge] - sub.rate)
        raise ResourceError("max-min water filling failed to converge")
