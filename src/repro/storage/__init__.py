"""Shared-filesystem model: metadata and storage servers with coupled pools."""

from repro.storage.filesystem import IOGrant, SharedFilesystem

__all__ = ["IOGrant", "SharedFilesystem"]
