"""Shared filesystem with metadata and storage resource pools.

The model captures the architecture described in the paper (Sec. 3.5): one
or a few metadata servers manage creation/deletion/locks, storage servers
hold file contents, and compute nodes reach both over a network.  Three
pools price contention, each with the sharing discipline real servers
exhibit:

``disk``
    Aggregate storage-server disk bandwidth (bytes/s).  Data traffic uses
    it directly; each metadata operation also commits a few KiB of journal
    and inode traffic (to the *shared* disk only when the metadata service
    lives on the same server).  Shared max-min per client node, then
    max-min among a node's processes — NFS/Lustre servers arbitrate
    per-client fairly.
``meta``
    Metadata operations per second, shared like the disk.
``cpu``
    Server CPU seconds per second.  Worker threads are grabbed
    first-come-first-served, so CPU shares are *proportional to demand* —
    a metadata storm monopolising the nfsd threads starves the data path
    even though the data path asks for little.  This is why ``iometadata``
    also lowers IOR's streaming bandwidth on the paper's NFS appliance
    (Fig. 7), and why a Lustre-like deployment with a dedicated metadata
    server (``separate_metadata=True``) decouples the two.

Every request class demands from several pools; a requester's progress
ratio is the minimum grant/demand ratio across the pools it touches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.resources.fairshare import max_min_fair_share, proportional_share
from repro.sim.process import IODemand
from repro.units import KB, MB10


@dataclass(frozen=True)
class IOGrant:
    """Granted filesystem rates for one requester."""

    ratio: float  # achieved fraction of the demand, in [0, 1]
    write_bw: float
    read_bw: float
    meta_ops: float


class SharedFilesystem:
    """A shared filesystem serving many compute nodes.

    Parameters
    ----------
    name:
        Filesystem name referenced by :class:`repro.sim.process.IODemand`.
    disk_bw:
        Aggregate storage disk bandwidth in bytes/s.
    meta_capacity:
        Metadata operations/s the metadata service can sustain.
    server_cpu:
        CPU-seconds/s available on the server(s) (i.e. core count).
    cpu_per_meta_op:
        Server CPU seconds consumed per metadata operation.
    cpu_per_byte:
        Server CPU seconds per byte of data traffic.
    meta_disk_bytes:
        Disk bytes (journal + inode) per metadata operation.
    separate_metadata:
        True for Lustre-like deployments with dedicated metadata servers:
        metadata CPU and journal traffic use the MDS's own resources and
        do not compete with the data path.
    n_osts:
        Object storage targets striping ``disk_bw``.  A failed OST (see
        :meth:`fail_ost`) removes its stripe share of the aggregate
        bandwidth instead of crashing the filesystem.
    """

    #: floor on degraded capacity fractions: a fully browned-out service
    #: still trickles, which keeps grant ratios finite and positive
    MIN_HEALTH = 0.01

    def __init__(
        self,
        name: str = "nfs",
        disk_bw: float = 320 * MB10,
        meta_capacity: float = 6000.0,
        server_cpu: float = 24.0,
        cpu_per_meta_op: float = 3.0e-3,
        cpu_per_byte: float = 5.0e-9,
        meta_disk_bytes: float = 2 * KB,
        separate_metadata: bool = False,
        n_osts: int = 1,
    ) -> None:
        if disk_bw <= 0 or meta_capacity <= 0 or server_cpu <= 0:
            raise ConfigError("filesystem capacities must be positive")
        if cpu_per_meta_op < 0 or cpu_per_byte < 0 or meta_disk_bytes < 0:
            raise ConfigError("filesystem cost coefficients must be >= 0")
        if n_osts < 1:
            raise ConfigError("n_osts must be >= 1")
        self.name = name
        self.disk_bw = disk_bw
        self.meta_capacity = meta_capacity
        self.server_cpu = server_cpu
        self.cpu_per_meta_op = cpu_per_meta_op
        self.cpu_per_byte = cpu_per_byte
        self.meta_disk_bytes = meta_disk_bytes
        self.separate_metadata = separate_metadata
        self.n_osts = n_osts
        #: currently-failed OST indices (graceful degradation, not a crash)
        self.failed_osts: set[int] = set()
        #: metadata service health in (0, 1]; lowered by brownout faults
        self.meta_health = 1.0
        #: bumped on every health change so the rate model's storage-stage
        #: memo (keyed on demand signatures) notices degradation events
        self.health_revision = 0
        #: attached span collector (set by :class:`repro.obs.Observability`),
        #: or None.  Guarded at every emission site, so an unobserved
        #: filesystem pays nothing beyond the attribute read.
        self.obs = None
        #: attached invariant checker (see :mod:`repro.check`), or None.
        #: Same guarded-hook contract as ``obs``.
        self.check = None

    @classmethod
    def nfs_appliance(cls) -> "SharedFilesystem":
        """The paper's Chameleon NFS share: one server, one 250 GB disk.

        The server runs 24 metadata threads and the data path on the same
        CPUs, and the single disk serves both journal and data traffic.
        """
        return cls(name="nfs", separate_metadata=False)

    @classmethod
    def lustre_like(cls) -> "SharedFilesystem":
        """A Lustre-flavoured setup: dedicated MDS, larger OST pool."""
        return cls(
            name="lustre",
            disk_bw=5_000 * MB10,
            meta_capacity=40_000.0,
            server_cpu=96.0,
            separate_metadata=True,
            n_osts=8,
        )

    # -- degradation -----------------------------------------------------------

    @property
    def effective_disk_bw(self) -> float:
        """Aggregate disk bandwidth with failed OSTs' stripes removed."""
        live = (self.n_osts - len(self.failed_osts)) / self.n_osts
        return self.disk_bw * max(live, self.MIN_HEALTH)

    @property
    def effective_meta_capacity(self) -> float:
        """Metadata ops/s capacity under the current brownout level."""
        return self.meta_capacity * max(self.meta_health, self.MIN_HEALTH)

    def fail_ost(self, ost: int) -> None:
        """Mark one OST failed; its stripe share of ``disk_bw`` is lost."""
        if not 0 <= ost < self.n_osts:
            raise ConfigError(f"OST index must be in [0, {self.n_osts}), got {ost}")
        if ost in self.failed_osts:
            raise ConfigError(f"OST {ost} of {self.name!r} already failed")
        self.failed_osts.add(ost)
        self._health_changed("ost-failed", ost=ost)

    def restore_ost(self, ost: int) -> None:
        """Bring one failed OST back; bandwidth recovers its stripe."""
        if ost not in self.failed_osts:
            raise ConfigError(f"OST {ost} of {self.name!r} is not failed")
        self.failed_osts.discard(ost)
        self._health_changed("ost-restored", ost=ost)

    def set_meta_health(self, fraction: float) -> None:
        """Degrade (or restore) the metadata service to ``fraction``."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigError(f"meta health must be in [0, 1], got {fraction}")
        self.meta_health = fraction
        self._health_changed("meta-health", fraction=fraction)

    def _health_changed(self, what: str, **args: object) -> None:
        self.health_revision += 1
        if self.obs is not None:
            self.obs.instant(
                "storage",
                f"{what}:{self.name}",
                ("storage", self.name),
                args={
                    "failed_osts": len(self.failed_osts),
                    "meta_health": self.meta_health,
                    **args,
                },
            )

    # -- solving ---------------------------------------------------------------

    def _pool_demand(self, d: IODemand, pool: str) -> float:
        if pool == "disk":
            journal = 0.0 if self.separate_metadata else d.meta_ops * self.meta_disk_bytes
            return d.write_bw + d.read_bw + journal
        if pool == "meta":
            return d.meta_ops
        data_cpu = (d.write_bw + d.read_bw) * self.cpu_per_byte
        if self.separate_metadata:
            return data_cpu
        return data_cpu + d.meta_ops * self.cpu_per_meta_op

    def solve(self, demands: list[tuple[int, str, IODemand]]) -> dict[int, IOGrant]:
        """Price concurrent demands; returns ``{pid: IOGrant}``.

        Each demand is ``(pid, client_node, IODemand)``.  Disk and
        metadata capacity are shared max-min per client node (then among
        a node's processes); server CPU is shared proportionally (thread
        grabbing).  A requester's ratio is its worst pool ratio.
        """
        if not demands:
            return {}
        for _, _, d in demands:
            if d.fs != self.name:
                raise ConfigError(f"demand for fs {d.fs!r} sent to {self.name!r}")

        nodes = sorted({node for _, node, _ in demands})
        index_of = {node: i for i, node in enumerate(nodes)}
        grants: dict[str, list[float]] = {}

        # Per-client-fair pools: two-level max-min.
        for pool, capacity in (
            ("disk", self.effective_disk_bw),
            ("meta", self.effective_meta_capacity),
        ):
            per_demand = [self._pool_demand(d, pool) for _, _, d in demands]
            node_totals = [0.0] * len(nodes)
            for (_, node, _), dem in zip(demands, per_demand):
                node_totals[index_of[node]] += dem
            node_grants = max_min_fair_share(capacity, node_totals)
            pool_grants = [0.0] * len(demands)
            for node in nodes:
                members = [i for i, (_, n, _) in enumerate(demands) if n == node]
                inner = max_min_fair_share(
                    node_grants[index_of[node]], [per_demand[i] for i in members]
                )
                for i, g in zip(members, inner):
                    pool_grants[i] = g
            grants[pool] = pool_grants

        # Thread-grabbed pool: flat proportional.
        cpu_demands = [self._pool_demand(d, "cpu") for _, _, d in demands]
        grants["cpu"] = proportional_share(self.server_cpu, cpu_demands)

        out: dict[int, IOGrant] = {}
        for i, (pid, _, d) in enumerate(demands):
            ratio = 1.0
            for pool in ("disk", "meta", "cpu"):
                dem = self._pool_demand(d, pool)
                if dem > 0:
                    ratio = min(ratio, grants[pool][i] / dem)
            out[pid] = IOGrant(
                ratio=ratio,
                write_bw=d.write_bw * ratio,
                read_bw=d.read_bw * ratio,
                meta_ops=d.meta_ops * ratio,
            )
        if self.obs is not None:
            self.obs.instant(
                "storage",
                f"solve:{self.name}",
                ("storage", self.name),
                args={
                    "requesters": len(demands),
                    "nodes": len(nodes),
                    "min_ratio": min(g.ratio for g in out.values()),
                },
            )
        if self.check is not None:
            self.check.on_fs_solve(self, demands, out)
        return out
