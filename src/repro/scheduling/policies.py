"""Job allocation policies: Round-Robin and WBAS.

The paper's Sec. 5.2 compares:

* **Round-Robin (RR)** — allocate to available nodes in label order.
* **Well-Balanced Allocation Strategy (WBAS)** (Yang et al.) — rank nodes
  by computing capacity ``CP = (1 - Load%) x MemFree`` where
  ``Load = 5/6 Load_current + 1/6 Load_5minAvg``, taking the current CPU
  load from ``user::procstat`` and free memory from ``Memfree::meminfo``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import SchedulingError
from repro.monitoring.service import MetricService


@dataclass(frozen=True)
class NodeStatus:
    """Monitoring-derived node state consumed by allocation policies."""

    name: str
    load_current: float  # fraction of the node's CPUs busy, [0, 1]
    load_avg5min: float
    mem_free: float  # bytes

    @property
    def wbas_load(self) -> float:
        """The WBAS blended load: 5/6 current + 1/6 five-minute average."""
        return (5.0 / 6.0) * self.load_current + (1.0 / 6.0) * self.load_avg5min

    @property
    def computing_capacity(self) -> float:
        """WBAS CP value: ``(1 - Load%) x MemFree``."""
        return (1.0 - min(1.0, self.wbas_load)) * self.mem_free


def observe_nodes(service: MetricService, window: float = 300.0) -> list[NodeStatus]:
    """Snapshot every node's status from collected monitoring data.

    ``load_current`` is the latest ``user::procstat`` sample;
    ``load_avg5min`` averages the trailing ``window`` seconds.
    """
    statuses = []
    for name in service.cluster.node_names:
        util = service.series(name, "user::procstat") / 100.0
        if util.size == 0:
            raise SchedulingError(f"no monitoring data for {name}")
        n_avg = max(1, int(window / service.interval))
        statuses.append(
            NodeStatus(
                name=name,
                load_current=float(util[-1]),
                load_avg5min=float(np.mean(util[-n_avg:])),
                mem_free=float(service.series(name, "MemFree::meminfo")[-1]),
            )
        )
    return statuses


class AllocationPolicy(ABC):
    """Chooses which nodes a job runs on."""

    name = "policy"

    @abstractmethod
    def select(self, statuses: list[NodeStatus], n_nodes: int) -> list[str]:
        """Pick ``n_nodes`` node names from the candidate statuses."""

    def _check(self, statuses: list[NodeStatus], n_nodes: int) -> None:
        if n_nodes < 1:
            raise SchedulingError("n_nodes must be >= 1")
        if n_nodes > len(statuses):
            raise SchedulingError(
                f"requested {n_nodes} nodes but only {len(statuses)} available"
            )


class RoundRobin(AllocationPolicy):
    """Allocate to available nodes following the label order."""

    name = "RoundRobin"

    def select(self, statuses: list[NodeStatus], n_nodes: int) -> list[str]:
        self._check(statuses, n_nodes)
        ordered = sorted(statuses, key=lambda s: _label_key(s.name))
        return [s.name for s in ordered[:n_nodes]]


class WellBalancedAllocation(AllocationPolicy):
    """WBAS: prefer nodes with low CPU load and high free memory."""

    name = "WBAS"

    def select(self, statuses: list[NodeStatus], n_nodes: int) -> list[str]:
        self._check(statuses, n_nodes)
        ordered = sorted(
            statuses,
            key=lambda s: (-s.computing_capacity, _label_key(s.name)),
        )
        return sorted(
            (s.name for s in ordered[:n_nodes]), key=_label_key
        )


def _label_key(name: str):
    """Order 'node10' after 'node9' (numeric suffix aware)."""
    digits = "".join(ch for ch in name if ch.isdigit())
    return (int(digits) if digits else 0, name)
