"""A minimal job scheduler tying policies to the cluster.

Fig. 11's workflow: monitoring observes node state, a policy picks the
job's nodes, and the job launches there.  The scheduler exists so policy
evaluation experiments read like the production flow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import Application, AppJob, CheckpointStore
from repro.cluster.cluster import Cluster
from repro.errors import SchedulingError
from repro.faults.retry import RetryPolicy
from repro.monitoring.service import MetricService
from repro.scheduling.policies import AllocationPolicy, observe_nodes
from repro.sim.process import ProcessState, SimProcess


@dataclass
class Allocation:
    """A policy's decision for one job."""

    policy: str
    nodes: list[str]


class JobScheduler:
    """Allocates and launches jobs using a pluggable policy.

    Jobs submitted through :meth:`submit` mark their nodes busy until
    they finish, so a stream of jobs is space-shared: a later allocation
    only considers currently-free nodes (like a node-exclusive batch
    scheduler).
    """

    def __init__(self, cluster: Cluster, service: MetricService) -> None:
        self.cluster = cluster
        self.service = service
        self.history: list[Allocation] = []
        self._active: list[tuple[Allocation, AppJob]] = []

    @property
    def busy_nodes(self) -> set[str]:
        """Nodes held by jobs that have not finished yet."""
        self._active = [(a, j) for a, j in self._active if not j.finished]
        return {node for allocation, _ in self._active for node in allocation.nodes}

    def allocate(self, policy: AllocationPolicy, n_nodes: int) -> Allocation:
        """Pick ``n_nodes`` currently-free, currently-up nodes with ``policy``."""
        busy = self.busy_nodes
        faults = self.cluster.faults
        if faults is not None:
            busy = busy | set(faults.down_nodes)
        statuses = [s for s in observe_nodes(self.service) if s.name not in busy]
        if not statuses:
            raise SchedulingError("no free nodes available")
        nodes = policy.select(statuses, n_nodes)
        allocation = Allocation(policy=policy.name, nodes=nodes)
        self.history.append(allocation)
        obs = self.cluster.sim.obs
        if obs is not None:
            obs.instant(
                "scheduler",
                f"allocate:{policy.name}",
                ("cluster", "scheduler"),
                args={"nodes": list(nodes), "free": len(statuses)},
            )
        return allocation

    def submit(
        self,
        app: Application,
        policy: AllocationPolicy,
        n_nodes: int,
        ranks_per_node: int,
        start: float | None = None,
        seed: int | None = None,
    ) -> tuple[Allocation, AppJob]:
        """Allocate with ``policy`` and launch the job there."""
        allocation = self.allocate(policy, n_nodes)
        job = AppJob(
            app,
            self.cluster,
            nodes=list(allocation.nodes),
            ranks_per_node=ranks_per_node,
            start=self.cluster.sim.now if start is None else start,
            seed=seed,
        )
        job.launch()
        self._active.append((allocation, job))
        obs = self.cluster.sim.obs
        if obs is not None:
            span = obs.begin(
                "scheduler",
                f"job:{app.name}",
                ("cluster", "scheduler"),
                args={
                    "policy": allocation.policy,
                    "nodes": list(allocation.nodes),
                    "ranks": len(job.procs),
                },
            )
            obs.watch(span, [proc.pid for proc in job.procs])
        return allocation, job

    def submit_managed(
        self,
        app: Application,
        policy: AllocationPolicy,
        n_nodes: int,
        ranks_per_node: int,
        start: float | None = None,
        seed: int | None = None,
        retry: RetryPolicy | None = None,
        checkpoint_interval: int | None = None,
        checkpoint_cost: float = 0.0,
        index: int = 0,
    ) -> "ManagedJob":
        """Submit a fault-managed job: requeue on rank death, restart
        from the last checkpoint.

        ``retry`` bounds the requeue attempts (None = fail permanently on
        the first fault); ``index`` disambiguates the retry jitter stream
        when the same app is submitted several times.
        """
        managed = ManagedJob(
            scheduler=self,
            app=app,
            policy=policy,
            n_nodes=n_nodes,
            ranks_per_node=ranks_per_node,
            seed=seed,
            retry=retry,
            checkpoint_interval=checkpoint_interval,
            checkpoint_cost=checkpoint_cost,
            index=index,
        )
        managed.start(at=start)
        return managed


class ManagedJob:
    """A job the scheduler keeps alive across node faults.

    Each attempt is a fresh :class:`AppJob` on a fresh allocation (failed
    nodes are excluded by :meth:`JobScheduler.allocate`).  When any rank
    of the current attempt is killed, the surviving ranks are torn down
    ("requeue"), and — if the :class:`RetryPolicy` still has budget within
    its deadline — a new attempt launches after a backoff delay, resuming
    from the shared :class:`CheckpointStore` (iteration 0 without
    checkpointing).  Allocation failures (no free nodes) consume retry
    budget the same way, modelling a requeue into a drained queue.

    States: ``pending`` → ``running`` → ``done`` | ``failed``.
    """

    def __init__(
        self,
        scheduler: JobScheduler,
        app: Application,
        policy: AllocationPolicy,
        n_nodes: int,
        ranks_per_node: int,
        seed: int | None = None,
        retry: RetryPolicy | None = None,
        checkpoint_interval: int | None = None,
        checkpoint_cost: float = 0.0,
        index: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.app = app
        self.policy = policy
        self.n_nodes = n_nodes
        self.ranks_per_node = ranks_per_node
        self.seed = seed
        self.retry = retry
        self.checkpoint_interval = checkpoint_interval
        self.checkpoint_cost = checkpoint_cost
        self.index = index
        self.checkpoint = (
            CheckpointStore() if checkpoint_interval is not None else None
        )
        self.state = "pending"
        self.attempts = 0
        self.requeues = 0
        self.iterations_done = 0.0
        self.job: AppJob | None = None
        self.submitted: float | None = None
        self.finished_at: float | None = None
        #: why the most recent attempt ended early (None while healthy)
        self.reason: str | None = None
        self._delays = (
            []
            if retry is None
            else retry.delays(seed, f"managed:{app.name}:{index}")
        )
        self._retries_used = 0
        self._attempt_over = True
        self._span = None

    # -- queries -------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state == "done"

    @property
    def failed(self) -> bool:
        return self.state == "failed"

    @property
    def settled(self) -> bool:
        """True once the job can make no further progress."""
        return self.state in ("done", "failed")

    def makespan(self) -> float:
        """Submit-to-settle time (including requeue backoff waits)."""
        if self.submitted is None or self.finished_at is None:
            raise SchedulingError(f"managed job {self.app.name} has not settled")
        return self.finished_at - self.submitted

    # -- lifecycle -----------------------------------------------------------

    def start(self, at: float | None = None) -> None:
        """Schedule the first launch attempt (default: now)."""
        if self.submitted is not None:
            raise SchedulingError(f"managed job {self.app.name} already started")
        sim = self.scheduler.cluster.sim
        self.submitted = sim.now if at is None else at
        obs = sim.obs
        if obs is not None:
            self._span = obs.begin(
                "scheduler",
                f"managed:{self.app.name}",
                ("cluster", "scheduler"),
                start=self.submitted,
                args={
                    "policy": self.policy.name,
                    "checkpointing": self.checkpoint_interval is not None,
                },
            )
        sim.schedule(self.submitted, self._launch)

    def _launch(self) -> None:
        if self.settled:
            return
        sim = self.scheduler.cluster.sim
        self.attempts += 1
        try:
            allocation = self.scheduler.allocate(self.policy, self.n_nodes)
        except SchedulingError:
            self._retry_or_fail("no free nodes")
            return
        start_iteration = 0 if self.checkpoint is None else self.checkpoint.committed
        job = AppJob(
            self.app,
            self.scheduler.cluster,
            nodes=list(allocation.nodes),
            ranks_per_node=self.ranks_per_node,
            start=sim.now,
            seed=self.seed,
            checkpoint_interval=self.checkpoint_interval,
            checkpoint_cost=self.checkpoint_cost,
            checkpoint=self.checkpoint,
            start_iteration=start_iteration,
        )
        job.launch()
        self.job = job
        self.state = "running"
        self._attempt_over = False
        self.scheduler._active.append((allocation, job))
        own_pids = {p.pid for p in job.procs}
        sim.add_terminate_hook(
            lambda proc: self._on_rank_end(job, own_pids, proc)
        )

    def _on_rank_end(
        self, job: AppJob, own_pids: set[int], proc: SimProcess
    ) -> None:
        if self._attempt_over or job is not self.job or proc.pid not in own_pids:
            return
        sim = self.scheduler.cluster.sim
        if proc.state is ProcessState.KILLED:
            # One dead rank dooms the attempt: tear down the survivors so
            # their nodes free up, then back off and requeue.
            self._attempt_over = True
            self._harvest(job)
            for sibling in job.procs:
                if not sibling.state.terminal:
                    sim.kill(sibling, reason="requeue")
            self._retry_or_fail(proc.exit_reason or "rank killed")
        elif job.finished:
            self._attempt_over = True
            self._harvest(job)
            self._settle("done")

    def _harvest(self, job: AppJob) -> None:
        for proc in job.procs:
            self.iterations_done += proc.counters.get("app_iterations", 0.0)

    def _retry_or_fail(self, reason: str) -> None:
        self.reason = reason
        sim = self.scheduler.cluster.sim
        obs = sim.obs
        if obs is not None:
            obs.instant(
                "scheduler",
                f"requeue:{self.app.name}",
                ("cluster", "scheduler"),
                args={"attempt": self.attempts, "reason": reason},
            )
        if self.retry is None or self._retries_used >= len(self._delays):
            self._settle("failed")
            return
        delay = self._delays[self._retries_used]
        self._retries_used += 1
        assert self.submitted is not None
        if sim.now + delay > self.submitted + self.retry.deadline:
            self._settle("failed")
            return
        self.requeues += 1
        sim.call_in(delay, self._launch)

    def _settle(self, state: str) -> None:
        sim = self.scheduler.cluster.sim
        self.state = state
        self.finished_at = sim.now
        if self._span is not None and sim.obs is not None:
            sim.obs.end(
                self._span,
                args={
                    "state": state,
                    "attempts": self.attempts,
                    "iterations": self.iterations_done,
                },
            )
            self._span = None
