"""A minimal job scheduler tying policies to the cluster.

Fig. 11's workflow: monitoring observes node state, a policy picks the
job's nodes, and the job launches there.  The scheduler exists so policy
evaluation experiments read like the production flow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import Application, AppJob
from repro.cluster.cluster import Cluster
from repro.errors import SchedulingError
from repro.monitoring.service import MetricService
from repro.scheduling.policies import AllocationPolicy, observe_nodes


@dataclass
class Allocation:
    """A policy's decision for one job."""

    policy: str
    nodes: list[str]


class JobScheduler:
    """Allocates and launches jobs using a pluggable policy.

    Jobs submitted through :meth:`submit` mark their nodes busy until
    they finish, so a stream of jobs is space-shared: a later allocation
    only considers currently-free nodes (like a node-exclusive batch
    scheduler).
    """

    def __init__(self, cluster: Cluster, service: MetricService) -> None:
        self.cluster = cluster
        self.service = service
        self.history: list[Allocation] = []
        self._active: list[tuple[Allocation, AppJob]] = []

    @property
    def busy_nodes(self) -> set[str]:
        """Nodes held by jobs that have not finished yet."""
        self._active = [(a, j) for a, j in self._active if not j.finished]
        return {node for allocation, _ in self._active for node in allocation.nodes}

    def allocate(self, policy: AllocationPolicy, n_nodes: int) -> Allocation:
        """Pick ``n_nodes`` currently-free nodes with ``policy``."""
        busy = self.busy_nodes
        statuses = [s for s in observe_nodes(self.service) if s.name not in busy]
        if not statuses:
            raise SchedulingError("no free nodes available")
        nodes = policy.select(statuses, n_nodes)
        allocation = Allocation(policy=policy.name, nodes=nodes)
        self.history.append(allocation)
        obs = self.cluster.sim.obs
        if obs is not None:
            obs.instant(
                "scheduler",
                f"allocate:{policy.name}",
                ("cluster", "scheduler"),
                args={"nodes": list(nodes), "free": len(statuses)},
            )
        return allocation

    def submit(
        self,
        app: Application,
        policy: AllocationPolicy,
        n_nodes: int,
        ranks_per_node: int,
        start: float | None = None,
        seed: int | None = None,
    ) -> tuple[Allocation, AppJob]:
        """Allocate with ``policy`` and launch the job there."""
        allocation = self.allocate(policy, n_nodes)
        job = AppJob(
            app,
            self.cluster,
            nodes=list(allocation.nodes),
            ranks_per_node=ranks_per_node,
            start=self.cluster.sim.now if start is None else start,
            seed=seed,
        )
        job.launch()
        self._active.append((allocation, job))
        obs = self.cluster.sim.obs
        if obs is not None:
            span = obs.begin(
                "scheduler",
                f"job:{app.name}",
                ("cluster", "scheduler"),
                args={
                    "policy": allocation.policy,
                    "nodes": list(allocation.nodes),
                    "ranks": len(job.procs),
                },
            )
            obs.watch(span, [proc.pid for proc in job.procs])
        return allocation, job
