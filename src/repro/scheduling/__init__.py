"""Job allocation policies and the cluster scheduler (paper Sec. 5.2)."""

from repro.scheduling.policies import (
    AllocationPolicy,
    NodeStatus,
    RoundRobin,
    WellBalancedAllocation,
    observe_nodes,
)
from repro.scheduling.scheduler import JobScheduler, ManagedJob

__all__ = [
    "AllocationPolicy",
    "JobScheduler",
    "ManagedJob",
    "NodeStatus",
    "RoundRobin",
    "WellBalancedAllocation",
    "observe_nodes",
]
