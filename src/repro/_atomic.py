"""Atomic filesystem writes (internal).

Every artefact this package persists — results tables, manifests,
content-addressed cache entries — must be either entirely present or
entirely absent: a worker killed mid-write can never leave a truncated
file that a later reader (the :class:`~repro.service.ResultStore`, the
``repro diff`` tool, CI) would mistake for a complete artefact.

:func:`atomic_write_text` writes to a same-directory temp file, flushes
and fsyncs it, then publishes it with :func:`os.replace` — atomic on
POSIX and on NTFS.  The temp name embeds the pid so two processes
racing to persist the same (deterministic, hence byte-identical)
artefact cannot corrupt each other; last replace wins with identical
bytes.
"""

from __future__ import annotations

import os
from pathlib import Path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    try:
        with tmp.open("w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed replace
            tmp.unlink()
    return path


def append_line(path: str | Path, line: str) -> None:
    """Append one ``\\n``-terminated line durably (single write + fsync).

    A single ``write`` of one line is atomic with respect to readers on
    every platform we target (POSIX O_APPEND semantics); the fsync makes
    the journal entry durable before the caller acts on the transition
    it records.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        handle.write(line if line.endswith("\n") else line + "\n")
        handle.flush()
        os.fsync(handle.fileno())
