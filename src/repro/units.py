"""Unit helpers and constants.

All quantities inside the simulator use SI base units: bytes, seconds,
operations.  These helpers exist so that configuration code reads like the
paper ("35 MB buffer", "100 MB messages") instead of raw exponents.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

# Decimal variants, used where the paper's sources use decimal prefixes
# (network and disk bandwidths are conventionally decimal).
KB10 = 1_000
MB10 = 1_000_000
GB10 = 1_000_000_000

MINUTE = 60.0
HOUR = 3600.0


def mib(n: float) -> float:
    """Return ``n`` mebibytes in bytes."""
    return float(n) * MB


def gib(n: float) -> float:
    """Return ``n`` gibibytes in bytes."""
    return float(n) * GB


def kib(n: float) -> float:
    """Return ``n`` kibibytes in bytes."""
    return float(n) * KB


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (binary prefixes)."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.4g} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_rate(n: float) -> str:
    """Human-readable bytes-per-second rate."""
    return fmt_bytes(n) + "/s"
