"""Deterministic parallel trial execution.

The sweep workloads — varbench repetitions, the fig8 app x anomaly
matrix, diagnosis-data generation — are embarrassingly parallel: every
trial builds its own cluster, runs it, and returns a picklable result.
:func:`run_trials` fans those trials out over worker *processes* while
guaranteeing that the merged results are byte-identical to a serial run
regardless of the job count:

* every trial is a pure function of its payload (no shared mutable
  state; workers use the ``spawn`` start method, so each starts from a
  fresh interpreter rather than a forked copy of the parent's heap);
* per-trial randomness comes from child seeds derived with
  :func:`repro.sim.rng.spawn_rng` (see :func:`derive_seeds`) or from
  values drawn *in the parent* before dispatch, so streams never depend
  on scheduling;
* results are merged in payload order, not completion order.

This module is the only sanctioned process-parallelism entry point:
lint rule RL009 flags raw ``multiprocessing`` / executor use anywhere
else in the library.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import ConfigError
from repro.sim.rng import spawn_rng

T = TypeVar("T")
R = TypeVar("R")


def derive_seeds(master_seed: int | None, scope: str, n: int) -> list[int]:
    """Derive ``n`` independent child seeds for a named trial sweep.

    Each seed comes from ``spawn_rng(master_seed, f"{scope}:trial{i}")``,
    so it is stable across runs and machines, uncorrelated across trials,
    and unaffected by how trials are distributed over workers.
    """
    if n < 0:
        raise ConfigError("seed count must be >= 0")
    return [
        int(spawn_rng(master_seed, f"{scope}:trial{i}").integers(0, 2**62))
        for i in range(n)
    ]


def run_trials(
    factory: Callable[[T], R],
    seeds: Iterable[T],
    jobs: int = 1,
) -> list[R]:
    """Run ``factory(seed)`` for every payload in ``seeds``.

    Parameters
    ----------
    factory:
        A *pure*, importable (picklable) callable executed once per trial.
    seeds:
        Per-trial payloads — plain seeds from :func:`derive_seeds`, or any
        picklable object carrying the trial's full configuration.
    jobs:
        Worker processes.  ``jobs=1`` runs serially in-process; ``jobs>1``
        uses a ``spawn``-based :class:`ProcessPoolExecutor`.  Results are
        identical either way and are always returned in payload order.
    """
    payloads: Sequence[T] = list(seeds)
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    jobs = min(jobs, len(payloads)) if payloads else 1
    if jobs <= 1:
        return [factory(payload) for payload in payloads]
    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
        futures = [pool.submit(factory, payload) for payload in payloads]
        return [future.result() for future in futures]


# -- persistent workers (the job-service substrate) ---------------------------


def _shard_main(
    factory: Callable[[T], R],
    inbox: "multiprocessing.Queue",
    outbox: "multiprocessing.Queue",
) -> None:
    """Worker-process loop: execute payloads until the ``None`` sentinel.

    Exceptions raised by a payload are *reported*, not fatal — the worker
    stays alive for the next payload.  Only an external kill (or an
    interpreter-level crash) takes the process down, which the parent
    observes as a dead process with an unanswered payload.
    """
    while True:
        item = inbox.get()
        if item is None:
            return
        tag, payload = item
        try:
            result = factory(payload)
        except BaseException as exc:  # deliberate: report, keep serving
            outbox.put((tag, False, f"{type(exc).__name__}: {exc}"))
        else:
            outbox.put((tag, True, result))


class ShardWorker:
    """One persistent ``spawn`` worker executing payloads in order.

    The long-running sibling of :func:`run_trials`: same determinism
    contract (pure importable factory, ``spawn`` start method, payloads
    carry all state), but the process outlives individual payloads so a
    job service can keep submitting without paying interpreter start-up
    per job.  :class:`repro.service.WorkerPool` builds its shards from
    this class; like the executor above, it is sanctioned here so lint
    rule RL009 keeps flagging ad-hoc ``multiprocessing`` elsewhere.
    """

    def __init__(self, factory: Callable[[T], R], name: str = "shard") -> None:
        self.factory = factory
        self.name = name
        context = multiprocessing.get_context("spawn")
        self._inbox: multiprocessing.Queue = context.Queue()
        self._outbox: multiprocessing.Queue = context.Queue()
        self._process = context.Process(
            target=_shard_main,
            args=(factory, self._inbox, self._outbox),
            name=name,
            daemon=True,
        )
        self._process.start()
        self.outstanding = 0

    @property
    def alive(self) -> bool:
        return self._process.is_alive()

    @property
    def busy(self) -> bool:
        return self.outstanding > 0

    def submit(self, tag: object, payload: T) -> None:
        """Queue one payload; results come back through :meth:`poll`."""
        if not self.alive:
            raise ConfigError(f"worker {self.name!r} is not running")
        self._inbox.put((tag, payload))
        self.outstanding += 1

    def poll(self, timeout: float | None = 0.0):
        """Next ``(tag, ok, value)`` result, or ``None`` within ``timeout``.

        ``ok`` is False when the payload raised; ``value`` is then the
        formatted exception.  A worker killed mid-payload never answers —
        detect that as ``poll() is None and not worker.alive`` while
        :attr:`busy`.
        """
        try:
            tag, ok, value = self._outbox.get(
                block=timeout is None or timeout > 0, timeout=timeout or None
            )
        except queue_mod.Empty:
            return None
        self.outstanding -= 1
        return tag, ok, value

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: sentinel, join, terminate as a last resort."""
        if self._process.is_alive():
            self._inbox.put(None)
            self._process.join(timeout)
        if self._process.is_alive():  # pragma: no cover - stuck worker
            self._process.terminate()
            self._process.join(timeout)
        self._inbox.close()
        self._outbox.close()

    def kill(self) -> None:
        """Hard-stop the worker (timeout enforcement path)."""
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(5.0)
        self._inbox.close()
        self._outbox.close()
