"""Deterministic parallel trial execution.

The sweep workloads — varbench repetitions, the fig8 app x anomaly
matrix, diagnosis-data generation — are embarrassingly parallel: every
trial builds its own cluster, runs it, and returns a picklable result.
:func:`run_trials` fans those trials out over worker *processes* while
guaranteeing that the merged results are byte-identical to a serial run
regardless of the job count:

* every trial is a pure function of its payload (no shared mutable
  state; workers use the ``spawn`` start method, so each starts from a
  fresh interpreter rather than a forked copy of the parent's heap);
* per-trial randomness comes from child seeds derived with
  :func:`repro.sim.rng.spawn_rng` (see :func:`derive_seeds`) or from
  values drawn *in the parent* before dispatch, so streams never depend
  on scheduling;
* results are merged in payload order, not completion order.

This module is the only sanctioned process-parallelism entry point:
lint rule RL009 flags raw ``multiprocessing`` / executor use anywhere
else in the library.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import ConfigError
from repro.sim.rng import spawn_rng

T = TypeVar("T")
R = TypeVar("R")


def derive_seeds(master_seed: int | None, scope: str, n: int) -> list[int]:
    """Derive ``n`` independent child seeds for a named trial sweep.

    Each seed comes from ``spawn_rng(master_seed, f"{scope}:trial{i}")``,
    so it is stable across runs and machines, uncorrelated across trials,
    and unaffected by how trials are distributed over workers.
    """
    if n < 0:
        raise ConfigError("seed count must be >= 0")
    return [
        int(spawn_rng(master_seed, f"{scope}:trial{i}").integers(0, 2**62))
        for i in range(n)
    ]


def run_trials(
    factory: Callable[[T], R],
    seeds: Iterable[T],
    jobs: int = 1,
) -> list[R]:
    """Run ``factory(seed)`` for every payload in ``seeds``.

    Parameters
    ----------
    factory:
        A *pure*, importable (picklable) callable executed once per trial.
    seeds:
        Per-trial payloads — plain seeds from :func:`derive_seeds`, or any
        picklable object carrying the trial's full configuration.
    jobs:
        Worker processes.  ``jobs=1`` runs serially in-process; ``jobs>1``
        uses a ``spawn``-based :class:`ProcessPoolExecutor`.  Results are
        identical either way and are always returned in payload order.
    """
    payloads: Sequence[T] = list(seeds)
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    jobs = min(jobs, len(payloads)) if payloads else 1
    if jobs <= 1:
        return [factory(payload) for payload in payloads]
    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
        futures = [pool.submit(factory, payload) for payload in payloads]
        return [future.result() for future in futures]
