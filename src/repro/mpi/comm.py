"""Communication primitives for simulated parallel programs.

Real HPC communication maps onto two fluid patterns:

``p2p_transfer``
    A fixed-size message/put: a segment whose nominal duration is
    ``latency + nbytes / peak_bw`` and whose flow demands ``peak_bw``.
    Under contention the flow's grant ratio stretches the segment, exactly
    like a blocking ``MPI_Send``/``shmem_putmem`` of that size.
``sustained_stream``
    An open-ended stream pushing at a target rate until stopped — the
    netoccupy anomaly's behaviour.

``Barrier`` provides BSP-style synchronisation between ranks: all of the
paper's iterative applications are bulk-synchronous, so one barrier per
iteration reproduces how the slowest rank paces the job.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError
from repro.sim.engine import Simulator
from repro.sim.process import Condition, Flow, Segment, Wait


class Barrier:
    """A reusable BSP barrier for ``n`` participants.

    Bodies use it as ``yield from barrier.wait()``.  Each cycle uses a
    fresh condition object, so a fast rank re-entering the barrier before
    slow ranks have resumed cannot corrupt the previous cycle.
    """

    def __init__(self, sim: Simulator, n: int, name: str = "barrier") -> None:
        if n < 1:
            raise ConfigError("barrier size must be >= 1")
        self.sim = sim
        self.n = n
        self.name = name
        self._count = 0
        self._cond = Condition(name)
        self.cycles = 0
        self._first_arrival: float | None = None

    def wait(self):
        """Generator: arrive and block until all ``n`` ranks have arrived."""
        cond = self._cond
        self._count += 1
        obs = self.sim.obs
        if obs is not None and self._count == 1:
            self._first_arrival = self.sim.now
        if self._count == self.n:
            self._count = 0
            self._cond = Condition(self.name)
            self.cycles += 1
            if obs is not None:
                start = (
                    self.sim.now if self._first_arrival is None else self._first_arrival
                )
                self._first_arrival = None
                obs.complete(
                    "mpi",
                    self.name,
                    ("mpi", self.name),
                    start=start,
                    end=self.sim.now,
                    args={"ranks": self.n, "cycle": self.cycles},
                )
            self.sim.notify(cond)
            return
            yield  # pragma: no cover - makes this a generator function
        yield Wait(cond)


def p2p_transfer(
    dst: str,
    nbytes: float,
    peak_bw: float,
    latency: float = 2e-6,
    cpu: float = 0.05,
    label: str = "p2p",
) -> Segment:
    """A blocking point-to-point transfer of ``nbytes`` to node ``dst``.

    ``peak_bw`` is the uncontended achievable bandwidth for this message
    size (the OSU benchmark model computes it from the message size);
    contention stretches the transfer through the flow's grant ratio.
    """
    if nbytes < 0 or peak_bw <= 0:
        raise ConfigError("transfer needs nbytes >= 0 and peak_bw > 0")
    duration = latency + nbytes / peak_bw
    return Segment(
        work=duration,
        cpu=cpu,
        flows=[Flow(dst=dst, rate=peak_bw)],
        label=label,
    )


def sustained_stream(
    dst: str,
    rate: float,
    duration: float = math.inf,
    cpu: float = 0.05,
    label: str = "stream",
) -> Segment:
    """An open-ended put stream toward ``dst`` at ``rate`` bytes/s."""
    if rate <= 0:
        raise ConfigError("stream rate must be > 0")
    return Segment(
        work=duration,
        cpu=cpu,
        flows=[Flow(dst=dst, rate=rate)],
        label=label,
    )
