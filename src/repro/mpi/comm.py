"""Communication primitives for simulated parallel programs.

Real HPC communication maps onto two fluid patterns:

``p2p_transfer``
    A fixed-size message/put: a segment whose nominal duration is
    ``latency + nbytes / peak_bw`` and whose flow demands ``peak_bw``.
    Under contention the flow's grant ratio stretches the segment, exactly
    like a blocking ``MPI_Send``/``shmem_putmem`` of that size.
``sustained_stream``
    An open-ended stream pushing at a target rate until stopped — the
    netoccupy anomaly's behaviour.

``Barrier`` provides BSP-style synchronisation between ranks: all of the
paper's iterative applications are bulk-synchronous, so one barrier per
iteration reproduces how the slowest rank paces the job.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError, MPITimeoutError
from repro.sim.engine import Simulator
from repro.sim.process import Condition, Flow, Segment, SimProcess, Wait


class Barrier:
    """A reusable BSP barrier for ``n`` participants.

    Bodies use it as ``yield from barrier.wait()``.  Each cycle uses a
    fresh condition object, so a fast rank re-entering the barrier before
    slow ranks have resumed cannot corrupt the previous cycle.

    Parameters
    ----------
    timeout:
        Seconds a cycle may stay open after its first arrival before the
        collective times out (``None`` = wait forever, the MPI default).
    on_timeout:
        ``"abort"`` delivers :class:`~repro.errors.MPITimeoutError` into
        every waiting rank (like ``MPI_Abort`` on a timed-out collective);
        ``"degrade"`` shrinks the barrier to the ranks that arrived and
        releases them, letting the job limp on without the stragglers.
    """

    def __init__(
        self,
        sim: Simulator,
        n: int,
        name: str = "barrier",
        timeout: float | None = None,
        on_timeout: str = "abort",
    ) -> None:
        if n < 1:
            raise ConfigError("barrier size must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ConfigError("barrier timeout must be positive")
        if on_timeout not in ("abort", "degrade"):
            raise ConfigError(
                f"on_timeout must be 'abort' or 'degrade', got {on_timeout!r}"
            )
        self.sim = sim
        self.n = n
        self.name = name
        self.timeout = timeout
        self.on_timeout = on_timeout
        self._count = 0
        self._cond = Condition(name)
        self.cycles = 0
        self.timeouts = 0
        self._first_arrival: float | None = None

    def wait(self):
        """Generator: arrive and block until all ``n`` ranks have arrived."""
        cond = self._cond
        self._count += 1
        if self._count == 1:
            self._first_arrival = self.sim.now
            if self.timeout is not None:
                self.sim.call_in(self.timeout, lambda: self._check_timeout(cond))
        if self._count >= self.n:
            self._release()
            return
            yield  # pragma: no cover - makes this a generator function
        yield Wait(cond)

    def _release(self) -> None:
        cond = self._cond
        self._count = 0
        self._cond = Condition(self.name)
        self.cycles += 1
        obs = self.sim.obs
        if obs is not None:
            start = (
                self.sim.now if self._first_arrival is None else self._first_arrival
            )
            obs.complete(
                "mpi",
                self.name,
                ("mpi", self.name),
                start=start,
                end=self.sim.now,
                args={"ranks": self.n, "cycle": self.cycles},
            )
        self._first_arrival = None
        self.sim.notify(cond)

    def _check_timeout(self, cond: Condition) -> None:
        if cond is not self._cond or self._count == 0:
            return  # the cycle completed (or emptied) in time
        self.timeouts += 1
        obs = self.sim.obs
        if obs is not None:
            obs.instant(
                "mpi",
                f"timeout:{self.name}",
                ("mpi", self.name),
                args={
                    "arrived": self._count,
                    "expected": self.n,
                    "action": self.on_timeout,
                },
            )
        if self.on_timeout == "degrade":
            # Continue without the stragglers: the arrived ranks become
            # the new collective; late ranks join subsequent cycles.
            self.n = self._count
            self._release()
            return
        waiters = list(cond.waiters)
        self._count = 0
        self._cond = Condition(self.name)
        self._first_arrival = None
        exc_msg = f"barrier {self.name!r} timed out after {self.timeout}s"
        for proc in waiters:
            self.sim.interrupt(proc, MPITimeoutError(exc_msg))

    def leave(self, proc: SimProcess | None = None) -> None:
        """Permanently remove one participant (rank death cleanup).

        Called by job-level terminate hooks when a rank is killed so the
        surviving ranks are not deadlocked waiting for a dead peer.  If
        the departing rank had already arrived this cycle (it died while
        waiting), its arrival is uncounted; if its departure makes the
        arrived set complete, the cycle releases immediately.
        """
        if self.n < 1:
            return
        self.n -= 1
        if proc is not None and proc.waiting_on is self._cond:
            self._count -= 1
        if 0 < self.n <= self._count:
            self._release()


def p2p_transfer(
    dst: str,
    nbytes: float,
    peak_bw: float,
    latency: float = 2e-6,
    cpu: float = 0.05,
    label: str = "p2p",
) -> Segment:
    """A blocking point-to-point transfer of ``nbytes`` to node ``dst``.

    ``peak_bw`` is the uncontended achievable bandwidth for this message
    size (the OSU benchmark model computes it from the message size);
    contention stretches the transfer through the flow's grant ratio.
    """
    if nbytes < 0 or peak_bw <= 0:
        raise ConfigError("transfer needs nbytes >= 0 and peak_bw > 0")
    duration = latency + nbytes / peak_bw
    return Segment(
        work=duration,
        cpu=cpu,
        flows=[Flow(dst=dst, rate=peak_bw)],
        label=label,
    )


def sustained_stream(
    dst: str,
    rate: float,
    duration: float = math.inf,
    cpu: float = 0.05,
    label: str = "stream",
) -> Segment:
    """An open-ended put stream toward ``dst`` at ``rate`` bytes/s."""
    if rate <= 0:
        raise ConfigError("stream rate must be > 0")
    return Segment(
        work=duration,
        cpu=cpu,
        flows=[Flow(dst=dst, rate=rate)],
        label=label,
    )
