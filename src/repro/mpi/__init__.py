"""Minimal MPI/SHMEM semantics on top of the simulated network."""

from repro.mpi.comm import (
    Barrier,
    p2p_transfer,
    sustained_stream,
)

__all__ = ["Barrier", "p2p_transfer", "sustained_stream"]
