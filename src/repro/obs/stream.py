"""Streaming telemetry sinks: flush records as the run produces them.

The batch exporters in :mod:`repro.obs.export` hold every span in memory
and write one file at the end of the run.  This module provides the
LDMS-style alternative — an :class:`ObsSink` protocol plus bounded-memory
incremental writers that flush each record the moment it is final:

* spans flush when they **close** (the collector assigns their completion
  ``seq`` and notifies every registered sink),
* instants flush when they are recorded,
* :class:`~repro.monitoring.service.MetricService` samples flush at every
  sampling tick,
* :class:`~repro.sim.stats.SimStats` counters flush as periodic snapshot
  records alongside the samples (plus one final snapshot at close).

**The ObsSink contract.**  A sink receives records in canonical
completion (``seq``) order, the same order the batch exporters use, so a
sink that writes records as they arrive produces byte-identical files —
the ``stream_export`` differential oracle in :mod:`repro.check` asserts
exactly this for every fuzz-corpus case.  Determinism requirements:

* *Flush points are content-final*: a span's args must not be mutated
  after it closes; the collector enforces the ordering, the emitters the
  finality.
* *Finalize before close*: still-open spans at the end of a run are
  sealed (and streamed) by
  :meth:`~repro.obs.spans.SpanCollector.finalize`; closing a writer
  earlier simply omits the still-open spans.
* *Bounded memory*: writers keep O(tracks) state (the pid/tid numbering),
  never the record backlog.

``repro trace <scenario> --stream DIR`` and
:meth:`~repro.obs.observability.Observability.stream_to` wire a full run
directory::

    DIR/
      trace.jsonl          # spans + instants, streamed
      trace.json           # Chrome trace (opt-in), streamed
      metrics/<node>.jsonl # one LDMS-style sample stream per node
      counters.jsonl       # SimStats counter snapshots per sample tick
      counters.json        # final counter snapshot (written at close)

which is the layout ``repro diff`` and ``repro report`` analyse.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, TYPE_CHECKING, Mapping, Sequence

from repro.errors import ObservabilityError
from repro.obs.export import (
    CHROME_DISPLAY_TIME_UNIT,
    CHROME_OTHER_DATA,
    TrackNumbering,
    chrome_instant_event,
    chrome_span_event,
    encode_jsonl,
    jsonl_instant_record,
    jsonl_span_record,
)
from repro.obs.spans import InstantEvent, Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitoring.service import MetricService
    from repro.obs.observability import Observability
    from repro.sim.stats import SimStats

#: filenames of the streamed run-directory layout
TRACE_JSONL = "trace.jsonl"
TRACE_CHROME = "trace.json"
METRICS_DIR = "metrics"
COUNTERS_JSONL = "counters.jsonl"
COUNTERS_JSON = "counters.json"


class ObsSink:
    """Protocol base for streaming telemetry consumers.

    Subclass and override the callbacks you care about; every method is a
    no-op by default so sinks only pay for what they consume.  Callbacks
    arrive in completion (``seq``) order — see the module docstring for
    the full contract.
    """

    def on_span_open(self, span: Span) -> None:
        """A span was opened (its content is *not* final yet)."""

    def on_span_close(self, span: Span) -> None:
        """A span closed; its ``seq``, ``end`` and args are final."""

    def on_instant(self, event: InstantEvent) -> None:
        """An instant was recorded (final at birth)."""

    def on_metric_sample(
        self, time: float, node: str, values: Mapping[str, float]
    ) -> None:
        """A monitoring tick sampled ``node`` (one value per metric)."""

    def flush(self) -> None:
        """Push buffered bytes to the underlying file, if any."""

    def close(self) -> None:
        """Seal the output; no callbacks may arrive afterwards."""


class _FileSink(ObsSink):
    """Shared file-handle plumbing: accepts a path or an open text file."""

    def __init__(self, target: str | Path | IO[str]) -> None:
        if hasattr(target, "write"):
            self._file: IO[str] = target  # type: ignore[assignment]
            self._owns_file = False
        else:
            path = Path(target)  # type: ignore[arg-type]
            path.parent.mkdir(parents=True, exist_ok=True)
            self._file = path.open("w")
            self._owns_file = True
        self._closed = False

    def _write(self, text: str) -> None:
        if self._closed:
            raise ObservabilityError(f"{type(self).__name__} is closed")
        self._file.write(text)

    def flush(self) -> None:
        if not self._closed:
            self._file.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._file.flush()
        if self._owns_file:
            self._file.close()


class JsonlStreamWriter(_FileSink):
    """Incremental JSONL trace writer.

    Writes one record line per closed span / instant as it arrives;
    after :meth:`~repro.obs.spans.SpanCollector.finalize` + :meth:`close`
    the file is byte-identical to
    :func:`repro.obs.export.write_jsonl_trace` of the same collector.
    """

    def on_span_close(self, span: Span) -> None:
        assert span.end is not None
        self._write(encode_jsonl(jsonl_span_record(span, span.end)) + "\n")

    def on_instant(self, event: InstantEvent) -> None:
        self._write(encode_jsonl(jsonl_instant_record(event)) + "\n")


class ChromeStreamWriter(_FileSink):
    """Incremental Chrome trace-event writer.

    Reproduces ``json.dumps(chrome_trace(collector), sort_keys=True,
    indent=1)`` byte-for-byte without ever holding more than one event:
    the fixed header keys sort before ``traceEvents``, track metadata is
    interleaved at first use, and each event is serialised independently
    and re-indented into the array.
    """

    def __init__(self, target: str | Path | IO[str]) -> None:
        super().__init__(target)
        self._tracks = TrackNumbering()
        self._n_events = 0
        header = {
            "displayTimeUnit": CHROME_DISPLAY_TIME_UNIT,
            "otherData": dict(CHROME_OTHER_DATA),
        }
        # Render the fixed keys exactly as json.dumps would, then re-open
        # the object for the trailing "traceEvents" array.
        body = json.dumps(header, sort_keys=True, indent=1)
        self._write(body[: body.rfind("\n}")] + ',\n "traceEvents": [')

    def _emit(self, event: dict[str, object]) -> None:
        lead = "\n" if self._n_events == 0 else ",\n"
        dumped = json.dumps(event, sort_keys=True, indent=1)
        self._write(lead + "\n".join("  " + line for line in dumped.splitlines()))
        self._n_events += 1

    def _emit_with_metadata(self, track: tuple[str, str], event: dict[str, object]) -> None:
        for meta in self._tracks.metadata_for(track):
            self._emit(meta)
        self._emit(event)

    def on_span_close(self, span: Span) -> None:
        assert span.end is not None
        for meta in self._tracks.metadata_for(span.track):
            self._emit(meta)
        self._emit(chrome_span_event(span, span.end, self._tracks))

    def on_instant(self, event: InstantEvent) -> None:
        for meta in self._tracks.metadata_for(event.track):
            self._emit(meta)
        self._emit(chrome_instant_event(event, self._tracks))

    def close(self) -> None:
        if self._closed:
            return
        self._write(("\n ]" if self._n_events else "]") + "\n}\n")
        super().close()


class MetricJsonlStreamWriter(_FileSink):
    """Streams one node's monitoring samples as JSONL.

    Byte-identical to :func:`repro.monitoring.export.to_jsonl_text` for
    the same node once the run ends: one ``{"time", "node", metrics...}``
    record per sampling tick, restricted to the service's declared metric
    names (per-core extras stay out of the export, as in the batch path).
    """

    def __init__(
        self,
        target: str | Path | IO[str],
        node: str,
        metrics: Sequence[str],
    ) -> None:
        super().__init__(target)
        self.node = node
        self.metrics = tuple(metrics)

    def on_metric_sample(
        self, time: float, node: str, values: Mapping[str, float]
    ) -> None:
        if node != self.node:
            return
        record: dict[str, object] = {"time": float(time), "node": node}
        for metric in self.metrics:
            record[metric] = float(values[metric])
        self._write(json.dumps(record, sort_keys=True) + "\n")


class CounterStreamWriter(_FileSink):
    """Streams deterministic SimStats counter snapshots per sample tick.

    Each line is ``{"time": t, "counters": {...}}`` with the integer
    counters sorted by name; wall-clock timings are excluded (they are
    not deterministic and belong to ``repro report``'s wallclock section).
    """

    def __init__(self, target: str | Path | IO[str], stats: "SimStats") -> None:
        super().__init__(target)
        self._stats = stats
        self._last_node: str | None = None

    def on_metric_sample(
        self, time: float, node: str, values: Mapping[str, float]
    ) -> None:
        # One snapshot per tick, not per node: emit on the first node seen
        # at each new timestamp.
        if self._last_node is not None and node != self._last_node:
            return
        self._last_node = node
        record = {
            "time": float(time),
            "counters": dict(sorted(self._stats.counters.items())),
        }
        self._write(json.dumps(record, sort_keys=True) + "\n")


def counters_snapshot_text(stats: "SimStats") -> str:
    """Canonical JSON of the final deterministic counter block."""
    return (
        json.dumps(
            {"counters": dict(sorted(stats.counters.items()))},
            sort_keys=True,
            indent=2,
        )
        + "\n"
    )


class RunStreamer:
    """Wire a full streamed run directory onto an Observability handle.

    Registers trace writers on the span collector and per-node metric
    writers on the metric service; :meth:`close` finalizes the collector,
    seals every file and writes the final counter snapshot.  Create via
    :meth:`Observability.stream_to`.
    """

    def __init__(
        self,
        obs: "Observability",
        directory: str | Path,
        chrome: bool = False,
    ) -> None:
        self.obs = obs
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sinks: list[ObsSink] = []
        self._closed = False

        self._trace_sinks: list[ObsSink] = [
            JsonlStreamWriter(self.directory / TRACE_JSONL)
        ]
        if chrome:
            self._trace_sinks.append(ChromeStreamWriter(self.directory / TRACE_CHROME))
        for sink in self._trace_sinks:
            obs.collector.add_sink(sink)
        self.sinks.extend(self._trace_sinks)

        self._metric_sinks: list[ObsSink] = []
        service = obs.service
        if service is not None:
            metrics = service.metric_names
            for node in sorted(service.data):
                self._metric_sinks.append(
                    MetricJsonlStreamWriter(
                        self.directory / METRICS_DIR / f"{node}.jsonl", node, metrics
                    )
                )
            self._metric_sinks.append(
                CounterStreamWriter(self.directory / COUNTERS_JSONL, obs.stats)
            )
            for sink in self._metric_sinks:
                service.add_sink(sink)
            self.sinks.extend(self._metric_sinks)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> Path:
        """Finalize, detach every sink, seal the files; returns the dir."""
        if self._closed:
            return self.directory
        self._closed = True
        collector = self.obs.collector
        if collector.attached:
            collector.finalize()
        for sink in self._trace_sinks:
            collector.remove_sink(sink)
        service = self.obs.service
        if service is not None:
            for sink in self._metric_sinks:
                service.remove_sink(sink)
        for sink in self.sinks:
            sink.close()
        (self.directory / COUNTERS_JSON).write_text(
            counters_snapshot_text(self.obs.stats)
        )
        return self.directory
