"""Run summaries and wall-clock self-profiling (``repro report``).

One report answers two different questions from the same run:

* **What did the simulation do?** — span counts per category, per-node
  utilization rollups, the critical path, and the deterministic
  :class:`~repro.sim.stats.SimStats` counters.  This part is
  byte-identical across same-seed reruns, so CI can golden it.
* **Where did the host's wall-clock go?** — per-subsystem attribution
  built on the existing SimStats timers: the engine's ``accrue`` and
  ``resolve`` phases, the rate model (``node``), the flow solver
  (``network``), ``storage``, ``monitoring`` sampling, and ``obs``
  streaming overhead.  Timings are real wall seconds and therefore *not*
  deterministic; ``--no-wallclock`` drops the section so the rest of the
  report stays reproducible.

Two sources: a live scenario (``repro report mixed``) or a streamed run
directory written by ``repro trace --stream`` (``repro report --run-dir
runs/a``).  Both render to the terminal and to markdown (``--md``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.errors import ObservabilityError
from repro.obs.analyze import Trace

#: timer name -> (report label, what the bucket measures)
SUBSYSTEM_TIMERS: dict[str, tuple[str, str]] = {
    "accrue": ("engine.accrue", "event-loop progress accrual"),
    "resolve": ("engine.resolve", "rate re-resolution (includes the three below)"),
    "node": ("rate_model", "per-node rate waterfilling"),
    "network": ("flow_solver", "network max-min fair share"),
    "storage": ("storage", "filesystem bandwidth shares"),
    "monitoring": ("monitoring", "metric sampling ticks"),
    "obs": ("obs", "span bookkeeping + streaming sinks (nested elsewhere)"),
}

#: timers whose cost is already counted inside another bucket
_NESTED = frozenset({"node", "network", "storage", "obs"})


def wallclock_attribution(
    timings: Mapping[str, float],
) -> list[tuple[str, float, str]]:
    """Rows of (label, seconds, note) for the self-profiling section.

    Derives ``engine.resolve (self)`` — resolve time not spent in the
    rate model / flow solver / storage — so the table sums sensibly, and
    appends any unrecognised timers verbatim rather than dropping them.
    """
    rows: list[tuple[str, float, str]] = []
    for timer, (label, note) in SUBSYSTEM_TIMERS.items():
        if timer in timings:
            rows.append((label, timings[timer], note))
    resolve = timings.get("resolve")
    if resolve is not None:
        nested = sum(
            timings.get(t, 0.0) for t in ("node", "network", "storage")
        )
        rows.append(
            (
                "engine.resolve (self)",
                max(0.0, resolve - nested),
                "resolve minus rate model / flow solver / storage",
            )
        )
    for timer in sorted(timings):
        if timer not in SUBSYSTEM_TIMERS:
            rows.append((timer, timings[timer], "unattributed timer"))
    return rows


@dataclass
class RunReport:
    """Everything one report renders, already aggregated."""

    title: str
    source: str
    categories: dict[str, int] = field(default_factory=dict)
    instants: int = 0
    horizon: float = 0.0
    utilization: dict[str, float] = field(default_factory=dict)
    #: (cat, name, group, start, end) per critical-path hop, root first
    critical_path: list[tuple[str, str, str, float, float]] = field(
        default_factory=list
    )
    counters: dict[str, int] = field(default_factory=dict)
    #: node -> sample count (run-dir mode only)
    samples: dict[str, int] = field(default_factory=dict)
    #: timer name -> wall seconds; empty when wall-clock is suppressed
    timings: dict[str, float] = field(default_factory=dict)

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        """Terminal form; deterministic unless ``timings`` is populated."""
        lines = [f"run report: {self.title}", f"source: {self.source}"]
        spans = "  ".join(f"{c}={n}" for c, n in self.categories.items())
        lines.append(f"spans: {spans or 'none'}  instants: {self.instants}")
        lines.append(f"horizon: {self.horizon:g}s")
        if self.utilization:
            lines.append("utilization (engine spans):")
            for group, frac in self.utilization.items():
                lines.append(f"  {group:<12} {frac:7.1%}")
        if self.critical_path:
            total = self.critical_path[0][4] - self.critical_path[0][3]
            lines.append(
                f"critical path ({len(self.critical_path)} span(s), "
                f"{total:g}s end to end):"
            )
            for cat, name, group, start, end in self.critical_path:
                lines.append(
                    f"  {cat}:{name} on {group} [{start:g}, {end:g}]"
                )
        if self.samples:
            counts = "  ".join(
                f"{node}={n}" for node, n in self.samples.items()
            )
            lines.append(f"metric samples: {counts}")
        if self.counters:
            lines.append("counters:")
            for name, value in self.counters.items():
                lines.append(f"  {name} = {value}")
        if self.timings:
            lines.append("wall-clock attribution (not deterministic):")
            for label, seconds, note in wallclock_attribution(self.timings):
                lines.append(f"  {label:<22} {seconds:9.4f}s  {note}")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Markdown form with the same sections as :meth:`render`."""
        lines = [f"# Run report: {self.title}", "", f"Source: `{self.source}`", ""]
        lines.append("## Timeline")
        lines.append("")
        lines.append("| category | spans |")
        lines.append("| --- | ---: |")
        for cat, n in self.categories.items():
            lines.append(f"| {cat} | {n} |")
        lines.append(f"| _instants_ | {self.instants} |")
        lines.append("")
        lines.append(f"Horizon: {self.horizon:g} simulated seconds.")
        if self.utilization:
            lines.extend(["", "## Utilization (engine spans)", ""])
            lines.append("| node | busy |")
            lines.append("| --- | ---: |")
            for group, frac in self.utilization.items():
                lines.append(f"| {group} | {frac:.1%} |")
        if self.critical_path:
            lines.extend(["", "## Critical path", ""])
            lines.append("| span | node | start | end |")
            lines.append("| --- | --- | ---: | ---: |")
            for cat, name, group, start, end in self.critical_path:
                lines.append(
                    f"| {cat}:{name} | {group} | {start:g} | {end:g} |"
                )
        if self.counters:
            lines.extend(["", "## Counters", ""])
            lines.append("| counter | value |")
            lines.append("| --- | ---: |")
            for name, value in self.counters.items():
                lines.append(f"| {name} | {value} |")
        if self.timings:
            lines.extend(
                ["", "## Wall-clock attribution (not deterministic)", ""]
            )
            lines.append("| subsystem | seconds | measures |")
            lines.append("| --- | ---: | --- |")
            for label, seconds, note in wallclock_attribution(self.timings):
                lines.append(f"| {label} | {seconds:.4f} | {note} |")
        lines.append("")
        return "\n".join(lines)


def _trace_sections(report: RunReport, trace: Trace) -> None:
    """Fill the timeline-derived sections shared by both sources."""
    report.categories = trace.categories()
    report.instants = len(trace.instants)
    report.horizon = trace.horizon
    report.utilization = trace.utilization(cat="engine")
    report.critical_path = [
        (s.cat, s.name, s.group, s.start, s.end)
        for s in trace.critical_path()
    ]


def report_scenario(
    name: str,
    seed: int = 0,
    horizon: float = 120.0,
    wallclock: bool = True,
) -> RunReport:
    """Run a trace scenario and aggregate its report."""
    from repro.obs.scenarios import run_scenario

    run = run_scenario(name, seed=seed, horizon=horizon)
    report = RunReport(
        title=f"scenario {name!r} (seed {seed})",
        source=f"scenario:{name}",
    )
    _trace_sections(report, Trace.from_collector(run.obs.collector))
    report.counters = dict(sorted(run.obs.stats.counters.items()))
    if run.obs.service is not None:
        report.samples = {
            node: len(run.obs.service.times)
            for node in sorted(run.obs.service.data)
        }
    if wallclock:
        report.timings = dict(run.obs.stats.timings)
    return report


def report_run_dir(directory: str | Path, wallclock: bool = True) -> RunReport:
    """Aggregate a report from a streamed run directory.

    Needs at least ``trace.jsonl``; ``counters.json`` and
    ``metrics/*.jsonl`` fill their sections when present.  Streamed runs
    carry no timer snapshot, so the wall-clock section only appears for
    live sources regardless of ``wallclock``.
    """
    directory = Path(directory)
    trace_path = directory / "trace.jsonl"
    if not trace_path.is_file():
        raise ObservabilityError(
            f"no trace.jsonl in {directory} — was it written by "
            "`repro trace --stream`?"
        )
    report = RunReport(
        title=f"run directory {directory.name!r}",
        source=str(directory),
    )
    _trace_sections(report, Trace.load(trace_path))
    counters_path = directory / "counters.json"
    if counters_path.is_file():
        payload = json.loads(counters_path.read_text())
        counters = payload.get("counters", payload)
        if isinstance(counters, dict):
            report.counters = {
                str(k): int(v) for k, v in sorted(counters.items())
            }
    metrics_dir = directory / "metrics"
    if metrics_dir.is_dir():
        for path in sorted(metrics_dir.glob("*.jsonl")):
            n = sum(1 for line in path.read_text().splitlines() if line.strip())
            report.samples[path.stem] = n
    return report
