"""repro.obs — structured observability for the simulated stack.

The subsystem has four layers:

:mod:`repro.obs.spans`
    :class:`SpanCollector` and the span/event records every subsystem
    emits into (simulated-time, causally linked, zero-cost detached).
:mod:`repro.obs.export`
    Chrome trace-event JSON (Perfetto / ``chrome://tracing``) and JSONL
    exporters, plus the schema validator CI runs on trace artefacts.
:mod:`repro.obs.manifest`
    Deterministic run manifests: seed, config, version, injection labels,
    engine counters and series checksums as canonical JSON.
:mod:`repro.obs.observability`
    The :class:`Observability` handle unifying SimStats, the metric
    service and the span timeline behind one attach/detach pair.
:mod:`repro.obs.stream`
    The :class:`ObsSink` protocol and bounded-memory incremental writers
    that flush spans/samples/counters during the run, byte-identical to
    the batch exporters.
:mod:`repro.obs.analyze`
    The trace-query engine: filtering, duration stats, utilization
    rollups and critical-path extraction over the causal span links.
:mod:`repro.obs.diff`
    Run-directory comparison with divergence localization (manifest →
    series → sample index → enclosing span), behind ``repro diff``.
:mod:`repro.obs.report`
    Deterministic run summaries plus wall-clock self-profiling per
    subsystem, behind ``repro report``.

See ``docs/OBSERVABILITY.md`` for the full tour.
"""

from repro.obs.export import (
    assert_valid_chrome_trace,
    chrome_trace,
    jsonl_lines,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl_trace,
)
from repro.obs.manifest import (
    build_manifest,
    injection_labels,
    manifest_text,
    series_checksum,
    service_checksums,
    text_checksum,
    write_manifest,
)
from repro.obs.observability import TRACE_FORMATS, Observability
from repro.obs.scenarios import SCENARIOS, ScenarioSpec, TraceRun, run_scenario
from repro.obs.spans import InstantEvent, Span, SpanCollector
from repro.obs.stream import (
    ChromeStreamWriter,
    JsonlStreamWriter,
    MetricJsonlStreamWriter,
    ObsSink,
    RunStreamer,
)

__all__ = [
    "ChromeStreamWriter",
    "InstantEvent",
    "JsonlStreamWriter",
    "MetricJsonlStreamWriter",
    "ObsSink",
    "Observability",
    "RunStreamer",
    "SCENARIOS",
    "ScenarioSpec",
    "Span",
    "SpanCollector",
    "TRACE_FORMATS",
    "TraceRun",
    "assert_valid_chrome_trace",
    "build_manifest",
    "chrome_trace",
    "injection_labels",
    "jsonl_lines",
    "manifest_text",
    "run_scenario",
    "series_checksum",
    "service_checksums",
    "text_checksum",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl_trace",
    "write_manifest",
]
