"""Run-directory comparison with divergence localization (``repro diff``).

Two same-seed runs of a deterministic simulator must produce identical
artefacts; when they do not, the interesting question is never *whether*
they differ (the manifest checksums say so in one line) but **where the
divergence enters**.  This module walks that question down the stack:

1. inventory — which files exist in only one run,
2. manifests — the first differing key path in the canonical JSON,
3. metric series — for each ``metrics/<node>.jsonl`` stream whose bytes
   differ, the **first divergent sample index** (earliest time, ties by
   metric name), with both values shown as ``repr`` and ``float.hex`` so
   one-ulp drifts are visible,
4. enclosing span — if the runs carry a ``trace.jsonl``, the innermost
   span covering that (node, time) point, naming the activity that was
   running when the streams first disagreed,
5. traces and other text artefacts — first differing line.

The report is deterministic given the two directories (files sorted,
no wall-clock, no absolute temp paths beyond the labels the caller
passes), so CI can assert on its output.  Exit status: 0 identical,
1 diverged — ``cmp``-style.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ObservabilityError
from repro.obs.analyze import Trace, TraceSpan

#: artefact names (relative glob patterns) the differ understands
_TEXT_PATTERNS = (
    "*.txt",
    "*.json",
    "*.jsonl",
    "*.manifest.json",
    "metrics/*.jsonl",
)


@dataclass(frozen=True)
class SeriesDivergence:
    """The first divergent sample between two metric streams."""

    file: str
    node: str
    index: int
    time: float
    metric: str
    value_a: float
    value_b: float
    span: TraceSpan | None = None

    def describe(self) -> list[str]:
        lines = [
            f"{self.file}: first divergence at sample {self.index} "
            f"(t={self.time:g}), metric {self.metric!r}:",
            f"  a: {self.value_a!r} ({float(self.value_a).hex()})",
            f"  b: {self.value_b!r} ({float(self.value_b).hex()})",
        ]
        if self.span is not None:
            s = self.span
            lines.append(
                f"  enclosing span: {s.cat}:{s.name} on {s.group}/{s.lane} "
                f"[{s.start:g}, {s.end:g}] sid={s.sid}"
            )
        return lines


@dataclass
class DiffReport:
    """Everything ``repro diff`` found between two run directories."""

    dir_a: str
    dir_b: str
    only_in_a: list[str] = field(default_factory=list)
    only_in_b: list[str] = field(default_factory=list)
    #: relative path -> human description of the first difference
    differing: dict[str, str] = field(default_factory=dict)
    #: identical relative paths (compared byte-for-byte)
    identical: list[str] = field(default_factory=list)
    series: list[SeriesDivergence] = field(default_factory=list)

    @property
    def is_identical(self) -> bool:
        return not (self.only_in_a or self.only_in_b or self.differing)

    def render(self) -> str:
        lines = [f"diff {self.dir_a} {self.dir_b}"]
        if self.is_identical:
            lines.append(
                f"identical: {len(self.identical)} artefact(s) compared, "
                "0 differences"
            )
            return "\n".join(lines)
        for path in self.only_in_a:
            lines.append(f"only in a: {path}")
        for path in self.only_in_b:
            lines.append(f"only in b: {path}")
        described = {d.file for d in self.series}
        for path, what in sorted(self.differing.items()):
            if path not in described:
                lines.append(f"differs: {path}: {what}")
        for divergence in self.series:
            lines.extend(divergence.describe())
        lines.append(
            f"{len(self.differing)} differing, {len(self.identical)} identical, "
            f"{len(self.only_in_a) + len(self.only_in_b)} unmatched artefact(s)"
        )
        return "\n".join(lines)


def _inventory(directory: Path) -> dict[str, Path]:
    """Relative path -> absolute path of every comparable artefact."""
    seen: dict[str, Path] = {}
    for pattern in _TEXT_PATTERNS:
        for path in directory.glob(pattern):
            if path.is_file():
                seen[path.relative_to(directory).as_posix()] = path
    return dict(sorted(seen.items()))


def _first_diff_line(text_a: str, text_b: str) -> str:
    """Describe the first differing line of two text artefacts."""
    lines_a = text_a.splitlines()
    lines_b = text_b.splitlines()
    for i, (a, b) in enumerate(zip(lines_a, lines_b), start=1):
        if a != b:
            return f"line {i}: {a[:80]!r} vs {b[:80]!r}"
    if len(lines_a) != len(lines_b):
        return f"line count {len(lines_a)} vs {len(lines_b)}"
    return "byte difference (line endings or trailing bytes)"


def _manifest_diff_path(a: object, b: object, prefix: str = "") -> str | None:
    """First differing key path between two parsed JSON documents."""
    if type(a) is not type(b):
        return prefix or "$"
    if isinstance(a, dict):
        assert isinstance(b, dict)
        for key in sorted(set(a) | set(b)):
            where = f"{prefix}.{key}" if prefix else key
            if key not in a or key not in b:
                return where
            found = _manifest_diff_path(a[key], b[key], where)
            if found is not None:
                return found
        return None
    if isinstance(a, list):
        assert isinstance(b, list)
        for i, (va, vb) in enumerate(zip(a, b)):
            found = _manifest_diff_path(va, vb, f"{prefix}[{i}]")
            if found is not None:
                return found
        if len(a) != len(b):
            return f"{prefix}[{min(len(a), len(b))}]"
        return None
    return None if a == b else (prefix or "$")


def _metric_records(path: Path) -> list[dict[str, object]]:
    records = []
    for line in path.read_text().splitlines():
        if line.strip():
            records.append(json.loads(line))
    return records


def _localize_series(
    rel: str, path_a: Path, path_b: Path, trace: Trace | None
) -> SeriesDivergence | None:
    """Find the first divergent (sample index, metric) of two streams."""
    records_a = _metric_records(path_a)
    records_b = _metric_records(path_b)
    for index, (ra, rb) in enumerate(zip(records_a, records_b)):
        if ra == rb:
            continue
        node = str(ra.get("node", rb.get("node", "?")))
        time = float(ra.get("time", rb.get("time", 0.0)))
        for metric in sorted(set(ra) | set(rb)):
            if metric in ("time", "node"):
                continue
            va, vb = ra.get(metric), rb.get(metric)
            if va != vb:
                span = (
                    trace.enclosing(node, time) if trace is not None else None
                )
                return SeriesDivergence(
                    file=rel,
                    node=node,
                    index=index,
                    time=time,
                    metric=metric,
                    value_a=float(va) if va is not None else float("nan"),
                    value_b=float(vb) if vb is not None else float("nan"),
                    span=span,
                )
        # same metric values but time/node field changed
        for key in ("time", "node"):
            if ra.get(key) != rb.get(key):
                return SeriesDivergence(
                    file=rel,
                    node=node,
                    index=index,
                    time=time,
                    metric=key,
                    value_a=float(ra.get("time", 0.0)),
                    value_b=float(rb.get("time", 0.0)),
                    span=None,
                )
    return None


def diff_runs(
    dir_a: str | Path,
    dir_b: str | Path,
    label_a: str | None = None,
    label_b: str | None = None,
) -> DiffReport:
    """Compare two run/result directories; see the module docstring."""
    dir_a, dir_b = Path(dir_a), Path(dir_b)
    for directory in (dir_a, dir_b):
        if not directory.is_dir():
            raise ObservabilityError(f"not a directory: {directory}")
    report = DiffReport(
        dir_a=label_a if label_a is not None else str(dir_a),
        dir_b=label_b if label_b is not None else str(dir_b),
    )
    files_a = _inventory(dir_a)
    files_b = _inventory(dir_b)
    report.only_in_a = sorted(set(files_a) - set(files_b))
    report.only_in_b = sorted(set(files_b) - set(files_a))

    # A trace from either side powers span localization; prefer side a.
    trace: Trace | None = None
    for base in (dir_a, dir_b):
        candidate = base / "trace.jsonl"
        if candidate.is_file():
            try:
                trace = Trace.load(candidate)
            except ObservabilityError:
                trace = None
            break

    for rel in sorted(set(files_a) & set(files_b)):
        path_a, path_b = files_a[rel], files_b[rel]
        text_a = path_a.read_text()
        text_b = path_b.read_text()
        if text_a == text_b:
            report.identical.append(rel)
            continue
        if rel.endswith(".manifest.json") or rel == "manifest.json":
            where = _manifest_diff_path(json.loads(text_a), json.loads(text_b))
            report.differing[rel] = f"manifest key {where}"
        elif rel.startswith("metrics/") and rel.endswith(".jsonl"):
            divergence = _localize_series(rel, path_a, path_b, trace)
            if divergence is not None:
                report.differing[rel] = (
                    f"sample {divergence.index} metric {divergence.metric!r}"
                )
                report.series.append(divergence)
            else:
                report.differing[rel] = _first_diff_line(text_a, text_b)
        else:
            report.differing[rel] = _first_diff_line(text_a, text_b)
    return report
