"""Structured span/event collection in *simulated* time.

A :class:`SpanCollector` is the substrate-wide analogue of the monitoring
stack: while :class:`~repro.monitoring.service.MetricService` samples
numeric counters at 1 Hz, the collector records *causally linked spans and
instant events* — process lifetimes, work segments, anomaly injection
windows, scheduler decisions, MPI collectives, filesystem busy windows and
load-balancer iterations — each stamped with the simulated clock.

The design follows the same pull-based, pay-for-what-you-use pattern as
:class:`~repro.sim.trace.Tracer`: nothing is recorded (and nothing beyond a
``None``-check is executed) unless a collector is attached to the
simulator.  Every instrumentation site in the engine and the subsystems is
guarded by ``if obs is not None``.

Spans carry:

``sid``
    A collector-unique id, handed out in emission order (deterministic for
    a deterministic simulation).
``seq``
    The collector-wide *completion sequence*: assigned when a span closes
    (and when an instant is recorded), shared between spans and instants.
    This is the canonical record order of every exporter — a record's
    content is final exactly when its ``seq`` is assigned, which is what
    lets the streaming sinks (:mod:`repro.obs.stream`) flush records
    incrementally with bounded memory and still produce files
    byte-identical to the end-of-run exporters.
``parent``
    Optional ``sid`` of the causally enclosing span (e.g. a segment span's
    parent is its process span), preserved by both exporters.
``track``
    A ``(group, lane)`` pair naming where the span renders in a trace
    viewer — ``("node0", "p3:app")`` for process work,
    ``("cluster", "scheduler")`` for control-plane events.

Host wall-time annotation is opt-in (``wallclock=True``): spans then carry
a ``host_s`` arg with the host-clock emission offset.  It is off by
default because it makes exported traces non-reproducible byte-for-byte.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.errors import ObservabilityError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.stream import ObsSink
    from repro.sim.engine import Simulator
    from repro.sim.process import SimProcess

#: (group, lane) pair locating a span/event in the trace display.
Track = tuple[str, str]


@dataclass
class Span:
    """One duration event in simulated time (``end is None`` while open)."""

    sid: int
    cat: str
    name: str
    track: Track
    start: float
    end: float | None = None
    parent: int | None = None
    args: dict[str, object] = field(default_factory=dict)
    #: completion sequence (None while open); see the module docstring
    seq: int | None = None

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ObservabilityError(f"span {self.name!r} is still open")
        return self.end - self.start


@dataclass(frozen=True)
class InstantEvent:
    """One point event in simulated time."""

    cat: str
    name: str
    track: Track
    time: float
    args: Mapping[str, object] = field(default_factory=dict)
    #: completion sequence (assigned at emission; instants are final at birth)
    seq: int = 0


class SpanCollector:
    """Collects spans and instant events from an attached simulator.

    Attach with :meth:`attach`; every instrumented subsystem then emits
    through ``sim.obs``.  Detach restores the simulator to its un-observed
    (zero-overhead) state while keeping the recorded data.

    Parameters
    ----------
    wallclock:
        Annotate each span/instant with the host-clock offset (seconds
        since the collector was created) under the ``host_s`` arg.  Off by
        default: host timings make exports non-reproducible.
    resolve_events:
        Record one instant event per engine rate-resolve round.  On by
        default; turn off for very long traces where only subsystem spans
        matter.
    """

    def __init__(self, wallclock: bool = False, resolve_events: bool = True) -> None:
        self.spans: list[Span] = []
        self.instants: list[InstantEvent] = []
        self.wallclock = wallclock
        self.resolve_events = resolve_events
        self._sim: "Simulator | None" = None
        self._next_sid = 1
        #: completion sequence shared by spans and instants (record order)
        self._next_seq = 1
        #: streaming sinks notified as records open/close (see obs.stream)
        self._sinks: list["ObsSink"] = []
        #: open per-pid spans maintained by the engine callbacks
        self._proc_spans: dict[int, Span] = {}
        self._seg_spans: dict[int, Span] = {}
        # Engine pids are allocated from a process-global counter, so lane
        # names derived from them would differ between two same-seed runs in
        # one interpreter.  Map them to run-local ordinals instead to keep
        # exported traces byte-identical across reruns.
        self._local_pids: dict[int, int] = {}
        #: spans auto-closed when (all of) their watched pids terminate
        self._watch_index: dict[int, list[Span]] = {}
        self._watch_remaining: dict[int, set[int]] = {}
        #: open keyed windows (e.g. per-filesystem busy spans)
        self._windows: dict[object, Span] = {}
        # Host reference point for the opt-in wall-time annotations; this
        # is observability output only and never feeds simulated state.
        self._host_t0 = time.perf_counter() if wallclock else 0.0

    # -- lifecycle ----------------------------------------------------------

    def attach(self, sim: "Simulator") -> None:
        """Start observing ``sim`` (sets ``sim.obs`` to this collector)."""
        if self._sim is not None:
            raise ObservabilityError("collector already attached")
        if getattr(sim, "obs", None) is not None:
            raise ObservabilityError("simulator already has a collector attached")
        self._sim = sim
        sim.obs = self

    def detach(self) -> None:
        """Stop observing; recorded spans/events are kept."""
        if self._sim is None:
            raise ObservabilityError("collector is not attached")
        self._sim.obs = None
        self._sim = None

    @property
    def attached(self) -> bool:
        return self._sim is not None

    @property
    def now(self) -> float:
        if self._sim is None:
            raise ObservabilityError("collector is not attached")
        return self._sim.now

    # -- streaming sinks ----------------------------------------------------

    def add_sink(self, sink: "ObsSink") -> None:
        """Register a streaming sink (notified as records open/close).

        Sinks receive every subsequently *closed* span and every instant
        in completion (``seq``) order — the canonical record order of the
        exporters — so a sink that writes records as they arrive produces
        the same bytes as an end-of-run export.
        """
        if sink in self._sinks:
            raise ObservabilityError("sink already registered")
        self._sinks.append(sink)

    def remove_sink(self, sink: "ObsSink") -> None:
        """Unregister a sink (already-written records are kept)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            raise ObservabilityError("sink is not registered") from None

    @property
    def sinks(self) -> tuple["ObsSink", ...]:
        return tuple(self._sinks)

    def _dispatch(self, method: str, record: object) -> None:
        """Fan one record out to every sink, attributing host time to obs.

        The wall time sinks spend serialising/writing is accumulated under
        the ``obs`` SimStats timer so ``repro report`` can attribute it;
        an un-sinked collector never enters this method body beyond the
        truthiness check at each call site.
        """
        sim = self._sim
        if sim is not None:
            with sim.stats.timer("obs"):
                for sink in self._sinks:
                    getattr(sink, method)(record)
        else:
            for sink in self._sinks:
                getattr(sink, method)(record)

    def _close(
        self,
        span: Span,
        t: float,
        args: Mapping[str, object] | None = None,
    ) -> None:
        """Seal a span: set its end, assign its seq, notify the sinks."""
        span.end = t
        if args:
            span.args.update(args)
        span.seq = self._next_seq
        self._next_seq += 1
        if self._sinks:
            self._dispatch("on_span_close", span)

    # -- emission -----------------------------------------------------------

    def _annotate(self, args: dict[str, object]) -> dict[str, object]:
        if self.wallclock:
            args["host_s"] = time.perf_counter() - self._host_t0
        return args

    def begin(
        self,
        cat: str,
        name: str,
        track: Track,
        start: float | None = None,
        parent: int | None = None,
        args: Mapping[str, object] | None = None,
    ) -> Span:
        """Open a span at ``start`` (default: simulated now)."""
        span = Span(
            sid=self._next_sid,
            cat=cat,
            name=name,
            track=track,
            start=self.now if start is None else start,
            parent=parent,
            args=self._annotate(dict(args) if args else {}),
        )
        self._next_sid += 1
        self.spans.append(span)
        if self._sinks:
            self._dispatch("on_span_open", span)
        return span

    def end(
        self,
        span: Span,
        t: float | None = None,
        args: Mapping[str, object] | None = None,
    ) -> None:
        """Close an open span at ``t`` (default: simulated now)."""
        if span.end is not None:
            raise ObservabilityError(f"span {span.name!r} already closed")
        self._close(span, self.now if t is None else t, args)

    def complete(
        self,
        cat: str,
        name: str,
        track: Track,
        start: float,
        end: float,
        parent: int | None = None,
        args: Mapping[str, object] | None = None,
    ) -> Span:
        """Record an already-finished span (e.g. a barrier cycle).

        The span may start arbitrarily far in the past (a barrier cycle's
        first arrival); it enters the record stream at the moment it is
        recorded, which is why exporters order by completion ``seq``.
        """
        span = self.begin(cat, name, track, start=start, parent=parent, args=args)
        self._close(span, end)
        return span

    def instant(
        self,
        cat: str,
        name: str,
        track: Track,
        t: float | None = None,
        args: Mapping[str, object] | None = None,
    ) -> InstantEvent:
        """Record a point event at ``t`` (default: simulated now)."""
        event = InstantEvent(
            cat=cat,
            name=name,
            track=track,
            time=self.now if t is None else t,
            args=self._annotate(dict(args) if args else {}),
            seq=self._next_seq,
        )
        self._next_seq += 1
        self.instants.append(event)
        if self._sinks:
            self._dispatch("on_instant", event)
        return event

    def watch(self, span: Span, pids: Iterable[int]) -> None:
        """Auto-close ``span`` when the last of ``pids`` terminates."""
        remaining = set(pids)
        if not remaining:
            return
        self._watch_remaining[span.sid] = remaining
        for pid in remaining:
            self._watch_index.setdefault(pid, []).append(span)

    def window(
        self,
        key: object,
        cat: str,
        name: str,
        track: Track,
        active: bool,
        args: Mapping[str, object] | None = None,
    ) -> None:
        """Maintain a keyed open/closed window span (idempotent).

        ``active=True`` opens the window if closed; ``active=False``
        closes it if open.  Used for state that is "busy while any demand
        exists", like a filesystem serving requests.
        """
        span = self._windows.get(key)
        if active and span is None:
            self._windows[key] = self.begin(cat, name, track, args=args)
        elif not active and span is not None:
            del self._windows[key]
            self.end(span)

    def finalize(self, t: float | None = None) -> None:
        """Close every still-open span (at ``t`` or simulated now).

        Call before exporting so anomalies running "forever" and processes
        alive at the horizon produce well-formed duration events.
        """
        end = self.now if t is None else t
        for span in self.spans:
            if span.end is None:
                span.args.setdefault("unfinished", True)
                self._close(span, max(end, span.start))
        self._proc_spans.clear()
        self._seg_spans.clear()
        self._watch_index.clear()
        self._watch_remaining.clear()
        self._windows.clear()

    # -- engine callbacks ---------------------------------------------------
    # Called by the Simulator (guarded by ``if self.obs is not None``), so
    # an unattached simulation never pays more than an attribute check.

    def _lane(self, proc: "SimProcess") -> str:
        local = self._local_pids.setdefault(proc.pid, len(self._local_pids) + 1)
        return f"p{local}:{proc.name}"

    def on_process_start(self, proc: "SimProcess") -> None:
        lane = self._lane(proc)
        self._proc_spans[proc.pid] = self.begin(
            "engine",
            proc.name,
            (proc.node or "cluster", lane),
            args={"pid": self._local_pids[proc.pid], "core": proc.core},
        )

    def on_segment_start(self, proc: "SimProcess") -> None:
        self.on_segment_end(proc)
        parent = self._proc_spans.get(proc.pid)
        seg = proc.current
        label = seg.label if seg is not None and seg.label else "segment"
        self._seg_spans[proc.pid] = self.begin(
            "engine",
            label,
            (proc.node or "cluster", self._lane(proc)),
            parent=parent.sid if parent is not None else None,
            args={"work": seg.work if seg is not None else 0.0},
        )

    def on_segment_end(self, proc: "SimProcess") -> None:
        span = self._seg_spans.pop(proc.pid, None)
        if span is not None and span.end is None:
            self.end(span)

    def on_process_end(self, proc: "SimProcess") -> None:
        self.on_segment_end(proc)
        span = self._proc_spans.pop(proc.pid, None)
        if span is not None and span.end is None:
            self.end(span, args={"exit": proc.exit_reason})
        for watched in self._watch_index.pop(proc.pid, ()):  # group spans
            remaining = self._watch_remaining.get(watched.sid)
            if remaining is None:
                continue
            remaining.discard(proc.pid)
            if not remaining:
                del self._watch_remaining[watched.sid]
                if watched.end is None:
                    self.end(watched)

    def on_resolve(self, now: float, n_running: int, dirty: frozenset[int] | None) -> None:
        if not self.resolve_events:
            return
        self.instant(
            "engine",
            "resolve",
            ("cluster", "engine"),
            t=now,
            args={
                "running": n_running,
                "dirty": -1 if dirty is None else len(dirty),
            },
        )

    # -- queries ------------------------------------------------------------

    def by_category(self, cat: str) -> list[Span]:
        return [span for span in self.spans if span.cat == cat]

    def categories(self) -> dict[str, int]:
        """Span counts per category (summary/manifest material)."""
        counts: dict[str, int] = {}
        for span in self.spans:
            counts[span.cat] = counts.get(span.cat, 0) + 1
        return dict(sorted(counts.items()))
