"""Deterministic run manifests: provenance for every experiment artefact.

A manifest records everything needed to re-derive a result — the seed, the
configuration, the package version, the anomaly injection schedule (the
FINJ-style ground-truth labels), the engine's deterministic counters and
checksums of the produced series/tables — as canonical JSON (sorted keys,
two-space indent, ``\\n``-terminated).  Re-running the same experiment
with the same seed must reproduce the manifest *byte-identically*; that
property is asserted in the test suite and is the contract that makes
``results/`` auditable.

Wall-clock timings (:attr:`SimStats.timings`) and hostnames are
deliberately excluded: they vary run to run and would break the
byte-identity contract.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.obs.export import _json_safe
from repro.version import __version__

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.injector import AnomalyInjector
    from repro.monitoring.service import MetricService
    from repro.sim.stats import SimStats


def text_checksum(text: str) -> str:
    """sha256 of a rendered artefact (a results table, a trace file)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def series_checksum(values: np.ndarray) -> str:
    """sha256 over the float64 little-endian bytes of one series."""
    data = np.ascontiguousarray(np.asarray(values, dtype="<f8"))
    return hashlib.sha256(data.tobytes()).hexdigest()


def service_checksums(service: "MetricService") -> dict[str, str]:
    """One digest per node over all its collected metric series.

    Metric names are folded into the digest in sorted order, so the
    checksum pins both the values and which metrics were collected.
    """
    out: dict[str, str] = {}
    for node in sorted(service.data):
        digest = hashlib.sha256()
        for metric in sorted(service.data[node]):
            digest.update(metric.encode("utf-8"))
            digest.update(bytes.fromhex(series_checksum(np.asarray(service.data[node][metric]))))
        out[node] = digest.hexdigest()
    return out


def injection_labels(injector: "AnomalyInjector") -> list[dict[str, object]]:
    """The injector's schedule as ground-truth label records.

    Each record carries the anomaly's paper name, placement, window, and
    its Table-1 knob settings (:meth:`~repro.core.anomaly.Anomaly.describe`),
    sorted by ``(start, node, name)`` so the ordering is deterministic
    regardless of how the campaign was assembled.
    """
    records = []
    for injection in injector.injections:
        duration = injection.duration
        records.append(
            {
                "anomaly": injection.anomaly.name,
                "node": str(injection.node),
                "core": injection.core,
                "start": injection.start,
                "duration": duration if math.isfinite(duration) else "inf",
                "knobs": _json_safe(injection.anomaly.describe()),
            }
        )
    records.sort(key=lambda r: (r["start"], r["node"], r["anomaly"]))
    return records


def build_manifest(
    name: str,
    seed: int | None = None,
    config: Mapping[str, object] | None = None,
    stats: "SimStats | None" = None,
    injector: "AnomalyInjector | None" = None,
    service: "MetricService | None" = None,
    results_text: str | None = None,
    extra: Mapping[str, object] | None = None,
) -> dict[str, object]:
    """Assemble a manifest dict; every section is optional but ``name``.

    Only deterministic quantities are admitted: from ``stats`` the integer
    counters are included, the wall-clock timings are not.
    """
    manifest: dict[str, object] = {
        "name": name,
        "package": "repro",
        "version": __version__,
        "seed": seed,
    }
    if config is not None:
        manifest["config"] = _json_safe(dict(config))
    if injector is not None:
        manifest["injections"] = injection_labels(injector)
    if stats is not None:
        manifest["counters"] = dict(sorted(stats.counters.items()))
    if service is not None:
        manifest["series_checksums"] = service_checksums(service)
        manifest["samples"] = len(service.times)
    if results_text is not None:
        manifest["results_checksum"] = text_checksum(results_text)
    if extra is not None:
        manifest["extra"] = _json_safe(dict(extra))
    return manifest


def manifest_text(manifest: Mapping[str, object]) -> str:
    """Canonical JSON rendering (sorted keys, indent=2, trailing newline)."""
    return json.dumps(_json_safe(dict(manifest)), sort_keys=True, indent=2) + "\n"


def write_manifest(path: str | Path, manifest: Mapping[str, object]) -> Path:
    """Write a manifest next to its results; returns the path.

    Atomic (temp file + rename, :mod:`repro._atomic`): a crash mid-write
    leaves either the previous manifest or the new one, never a torn
    file that `repro diff` would misread as a divergence.
    """
    from repro._atomic import atomic_write_text

    path = Path(path)
    atomic_write_text(path, manifest_text(manifest))
    return path
