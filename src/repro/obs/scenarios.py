"""Traceable end-to-end scenarios for the ``repro trace`` subcommand.

Each scenario builds a cluster, attaches an :class:`Observability` handle,
runs a workload that exercises several subsystems at once, and returns the
handle plus everything a manifest needs.  They are the span-layer analogue
of the figure experiments: small, deterministic, and designed so one trace
shows the whole stack interacting.

``mixed``
    A Chameleon-like cluster (star network + NFS appliance) where a
    scheduler places a miniGhost job by WBAS while four anomalies —
    cpuoccupy, membw, iometadata, netoccupy — pulse through staggered
    injection windows.  Spans from the engine, injector, scheduler, MPI
    barrier layer and the filesystem all land in one timeline.
``loadbalance``
    Fig. 13's setting: the Charm++-style runtime rebalancing stencil
    objects with GreedyRefineLB while cpuoccupy squats on three cores.
``faults``
    Anomalies *and* faults composed on one cluster: cpuoccupy and
    iometadata run their windows while a fault campaign crashes a node,
    slows another, drops a NIC and browns out the metadata server — and a
    checkpointing managed job requeues its way through.  Every fault
    window lands as a ``faults``-category span next to the injector,
    scheduler and recovery events.
``replay_ai``
    A seeded ``ai_training`` workload trace (see :mod:`repro.traces`)
    replayed on the cluster its header describes while cpuoccupy squats
    on a ring neighbour's core — the trace-driven workload path under
    observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.apps import get_app
from repro.cluster import Cluster
from repro.core import (
    AnomalyInjector,
    CpuOccupy,
    Injection,
    IOMetadata,
    MemBw,
    NetOccupy,
)
from repro.errors import ObservabilityError
from repro.faults import FaultInjector, RetryPolicy
from repro.obs.observability import Observability
from repro.runtime import CharmRuntime, GreedyRefineLB, WorkObject
from repro.scheduling import JobScheduler, WellBalancedAllocation


@dataclass
class TraceRun:
    """Everything a traced scenario produced."""

    scenario: str
    seed: int
    horizon: float
    cluster: Cluster
    obs: Observability
    injector: AnomalyInjector
    config: dict[str, object]
    faults: FaultInjector | None = None


#: called with the attached Observability handle *before* the run starts —
#: the hook streaming writers use to register their sinks early enough
ObsHook = Callable[[Observability], None]


def _mixed(seed: int, horizon: float, on_obs: ObsHook | None = None) -> TraceRun:
    cluster = Cluster.chameleon(num_nodes=6, with_nfs=True)
    obs = Observability(cluster).attach(end=horizon)
    if on_obs is not None:
        on_obs(obs)
    injector = AnomalyInjector(cluster)
    injector.add(
        Injection(CpuOccupy(utilization=80), node="node1", core=0, start=5.0, duration=0.5 * horizon)
    )
    injector.add(
        Injection(MemBw(), node="node2", core=4, start=0.2 * horizon, duration=0.3 * horizon)
    )
    injector.add(
        Injection(IOMetadata(rate=2000.0), node="node3", core=0, start=10.0, duration=0.6 * horizon)
    )
    injector.add(
        Injection(
            NetOccupy(peer="node5"), node="node4", core=1, start=0.3 * horizon, duration=0.25 * horizon
        )
    )
    injector.deploy()

    scheduler = JobScheduler(cluster, obs.service)
    app = get_app("miniGhost").scaled(iterations=12)

    def submit() -> None:
        scheduler.submit(
            app,
            WellBalancedAllocation(),
            n_nodes=2,
            ranks_per_node=2,
            seed=seed,
        )

    # Submit after a couple of monitoring samples exist (WBAS reads them).
    cluster.sim.schedule(2.5, submit)
    cluster.sim.run(until=horizon)
    obs.collector.finalize()
    return TraceRun(
        scenario="mixed",
        seed=seed,
        horizon=horizon,
        cluster=cluster,
        obs=obs,
        injector=injector,
        config={
            "cluster": "chameleon",
            "nodes": 6,
            "filesystem": "nfs",
            "app": "miniGhost",
            "policy": "WBAS",
            "horizon": horizon,
        },
    )


def _loadbalance(seed: int, horizon: float, on_obs: ObsHook | None = None) -> TraceRun:
    cluster = Cluster.voltrino(num_nodes=2)
    obs = Observability(cluster).attach(end=horizon)
    if on_obs is not None:
        on_obs(obs)
    injector = AnomalyInjector(cluster)
    for core in (0, 1, 2):
        injector.add(
            Injection(
                CpuOccupy(utilization=100),
                node="node0",
                core=core,
                start=2.0,
                duration=0.8 * horizon,
            )
        )
    injector.deploy()
    objects = [WorkObject(oid=i, load=0.05 + 0.01 * (i % 5)) for i in range(24)]
    runtime = CharmRuntime(
        cluster,
        node="node0",
        cores=list(range(8)),
        objects=objects,
        balancer=GreedyRefineLB(),
        iterations=12,
    )
    runtime.run(timeout=horizon)
    cluster.sim.run(until=horizon)
    obs.collector.finalize()
    return TraceRun(
        scenario="loadbalance",
        seed=seed,
        horizon=horizon,
        cluster=cluster,
        obs=obs,
        injector=injector,
        config={
            "cluster": "voltrino",
            "nodes": 2,
            "balancer": "GreedyRefineLB",
            "objects": len(objects),
            "horizon": horizon,
        },
    )


def _faults(seed: int, horizon: float, on_obs: ObsHook | None = None) -> TraceRun:
    cluster = Cluster.chameleon(num_nodes=6, with_nfs=True)
    obs = Observability(cluster).attach(end=horizon)
    if on_obs is not None:
        on_obs(obs)
    injector = AnomalyInjector(cluster)
    injector.add(
        Injection(CpuOccupy(utilization=80), node="node1", core=0, start=5.0, duration=0.5 * horizon)
    )
    injector.add(
        Injection(IOMetadata(rate=2000.0), node="node3", core=0, start=10.0, duration=0.4 * horizon)
    )
    injector.deploy()

    faults = FaultInjector(cluster)
    faults.add(0.25 * horizon, "node2", "node_crash", duration=0.2 * horizon)
    faults.add(0.35 * horizon, "node4", "slowdown", duration=0.2 * horizon, factor=0.4)
    faults.add(0.5 * horizon, "node5", "link_down", duration=0.15 * horizon)
    faults.add(0.6 * horizon, "node0", "meta_brownout", duration=0.2 * horizon, factor=0.2)
    faults.deploy()

    scheduler = JobScheduler(cluster, obs.service)
    app = get_app("miniGhost").scaled(iterations=16)

    def submit() -> None:
        scheduler.submit_managed(
            app,
            WellBalancedAllocation(),
            n_nodes=2,
            ranks_per_node=2,
            seed=seed,
            retry=RetryPolicy(base_delay=2.0, max_retries=6),
            checkpoint_interval=4,
            checkpoint_cost=0.2,
        )

    cluster.sim.schedule(2.5, submit)
    cluster.sim.run(until=horizon)
    obs.collector.finalize()
    return TraceRun(
        scenario="faults",
        seed=seed,
        horizon=horizon,
        cluster=cluster,
        obs=obs,
        injector=injector,
        faults=faults,
        config={
            "cluster": "chameleon",
            "nodes": 6,
            "filesystem": "nfs",
            "app": "miniGhost",
            "policy": "WBAS",
            "faults": len(faults.schedule),
            "checkpoint_interval": 4,
            "horizon": horizon,
        },
    )


def _replay_ai(seed: int, horizon: float, on_obs: ObsHook | None = None) -> TraceRun:
    from repro.traces import TraceReplayApp, build_replay_cluster, generate_trace

    trace = generate_trace("ai_training", seed=seed, ranks=4, steps=6)
    cluster = build_replay_cluster(trace)
    obs = Observability(cluster).attach(end=horizon)
    if on_obs is not None:
        on_obs(obs)
    # An anomaly pulsing through the replay window: replayed workloads
    # compose with injections exactly like native apps, and the trace
    # shows the allreduce steps stretching under the squatted core.
    injector = AnomalyInjector(cluster)
    injector.add(
        Injection(
            CpuOccupy(utilization=60),
            node="node1",
            core=0,
            start=1.0,
            duration=0.5 * horizon,
        )
    )
    injector.deploy()
    replay = TraceReplayApp(trace, cluster)
    replay.launch()
    cluster.sim.run(until=horizon, stop_when=lambda: replay.finished)
    obs.collector.finalize()
    return TraceRun(
        scenario="replay_ai",
        seed=seed,
        horizon=horizon,
        cluster=cluster,
        obs=obs,
        injector=injector,
        config={
            "cluster": "chameleon",
            "nodes": 4,
            "generator": "ai_training",
            "ranks": 4,
            "steps": 6,
            "trace_sha256": trace.sha256,
            "horizon": horizon,
        },
    )


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered trace scenario: factory plus the ``--list`` blurb."""

    name: str
    description: str
    factory: Callable[..., TraceRun]


SCENARIOS: dict[str, ScenarioSpec] = {
    "mixed": ScenarioSpec(
        "mixed",
        "Chameleon cluster, miniGhost under WBAS, four staggered anomalies",
        _mixed,
    ),
    "loadbalance": ScenarioSpec(
        "loadbalance",
        "Charm++-style GreedyRefineLB rebalance under cpuoccupy (Fig. 13)",
        _loadbalance,
    ),
    "faults": ScenarioSpec(
        "faults",
        "anomalies + fault campaign with a checkpointing managed job",
        _faults,
    ),
    "replay_ai": ScenarioSpec(
        "replay_ai",
        "generated AI-training trace replayed under a cpuoccupy window",
        _replay_ai,
    ),
}


def run_scenario(
    name: str,
    seed: int = 0,
    horizon: float = 120.0,
    on_obs: ObsHook | None = None,
) -> TraceRun:
    """Run a named scenario end-to-end with tracing attached.

    ``on_obs`` is invoked with the attached :class:`Observability` handle
    before the workload runs — pass e.g. ``lambda obs: obs.stream_to(dir)``
    to stream the run incrementally.
    """
    try:
        spec = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ObservabilityError(
            f"unknown scenario {name!r} (known: {known})"
        ) from None
    if horizon <= 0:
        raise ObservabilityError("horizon must be positive")
    return spec.factory(seed, horizon, on_obs)
