"""The unified telemetry handle: metrics + counters + spans, one object.

:class:`Observability` bundles the three telemetry surfaces a run has —

* the engine's deterministic :class:`~repro.sim.stats.SimStats` counters,
* the LDMS-style :class:`~repro.monitoring.service.MetricService` series,
* the :class:`~repro.obs.spans.SpanCollector` span/event timeline —

behind one attach/detach pair, and knows how to export them (Chrome trace
JSON, JSONL, run manifests).  The CLI's ``--trace`` flag and the
``repro trace`` subcommand are thin wrappers over this class.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from repro.errors import ObservabilityError
from repro.monitoring.service import MetricService
from repro.obs.export import write_chrome_trace, write_jsonl_trace
from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.spans import SpanCollector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.core.injector import AnomalyInjector
    from repro.obs.stream import RunStreamer
    from repro.sim.stats import SimStats

TRACE_FORMATS = ("chrome", "jsonl")


class Observability:
    """Attach spans + metrics to a cluster and export what they saw.

    Parameters
    ----------
    cluster:
        The cluster to observe.
    service:
        An existing :class:`MetricService` to adopt, or ``None`` to create
        one at :meth:`attach` time.
    interval:
        Sampling interval for a service created by :meth:`attach`.
    collector:
        An existing :class:`SpanCollector` to adopt (e.g. one configured
        with ``wallclock=True``), or ``None`` for a fresh default one.
    """

    def __init__(
        self,
        cluster: "Cluster",
        service: MetricService | None = None,
        interval: float = 1.0,
        collector: SpanCollector | None = None,
    ) -> None:
        self.cluster = cluster
        self.collector = collector if collector is not None else SpanCollector()
        self.service = service
        self.interval = interval
        self._streamers: list["RunStreamer"] = []

    # -- lifecycle ----------------------------------------------------------

    def attach(
        self,
        start: float | None = None,
        end: float = math.inf,
        metrics: bool = True,
    ) -> "Observability":
        """Wire the collector into the simulator and every filesystem.

        ``metrics=True`` also attaches (creating if needed) the metric
        service; a service that is already sampling is left alone.
        Returns ``self`` so ``obs = Observability(c).attach()`` reads well.
        """
        self.collector.attach(self.cluster.sim)
        for fs in self.cluster.filesystems.values():
            fs.obs = self.collector
        if metrics:
            if self.service is None:
                self.service = MetricService(self.cluster, interval=self.interval)
            if not self.service.attached:
                self.service.attach(start=start, end=end)
        return self

    def detach(self) -> None:
        """Restore the zero-overhead state; collected data is kept."""
        self.collector.detach()
        for fs in self.cluster.filesystems.values():
            fs.obs = None
        if self.service is not None and self.service.attached:
            self.service.detach()

    # -- streaming ----------------------------------------------------------

    def stream_to(self, directory: str | Path, chrome: bool = False) -> "RunStreamer":
        """Stream this run into ``directory`` as it happens.

        Registers incremental writers (see :mod:`repro.obs.stream`) on the
        span collector and — when a metric service exists — on the metric
        service, so spans, samples and counters hit disk at their flush
        points instead of at the end of the run.  Call **after**
        :meth:`attach` so the per-node metric streams are known; call
        :meth:`close_streams` (or the streamer's ``close``) when the run
        ends to finalize open spans and seal the files.
        """
        from repro.obs.stream import RunStreamer

        streamer = RunStreamer(self, directory, chrome=chrome)
        self._streamers.append(streamer)
        return streamer

    def close_streams(self) -> list[Path]:
        """Close every active streamer; returns their run directories."""
        out: list[Path] = []
        for streamer in self._streamers:
            out.append(streamer.close())
        self._streamers.clear()
        return out

    @property
    def stats(self) -> "SimStats":
        """The engine's deterministic counter/timer block."""
        return self.cluster.sim.stats

    # -- unified views ------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """One dict across all three surfaces (counters, series, spans)."""
        snap: dict[str, object] = {
            "counters": dict(sorted(self.stats.counters.items())),
            "spans": self.collector.categories(),
            "instants": len(self.collector.instants),
        }
        if self.service is not None:
            snap["metrics"] = list(self.service.metric_names)
            snap["samples"] = len(self.service.times)
        return snap

    # -- exports ------------------------------------------------------------

    def write_trace(self, path: str | Path, fmt: str = "chrome") -> Path:
        """Finalize open spans and write the trace file."""
        if fmt not in TRACE_FORMATS:
            raise ObservabilityError(
                f"unknown trace format {fmt!r} (known: {', '.join(TRACE_FORMATS)})"
            )
        if self.collector.attached:
            self.collector.finalize()
        if fmt == "chrome":
            return write_chrome_trace(self.collector, path)
        return write_jsonl_trace(self.collector, path)

    def manifest(
        self,
        name: str,
        seed: int | None = None,
        config: Mapping[str, object] | None = None,
        injector: "AnomalyInjector | None" = None,
        results_text: str | None = None,
        extra: Mapping[str, object] | None = None,
    ) -> dict[str, object]:
        """Build a run manifest from everything this handle observed."""
        return build_manifest(
            name=name,
            seed=seed,
            config=config,
            stats=self.stats,
            injector=injector,
            service=self.service,
            results_text=results_text,
            extra=extra,
        )

    def write_manifest(self, path: str | Path, name: str, **kwargs) -> Path:
        """Build and write a manifest; see :meth:`manifest` for sections."""
        return write_manifest(path, self.manifest(name, **kwargs))
