"""Trace exporters: Chrome trace-event JSON and JSONL.

The Chrome format (one ``traceEvents`` array of ``X``/``i``/``M`` events)
opens directly in Perfetto / ``chrome://tracing``, the same way ATLAHS
renders its simulator traces; JSONL (one record per line) is the
grep/pandas-friendly form.  Both exports are deterministic: events are
sorted by ``(timestamp, kind, sid)`` and all JSON is emitted with sorted
keys, so a deterministic simulation produces byte-identical trace files.

Simulated seconds are exported as microseconds (the Chrome ``ts`` unit).
Non-finite floats (an ``inf`` anomaly duration) are stringified because
strict JSON has no ``Infinity`` literal.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable

from repro.errors import ObservabilityError
from repro.obs.spans import InstantEvent, Span, SpanCollector

#: simulated seconds -> Chrome trace microseconds
_US = 1e6

_VALID_PHASES = frozenset({"X", "i", "M"})


def _json_safe(value: object) -> object:
    """Recursively convert a value into strict-JSON-safe primitives."""
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else str(value)
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(str(v) for v in value)
    return str(value)


def _track_ids(
    spans: Iterable[Span], instants: Iterable[InstantEvent]
) -> tuple[dict[str, int], dict[tuple[str, str], int]]:
    """Deterministically number track groups (pid) and lanes (tid)."""
    tracks = sorted({s.track for s in spans} | {e.track for e in instants})
    groups = sorted({group for group, _ in tracks})
    group_ids = {group: i + 1 for i, group in enumerate(groups)}
    lane_ids = {track: i + 1 for i, track in enumerate(tracks)}
    return group_ids, lane_ids


def chrome_trace(collector: SpanCollector) -> dict[str, object]:
    """Render the collected spans/events as a Chrome trace-event object."""
    group_ids, lane_ids = _track_ids(collector.spans, collector.instants)
    horizon = 0.0
    for span in collector.spans:
        horizon = max(horizon, span.start, span.end if span.end is not None else 0.0)
    for event in collector.instants:
        horizon = max(horizon, event.time)

    events: list[dict[str, object]] = []
    for group, gid in group_ids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": gid,
                "tid": 0,
                "ts": 0,
                "args": {"name": group},
            }
        )
    for (group, lane), tid in lane_ids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": group_ids[group],
                "tid": tid,
                "ts": 0,
                "args": {"name": lane},
            }
        )

    records: list[tuple[float, int, int, dict[str, object]]] = []
    for span in collector.spans:
        end = span.end if span.end is not None else horizon
        args = dict(span.args)
        args["sid"] = span.sid
        if span.parent is not None:
            args["parent"] = span.parent
        records.append(
            (
                span.start,
                0,
                span.sid,
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "X",
                    "ts": span.start * _US,
                    "dur": max(0.0, end - span.start) * _US,
                    "pid": group_ids[span.track[0]],
                    "tid": lane_ids[span.track],
                    "args": _json_safe(args),
                },
            )
        )
    for i, event in enumerate(collector.instants):
        records.append(
            (
                event.time,
                1,
                i,
                {
                    "name": event.name,
                    "cat": event.cat,
                    "ph": "i",
                    "s": "t",
                    "ts": event.time * _US,
                    "pid": group_ids[event.track[0]],
                    "tid": lane_ids[event.track],
                    "args": _json_safe(dict(event.args)),
                },
            )
        )
    records.sort(key=lambda r: (r[0], r[1], r[2]))
    events.extend(record for _, _, _, record in records)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "time_unit": "us"},
    }


def jsonl_lines(collector: SpanCollector) -> list[str]:
    """One JSON record per span/instant, in deterministic time order."""
    records: list[tuple[float, int, int, dict[str, object]]] = []
    for span in collector.spans:
        records.append(
            (
                span.start,
                0,
                span.sid,
                {
                    "type": "span",
                    "sid": span.sid,
                    "cat": span.cat,
                    "name": span.name,
                    "group": span.track[0],
                    "lane": span.track[1],
                    "start": span.start,
                    "end": span.end,
                    "parent": span.parent,
                    "args": _json_safe(dict(span.args)),
                },
            )
        )
    for i, event in enumerate(collector.instants):
        records.append(
            (
                event.time,
                1,
                i,
                {
                    "type": "instant",
                    "cat": event.cat,
                    "name": event.name,
                    "group": event.track[0],
                    "lane": event.track[1],
                    "time": event.time,
                    "args": _json_safe(dict(event.args)),
                },
            )
        )
    records.sort(key=lambda r: (r[0], r[1], r[2]))
    return [
        json.dumps(_json_safe(record), sort_keys=True, separators=(",", ":"))
        for _, _, _, record in records
    ]


def write_chrome_trace(collector: SpanCollector, path: str | Path) -> Path:
    """Write (and validate) a Chrome trace-event JSON file."""
    trace = chrome_trace(collector)
    assert_valid_chrome_trace(trace)
    path = Path(path)
    path.write_text(json.dumps(trace, sort_keys=True, indent=1) + "\n")
    return path


def write_jsonl_trace(collector: SpanCollector, path: str | Path) -> Path:
    """Write the JSONL form (one record per line)."""
    path = Path(path)
    path.write_text("\n".join(jsonl_lines(collector)) + "\n")
    return path


def validate_chrome_trace(trace: object) -> list[str]:
    """Schema-check a Chrome trace-event object; returns problems found.

    This is the validation CI runs on the ``repro trace`` artefact: the
    top-level shape, required per-event keys, known phases, non-negative
    timestamps/durations, and metadata naming for every referenced pid.
    """
    problems: list[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    named_pids: set[object] = set()
    used_pids: set[object] = set()
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: event must be an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing key {key!r}")
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a number >= 0, got {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs dur >= 0, got {dur!r}")
            if "cat" not in event:
                problems.append(f"{where}: X event missing 'cat'")
            used_pids.add(event.get("pid"))
        elif phase == "i":
            used_pids.add(event.get("pid"))
        elif phase == "M" and event.get("name") == "process_name":
            named_pids.add(event.get("pid"))
    for pid in sorted(used_pids - named_pids, key=str):
        problems.append(f"pid {pid!r} has no process_name metadata event")
    return problems


def assert_valid_chrome_trace(trace: object) -> None:
    """Raise :class:`ObservabilityError` if the trace fails validation."""
    problems = validate_chrome_trace(trace)
    if problems:
        preview = "; ".join(problems[:5])
        raise ObservabilityError(
            f"invalid Chrome trace ({len(problems)} problem(s)): {preview}"
        )
