"""Trace exporters: Chrome trace-event JSON and JSONL.

The Chrome format (one ``traceEvents`` array of ``X``/``i``/``M`` events)
opens directly in Perfetto / ``chrome://tracing``, the same way ATLAHS
renders its simulator traces; JSONL (one record per line) is the
grep/pandas-friendly form.  Both exports are deterministic and share one
canonical record order: the collector-wide **completion sequence**
(``seq``), assigned when a span closes or an instant is recorded.  A
record's content is final exactly when its ``seq`` is assigned, so the
streaming writers in :mod:`repro.obs.stream` can flush each record the
moment it closes and still produce files byte-identical to these
end-of-run exporters (the property the ``stream_export`` differential
oracle in :mod:`repro.check` pins).  Consumers wanting start-time order
sort on ``start``/``time``; viewers do this themselves.

Track ids (Chrome ``pid``/``tid``) are numbered by first appearance in
the completion-ordered record stream, and the ``M`` metadata events that
name them are interleaved immediately before their first use — again so
a streaming writer can emit them without knowing the future.

Simulated seconds are exported as microseconds (the Chrome ``ts`` unit).
Non-finite floats (an ``inf`` anomaly duration) are stringified because
strict JSON has no ``Infinity`` literal.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterator

from repro.errors import ObservabilityError
from repro.obs.spans import InstantEvent, Span, SpanCollector

#: simulated seconds -> Chrome trace microseconds
_US = 1e6

_VALID_PHASES = frozenset({"X", "i", "M"})

#: the fixed non-event sections of a Chrome trace file
CHROME_OTHER_DATA = {"clock": "simulated", "time_unit": "us"}
CHROME_DISPLAY_TIME_UNIT = "ms"


def _json_safe(value: object) -> object:
    """Recursively convert a value into strict-JSON-safe primitives."""
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else str(value)
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(str(v) for v in value)
    return str(value)


def ordered_records(
    collector: SpanCollector,
) -> list[tuple[Span | InstantEvent, float | None]]:
    """Every span/instant in canonical completion (``seq``) order.

    Returns ``(record, end)`` pairs; ``end`` is the effective end time for
    spans (still-open spans are assigned the trace horizon) and ``None``
    for instants.  Spans that are still open — the collector was exported
    without :meth:`~repro.obs.spans.SpanCollector.finalize` — have no
    ``seq`` yet; they sort after every sealed record, in ``sid`` order,
    without mutating the collector (so repeated exports are identical).
    """
    horizon = 0.0
    for span in collector.spans:
        horizon = max(horizon, span.start, span.end if span.end is not None else 0.0)
    for event in collector.instants:
        horizon = max(horizon, event.time)

    sealed: list[tuple[int, Span | InstantEvent, float | None]] = []
    pending: list[tuple[int, Span]] = []
    for span in collector.spans:
        if span.seq is None:
            pending.append((span.sid, span))
        else:
            sealed.append((span.seq, span, span.end))
    for event in collector.instants:
        sealed.append((event.seq, event, None))
    sealed.sort(key=lambda r: r[0])
    out: list[tuple[Span | InstantEvent, float | None]] = [
        (record, end) for _, record, end in sealed
    ]
    for _, span in sorted(pending, key=lambda r: r[0]):
        out.append((span, max(horizon, span.start)))
    return out


class TrackNumbering:
    """First-appearance pid/tid assignment shared by batch and stream.

    Feeding tracks in completion order yields the same numbering whether
    the records come from a finished collector or one close at a time.
    """

    def __init__(self) -> None:
        self.group_ids: dict[str, int] = {}
        self.lane_ids: dict[tuple[str, str], int] = {}

    def metadata_for(self, track: tuple[str, str]) -> list[dict[str, object]]:
        """The ``M`` events to emit before the first event on ``track``."""
        group, _ = track
        events: list[dict[str, object]] = []
        if group not in self.group_ids:
            self.group_ids[group] = len(self.group_ids) + 1
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": self.group_ids[group],
                    "tid": 0,
                    "ts": 0,
                    "args": {"name": group},
                }
            )
        if track not in self.lane_ids:
            self.lane_ids[track] = len(self.lane_ids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": self.group_ids[group],
                    "tid": self.lane_ids[track],
                    "ts": 0,
                    "args": {"name": track[1]},
                }
            )
        return events

    def ids(self, track: tuple[str, str]) -> tuple[int, int]:
        return self.group_ids[track[0]], self.lane_ids[track]


def chrome_span_event(
    span: Span, end: float, tracks: TrackNumbering
) -> dict[str, object]:
    """One ``X`` (complete) trace event for a closed span."""
    args = dict(span.args)
    args["sid"] = span.sid
    if span.parent is not None:
        args["parent"] = span.parent
    pid, tid = tracks.ids(span.track)
    return {
        "name": span.name,
        "cat": span.cat,
        "ph": "X",
        "ts": span.start * _US,
        "dur": max(0.0, end - span.start) * _US,
        "pid": pid,
        "tid": tid,
        "args": _json_safe(args),
    }


def chrome_instant_event(
    event: InstantEvent, tracks: TrackNumbering
) -> dict[str, object]:
    """One ``i`` (instant) trace event."""
    pid, tid = tracks.ids(event.track)
    return {
        "name": event.name,
        "cat": event.cat,
        "ph": "i",
        "s": "t",
        "ts": event.time * _US,
        "pid": pid,
        "tid": tid,
        "args": _json_safe(dict(event.args)),
    }


def chrome_events(collector: SpanCollector) -> Iterator[dict[str, object]]:
    """The full event stream (metadata interleaved) in canonical order."""
    tracks = TrackNumbering()
    for record, end in ordered_records(collector):
        yield from tracks.metadata_for(record.track)
        if isinstance(record, Span):
            yield chrome_span_event(record, end, tracks)  # type: ignore[arg-type]
        else:
            yield chrome_instant_event(record, tracks)


def chrome_trace(collector: SpanCollector) -> dict[str, object]:
    """Render the collected spans/events as a Chrome trace-event object."""
    return {
        "traceEvents": list(chrome_events(collector)),
        "displayTimeUnit": CHROME_DISPLAY_TIME_UNIT,
        "otherData": dict(CHROME_OTHER_DATA),
    }


def jsonl_span_record(span: Span, end: float) -> dict[str, object]:
    """The JSONL form of one closed span."""
    return {
        "type": "span",
        "sid": span.sid,
        "seq": span.seq,
        "cat": span.cat,
        "name": span.name,
        "group": span.track[0],
        "lane": span.track[1],
        "start": span.start,
        "end": end,
        "parent": span.parent,
        "args": _json_safe(dict(span.args)),
    }


def jsonl_instant_record(event: InstantEvent) -> dict[str, object]:
    """The JSONL form of one instant."""
    return {
        "type": "instant",
        "seq": event.seq,
        "cat": event.cat,
        "name": event.name,
        "group": event.track[0],
        "lane": event.track[1],
        "time": event.time,
        "args": _json_safe(dict(event.args)),
    }


def encode_jsonl(record: dict[str, object]) -> str:
    """Canonical one-line encoding shared by batch and streaming writers."""
    return json.dumps(_json_safe(record), sort_keys=True, separators=(",", ":"))


def jsonl_lines(collector: SpanCollector) -> list[str]:
    """One JSON record per span/instant, in completion (``seq``) order."""
    lines: list[str] = []
    for record, end in ordered_records(collector):
        if isinstance(record, Span):
            lines.append(encode_jsonl(jsonl_span_record(record, end)))  # type: ignore[arg-type]
        else:
            lines.append(encode_jsonl(jsonl_instant_record(record)))
    return lines


def write_chrome_trace(collector: SpanCollector, path: str | Path) -> Path:
    """Write (and validate) a Chrome trace-event JSON file."""
    trace = chrome_trace(collector)
    assert_valid_chrome_trace(trace)
    path = Path(path)
    path.write_text(json.dumps(trace, sort_keys=True, indent=1) + "\n")
    return path


def write_jsonl_trace(collector: SpanCollector, path: str | Path) -> Path:
    """Write the JSONL form (one record per line)."""
    path = Path(path)
    path.write_text("\n".join(jsonl_lines(collector)) + "\n")
    return path


def validate_chrome_trace(trace: object) -> list[str]:
    """Schema-check a Chrome trace-event object; returns problems found.

    This is the validation CI runs on the ``repro trace`` artefact: the
    top-level shape, required per-event keys, known phases, non-negative
    timestamps/durations, and metadata naming for every referenced pid.
    """
    problems: list[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    named_pids: set[object] = set()
    used_pids: set[object] = set()
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: event must be an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing key {key!r}")
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a number >= 0, got {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs dur >= 0, got {dur!r}")
            if "cat" not in event:
                problems.append(f"{where}: X event missing 'cat'")
            used_pids.add(event.get("pid"))
        elif phase == "i":
            used_pids.add(event.get("pid"))
        elif phase == "M" and event.get("name") == "process_name":
            named_pids.add(event.get("pid"))
    for pid in sorted(used_pids - named_pids, key=str):
        problems.append(f"pid {pid!r} has no process_name metadata event")
    return problems


def assert_valid_chrome_trace(trace: object) -> None:
    """Raise :class:`ObservabilityError` if the trace fails validation."""
    problems = validate_chrome_trace(trace)
    if problems:
        preview = "; ".join(problems[:5])
        raise ObservabilityError(
            f"invalid Chrome trace ({len(problems)} problem(s)): {preview}"
        )
