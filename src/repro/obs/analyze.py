"""Trace-query engine: filter, roll up and walk exported span timelines.

A :class:`Trace` is the immutable, analysis-friendly view of a span
timeline — built either straight from a live
:class:`~repro.obs.spans.SpanCollector` or loaded back from a
``trace.jsonl`` file (batch-written or streamed; the two are
byte-identical, so this module never needs to know which it got).  On
top of it sit the queries the anomaly-diagnosis workflow needs:

* :meth:`Trace.filter` — slice by category / name / group (node) / lane,
* :meth:`Trace.duration_stats` — count/total/mean/max per span kind,
* :meth:`Trace.utilization` — per-node busy fraction from merged span
  intervals (the span-level analogue of ``user::procstat``),
* :meth:`Trace.critical_path` — the latest-finishing chain through the
  causal parent/child links, i.e. which spans an end-to-end run actually
  waited on,
* :meth:`Trace.enclosing` — the innermost span covering a (node, time)
  point, which is how ``repro diff`` turns a divergent sample index into
  a named culprit.

Everything here is deterministic: ties break on the canonical completion
``seq``, never on dict order or floating ambiguity.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping

from repro.errors import ObservabilityError
from repro.obs.export import ordered_records
from repro.obs.spans import Span, SpanCollector


@dataclass(frozen=True)
class TraceSpan:
    """One closed span, as exported (times in simulated seconds)."""

    sid: int
    seq: int
    cat: str
    name: str
    group: str
    lane: str
    start: float
    end: float
    parent: int | None
    args: Mapping[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def contains(self, time: float) -> bool:
        return self.start <= time <= self.end


@dataclass(frozen=True)
class TraceInstant:
    """One instantaneous event, as exported."""

    seq: int
    cat: str
    name: str
    group: str
    lane: str
    time: float
    args: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class DurationStats:
    """Aggregate of one span kind."""

    count: int
    total: float
    mean: float
    max: float


def _merged_busy(intervals: Iterable[tuple[float, float]]) -> float:
    """Total covered length of a set of (start, end) intervals."""
    merged = 0.0
    cur_start: float | None = None
    cur_end = 0.0
    for start, end in sorted(intervals):
        if cur_start is None:
            cur_start, cur_end = start, end
        elif start <= cur_end:
            cur_end = max(cur_end, end)
        else:
            merged += cur_end - cur_start
            cur_start, cur_end = start, end
    if cur_start is not None:
        merged += cur_end - cur_start
    return merged


class Trace:
    """An immutable span/instant timeline with query helpers."""

    def __init__(
        self,
        spans: Iterable[TraceSpan] = (),
        instants: Iterable[TraceInstant] = (),
    ) -> None:
        self.spans: tuple[TraceSpan, ...] = tuple(
            sorted(spans, key=lambda s: s.seq)
        )
        self.instants: tuple[TraceInstant, ...] = tuple(
            sorted(instants, key=lambda i: i.seq)
        )
        self._by_sid: dict[int, TraceSpan] = {s.sid: s for s in self.spans}
        self._children: dict[int, list[TraceSpan]] = {}
        for span in self.spans:
            if span.parent is not None and span.parent in self._by_sid:
                self._children.setdefault(span.parent, []).append(span)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_collector(cls, collector: SpanCollector) -> "Trace":
        """Snapshot a live collector (open spans close at the horizon)."""
        spans: list[TraceSpan] = []
        instants: list[TraceInstant] = []
        fallback_seq = sum(1 for s in collector.spans if s.seq is not None) + len(
            collector.instants
        )
        for record, end in ordered_records(collector):
            if isinstance(record, Span):
                if record.seq is None:
                    fallback_seq += 1
                seq = record.seq if record.seq is not None else fallback_seq
                assert end is not None
                spans.append(
                    TraceSpan(
                        sid=record.sid,
                        seq=seq,
                        cat=record.cat,
                        name=record.name,
                        group=record.track[0],
                        lane=record.track[1],
                        start=record.start,
                        end=end,
                        parent=record.parent,
                        args=dict(record.args),
                    )
                )
            else:
                instants.append(
                    TraceInstant(
                        seq=record.seq,
                        cat=record.cat,
                        name=record.name,
                        group=record.track[0],
                        lane=record.track[1],
                        time=record.time,
                        args=dict(record.args),
                    )
                )
        return cls(spans, instants)

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Load a ``trace.jsonl`` file (streamed or batch — same bytes)."""
        path = Path(path)
        spans: list[TraceSpan] = []
        instants: list[TraceInstant] = []
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"{path}:{lineno}: not valid JSON ({exc})"
                ) from None
            kind = record.get("type")
            if kind == "span":
                spans.append(
                    TraceSpan(
                        sid=record["sid"],
                        seq=record["seq"],
                        cat=record["cat"],
                        name=record["name"],
                        group=record["group"],
                        lane=record["lane"],
                        start=record["start"],
                        end=record["end"],
                        parent=record.get("parent"),
                        args=record.get("args", {}),
                    )
                )
            elif kind == "instant":
                instants.append(
                    TraceInstant(
                        seq=record["seq"],
                        cat=record["cat"],
                        name=record["name"],
                        group=record["group"],
                        lane=record["lane"],
                        time=record["time"],
                        args=record.get("args", {}),
                    )
                )
            else:
                raise ObservabilityError(
                    f"{path}:{lineno}: unknown record type {kind!r}"
                )
        return cls(spans, instants)

    # -- basic access --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)

    def __iter__(self) -> Iterator[TraceSpan]:
        return iter(self.spans)

    def span(self, sid: int) -> TraceSpan:
        try:
            return self._by_sid[sid]
        except KeyError:
            raise ObservabilityError(f"no span with sid {sid}") from None

    def children(self, sid: int) -> tuple[TraceSpan, ...]:
        return tuple(self._children.get(sid, ()))

    def roots(self) -> tuple[TraceSpan, ...]:
        """Spans with no (in-trace) parent."""
        return tuple(
            s
            for s in self.spans
            if s.parent is None or s.parent not in self._by_sid
        )

    @property
    def horizon(self) -> float:
        """Latest time any record reaches."""
        latest = 0.0
        for span in self.spans:
            latest = max(latest, span.end)
        for instant in self.instants:
            latest = max(latest, instant.time)
        return latest

    def categories(self) -> dict[str, int]:
        """Span count per category, alphabetical."""
        counts: dict[str, int] = {}
        for span in self.spans:
            counts[span.cat] = counts.get(span.cat, 0) + 1
        return dict(sorted(counts.items()))

    # -- filtering -----------------------------------------------------------

    def filter(
        self,
        cat: str | None = None,
        name: str | None = None,
        group: str | None = None,
        lane: str | None = None,
        predicate: Callable[[TraceSpan], bool] | None = None,
    ) -> "Trace":
        """A sub-trace of the spans (and instants) matching every filter."""

        def keep_span(s: TraceSpan) -> bool:
            return (
                (cat is None or s.cat == cat)
                and (name is None or s.name == name)
                and (group is None or s.group == group)
                and (lane is None or s.lane == lane)
                and (predicate is None or predicate(s))
            )

        def keep_instant(i: TraceInstant) -> bool:
            return (
                (cat is None or i.cat == cat)
                and (name is None or i.name == name)
                and (group is None or i.group == group)
                and (lane is None or i.lane == lane)
            )

        instants = () if predicate is not None else tuple(
            i for i in self.instants if keep_instant(i)
        )
        return Trace((s for s in self.spans if keep_span(s)), instants)

    # -- rollups -------------------------------------------------------------

    def duration_stats(self, by: str = "name") -> dict[str, DurationStats]:
        """Aggregate span durations, keyed by ``name``/``cat``/``cat:name``."""
        if by not in ("name", "cat", "cat:name"):
            raise ObservabilityError(
                f"unknown grouping {by!r} (use 'name', 'cat' or 'cat:name')"
            )
        buckets: dict[str, list[float]] = {}
        for span in self.spans:
            if by == "name":
                key = span.name
            elif by == "cat":
                key = span.cat
            else:
                key = f"{span.cat}:{span.name}"
            buckets.setdefault(key, []).append(span.duration)
        return {
            key: DurationStats(
                count=len(durs),
                total=sum(durs),
                mean=sum(durs) / len(durs),
                max=max(durs),
            )
            for key, durs in sorted(buckets.items())
        }

    def utilization(
        self, horizon: float | None = None, cat: str | None = None
    ) -> dict[str, float]:
        """Per-group (node) busy fraction from merged span intervals.

        A group counts as busy whenever *any* of its lanes has an open
        span (intervals are unioned across lanes, so nested/parallel
        spans never double-count).  ``cat`` restricts to one category,
        e.g. ``"engine"`` for compute activity only.
        """
        horizon = self.horizon if horizon is None else horizon
        if horizon <= 0:
            return {}
        intervals: dict[str, list[tuple[float, float]]] = {}
        for span in self.spans:
            if cat is not None and span.cat != cat:
                continue
            intervals.setdefault(span.group, []).append(
                (span.start, min(span.end, horizon))
            )
        return {
            group: min(1.0, _merged_busy(ivals) / horizon)
            for group, ivals in sorted(intervals.items())
        }

    def lane_utilization(
        self, horizon: float | None = None, cat: str | None = None
    ) -> dict[tuple[str, str], float]:
        """Busy fraction per (group, lane) — one row per timeline track."""
        horizon = self.horizon if horizon is None else horizon
        if horizon <= 0:
            return {}
        intervals: dict[tuple[str, str], list[tuple[float, float]]] = {}
        for span in self.spans:
            if cat is not None and span.cat != cat:
                continue
            intervals.setdefault((span.group, span.lane), []).append(
                (span.start, min(span.end, horizon))
            )
        return {
            track: min(1.0, _merged_busy(ivals) / horizon)
            for track, ivals in sorted(intervals.items())
        }

    # -- causal walks --------------------------------------------------------

    def critical_path(self, sid: int | None = None) -> tuple[TraceSpan, ...]:
        """The latest-finishing causal chain from a root span downwards.

        Starting from ``sid`` (default: the root that ends last), repeatedly
        descend into the child that finishes last — the child the parent's
        completion actually waited on.  Ties break on the smaller ``seq``
        so the walk is deterministic.  Returns root-first.
        """
        if sid is None:
            roots = self.roots()
            if not roots:
                return ()
            start = max(roots, key=lambda s: (s.end, -s.seq))
        else:
            start = self.span(sid)
        path = [start]
        current = start
        while True:
            kids = self._children.get(current.sid)
            if not kids:
                break
            current = max(kids, key=lambda s: (s.end, -s.seq))
            path.append(current)
        return tuple(path)

    def enclosing(
        self, group: str, time: float, cat: str | None = None
    ) -> TraceSpan | None:
        """The innermost span on ``group`` covering ``time``.

        "Innermost" = shortest duration, ties broken by smaller ``seq`` —
        the most specific activity running on that node at that moment.
        Returns ``None`` if nothing covers the point.
        """
        best: TraceSpan | None = None
        for span in self.spans:
            if span.group != group or not span.contains(time):
                continue
            if cat is not None and span.cat != cat:
                continue
            if best is None or (span.duration, span.seq) < (
                best.duration,
                best.seq,
            ):
                best = span
        return best

    # -- misc ----------------------------------------------------------------

    def shifted(self, dt: float) -> "Trace":
        """A copy with every time moved by ``dt`` (alignment helper)."""
        return Trace(
            (
                replace(s, start=s.start + dt, end=s.end + dt)
                for s in self.spans
            ),
            (replace(i, time=i.time + dt) for i in self.instants),
        )
