"""Per-socket memory-bandwidth contention model.

Two effects shape measured bandwidth on real memory controllers:

1. **Capacity sharing** — the controller's sustained bandwidth is divided
   among requesters.  We model this with max-min fair sharing (or, for the
   ablation, proportional sharing).
2. **Latency degradation** — a single core cannot saturate the controller;
   its achievable bandwidth is limited by outstanding misses, and queueing
   caused by *other* traffic stretches miss latency.  We model a core's
   achievable bandwidth as ``demand / (1 + alpha * other_load)`` where
   ``other_load`` is the rest of the socket's demand relative to socket
   capacity.

Effect 2 is what makes a single ``membw`` instance already hurt STREAM in
the paper's Fig. 4 even though 2 cores' demands fit within the socket's raw
capacity; effect 1 caps the aggregate as instances multiply.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.resources.fairshare import max_min_fair_share

ShareFn = Callable[[float, Sequence[float]], list[float]]


def solve_bandwidth(
    capacity: float,
    demands: Sequence[float],
    alpha: float = 1.0,
    share_fn: ShareFn = max_min_fair_share,
) -> list[float]:
    """Grant memory bandwidth to per-process demands on one socket.

    Parameters
    ----------
    capacity:
        Socket's sustained memory bandwidth (bytes/s).
    demands:
        Bytes/s each process wants at full speed.
    alpha:
        Latency-degradation strength; 0 disables effect 2.
    share_fn:
        Sharing discipline for effect 1 (max-min by default).

    Returns
    -------
    list of granted bytes/s, one per demand, each ``<=`` its demand.
    """
    total = float(sum(demands))
    degraded = []
    for demand in demands:
        other_load = max(0.0, (total - demand)) / capacity
        degraded.append(demand / (1.0 + alpha * other_load))
    return share_fn(capacity, degraded)
