"""Per-node physical memory accounting with OOM-kill semantics.

Voltrino (like most HPC systems) runs without swap: when a node's memory is
exhausted the kernel's OOM killer terminates a process — the paper notes
that oversized ``memleak``/``memeater`` instances crash the co-located
application.  :class:`MemoryLedger` reproduces that: allocations are charged
to pids, and when an allocation does not fit, the configured victim policy
picks a process to kill (default: the largest consumer, approximating Linux
OOM badness).
"""

from __future__ import annotations

from typing import Callable, Literal

from repro.errors import ConfigError, OutOfMemoryError, ResourceError

VictimPolicy = Literal["largest", "allocator"]


class MemoryLedger:
    """Tracks physical memory allocations of one node.

    Parameters
    ----------
    node:
        Node name (for error messages).
    capacity:
        Physical bytes available to user processes.
    baseline:
        Bytes reserved by the OS and system services (the paper's Fig. 5
        shows ~7 GB in use before the anomalies start).
    victim_policy:
        Who dies on OOM: ``"largest"`` (biggest consumer, Linux-like,
        default) or ``"allocator"`` (the requesting process).
    """

    def __init__(
        self,
        node: str,
        capacity: float,
        baseline: float = 0.0,
        victim_policy: VictimPolicy = "largest",
    ) -> None:
        if capacity <= 0:
            raise ConfigError("memory capacity must be positive")
        if not 0 <= baseline < capacity:
            raise ConfigError("baseline must be within [0, capacity)")
        if victim_policy not in ("largest", "allocator"):
            raise ConfigError(f"unknown victim policy {victim_policy!r}")
        self.node = node
        self.capacity = float(capacity)
        self.baseline = float(baseline)
        self.victim_policy: VictimPolicy = victim_policy
        self._held: dict[int, float] = {}
        #: called with the victim pid when OOM fires; wired to the engine's
        #: kill by the cluster rate model
        self.oom_killer: Callable[[int], None] | None = None

    # -- queries -----------------------------------------------------------

    @property
    def used(self) -> float:
        """Bytes in use, including the OS baseline."""
        return self.baseline + sum(self._held.values())

    @property
    def free(self) -> float:
        """Bytes available (``MemFree`` in meminfo terms)."""
        return self.capacity - self.used

    def held_by(self, pid: int) -> float:
        """Bytes currently charged to ``pid``."""
        return self._held.get(pid, 0.0)

    def largest_consumer(self) -> int | None:
        """Pid holding the most memory (ties by pid), or None if idle.

        The spurious ``oom_kill`` fault model uses this to pick its
        victim with the same badness approximation as real OOM kills.
        """
        if not self._held:
            return None
        return max(self._held, key=lambda p: (self._held[p], -p))

    # -- mutation ------------------------------------------------------------

    def alloc(self, pid: int, nbytes: float) -> None:
        """Charge ``nbytes`` to ``pid``; triggers the OOM killer if needed.

        On OOM the victim's memory is released and, if an ``oom_killer``
        callback is wired, the victim process is terminated.  If the
        *allocator itself* is the victim (or memory still does not fit
        after killing), :class:`OutOfMemoryError` propagates to the
        caller so the allocating process's body can observe its own death.
        """
        if nbytes < 0:
            raise ResourceError("allocation size must be >= 0")
        while nbytes > self.free:
            victim = self._pick_victim(pid)
            self.free_all(victim)
            if self.oom_killer is not None and victim != pid:
                self.oom_killer(victim)
            if victim == pid:
                raise OutOfMemoryError(self.node, nbytes, self.free)
        self._held[pid] = self._held.get(pid, 0.0) + nbytes

    def release(self, pid: int, nbytes: float) -> None:
        """Return ``nbytes`` previously charged to ``pid``."""
        held = self._held.get(pid, 0.0)
        if nbytes < 0 or nbytes > held + 1e-6:
            raise ResourceError(
                f"pid {pid} releasing {nbytes} B but holds only {held} B"
            )
        remaining = held - nbytes
        if remaining <= 1e-6:
            self._held.pop(pid, None)
        else:
            self._held[pid] = remaining

    def free_all(self, pid: int) -> float:
        """Release everything held by ``pid``; returns the amount freed."""
        return self._held.pop(pid, 0.0)

    def _pick_victim(self, allocator: int) -> int:
        if self.victim_policy == "allocator" or not self._held:
            return allocator
        # Largest consumer; ties broken by pid for determinism.  The
        # allocator's *current* holdings count too — a leak that grew the
        # biggest is the one the OOM killer reaps, exactly the behaviour
        # the paper reports for oversized memleak.
        return max(self._held, key=lambda p: (self._held[p], -p))
