"""Memory subsystem: capacity ledger (OOM semantics) and bandwidth sharing."""

from repro.memory.capacity import MemoryLedger
from repro.memory.bandwidth import solve_bandwidth

__all__ = ["MemoryLedger", "solve_bandwidth"]
