"""Cache occupancy and eviction model.

Real caches arbitrate capacity through replacement: under LRU-like
policies, steady-state occupancy of co-running working sets is roughly
proportional to each tenant's *access pressure times footprint*, capped by
the footprint itself.  We solve exactly that:

* if the combined footprints fit, nobody is evicted;
* otherwise capacity is distributed proportionally to
  ``intensity x footprint`` weights with per-tenant caps at the footprint,
  redistributing leftovers (a weighted max-min on occupancy).

Each tenant's *eviction fraction* ``e = 1 - occupancy / footprint`` then
drives three observables in the rate model:

* extra last-level misses (MPKI) via the machine's cascade weights,
* a CPI stall penalty,
* extra memory-bandwidth demand (evicted lines must be refetched).

This reproduces the paper's Fig. 3: a ``cachecopy`` working set of L1 size
steals mostly L1, which cascades weakly to L3 MPKI; an L3-sized set
directly evicts from L3, which cascades at full weight — so the victim's
L3 MPKI climbs monotonically with the anomaly's working-set size, and
climbs further on Chameleon's smaller L3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ResourceError
from repro.sim.process import CACHE_LEVELS


@dataclass(frozen=True)
class CacheDemand:
    """One tenant's demand on one cache domain."""

    pid: int
    footprint: float
    intensity: float

    def __post_init__(self) -> None:
        if self.footprint < 0 or self.intensity < 0:
            raise ResourceError("cache footprint and intensity must be >= 0")


@dataclass(frozen=True)
class EvictionResult:
    """Per-tenant occupancy outcome for one cache domain."""

    occupancy: float
    eviction: float  # fraction of the footprint not resident, in [0, 1]


def solve_occupancy(
    capacity: float,
    demands: Sequence[CacheDemand],
    sharpness: float = 1.0,
) -> dict[int, EvictionResult]:
    """Distribute ``capacity`` bytes among competing working sets.

    Parameters
    ----------
    capacity:
        Domain capacity in bytes (e.g. one socket's L3).
    demands:
        Competing tenants.  Tenants with zero footprint get zero occupancy
        and zero eviction.
    sharpness:
        Exponent applied to the pressure weights; 1.0 is the default
        proportional model, larger values make high-intensity tenants win
        more decisively (ablation knob).

    Returns
    -------
    ``{pid: EvictionResult}``.
    """
    if capacity < 0:
        raise ResourceError("cache capacity must be >= 0")
    results: dict[int, EvictionResult] = {}
    active = [d for d in demands if d.footprint > 0]
    for d in demands:
        if d.footprint <= 0:
            results[d.pid] = EvictionResult(occupancy=0.0, eviction=0.0)

    total_footprint = sum(d.footprint for d in active)
    if total_footprint <= capacity:
        for d in active:
            results[d.pid] = EvictionResult(occupancy=d.footprint, eviction=0.0)
        return results

    # Weighted proportional fill with caps, redistributing leftover shares.
    remaining = capacity
    pending = list(active)
    granted = {d.pid: 0.0 for d in active}
    while pending and remaining > 1e-9:
        weights = [
            max(d.intensity, 1e-6) ** sharpness * (d.footprint - granted[d.pid])
            for d in pending
        ]
        wsum = sum(weights)
        if wsum <= 0:
            break
        next_pending = []
        for d, w in zip(pending, weights):
            share = remaining * w / wsum
            room = d.footprint - granted[d.pid]
            granted[d.pid] += min(share, room)
            if granted[d.pid] < d.footprint - 1e-9:
                next_pending.append(d)
        spent = sum(granted.values())
        remaining = capacity - spent
        if len(next_pending) == len(pending) and remaining > 1e-9:
            # Nobody reached their cap this round: shares are final.
            break
        pending = next_pending

    for d in active:
        occ = min(granted[d.pid], d.footprint)
        ev = 0.0 if d.footprint == 0 else max(0.0, 1.0 - occ / d.footprint)
        results[d.pid] = EvictionResult(occupancy=occ, eviction=ev)
    return results


def inclusive_footprints(
    footprint: Mapping[str, float], cache_sizes: Mapping[str, float]
) -> dict[str, float]:
    """Normalise a per-level footprint map to the inclusive convention.

    Callers may specify only the total working-set size under ``"L3"``
    (or any subset of levels); missing levels inherit the largest declared
    value, clamped to the level's capacity (a 10 MB set occupies at most
    all of L1).  *Declared* levels keep their raw value even above the
    level's capacity — an oversized working set must keep demanding more
    than the level holds so its eviction fraction (and the resulting
    refetch traffic) is computed correctly.
    """
    total = 0.0
    for level in CACHE_LEVELS:
        total = max(total, float(footprint.get(level, 0.0)))
    out: dict[str, float] = {}
    for level in CACHE_LEVELS:
        explicit = footprint.get(level)
        if explicit is not None:
            out[level] = float(explicit)
        else:
            out[level] = min(total, float(cache_sizes[level]))
    return out


def cascade_miss_factor(
    evictions: Mapping[str, float], cascade: tuple[float, float, float]
) -> float:
    """Combine per-level evictions into a single [0, 1+] miss-pressure factor.

    ``cascade`` weights (c1, c2, c3) express how strongly eviction at each
    level turns into last-level misses; the combined factor saturates at
    the max per-level contribution plus a fraction of the rest, mimicking
    partially-overlapping miss streams.
    """
    contributions = sorted(
        (
            cascade[0] * evictions.get("L1", 0.0),
            cascade[1] * evictions.get("L2", 0.0),
            cascade[2] * evictions.get("L3", 0.0),
        ),
        reverse=True,
    )
    # Dominant level counts fully; the others at 30% (their miss streams
    # largely overlap with the dominant one).
    return min(1.0, contributions[0] + 0.3 * (contributions[1] + contributions[2]))
