"""Analytic cache-hierarchy contention model."""

from repro.cache.model import (
    CacheDemand,
    EvictionResult,
    cascade_miss_factor,
    inclusive_footprints,
    solve_occupancy,
)

__all__ = [
    "CacheDemand",
    "EvictionResult",
    "cascade_miss_factor",
    "inclusive_footprints",
    "solve_occupancy",
]
