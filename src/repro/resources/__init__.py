"""Resource-sharing primitives used by the cluster rate model."""

from repro.resources.fairshare import max_min_fair_share, proportional_share

__all__ = ["max_min_fair_share", "proportional_share"]
