"""Bandwidth-sharing solvers.

Two classic disciplines are provided:

``max_min_fair_share``
    Progressive filling: every demand receives an equal share until it is
    satisfied; leftover capacity is redistributed among the unsatisfied.
    This is the standard model for fair queueing on links, memory
    controllers and disks, and is the default throughout the simulator.

``proportional_share``
    Capacity is split proportionally to demand.  Used by the ablation
    benchmark to show how the sharing discipline changes the shape of the
    STREAM-vs-membw sweep (Fig. 4).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ResourceError


def _validate(capacity: float, demands: Sequence[float]) -> np.ndarray:
    if capacity < 0 or math.isnan(capacity):
        raise ResourceError(f"capacity must be >= 0, got {capacity}")
    arr = np.asarray(demands, dtype=float)
    if arr.ndim != 1:
        raise ResourceError("demands must be a 1-D sequence")
    if np.any(arr < 0) or np.any(np.isnan(arr)):
        raise ResourceError("demands must be non-negative and finite")
    if np.any(np.isinf(arr)):
        raise ResourceError("demands must be finite")
    return arr


def max_min_fair_share(capacity: float, demands: Sequence[float]) -> list[float]:
    """Allocate ``capacity`` to ``demands`` by progressive filling.

    Returns a list of grants, one per demand, with three invariants:

    * no demand receives more than it asked for,
    * the grants sum to ``min(capacity, sum(demands))``,
    * any unsatisfied demand receives at least as much as every other
      demand's grant (max-min fairness).
    """
    arr = _validate(capacity, demands)
    n = arr.size
    if n == 0:
        return []
    grants = np.zeros(n)
    remaining = capacity
    unsatisfied = arr > 0
    # Progressive filling terminates in <= n rounds because every round
    # satisfies at least one demand (or exhausts capacity).
    while remaining > 0 and np.any(unsatisfied):
        share = remaining / int(np.count_nonzero(unsatisfied))
        need = arr[unsatisfied] - grants[unsatisfied]
        take = np.minimum(need, share)
        grants[unsatisfied] += take
        remaining -= float(take.sum())
        newly_satisfied = grants >= arr - 1e-12
        if np.array_equal(newly_satisfied & unsatisfied, unsatisfied) and share > 0:
            break  # everyone satisfied
        unsatisfied &= ~newly_satisfied
        if remaining <= 1e-12:
            break
    return [float(g) for g in grants]


def proportional_share(capacity: float, demands: Sequence[float]) -> list[float]:
    """Split ``capacity`` proportionally to demand (capped at the demand)."""
    arr = _validate(capacity, demands)
    total = float(arr.sum())
    if total <= capacity or total == 0.0:
        return [float(d) for d in arr]
    grants = arr * (capacity / total)
    return [float(g) for g in np.minimum(grants, arr)]
