"""Bandwidth-sharing solvers.

Two classic disciplines are provided:

``max_min_fair_share``
    Progressive filling: every demand receives an equal share until it is
    satisfied; leftover capacity is redistributed among the unsatisfied.
    This is the standard model for fair queueing on links, memory
    controllers and disks, and is the default throughout the simulator.

``proportional_share``
    Capacity is split proportionally to demand.  Used by the ablation
    benchmark to show how the sharing discipline changes the shape of the
    STREAM-vs-membw sweep (Fig. 4).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ResourceError


def _validate(capacity: float, demands: Sequence[float]) -> np.ndarray:
    if capacity < 0 or math.isnan(capacity):
        raise ResourceError(f"capacity must be >= 0, got {capacity}")
    arr = np.asarray(demands, dtype=float)
    if arr.ndim != 1:
        raise ResourceError("demands must be a 1-D sequence")
    if np.any(arr < 0) or np.any(np.isnan(arr)):
        raise ResourceError("demands must be non-negative and finite")
    if np.any(np.isinf(arr)):
        raise ResourceError("demands must be finite")
    return arr


def max_min_fair_share(capacity: float, demands: Sequence[float]) -> list[float]:
    """Allocate ``capacity`` to ``demands`` by progressive filling.

    Returns a list of grants, one per demand, with three invariants:

    * no demand receives more than it asked for,
    * the grants sum to ``min(capacity, sum(demands))``,
    * any unsatisfied demand receives at least as much as every other
      demand's grant (max-min fairness).
    """
    arr = _validate(capacity, demands)
    n = arr.size
    if n == 0:
        return []
    total = float(arr.sum())
    if total <= capacity:
        return [float(d) for d in arr]
    # Sorted waterfilling: visit demands in ascending order; a demand that
    # fits under the current equal share is granted fully, and the first
    # one that does not caps itself and everyone after it at the share.
    # Exact in one pass — no tolerance thresholds, so the invariants hold
    # at any magnitude (the iterative variant drifted at ~1e12 scales).
    grants = np.zeros(n)
    remaining = float(capacity)
    order = np.argsort(arr, kind="stable")
    for pos, i in enumerate(order):
        level = remaining / (n - pos)
        if arr[i] <= level:
            grants[i] = arr[i]
            remaining -= float(arr[i])
        else:
            grants[order[pos:]] = level
            break
    return [float(g) for g in grants]


def proportional_share(capacity: float, demands: Sequence[float]) -> list[float]:
    """Split ``capacity`` proportionally to demand (capped at the demand)."""
    arr = _validate(capacity, demands)
    total = float(arr.sum())
    # total == 0 implies total <= capacity (both validated non-negative),
    # so the all-satisfied branch also covers the no-demand case.
    if total <= capacity:
        return [float(d) for d in arr]
    grants = arr * (capacity / total)
    return [float(g) for g in np.minimum(grants, arr)]
