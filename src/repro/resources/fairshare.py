"""Bandwidth-sharing solvers.

Two classic disciplines are provided:

``max_min_fair_share``
    Progressive filling: every demand receives an equal share until it is
    satisfied; leftover capacity is redistributed among the unsatisfied.
    This is the standard model for fair queueing on links, memory
    controllers and disks, and is the default throughout the simulator.

``proportional_share``
    Capacity is split proportionally to demand.  Used by the ablation
    benchmark to show how the sharing discipline changes the shape of the
    STREAM-vs-membw sweep (Fig. 4).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ResourceError


def _validate(capacity: float, demands: Sequence[float]) -> np.ndarray:
    if capacity < 0 or math.isnan(capacity):
        raise ResourceError(f"capacity must be >= 0, got {capacity}")
    arr = np.asarray(demands, dtype=float)
    if arr.ndim != 1:
        raise ResourceError("demands must be a 1-D sequence")
    if np.any(arr < 0) or np.any(np.isnan(arr)):
        raise ResourceError("demands must be non-negative and finite")
    if np.any(np.isinf(arr)):
        raise ResourceError("demands must be finite")
    return arr


def max_min_fair_share(capacity: float, demands: Sequence[float]) -> list[float]:
    """Allocate ``capacity`` to ``demands`` by progressive filling.

    Returns a list of grants, one per demand, with three invariants:

    * no demand receives more than it asked for,
    * the grants sum to ``min(capacity, sum(demands))``,
    * any unsatisfied demand receives at least as much as every other
      demand's grant (max-min fairness).

    Bit-for-bit equal to :func:`max_min_fair_share_reference` (the scalar
    loop it replaced); ``tests/resources/test_fairshare_vectorized.py``
    pins that equality on random cases.
    """
    arr = _validate(capacity, demands)
    n = arr.size
    if n == 0:
        return []
    total = float(arr.sum())
    if total <= capacity:
        return [float(d) for d in arr]
    return [float(g) for g in waterfill(capacity, arr)]


def waterfill(capacity: float, arr: np.ndarray) -> np.ndarray:
    """Vectorized sorted waterfilling over an oversubscribed demand array.

    Callers must have checked ``sum(arr) > capacity`` (otherwise the
    all-satisfied fast path applies).  Visits demands in ascending order;
    a demand that fits under the current equal share is granted fully, and
    the first one that does not caps itself and everyone after it at the
    share.  Exact in one pass — no tolerance thresholds, so the invariants
    hold at any magnitude (the iterative variant drifted at ~1e12 scales).

    Every float op mirrors the scalar loop: the running remainders come
    from ``np.subtract.accumulate`` (strictly sequential, unlike
    ``np.sum``'s pairwise order), each level is one division, and the
    first unsatisfied position is found on exactly those values — so the
    grants are bit-identical to the scalar reference.
    """
    n = arr.size
    order = np.argsort(arr, kind="stable")
    s = arr[order]
    # remaining[k] = capacity - s[0] - ... - s[k-1], the water level's
    # numerator right before visiting position k.
    remaining = np.subtract.accumulate(np.concatenate(((capacity,), s)))[:-1]
    levels = remaining / np.arange(n, 0, -1, dtype=float)
    unsat = s > levels
    granted = s.copy()
    if unsat.any():
        k = int(np.argmax(unsat))
        granted[k:] = levels[k]
    grants = np.empty(n)
    grants[order] = granted
    return grants


def max_min_fair_share_reference(
    capacity: float, demands: Sequence[float]
) -> list[float]:
    """Scalar reference for :func:`max_min_fair_share` (PR 1 semantics).

    Kept as the ground truth the vectorized implementation is tested
    against; do not call it from production paths.
    """
    arr = _validate(capacity, demands)
    n = arr.size
    if n == 0:
        return []
    total = float(arr.sum())
    if total <= capacity:
        return [float(d) for d in arr]
    grants = np.zeros(n)
    remaining = float(capacity)
    order = np.argsort(arr, kind="stable")
    for pos, i in enumerate(order):
        level = remaining / (n - pos)
        if arr[i] <= level:
            grants[i] = arr[i]
            remaining -= float(arr[i])
        else:
            grants[order[pos:]] = level
            break
    return [float(g) for g in grants]


def proportional_share(capacity: float, demands: Sequence[float]) -> list[float]:
    """Split ``capacity`` proportionally to demand (capped at the demand)."""
    arr = _validate(capacity, demands)
    total = float(arr.sum())
    # total == 0 implies total <= capacity (both validated non-negative),
    # so the all-satisfied branch also covers the no-demand case.
    if total <= capacity:
        return [float(d) for d in arr]
    grants = arr * (capacity / total)
    return [float(g) for g in np.minimum(grants, arr)]
