"""Command-line front end mirroring the HPAS executables.

The original suite ships binaries like ``hpas cpuoccupy -u 80``.  This
module provides the same surface against the simulated substrate::

    python -m repro cpuoccupy -u 80 -d 60 --node node0 --core 0
    python -m repro cachecopy -c L3 --with-app miniGhost --report --profile
    python -m repro varbench miniGhost --anomaly cachecopy --jobs 4
    python -m repro lint src/ tests/
    python -m repro trace mixed --out trace.json --manifest manifest.json
    python -m repro trace faults --stream runs/a
    python -m repro trace-gen ai_training --seed 0 --out ai.jsonl
    python -m repro diff runs/a runs/b
    python -m repro report mixed --no-wallclock --md report.md
    python -m repro experiment --list
    python -m repro experiment fig8
    python -m repro faults --seed 1
    python -m repro check --cases 50 --seed 0
    python -m repro submit fig8 --state-dir state
    python -m repro serve --state-dir state --shards 2

It builds a Voltrino-like cluster, optionally co-runs a benchmark
application, injects the requested anomaly, and prints a monitoring
summary — a one-command demonstration of the suite.  The ``lint``
subcommand runs the determinism analyzer (see :mod:`repro.lint`); the
``varbench`` subcommand measures induced run-to-run variability with
repetitions optionally fanned out over ``--jobs`` worker processes; the
``trace`` subcommand runs a multi-subsystem scenario with span tracing
attached and writes a Chrome trace-event file plus an optional run
manifest — or, with ``--stream DIR``, streams the run incrementally
(see :mod:`repro.obs` and docs/OBSERVABILITY.md); ``diff`` compares two
run directories and localizes the first divergence down to the sample
index and enclosing span; ``report`` summarizes a run with per-subsystem
wall-clock attribution; the
``experiment`` subcommand runs any table/figure experiment from the
registry (:mod:`repro.experiments.registry`) and archives its results
exactly as the benchmark harness does; ``faults`` runs the
fault-injection resilience sweep (see docs/FAULTS.md); ``check`` fuzzes
the simulator with runtime invariants and differential oracles attached
(see :mod:`repro.check` and docs/TESTING.md); ``submit`` and ``serve``
expose the async job service with its content-addressed result cache
(see docs/SERVICE.md).  The ``experiment`` / ``varbench`` / ``faults``
subcommands are thin adapters over :class:`repro.api.Client` — same
flags, byte-identical output, but repeated runs against a persistent
``--state-dir`` are served from the cache.

Invoking an experiment by its bare name (``repro fig8``) still works as
a deprecated alias for ``repro experiment fig8`` and prints a warning on
stderr.  ``--profile`` prints the engine's
:class:`~repro.sim.stats.SimStats` counters (resolves, node reuse, flow
memo hits, subsystem wall time); ``--trace FILE`` records spans during
an anomaly run.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro.apps import AppJob, get_app
from repro.cluster import Cluster
from repro.core import ANOMALY_REGISTRY, parse_cli
from repro.monitoring import MetricService
from repro.output import OutputWriter

SUMMARY_METRICS = (
    "user::procstat",
    "sys::procstat",
    "MemUsed::meminfo",
    "INST_RETIRED:ANY::spapiHASW",
    "LLC_MISSES::spapiHASW",
)


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    from repro.sim.engine import BACKENDS

    parser.add_argument(
        "--backend",
        default=None,
        choices=BACKENDS,
        help="simulation core: 'object' (reference) or 'array' (numpy hot "
        "path, identical results); default honours REPRO_BACKEND",
    )


def _apply_backend(args: argparse.Namespace) -> None:
    """Propagate ``--backend`` to every cluster built below this command.

    Exported through the environment rather than threaded through each
    call chain so that worker processes (``--jobs``) inherit it too.
    """
    if getattr(args, "backend", None) is not None:
        os.environ["REPRO_BACKEND"] = args.backend


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run an HPAS anomaly on the simulated HPC substrate.",
    )
    parser.add_argument(
        "anomaly",
        choices=sorted(ANOMALY_REGISTRY),
        help="anomaly generator to run",
    )
    parser.add_argument("--node", default="node0", help="target node (default node0)")
    parser.add_argument("--core", type=int, default=0, help="target logical core")
    parser.add_argument(
        "--nodes", type=int, default=4, help="cluster size (default 4 nodes)"
    )
    parser.add_argument(
        "--with-app",
        default=None,
        metavar="APP",
        help="co-run a benchmark application (e.g. miniGhost)",
    )
    parser.add_argument(
        "--horizon",
        type=float,
        default=120.0,
        help="simulated seconds to run (default 120)",
    )
    parser.add_argument(
        "--report", action="store_true", help="print the monitoring summary table"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print engine performance counters after the run",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record spans during the run and write a Chrome trace JSON",
    )
    return parser


def build_varbench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro varbench",
        description="Measure induced run-to-run variability (Varbench-style).",
    )
    parser.add_argument("app", help="benchmark application (e.g. miniGhost)")
    parser.add_argument(
        "--anomaly",
        default=None,
        choices=sorted(ANOMALY_REGISTRY),
        help="anomaly injected at a random phase of each repetition",
    )
    parser.add_argument("--reps", type=int, default=10, help="repetitions (default 10)")
    parser.add_argument(
        "--iterations", type=int, default=20, help="app iterations per repetition"
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the repetitions (results are identical "
        "for every value; default 1 = serial)",
    )
    _add_backend_argument(parser)
    return parser


def _run_job(client, name, seed=None, overrides=None):
    """Submit one job on ``client``, drive it to completion, return its result.

    The shared body of every legacy subcommand adapter: a failed job
    surfaces as a :class:`~repro.errors.ServiceError` carrying the
    worker-side exception text, mirroring how the old direct call would
    have raised.
    """
    from repro.errors import ServiceError

    handle = client.submit(name, seed=seed, overrides=overrides)
    status = client.wait(handle.job_id)
    if status.state != "done":
        raise ServiceError(
            f"job {status.job_id} ({status.name}) {status.state}"
            + (f": {status.reason}" if status.reason else "")
        )
    return client.result(handle.job_id)


def varbench_main(argv: list[str]) -> int:
    from repro.api import Client

    args = build_varbench_parser().parse_args(argv)
    _apply_backend(args)
    with Client() as client:
        result = _run_job(
            client,
            "varbench",
            seed=args.seed,
            overrides={
                "app": args.app,
                "anomaly": args.anomaly,
                "reps": args.reps,
                "iterations": args.iterations,
                "jobs": args.jobs,
            },
        )
    OutputWriter().line(result.render())
    return 0


def build_trace_parser() -> argparse.ArgumentParser:
    from repro.obs import TRACE_FORMATS
    from repro.obs.scenarios import SCENARIOS

    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Trace a multi-subsystem scenario end to end.",
    )
    parser.add_argument(
        "scenario",
        nargs="?",
        choices=sorted(SCENARIOS),
        help="scenario to run with span tracing attached "
        "(omit with --list to enumerate)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered trace scenarios"
    )
    parser.add_argument(
        "--out", default="trace.json", help="trace output path (default trace.json)"
    )
    parser.add_argument(
        "--format",
        default="chrome",
        choices=TRACE_FORMATS,
        help="trace file format (default chrome)",
    )
    parser.add_argument(
        "--stream",
        default=None,
        metavar="DIR",
        help="stream the run into DIR as it happens (trace.jsonl, "
        "metrics/<node>.jsonl, counters.json) instead of buffering; "
        "see docs/OBSERVABILITY.md",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="FILE",
        help="also write a deterministic run manifest",
    )
    parser.add_argument(
        "--horizon", type=float, default=120.0, help="simulated seconds (default 120)"
    )
    parser.add_argument("--seed", type=int, default=0, help="scenario seed")
    return parser


def trace_main(argv: list[str]) -> int:
    from repro.obs.scenarios import SCENARIOS, run_scenario

    parser = build_trace_parser()
    args = parser.parse_args(argv)
    out = OutputWriter()
    if args.list or args.scenario is None:
        width = max(len(name) for name in SCENARIOS)
        for name in sorted(SCENARIOS):
            out.line(f"{name.ljust(width)}  {SCENARIOS[name].description}")
        return 0
    on_obs = None
    if args.stream is not None:
        on_obs = lambda obs: obs.stream_to(args.stream, chrome=True)  # noqa: E731
    run = run_scenario(
        args.scenario, seed=args.seed, horizon=args.horizon, on_obs=on_obs
    )
    if args.stream is not None:
        for directory in run.obs.close_streams():
            out.line(f"streamed scenario {args.scenario!r} into {directory}/")
    path = run.obs.write_trace(args.out, fmt=args.format)
    counts = run.obs.collector.categories()
    summary = "  ".join(f"{cat}={n}" for cat, n in counts.items())
    out.line(f"traced scenario {args.scenario!r} to {path}")
    out.line(f"spans: {summary or 'none'}  instants: {len(run.obs.collector.instants)}")
    if args.manifest is not None:
        manifest_path = run.obs.write_manifest(
            args.manifest,
            name=f"trace-{args.scenario}",
            seed=run.seed,
            config=run.config,
            injector=run.injector,
        )
        out.line(f"manifest: {manifest_path}")
    return 0


def build_diff_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro diff",
        description="Compare two run/result directories and localize the "
        "first divergence (manifest key, sample index, enclosing span). "
        "Exit status 0 = identical, 1 = diverged.",
    )
    parser.add_argument("run_a", help="first run directory")
    parser.add_argument("run_b", help="second run directory")
    parser.add_argument(
        "--label-a", default=None, help="display label for run_a (default: path)"
    )
    parser.add_argument(
        "--label-b", default=None, help="display label for run_b (default: path)"
    )
    return parser


def diff_main(argv: list[str]) -> int:
    from repro.obs.diff import diff_runs

    args = build_diff_parser().parse_args(argv)
    report = diff_runs(
        args.run_a, args.run_b, label_a=args.label_a, label_b=args.label_b
    )
    OutputWriter().line(report.render())
    return 0 if report.is_identical else 1


def build_report_parser() -> argparse.ArgumentParser:
    from repro.obs.scenarios import SCENARIOS

    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Summarize a run: span counts, utilization, critical "
        "path, counters and per-subsystem wall-clock attribution.",
    )
    parser.add_argument(
        "scenario",
        nargs="?",
        choices=sorted(SCENARIOS),
        help="scenario to run and report on (or use --run-dir)",
    )
    parser.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="report on a streamed run directory instead of running a scenario",
    )
    parser.add_argument(
        "--no-wallclock",
        action="store_true",
        help="omit the (nondeterministic) wall-clock section so the "
        "report is byte-identical across same-seed reruns",
    )
    parser.add_argument(
        "--md",
        default=None,
        metavar="FILE",
        help="also write the report as markdown",
    )
    parser.add_argument(
        "--horizon", type=float, default=120.0, help="simulated seconds (default 120)"
    )
    parser.add_argument("--seed", type=int, default=0, help="scenario seed")
    return parser


def report_main(argv: list[str]) -> int:
    from repro.obs.report import report_run_dir, report_scenario

    parser = build_report_parser()
    args = parser.parse_args(argv)
    if (args.scenario is None) == (args.run_dir is None):
        parser.error("give exactly one of: a scenario name, or --run-dir DIR")
    if args.run_dir is not None:
        report = report_run_dir(args.run_dir, wallclock=not args.no_wallclock)
    else:
        report = report_scenario(
            args.scenario,
            seed=args.seed,
            horizon=args.horizon,
            wallclock=not args.no_wallclock,
        )
    out = OutputWriter()
    out.line(report.render())
    if args.md is not None:
        from pathlib import Path

        Path(args.md).write_text(report.render_markdown())
        out.line(f"markdown report: {args.md}")
    return 0


def build_experiment_parser() -> argparse.ArgumentParser:
    from repro.experiments.registry import EXPERIMENT_REGISTRY

    parser = argparse.ArgumentParser(
        prog="repro experiment",
        description="Run a registered table/figure experiment.",
    )
    parser.add_argument(
        "name",
        nargs="?",
        choices=sorted(EXPERIMENT_REGISTRY),
        help="experiment to run (omit with --list to enumerate)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered experiments"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the experiment's default seed (seeded experiments only)",
    )
    parser.add_argument(
        "--out",
        default="results",
        help="directory for the archived table + manifest (default results/)",
    )
    parser.add_argument(
        "--no-persist",
        action="store_true",
        help="print the table without writing the results archive",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="print only the result table (no archive chatter; also "
        "silences the deprecated-alias warning)",
    )
    _add_backend_argument(parser)
    return parser


def experiment_main(argv: list[str]) -> int:
    from repro.api import Client
    from repro.experiments.registry import EXPERIMENT_REGISTRY

    args = build_experiment_parser().parse_args(argv)
    _apply_backend(args)
    out = OutputWriter()
    if args.list or args.name is None:
        width = max(len(name) for name in EXPERIMENT_REGISTRY)
        for name in sorted(EXPERIMENT_REGISTRY):
            spec = EXPERIMENT_REGISTRY[name]
            seed = "-" if spec.seed is None else str(spec.seed)
            out.line(f"{name.ljust(width)}  seed={seed:4s} {spec.description}")
        return 0
    with Client() as client:
        result = _run_job(client, args.name, seed=args.seed)
    out.line(result.render())
    if not args.no_persist:
        path = result.persist(args.out)
        if not args.quiet:
            out.line(f"archived {path}")
    return 0


def build_faults_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro faults",
        description="Fault-injection resilience sweep: job success rate, "
        "goodput and makespan inflation vs. fault rate, with and without "
        "checkpoint/restart (see docs/FAULTS.md).",
    )
    parser.add_argument("--seed", type=int, default=1, help="sweep seed (default 1)")
    parser.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=None,
        metavar="R",
        help="fault rates in faults per 1000 simulated seconds "
        "(a fault-free baseline is always prepended)",
    )
    parser.add_argument(
        "--n-jobs", type=int, default=6, help="jobs per stream (default 6)"
    )
    parser.add_argument(
        "--iterations", type=int, default=40, help="app iterations per job"
    )
    parser.add_argument(
        "--horizon",
        type=float,
        default=600.0,
        help="fault-schedule horizon in simulated seconds (default 600)",
    )
    parser.add_argument(
        "--out",
        default="results",
        help="directory for the archived table + manifest (default results/)",
    )
    parser.add_argument(
        "--no-persist",
        action="store_true",
        help="print the table without writing the results archive",
    )
    return parser


def faults_main(argv: list[str]) -> int:
    from repro.api import Client

    args = build_faults_parser().parse_args(argv)
    overrides: dict[str, object] = {
        "n_jobs": args.n_jobs,
        "iterations": args.iterations,
        "horizon": args.horizon,
    }
    if args.rates is not None:
        overrides["rates"] = tuple(args.rates)
    with Client() as client:
        result = _run_job(client, "ext_faults", seed=args.seed, overrides=overrides)
    out = OutputWriter()
    out.line(result.render())
    if not args.no_persist:
        path = result.persist(args.out)
        out.line(f"archived {path}")
    return 0


def _lint_main(argv: list[str]) -> int:
    from repro.lint.cli import main as lint_main

    return lint_main(argv)


def _check_main(argv: list[str]) -> int:
    from repro.check.cli import check_main

    return check_main(argv)


def _trace_gen_main(argv: list[str]) -> int:
    from repro.traces.cli import trace_gen_main

    return trace_gen_main(argv)


def _submit_main(argv: list[str]) -> int:
    from repro.service.cli import submit_main

    return submit_main(argv)


def _serve_main(argv: list[str]) -> int:
    from repro.service.cli import serve_main

    return serve_main(argv)


#: first-class subcommands; anything else is an anomaly name, or a bare
#: experiment name kept as a deprecated alias of ``repro experiment``
SUBCOMMANDS = {
    "lint": _lint_main,
    "varbench": varbench_main,
    "trace": trace_main,
    "trace-gen": _trace_gen_main,
    "diff": diff_main,
    "report": report_main,
    "experiment": experiment_main,
    "faults": faults_main,
    "check": _check_main,
    "submit": _submit_main,
    "serve": _serve_main,
}


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in SUBCOMMANDS:
        return SUBCOMMANDS[argv[0]](argv[1:])
    if argv and argv[0] not in ANOMALY_REGISTRY:
        from repro.experiments.registry import EXPERIMENT_REGISTRY

        if argv[0].lower() in EXPERIMENT_REGISTRY:
            # The deprecation nudge honours --quiet (and stays off the
            # result stream: it goes to stderr via OutputWriter, so piped
            # stdout never sees it).
            if "--quiet" not in argv and "-q" not in argv:
                OutputWriter(stream=sys.stderr).line(
                    f"warning: `repro {argv[0]}` is deprecated; "
                    f"use `repro experiment {argv[0]}`"
                )
            return experiment_main(argv)
    # Split our options from the anomaly's HPAS-style knobs: everything the
    # parser does not know is forwarded to parse_cli.
    parser = build_parser()
    args, anomaly_argv = parser.parse_known_args(argv)

    anomaly = parse_cli([args.anomaly] + anomaly_argv)
    cluster = Cluster.voltrino(num_nodes=args.nodes)
    service = MetricService(cluster)
    service.attach(end=args.horizon)

    obs = None
    if args.trace is not None:
        from repro.obs import Observability

        obs = Observability(cluster, service=service).attach()

    job = None
    if args.with_app is not None:
        app = get_app(args.with_app).scaled(iterations=max(5, int(args.horizon / 4)))
        job = AppJob(
            app,
            cluster,
            nodes=list(range(min(4, args.nodes))),
            ranks_per_node=4,
            seed=1,
        )
        job.launch()

    proc = anomaly.launch(cluster, node=args.node, core=args.core, start=1.0)
    cluster.sim.run(until=args.horizon)

    out = OutputWriter()
    out.line(
        f"ran {anomaly.name} on {args.node}:c{args.core} "
        f"for {cluster.sim.now - 1.0:.0f}s (state: {proc.state.value})"
    )
    if job is not None:
        done = sum(p.state.terminal for p in job.procs)
        out.line(f"co-ran {args.with_app}: {done}/{job.n_ranks} ranks finished")
    if args.report:
        out.line()
        out.table(
            header=("metric", "mean", "max"),
            rows=(
                (
                    metric,
                    f"{np.mean(service.series(args.node, metric)):.4g}",
                    f"{np.max(service.series(args.node, metric)):.4g}",
                )
                for metric in SUMMARY_METRICS
            ),
            widths=(45, 12, 12),
            align=">",
        )
    if args.profile:
        out.line()
        out.lines(cluster.sim.stats.describe())
    if obs is not None:
        path = obs.write_trace(args.trace)
        out.line(f"trace written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
