"""Deterministic retry policies (exponential backoff + jitter).

Real resilience stacks back off exponentially with jitter to avoid
retry storms.  Jitter is normally wall-clock entropy — here it comes
from a :func:`~repro.sim.rng.spawn_rng` child stream keyed by the
caller's scope, so the full backoff sequence is a pure function of
``(policy, seed, scope)`` and reruns are byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import FaultError
from repro.sim.rng import spawn_rng


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with multiplicative jitter and a deadline.

    Attempt ``i`` (0-based) waits ``min(max_delay, base_delay *
    factor**i) * (1 + jitter * u_i)`` seconds, ``u_i`` uniform in
    ``[0, 1)`` from the scoped RNG stream.  ``deadline`` bounds the total
    simulated time a caller may keep retrying (measured by the caller
    from its first attempt); ``max_retries`` bounds the attempt count.
    """

    base_delay: float = 1.0
    factor: float = 2.0
    jitter: float = 0.25
    max_delay: float = 120.0
    max_retries: int = 5
    deadline: float = math.inf

    def __post_init__(self) -> None:
        if self.base_delay <= 0 or self.max_delay <= 0:
            raise FaultError("retry delays must be positive")
        if self.factor < 1.0:
            raise FaultError("backoff factor must be >= 1")
        if self.jitter < 0:
            raise FaultError("jitter must be >= 0")
        if self.max_retries < 0:
            raise FaultError("max_retries must be >= 0")
        if self.deadline <= 0:
            raise FaultError("deadline must be positive")

    def delays(self, seed: int | None, scope: str) -> list[float]:
        """The full backoff sequence for one retrying entity.

        Deterministic per ``(seed, scope)``: the same managed job in the
        same run always sees the same jittered delays, independent of
        every other RNG draw in the simulation.
        """
        rng = spawn_rng(seed, f"retry:{scope}")
        out = []
        for i in range(self.max_retries):
            base = min(self.max_delay, self.base_delay * self.factor**i)
            out.append(base * (1.0 + self.jitter * float(rng.random())))
        return out
