"""The fault model catalogue.

Each :class:`Fault` is a reversible mutation of cluster state: ``apply``
imposes the failure at the event's start, ``revert`` restores health when
the event's duration elapses.  Models mutate the cluster's
:class:`~repro.faults.state.FaultState` (and kill processes / degrade
filesystems directly); the rate model picks the factors up at the next
resolve, which the :class:`~repro.faults.injector.FaultInjector` forces
via :meth:`~repro.sim.engine.Simulator.invalidate_rates`.

The catalogue mirrors the failure classes FINJ injects on real systems:

===================  ====================================================
``node_crash``       node dies; every process on it is killed
``node_hang``        node freezes (speed factor 0) but processes survive
``slowdown``         transient degradation (thermal throttle, sick DIMM)
``link_down``        NIC/link outage: flows to/from the node get nothing
``meta_brownout``    metadata service degraded to a fraction of capacity
``ost_failure``      storage targets fail; stripe bandwidth shrinks
``oom_kill``         the kernel OOM killer reaps the largest consumer
===================  ====================================================
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.errors import FaultError
from repro.storage.filesystem import SharedFilesystem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster


def _state(cluster: "Cluster"):
    if cluster.faults is None:
        raise FaultError(
            "cluster has no fault state attached (use FaultInjector)"
        )
    return cluster.faults


def _filesystem(cluster: "Cluster", name: str | None) -> SharedFilesystem:
    if name is not None:
        return cluster.filesystem(name)
    if len(cluster.filesystems) == 1:
        return next(iter(cluster.filesystems.values()))
    known = ", ".join(sorted(cluster.filesystems)) or "none"
    raise FaultError(
        f"filesystem fault needs an explicit fs name (filesystems: {known})"
    )


class Fault(ABC):
    """One reversible failure mode."""

    name: str = "fault"

    @abstractmethod
    def apply(self, cluster: "Cluster", node: str) -> None:
        """Impose the failure on ``node`` (or the subsystem it names)."""

    @abstractmethod
    def revert(self, cluster: "Cluster", node: str) -> None:
        """Restore health after the fault window closes."""

    def describe(self) -> dict[str, object]:
        """Deterministic knob snapshot for spans and manifests."""
        return {}


class NodeCrash(Fault):
    """The node dies: every process on it is killed, and the scheduler
    treats the node as unavailable until the fault window closes."""

    name = "node_crash"

    def apply(self, cluster: "Cluster", node: str) -> None:
        sim = cluster.sim
        _state(cluster).mark_down(node, at=sim.now)
        for proc in sim.processes:
            if proc.node == node and not proc.state.terminal:
                sim.kill(proc, reason="node-crash")

    def revert(self, cluster: "Cluster", node: str) -> None:
        _state(cluster).mark_up(node, at=cluster.sim.now)


class NodeHang(Fault):
    """The node freezes (hung kernel, stuck daemon): processes survive
    but make no progress until the hang clears."""

    name = "node_hang"

    def apply(self, cluster: "Cluster", node: str) -> None:
        _state(cluster).set_speed_factor(node, 0.0)

    def revert(self, cluster: "Cluster", node: str) -> None:
        _state(cluster).clear_speed_factor(node)


class TransientSlowdown(Fault):
    """Transient degradation: every process on the node runs at
    ``factor`` of its contention-priced speed."""

    name = "slowdown"

    def __init__(self, factor: float = 0.35) -> None:
        if not 0.0 < factor < 1.0:
            raise FaultError(f"slowdown factor must be in (0, 1), got {factor}")
        self.factor = factor

    def apply(self, cluster: "Cluster", node: str) -> None:
        _state(cluster).set_speed_factor(node, self.factor)

    def revert(self, cluster: "Cluster", node: str) -> None:
        _state(cluster).clear_speed_factor(node)

    def describe(self) -> dict[str, object]:
        return {"factor": self.factor}


class LinkDown(Fault):
    """NIC/link outage: flows entering or leaving the node are granted
    ``factor`` of their allocation (0 = complete outage)."""

    name = "link_down"

    def __init__(self, factor: float = 0.0) -> None:
        if not 0.0 <= factor < 1.0:
            raise FaultError(f"link factor must be in [0, 1), got {factor}")
        self.factor = factor

    def apply(self, cluster: "Cluster", node: str) -> None:
        _state(cluster).set_nic_factor(node, self.factor)

    def revert(self, cluster: "Cluster", node: str) -> None:
        _state(cluster).clear_nic_factor(node)

    def describe(self) -> dict[str, object]:
        return {"factor": self.factor}


class MetadataBrownout(Fault):
    """The metadata service browns out to ``factor`` of its capacity
    (overloaded MDS, failed-over HA pair running degraded)."""

    name = "meta_brownout"

    def __init__(self, factor: float = 0.1, fs: str | None = None) -> None:
        if not 0.0 <= factor < 1.0:
            raise FaultError(f"brownout factor must be in [0, 1), got {factor}")
        self.factor = factor
        self.fs = fs

    def apply(self, cluster: "Cluster", node: str) -> None:
        _filesystem(cluster, self.fs).set_meta_health(self.factor)

    def revert(self, cluster: "Cluster", node: str) -> None:
        _filesystem(cluster, self.fs).set_meta_health(1.0)

    def describe(self) -> dict[str, object]:
        return {"factor": self.factor, "fs": self.fs}


class OstFailure(Fault):
    """``count`` object storage targets fail: aggregate stripe bandwidth
    shrinks proportionally instead of the filesystem crashing."""

    name = "ost_failure"

    def __init__(self, count: int = 1, fs: str | None = None) -> None:
        if count < 1:
            raise FaultError(f"ost failure count must be >= 1, got {count}")
        self.count = count
        self.fs = fs
        self._failed: list[int] = []

    def apply(self, cluster: "Cluster", node: str) -> None:
        fs = _filesystem(cluster, self.fs)
        healthy = [i for i in range(fs.n_osts) if i not in fs.failed_osts]
        for ost in healthy[: self.count]:
            fs.fail_ost(ost)
            self._failed.append(ost)

    def revert(self, cluster: "Cluster", node: str) -> None:
        fs = _filesystem(cluster, self.fs)
        while self._failed:
            fs.restore_ost(self._failed.pop())

    def describe(self) -> dict[str, object]:
        return {"count": self.count, "fs": self.fs}


class OomKill(Fault):
    """The kernel OOM killer fires spuriously: the node's largest memory
    consumer is killed (Linux badness approximated by resident size)."""

    name = "oom_kill"

    def apply(self, cluster: "Cluster", node: str) -> None:
        victim = cluster.node(node).memory.largest_consumer()
        if victim is None:
            return
        sim = cluster.sim
        sim.kill(sim.process(victim), reason="oom-killed")

    def revert(self, cluster: "Cluster", node: str) -> None:
        pass  # a kill has no state to restore


FAULT_REGISTRY: dict[str, type[Fault]] = {
    cls.name: cls
    for cls in (
        NodeCrash,
        NodeHang,
        TransientSlowdown,
        LinkDown,
        MetadataBrownout,
        OstFailure,
        OomKill,
    )
}


def make_fault(name: str, **knobs: object) -> Fault:
    """Instantiate a registered fault by name (case-insensitive)."""
    for key, cls in FAULT_REGISTRY.items():
        if key.lower() == name.lower():
            return cls(**knobs)  # type: ignore[arg-type]
    known = ", ".join(sorted(FAULT_REGISTRY))
    raise FaultError(f"unknown fault {name!r} (known: {known})")
