"""Shared fault state consulted by the rate model and the scheduler.

A :class:`FaultState` is attached to a cluster (as ``cluster.faults``) by
the :class:`~repro.faults.injector.FaultInjector`.  It is deliberately
dumb: fault *models* mutate it, the rate model and scheduler *read* it.
Every reader is guarded by a ``cluster.faults is None`` check, so an
un-faulted simulation pays nothing beyond the attribute read — the same
pay-for-what-you-use pattern as ``sim.obs``.
"""

from __future__ import annotations

from repro.errors import FaultError


class FaultState:
    """Current fault-induced degradation factors, per node.

    ``speed_factor`` multiplies every process speed on the node (0.0 = a
    hung node, 0.35 = a transient slowdown); ``nic_factor`` multiplies the
    grant ratio of flows entering/leaving the node (0.0 = link down);
    ``is_down`` marks a crashed node the scheduler must avoid.
    """

    def __init__(self) -> None:
        self._speed: dict[str, float] = {}
        self._nic: dict[str, float] = {}
        self._down: set[str] = set()
        #: (node, start, end) records of crash windows; consulted by the
        #: anomaly injector to prune ground-truth labels on dead nodes
        self._crash_log: list[tuple[str, float, float]] = []

    # -- compute degradation -------------------------------------------------

    def set_speed_factor(self, node: str, factor: float) -> None:
        if factor < 0.0 or factor > 1.0:
            raise FaultError(f"speed factor must be in [0, 1], got {factor}")
        self._speed[node] = factor

    def clear_speed_factor(self, node: str) -> None:
        self._speed.pop(node, None)

    def speed_factor(self, node: str) -> float:
        return self._speed.get(node, 1.0)

    # -- network degradation -------------------------------------------------

    def set_nic_factor(self, node: str, factor: float) -> None:
        if factor < 0.0 or factor > 1.0:
            raise FaultError(f"nic factor must be in [0, 1], got {factor}")
        self._nic[node] = factor

    def clear_nic_factor(self, node: str) -> None:
        self._nic.pop(node, None)

    def nic_factor(self, node: str) -> float:
        return self._nic.get(node, 1.0)

    # -- node liveness -------------------------------------------------------

    def mark_down(self, node: str, at: float = 0.0) -> None:
        self._down.add(node)
        self._crash_log.append((node, at, float("inf")))

    def mark_up(self, node: str, at: float = 0.0) -> None:
        self._down.discard(node)
        for i, (name, start, end) in enumerate(self._crash_log):
            if name == node and end == float("inf"):
                self._crash_log[i] = (name, start, at)

    def is_down(self, node: str) -> bool:
        return node in self._down

    @property
    def down_nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._down))

    def crashed_between(self, node: str, start: float, end: float) -> bool:
        """Whether ``node`` was crashed at any point during ``[start, end)``."""
        for name, t0, t1 in self._crash_log:
            if name == node and t0 < end and start < t1:
                return True
        return False

    # -- summary -------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether any degradation factor or crash is currently in force."""
        return bool(self._speed or self._nic or self._down)

    def describe(self) -> dict[str, object]:
        """Deterministic snapshot for manifests and traces."""
        return {
            "down": list(self.down_nodes),
            "slowed": {n: self._speed[n] for n in sorted(self._speed)},
            "nic": {n: self._nic[n] for n in sorted(self._nic)},
        }

    def check_invariants(self) -> list[str]:
        """Internal-consistency audit used by :mod:`repro.check`.

        Returns a list of human-readable inconsistency descriptions
        (empty when the state is coherent).  The setters already reject
        out-of-range factors, so a non-empty result means some code path
        mutated the private dicts directly — exactly the regression the
        runtime checker exists to catch.
        """
        problems: list[str] = []
        for label, factors in (("speed", self._speed), ("nic", self._nic)):
            for node in sorted(factors):
                factor = factors[node]
                if not 0.0 <= factor <= 1.0:
                    problems.append(
                        f"{label} factor for {node!r} out of [0, 1]: {factor!r}"
                    )
        open_windows = {
            name for name, _, end in self._crash_log if end == float("inf")
        }
        for node in sorted(self._down - open_windows):
            problems.append(f"node {node!r} is down but has no open crash window")
        for node in sorted(open_windows - self._down):
            problems.append(f"node {node!r} has an open crash window but is not down")
        for name, start, end in self._crash_log:
            if end < start:
                problems.append(
                    f"crash window for {name!r} ends before it starts: "
                    f"[{start}, {end}]"
                )
        return problems
