"""Fault schedules: explicit event lists and seeded generators.

FINJ drives resilience campaigns from a schedule file of
``(time, target, fault, duration)`` records.  :class:`FaultSchedule` is
the in-simulation analogue: build one explicitly with :meth:`add`, or
draw a random-but-reproducible campaign with :meth:`generate` — the
inter-arrival process, node choice, fault kind and duration all come
from one :func:`~repro.sim.rng.spawn_rng` child stream, so a schedule is
a pure function of ``(seed, scope)`` and identical across machines and
worker layouts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import FaultError
from repro.faults.models import Fault, make_fault
from repro.sim.rng import spawn_rng

#: default kind mix for generated campaigns (uniform over these)
DEFAULT_KINDS = ("node_crash", "node_hang", "slowdown", "link_down")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault window.

    ``duration=math.inf`` applies the fault permanently (never reverted).
    """

    time: float
    node: str
    fault: Fault = field(compare=False)
    duration: float = math.inf

    def __post_init__(self) -> None:
        if self.time < 0:
            raise FaultError("fault event time must be >= 0")
        if self.duration <= 0:
            raise FaultError("fault event duration must be positive")


class FaultSchedule:
    """An ordered fault campaign for one simulation run."""

    def __init__(self, events: list[FaultEvent] | None = None) -> None:
        self._events: list[FaultEvent] = list(events) if events else []

    def add(
        self,
        time: float,
        node: str,
        fault: Fault | str,
        duration: float = math.inf,
        **knobs: object,
    ) -> FaultEvent:
        """Append one event; ``fault`` may be a name from the registry."""
        if isinstance(fault, str):
            fault = make_fault(fault, **knobs)
        elif knobs:
            raise FaultError("knobs only apply when fault is given by name")
        event = FaultEvent(time=time, node=node, fault=fault, duration=duration)
        self._events.append(event)
        return event

    @property
    def events(self) -> list[FaultEvent]:
        """Events sorted by (time, node, fault name) — deterministic."""
        return sorted(
            self._events, key=lambda e: (e.time, e.node, e.fault.name)
        )

    def __len__(self) -> int:
        return len(self._events)

    @classmethod
    def generate(
        cls,
        seed: int | None,
        horizon: float,
        nodes: list[str],
        rate: float,
        kinds: tuple[str, ...] = DEFAULT_KINDS,
        min_duration: float = 30.0,
        max_duration: float = 300.0,
        scope: str = "faults",
    ) -> "FaultSchedule":
        """Draw a Poisson fault campaign over ``[0, horizon]``.

        ``rate`` is the expected fault arrivals per simulated second
        across the whole system (exponential inter-arrivals); each
        arrival picks a uniform node, a uniform kind from ``kinds``, and
        a uniform duration in ``[min_duration, max_duration]``.  The
        stream is ``spawn_rng(seed, f"fault-schedule:{scope}")``, so two
        campaigns with the same seed and scope are identical event for
        event regardless of anything else the run draws.
        """
        if horizon <= 0:
            raise FaultError("horizon must be positive")
        if rate < 0:
            raise FaultError("fault rate must be >= 0")
        if not nodes:
            raise FaultError("need at least one target node")
        if not kinds:
            raise FaultError("need at least one fault kind")
        if not 0 < min_duration <= max_duration:
            raise FaultError("need 0 < min_duration <= max_duration")
        schedule = cls()
        if rate == 0:
            return schedule
        rng = spawn_rng(seed, f"fault-schedule:{scope}")
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= horizon:
                break
            node = nodes[int(rng.integers(0, len(nodes)))]
            kind = kinds[int(rng.integers(0, len(kinds)))]
            duration = float(rng.uniform(min_duration, max_duration))
            schedule.add(t, node, make_fault(kind), duration=duration)
        return schedule
