"""Deploys a fault schedule onto a cluster.

The :class:`FaultInjector` mirrors :class:`~repro.core.AnomalyInjector`:
it owns the campaign records, schedules apply/revert actions on the
simulator, and emits one obs span per fault window (category
``"faults"``) plus a ``recovered`` instant when the window closes.  Both
injectors compose on one cluster — a fault campaign can crash the node an
anomaly campaign is stressing, which is exactly the ground-truth
composition :meth:`~repro.core.AnomalyInjector.active_labels` accounts
for via :meth:`FaultInjector.crashed_between`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.errors import FaultError
from repro.faults.models import Fault
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.faults.state import FaultState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster


class FaultInjector:
    """Schedules a fault campaign onto a cluster.

    Construction attaches a fresh :class:`FaultState` as
    ``cluster.faults`` (one injector per cluster); :meth:`detach`
    removes it, restoring the zero-overhead un-faulted fast path.
    """

    def __init__(self, cluster: "Cluster") -> None:
        if cluster.faults is not None:
            raise FaultError("cluster already has a fault injector attached")
        self.cluster = cluster
        self.state = FaultState()
        cluster.faults = self.state
        self.schedule = FaultSchedule()
        self._deployed: set[int] = set()

    # -- campaign construction ----------------------------------------------

    def add(
        self,
        time: float,
        node: str,
        fault: Fault | str,
        duration: float = math.inf,
        **knobs: object,
    ) -> FaultEvent:
        """Queue one fault event (call :meth:`deploy` to schedule them)."""
        return self.schedule.add(time, node, fault, duration=duration, **knobs)

    def extend(self, schedule: FaultSchedule) -> None:
        """Queue every event of a pre-built schedule."""
        for event in schedule.events:
            self.schedule.add(
                event.time, event.node, event.fault, duration=event.duration
            )

    def inject(
        self,
        fault: Fault | str,
        node: str,
        start: float = 0.0,
        duration: float = math.inf,
        **knobs: object,
    ) -> FaultEvent:
        """Convenience: queue and immediately deploy one fault."""
        event = self.add(start, node, fault, duration=duration, **knobs)
        self._deploy_one(event)
        return event

    def deploy(self) -> int:
        """Schedule every queued event not yet deployed; returns the count."""
        n = 0
        for event in self.schedule.events:
            if id(event) not in self._deployed:
                self._deploy_one(event)
                n += 1
        return n

    # -- scheduling ----------------------------------------------------------

    def _deploy_one(self, event: FaultEvent) -> None:
        self._deployed.add(id(event))
        sim = self.cluster.sim
        sim.schedule(event.time, lambda: self._apply(event))

    def _apply(self, event: FaultEvent) -> None:
        sim = self.cluster.sim
        span = None
        if sim.obs is not None:
            span = sim.obs.begin(
                "faults",
                event.fault.name,
                ("cluster", "faults"),
                args={
                    "node": event.node,
                    "duration": event.duration,
                    **event.fault.describe(),
                },
            )
        event.fault.apply(self.cluster, event.node)
        sim.invalidate_rates()
        if math.isfinite(event.duration):
            sim.call_in(event.duration, lambda: self._revert(event, span))

    def _revert(self, event: FaultEvent, span) -> None:
        sim = self.cluster.sim
        event.fault.revert(self.cluster, event.node)
        sim.invalidate_rates()
        if sim.obs is not None:
            if span is not None and span.end is None:
                sim.obs.end(span)
            sim.obs.instant(
                "faults",
                f"recovered:{event.fault.name}",
                ("cluster", "faults"),
                args={"node": event.node},
            )

    # -- queries -------------------------------------------------------------

    def fault_labels(self, time: float) -> list[str]:
        """Names of faults whose window covers ``time`` (ground truth)."""
        labels = []
        for event in self.schedule.events:
            if event.time <= time < event.time + event.duration:
                labels.append(event.fault.name)
        return labels

    def crashed_between(self, node: str, start: float, end: float) -> bool:
        """Whether ``node`` was crashed at any point in ``[start, end)``."""
        return self.state.crashed_between(node, start, end)

    def detach(self) -> None:
        """Remove the fault state from the cluster (campaign records kept)."""
        if self.cluster.faults is not self.state:
            raise FaultError("injector is not attached to this cluster")
        self.cluster.faults = None
