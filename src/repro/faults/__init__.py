"""Deterministic fault injection & resilience (FINJ-style).

HPAS reproduces *performance* anomalies; production clusters also suffer
hard faults — crashed nodes, hung daemons, dead links, filesystem
brownouts.  This package layers a fault campaign over the simulated
substrate (Netti et al.'s FINJ workload+fault-schedule pattern) and gives
the rest of the stack the resilience mechanisms real systems react with:
retry with exponential backoff, checkpoint/restart, scheduler requeue,
MPI collective timeouts, and graceful filesystem degradation.

Entry points:

:class:`FaultSchedule`
    Explicit or seeded-generated ``(time, node, fault, duration)`` events.
:class:`FaultInjector`
    Deploys a schedule onto a cluster; every fault window becomes an obs
    span and composes freely with :class:`~repro.core.AnomalyInjector`
    campaigns.
:class:`RetryPolicy`
    Deterministic exponential backoff + jitter from the sim RNG.

See docs/FAULTS.md for the model catalogue and knob reference.
"""

from repro.faults.injector import FaultInjector
from repro.faults.models import (
    FAULT_REGISTRY,
    Fault,
    LinkDown,
    MetadataBrownout,
    NodeCrash,
    NodeHang,
    OomKill,
    OstFailure,
    TransientSlowdown,
    make_fault,
)
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.faults.state import FaultState

__all__ = [
    "FAULT_REGISTRY",
    "Fault",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FaultState",
    "LinkDown",
    "MetadataBrownout",
    "NodeCrash",
    "NodeHang",
    "OomKill",
    "OstFailure",
    "RetryPolicy",
    "TransientSlowdown",
    "make_fault",
]
