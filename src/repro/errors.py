"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch package failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class ResourceError(ReproError):
    """A resource request could not be satisfied (e.g. unknown resource)."""


class ProcessCrash(ReproError):
    """A simulated process died abnormally.

    The engine catches this class when it escapes a process body and
    records the process as KILLED instead of aborting the simulation —
    the simulated analogue of a crashing application.
    """


class OutOfMemoryError(ResourceError, ProcessCrash):
    """A node ran out of physical memory; the allocating process is killed.

    Mirrors the behaviour reported in the paper: Voltrino has no swap and
    processes are killed when the node's memory is exhausted.
    """

    def __init__(self, node: str, requested: float, available: float):
        self.node = node
        self.requested = requested
        self.available = available
        super().__init__(
            f"node {node!r}: requested {requested:.0f} B "
            f"with only {available:.0f} B free (no swap; process killed)"
        )


class ProcessKilled(ReproError):
    """Raised inside a simulated process when the engine terminates it."""


class SchedulingError(ReproError):
    """A job could not be scheduled/allocated."""


class FaultError(ReproError):
    """Invalid fault-injection configuration or usage (repro.faults)."""


class FaultInterrupt(ProcessCrash):
    """Delivered into a simulated process when a fault terminates it."""


class MPITimeoutError(ProcessCrash):
    """A collective operation exceeded its timeout (abort semantics)."""


class AnomalyError(ReproError):
    """Invalid anomaly configuration or usage."""


class ObservabilityError(ReproError):
    """Invalid use of the span/trace/manifest layer (repro.obs)."""


class CheckError(ReproError):
    """A runtime invariant or differential oracle was violated (repro.check)."""


class TraceError(ReproError):
    """Invalid use of the trace layer (repro.traces)."""


class TraceFormatError(TraceError):
    """A trace file or record violates the canonical JSONL schema."""


class ServiceError(ReproError):
    """Invalid use of the job-service layer (repro.service / repro.api)."""


class QuotaError(ServiceError):
    """A client exceeded its per-client active-job quota."""


class JobNotFound(ServiceError):
    """The referenced job id is unknown to the queue."""
