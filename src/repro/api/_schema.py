"""Stable JSON schemas for the service's wire records (internal).

These document — and pin, via tests — the JSON forms that cross process
or filesystem boundaries: the normalized job request
(:meth:`repro.experiments.registry.JobRequest.to_json`) and the queue's
job record (:meth:`repro.service.JobRecord.to_json`, also the ``job``
field of every ``submit`` journal entry).  Consumers outside this
codebase (dashboards tailing the journal, CI scripts inspecting
``record.json`` store entries) may rely on every listed property being
present with the listed type; additions are backwards-compatible,
removals and renames are not.
"""

from __future__ import annotations

#: JSON schema of a normalized job request (``JobRequest.to_json``).
JOB_REQUEST_SCHEMA: dict[str, object] = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "JobRequest",
    "type": "object",
    "properties": {
        "name": {"type": "string"},
        "result_name": {"type": "string"},
        "seed": {"type": ["integer", "null"]},
        "overrides": {"type": "object"},
        "extras": {"type": "object"},
    },
    "required": ["name", "result_name", "seed", "overrides"],
    "additionalProperties": True,
}

#: JSON schema of a queue job record (``JobRecord.to_json``).
JOB_RECORD_SCHEMA: dict[str, object] = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "JobRecord",
    "type": "object",
    "properties": {
        "job_id": {"type": "string"},
        "request": JOB_REQUEST_SCHEMA,
        "fingerprint": {"type": "string"},
        "priority": {"type": "integer"},
        "client": {"type": "string"},
        "seq": {"type": "integer"},
        "state": {
            "type": "string",
            "enum": ["queued", "running", "done", "failed", "cancelled"],
        },
        "attempt": {"type": "integer"},
        "cached": {"type": "boolean"},
        "reason": {"type": "string"},
    },
    "required": [
        "job_id",
        "request",
        "fingerprint",
        "priority",
        "client",
        "seq",
        "state",
        "attempt",
        "cached",
        "reason",
    ],
    "additionalProperties": True,
}
