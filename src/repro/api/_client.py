"""The unified client façade over the job service (internal).

:class:`Client` is the one front door for running experiments — the
``repro experiment`` / ``repro varbench`` / ``repro faults`` CLIs, the
new ``repro submit`` / ``repro serve`` commands, and in-process callers
all go through it.  It composes the :mod:`repro.service` pieces (queue,
store, pool, telemetry) behind six verbs::

    with Client() as client:                  # ephemeral state
        handle = client.submit("fig8")        # -> JobHandle
        status = client.status(handle.job_id) # -> JobStatus
        status = client.wait(handle.job_id)   # drive jobs to completion
        result = client.result(handle.job_id) # -> JobResult (artefacts)
        client.stream(some_obs_sink)          # incremental telemetry
        client.cancel(other.job_id)           # queued jobs only

The client is synchronous: :meth:`wait` *drives* the worker pool (there
is no background thread), so with the default inline pool a
``submit``/``wait`` pair behaves exactly like calling the experiment
runner directly — same bytes, same exceptions surfaced as failed jobs —
while a persistent ``state_dir`` adds the journal, the quota ledger and
the content-addressed cache underneath unchanged calling code.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from repro.errors import ServiceError
from repro.experiments.registry import ExperimentSpec, ResultArtifacts, persist_artifacts
from repro.service import (
    JobQueue,
    JobRecord,
    ResultStore,
    ServiceTelemetry,
    WorkerPool,
    fingerprint_request,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.stream import ObsSink

#: default client identity for submissions that do not name one
DEFAULT_CLIENT = "local"


@dataclass(frozen=True)
class JobStatus:
    """A point-in-time snapshot of one job (plain data, safe to keep)."""

    job_id: str
    name: str
    state: str
    fingerprint: str
    priority: int
    client: str
    attempt: int
    cached: bool
    reason: str

    @classmethod
    def from_record(cls, record: JobRecord) -> "JobStatus":
        return cls(
            job_id=record.job_id,
            name=record.request.name,
            state=record.state.value,
            fingerprint=record.fingerprint,
            priority=record.priority,
            client=record.client,
            attempt=record.attempt,
            cached=record.cached,
            reason=record.reason,
        )

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed", "cancelled")


@dataclass(frozen=True)
class JobResult:
    """A finished job's artefacts (byte-identical fresh or cached)."""

    job_id: str
    name: str
    fingerprint: str
    cached: bool
    artifacts: ResultArtifacts

    @property
    def text(self) -> str:
        """The rendered result table, exactly as persisted (with newline)."""
        return self.artifacts.text

    def render(self) -> str:
        """The table as :meth:`render` on the result object returned it."""
        return self.artifacts.text[:-1]

    def persist(self, directory: str | Path) -> Path:
        """Archive into ``directory`` exactly as ``repro experiment`` does."""
        return persist_artifacts(self.artifacts, directory)


@dataclass(frozen=True)
class JobHandle:
    """A submitted job: its identity plus conveniences bound to the client."""

    client: "Client"
    job_id: str
    fingerprint: str

    def status(self) -> JobStatus:
        return self.client.status(self.job_id)

    def wait(self) -> JobStatus:
        return self.client.wait(self.job_id)

    def result(self) -> JobResult:
        return self.client.result(self.job_id)

    def cancel(self) -> JobStatus:
        return self.client.cancel(self.job_id)


class Client:
    """Submit experiments as jobs and collect cached-or-fresh results.

    Parameters
    ----------
    state_dir:
        Service state root (``<dir>/queue`` journal, ``<dir>/store``
        cache).  ``None`` uses an ephemeral temporary directory wiped on
        :meth:`close` — correct for one-shot CLI runs and tests; pass a
        real path to keep the cache and journal across invocations.
    shards:
        Worker processes; ``0`` (default) executes jobs inline in this
        process.
    quota:
        Per-client cap on active jobs, or ``None`` for unlimited.
    timeout:
        Per-job wall-clock limit in seconds (sharded mode only).
    """

    def __init__(
        self,
        state_dir: str | Path | None = None,
        shards: int = 0,
        quota: int | None = None,
        timeout: float | None = None,
    ) -> None:
        self._tmp: tempfile.TemporaryDirectory | None = None
        if state_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-service-")
            state_dir = self._tmp.name
        self.state_dir = Path(state_dir)
        self.telemetry = ServiceTelemetry()
        self.queue = JobQueue(
            self.state_dir / "queue",
            quota=quota,
            on_transition=self.telemetry.on_transition,
        )
        self.store = ResultStore(self.state_dir / "store")
        self.pool = WorkerPool(shards=shards, timeout=timeout)
        self._closed = False

    # -- the façade ----------------------------------------------------------

    def submit(
        self,
        name: str,
        seed: int | None = None,
        overrides: Mapping[str, object] | None = None,
        priority: int = 0,
        client: str = DEFAULT_CLIENT,
    ) -> JobHandle:
        """Normalize, fingerprint and enqueue one experiment invocation.

        Validation happens here (unknown name / knob / misdirected seed
        raise :class:`~repro.errors.ConfigError` immediately); execution
        happens in :meth:`wait`.
        """
        request = ExperimentSpec.from_args(name, seed=seed, overrides=overrides)
        fingerprint = fingerprint_request(request)
        record = self.queue.submit(
            request, fingerprint, priority=priority, client=client
        )
        return JobHandle(self, record.job_id, fingerprint)

    def status(self, job_id: str) -> JobStatus:
        """Current state of one job (:class:`~repro.errors.JobNotFound` if unknown)."""
        return JobStatus.from_record(self.queue.job(job_id))

    def wait(self, job_id: str | None = None) -> JobStatus | None:
        """Drive the pool until ``job_id`` settles (or the queue drains).

        Returns the terminal :class:`JobStatus` — or ``None`` when called
        with no ``job_id`` on an already-empty queue.
        """
        while True:
            if job_id is not None:
                status = self.status(job_id)
                if status.terminal:
                    return status
            elif not self.queue.has_pending:
                return None
            settled = self.pool.run(self.queue, self.store)
            if not settled:
                raise ServiceError(
                    f"no progress draining the queue"
                    + (f" (waiting on {job_id})" if job_id else "")
                )

    def result(self, job_id: str) -> JobResult:
        """Artefacts of a finished job, served from the content store."""
        record = self.queue.job(job_id)
        if record.state.value != "done":
            raise ServiceError(
                f"job {job_id} is {record.state.value}"
                + (f": {record.reason}" if record.reason else "")
            )
        stored = self.store.get(record.fingerprint)
        if stored is None:
            raise ServiceError(
                f"job {job_id} finished but its store entry is gone "
                f"(fingerprint {record.fingerprint[:12]}...)"
            )
        return JobResult(
            job_id=record.job_id,
            name=record.request.name,
            fingerprint=record.fingerprint,
            cached=record.cached,
            artifacts=stored.artifacts,
        )

    def cancel(self, job_id: str) -> JobStatus:
        """Cancel a queued job (running/terminal jobs cannot be cancelled)."""
        return JobStatus.from_record(self.queue.cancel(job_id))

    def stream(self, sink: "ObsSink") -> None:
        """Subscribe ``sink`` to incremental job telemetry (spans + gauges)."""
        self.telemetry.subscribe(sink)

    def stream_to(self, directory: str | Path) -> Path:
        """Stream telemetry into ``directory`` (``trace.jsonl`` + metrics)."""
        return self.telemetry.stream_to(directory)

    def jobs(self) -> tuple[JobStatus, ...]:
        """Every known job, in submission order."""
        return tuple(JobStatus.from_record(j) for j in self.queue.jobs())

    def persist(self, job_id: str, directory: str | Path) -> Path:
        """Archive a finished job's artefacts into ``directory``."""
        return self.result(job_id).persist(directory)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut down workers, seal telemetry streams, drop ephemeral state."""
        if self._closed:
            return
        self._closed = True
        self.pool.shutdown()
        self.telemetry.close()
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
